//! Resolver lab: stand up the `rfc9276-in-the-wild.com` testbed, deploy
//! one resolver per vendor profile, and classify each one with the §4.2
//! probing methodology.
//!
//! ```sh
//! cargo run --release --example resolver_lab
//! ```

use std::rc::Rc;

use dns_resolver::profiles::VendorProfile;
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_scanner::prober::Prober;
use nsec3_core::testbed::build_testbed;

fn main() {
    let mut tb = build_testbed(1_710_000_000);
    println!(
        "testbed up: {} zones under {} (valid, expired, it-1..it-500, it-2501-expired)",
        tb.lab.zones.len(),
        nsec3_core::TEST_DOMAIN
    );

    let scanner = tb.lab.alloc.v4();
    println!(
        "\n{:<26} {:>9} {:>9} {:>9} {:>6} {:>6}",
        "vendor", "validator", "insec@", "servfail@", "EDE27", "flaky"
    );
    for profile in VendorProfile::all() {
        let addr = tb.lab.alloc.v4();
        let mut cfg =
            ResolverConfig::validating(addr, tb.lab.root_hints.clone(), tb.lab.anchor.clone());
        cfg.now = tb.lab.now;
        cfg.policy = profile.policy();
        tb.lab.net.register(addr, Rc::new(Resolver::new(cfg)));
        let c = Prober::new(&tb.lab.net, scanner, &tb.plan).classify(addr);
        assert!(!c.unreachable, "lab resolver answered");
        println!(
            "{:<26} {:>9} {:>9} {:>9} {:>6} {:>6}",
            profile.name(),
            if c.is_validator { "yes" } else { "no" },
            c.insecure_limit
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            c.servfail_start
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            if c.ede27_on_limit { "yes" } else { "no" },
            if c.flaky { "yes" } else { "no" },
        );
    }

    println!("\nCompare with §4.2/§5.2: BIND/Unbound/Knot/PowerDNS (2021) go insecure above 150,");
    println!("the 2023 CVE patches lower that to 50, Google to 100, Cloudflare/OpenDNS SERVFAIL");
    println!("above 150, Technitium SERVFAILs from 101 with EDE 27 and EXTRA-TEXT.");
}
