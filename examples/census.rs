//! Census: generate a small calibrated domain population, instantiate
//! every domain as a real signed zone on the simulated Internet, scan
//! them zdns-style through a validating resolver, and report RFC 9276
//! compliance — the §4.1/§5.1 pipeline end to end.
//!
//! ```sh
//! cargo run --release --example census
//! ```

use analysis::{fmt_pct, operator_table, render_table2, DomainStats};
use nsec3_core::experiments::{records_from_specs, run_domain_census};
use popgen::{generate_domains, Scale};

fn main() {
    let scale = Scale(1.0 / 200_000.0); // ~1.5 K domains: quick but meaningful
    let specs = generate_domains(scale, 42);
    println!(
        "population: {} registered domains (scale 1/200000)",
        specs.len()
    );

    let t0 = std::time::Instant::now();
    let measured = run_domain_census(&specs, 1_710_000_000, 250);
    println!(
        "census: scanned {} domains over the simulated network in {:?}",
        measured.len(),
        t0.elapsed()
    );

    let stats = DomainStats::compute(&measured);
    println!("\n--- measured (paper values in parentheses) ---");
    println!(
        "DNSSEC-enabled:      {} (8.8 %)",
        fmt_pct(stats.dnssec_pct())
    );
    println!(
        "NSEC3 of DNSSEC:     {} (58.9 %)",
        fmt_pct(stats.nsec3_of_dnssec_pct())
    );
    println!(
        "RFC 9276 violations: {} (87.8 %)",
        fmt_pct(stats.non_compliant_pct())
    );
    println!(
        "zero iterations:     {} (12.2 %)",
        fmt_pct(stats.zero_iteration_pct())
    );
    println!(
        "no salt:             {} (8.6 %)",
        fmt_pct(stats.no_salt_pct())
    );
    println!(
        "opt-out set:         {} (6.4 %)",
        fmt_pct(stats.opt_out_pct())
    );

    println!("\n--- top operators (measured from NS records) ---");
    print!("{}", render_table2(&operator_table(&measured, 5)));

    // Closed loop: measured == declared?
    let declared = DomainStats::compute(&records_from_specs(&specs));
    let drift = (stats.zero_iteration_pct() - declared.zero_iteration_pct()).abs();
    println!("\nclosed-loop drift on the it=0 share: {drift:.3} points (expect ~0)");
}
