//! Census: generate a small calibrated domain population, instantiate
//! every domain as a real signed zone on the simulated Internet, scan
//! them zdns-style through a validating resolver, and report RFC 9276
//! compliance — the §4.1/§5.1 pipeline end to end.
//!
//! Two passes over the same pipeline:
//!
//! 1. a record-level census (`run_domain_census_cfg`) small enough to
//!    hold every [`analysis::DomainRecord`], feeding the operator table;
//! 2. a fully streaming census (`run_domain_census_stream`) over a 10×
//!    larger population that never materialises a spec list — each shard
//!    walks a `DomainGenerator` and folds records into a tally, so
//!    memory stays flat no matter the population.
//!
//! ```sh
//! cargo run --release --example census
//! ```

use analysis::{fmt_pct, operator_table, render_table2, DomainStats};
use nsec3_core::experiments::{records_from_specs, run_domain_census_cfg, DriverConfig};
use nsec3_core::{run_domain_census_stream, DEFAULT_LAB_SEED};
use popgen::{generate_domains, Scale};

const NOW: u32 = 1_710_000_000;

fn main() {
    let scale = Scale(1.0 / 200_000.0); // ~1.5 K domains: quick but meaningful
    let specs = generate_domains(scale, 42);
    println!(
        "population: {} registered domains (scale 1/200000)",
        specs.len()
    );

    let cfg = DriverConfig::clean(NOW, sim_par::default_threads(), DEFAULT_LAB_SEED);
    let t0 = std::time::Instant::now();
    let (measured, probe_stats) = run_domain_census_cfg(&specs, 250, &cfg);
    println!(
        "census: scanned {} domains over the simulated network in {:?} ({} queries sent)",
        measured.len(),
        t0.elapsed(),
        probe_stats.sent
    );

    let stats = DomainStats::compute(&measured);
    println!("\n--- measured (paper values in parentheses) ---");
    println!(
        "DNSSEC-enabled:      {} (8.8 %)",
        fmt_pct(stats.dnssec_pct())
    );
    println!(
        "NSEC3 of DNSSEC:     {} (58.9 %)",
        fmt_pct(stats.nsec3_of_dnssec_pct())
    );
    println!(
        "RFC 9276 violations: {} (87.8 %)",
        fmt_pct(stats.non_compliant_pct())
    );
    println!(
        "zero iterations:     {} (12.2 %)",
        fmt_pct(stats.zero_iteration_pct())
    );
    println!(
        "no salt:             {} (8.6 %)",
        fmt_pct(stats.no_salt_pct())
    );
    println!(
        "opt-out set:         {} (6.4 %)",
        fmt_pct(stats.opt_out_pct())
    );

    println!("\n--- top operators (measured from NS records) ---");
    print!("{}", render_table2(&operator_table(&measured, 5)));

    // Closed loop: measured == declared?
    let declared = DomainStats::compute(&records_from_specs(&specs));
    let drift = (stats.zero_iteration_pct() - declared.zero_iteration_pct()).abs();
    println!("\nclosed-loop drift on the it=0 share: {drift:.3} points (expect ~0)");

    // The same pipeline, streaming: 10× the population, no spec list,
    // no record list — shards pull domains from the O(1) generator and
    // fold straight into a tally.
    let stream_scale = Scale(1.0 / 20_000.0);
    println!(
        "\n--- streaming census (scale 1/20000, {} domains) ---",
        popgen::domain_count(stream_scale)
    );
    let t1 = std::time::Instant::now();
    let report = run_domain_census_stream(stream_scale, 42, 512, &cfg);
    println!(
        "streamed {} domains in {:?}: RFC 9276 violations {} , at most {} probes in flight per shard",
        report.stats.total,
        t1.elapsed(),
        fmt_pct(report.stats.non_compliant_pct()),
        report.in_flight_high_water
    );
}
