//! Quickstart: sign a zone with NSEC3, answer a query with a denial
//! proof, and validate it — the whole DNSSEC denial-of-existence path in
//! one file.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dns_resolver::cost::CostMeter;
use dns_resolver::validator::{parse_nsec3_set, verify_nxdomain};
use dns_wire::name::name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;
use dns_zone::denial::nxdomain_proof;
use dns_zone::nsec3hash::{nsec3_hash, Nsec3Params};
use dns_zone::signer::{sign_zone, SignerConfig};
use dns_zone::Zone;

fn main() {
    let now = 1_710_000_000;

    // 1. Build a zone.
    let apex = name("example.org.");
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa {
            mname: name("ns1.example.org."),
            rname: name("hostmaster.example.org."),
            serial: 2024030501,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        },
    ))
    .unwrap();
    for (label, ip) in [
        ("www", "192.0.2.1"),
        ("api", "192.0.2.2"),
        ("mail", "192.0.2.3"),
    ] {
        zone.add(Record::new(
            name(&format!("{label}.example.org.")),
            300,
            RData::A(ip.parse().unwrap()),
        ))
        .unwrap();
    }

    // 2. Sign it, RFC 9276-style (0 additional iterations, no salt).
    let config = SignerConfig::standard(&apex, now);
    let signed = sign_zone(&zone, &config).unwrap();
    println!(
        "signed zone holds {} records, including:",
        signed.zone.len()
    );
    for rec in signed
        .zone
        .iter()
        .filter(|r| matches!(r.rrtype(), t if t == RrType::NSEC3PARAM || t == RrType::NSEC3))
    {
        println!("  {rec}");
    }

    // 3. The NSEC3 hash of a name (RFC 5155 §5).
    let params = Nsec3Params::rfc9276();
    let h = nsec3_hash(&name("www.example.org."), &params);
    println!(
        "\nNSEC3(www.example.org.) = {} ({} SHA-1 compressions)",
        dns_wire::base32::encode(&h.digest),
        h.compressions
    );

    // 4. Produce an authenticated denial for a name that does not exist.
    let qname = name("nonexistent.example.org.");
    let proof = nxdomain_proof(&signed, &qname).unwrap();
    println!("\nNXDOMAIN proof for {qname}:");
    for rec in &proof.records {
        println!("  {rec}");
    }

    // 5. Validate it the way a resolver would, metering the hash cost.
    let nsec3s: Vec<&Record> = proof
        .records
        .iter()
        .filter(|r| r.rrtype() == RrType::NSEC3)
        .collect();
    let (proof_params, views) = parse_nsec3_set(&nsec3s).unwrap();
    let meter = CostMeter::new();
    let verified = verify_nxdomain(&qname, &apex, &proof_params, &views, &meter).unwrap();
    println!(
        "\nproof verified: closest encloser {}, next closer {}",
        verified.closest_encloser, verified.next_closer
    );
    println!(
        "validation cost: {} hash chains, {} SHA-1 compressions",
        meter.nsec3_hashes(),
        meter.sha1_compressions()
    );
    println!("\nWith 150 additional iterations the same proof would cost 151x the compressions —");
    println!("that is CVE-2023-50868, and why RFC 9276 says: zeros are heroes.");
}
