//! Zone files end to end: parse a master file (the format CZDS delivers),
//! sign it with RFC 9276 parameters, print it back, and verify that a
//! network AXFR of the served zone matches the printed file record for
//! record.
//!
//! ```sh
//! cargo run --release --example zone_files
//! ```

use std::rc::Rc;

use dns_auth::AuthServer;
use dns_scanner::walk;
use dns_wire::name::name;
use dns_zone::signer::{sign_zone, SignerConfig};
use dns_zone::zonefile::{parse_zone, print_zone};

const MASTER_FILE: &str = r#"
; corp.example — the unsigned zone as an operator would maintain it
$ORIGIN corp.example.
$TTL 3600
@       IN SOA ns1 hostmaster (
            2024030501 ; serial
            7200       ; refresh
            3600       ; retry
            1209600    ; expire
            300 )      ; negative TTL
@       IN NS  ns1
ns1     IN A   192.0.2.53
@       IN MX  10 mail
mail    IN A   192.0.2.25
www 600 IN A   192.0.2.80
        IN AAAA 2001:db8::80
api     IN CNAME www
info    IN TXT "v=spf1 -all" "managed; by ops"
"#;

fn main() {
    // 1. Parse.
    let zone = parse_zone(MASTER_FILE, &name(".")).expect("master file parses");
    println!(
        "parsed {} records under {} from the master file",
        zone.len(),
        zone.apex()
    );

    // 2. Sign (RFC 9276 defaults: NSEC3, 0 iterations, no salt).
    let signed =
        sign_zone(&zone, &SignerConfig::standard(zone.apex(), 1_710_000_000)).expect("zone signs");
    println!(
        "signed: {} records ({} NSEC3 chain entries)",
        signed.zone.len(),
        signed.nsec3_index.len()
    );

    // 3. Print the signed zone back to master-file format.
    let printed = print_zone(&signed.zone);
    println!("\nfirst lines of the signed zone file:");
    for line in printed.lines().take(8) {
        println!("  {line}");
    }

    // 4. Serve it and fetch it back over the simulated network via AXFR.
    let net = netsim::Network::new(1);
    let server_addr: std::net::IpAddr = "10.0.0.53".parse().unwrap();
    let client: std::net::IpAddr = "10.0.0.99".parse().unwrap();
    let server = AuthServer::new();
    server.add_zone(signed.clone());
    server.allow_axfr(zone.apex());
    net.register(server_addr, Rc::new(server));
    let transferred = walk::axfr(&net, client, server_addr, zone.apex()).expect("transfer allowed");
    println!(
        "\nAXFR returned {} records (TCP-framed transfer)",
        transferred.len()
    );

    // 5. The transfer matches the printed file, record for record.
    let mut from_file: Vec<String> = parse_zone(&printed, &name("."))
        .expect("printed file parses")
        .iter()
        .map(|r| r.to_string())
        .collect();
    let mut from_wire: Vec<String> = transferred.iter().map(|r| r.to_string()).collect();
    from_file.sort();
    from_wire.sort();
    assert_eq!(from_file, from_wire, "file and wire views agree");
    println!("zone file ≡ AXFR contents: verified");
    println!("\nThis is the CZDS/AXFR loop of §4.1: the census's zone-data inputs and the");
    println!("wire-level scans are two views of the same signed zone.");
}
