//! Zone walking: why NSEC3 exists, and why RFC 9276 argues hashing often
//! is not worth it anyway (Table 1 item 1).
//!
//! Walks an NSEC-signed zone record by record (full enumeration), then
//! shows that the NSEC3 version only leaks hashes — and then breaks those
//! hashes with a dictionary of guessable labels, the paper's §2.3
//! argument: "subdomains are often easily predictable (www, ftp, api)".
//!
//! ```sh
//! cargo run --release --example zone_walking
//! ```

use dns_wire::base32;
use dns_wire::name::{name, Name};
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;
use dns_zone::nsec3hash::nsec3_hash;
use dns_zone::signer::{sign_zone, Denial, SignerConfig};
use dns_zone::Zone;

fn build_zone() -> Zone {
    let apex = name("victim.example.");
    let mut z = Zone::new(apex.clone());
    z.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa {
            mname: name("ns1.victim.example."),
            rname: name("hostmaster.victim.example."),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        },
    ))
    .unwrap();
    // A mix of guessable and secret subdomains.
    for label in [
        "www",
        "api",
        "mail",
        "vpn",
        "internal-dashboard-x7k2",
        "secret-project-zeta",
    ] {
        z.add(Record::new(
            name(&format!("{label}.victim.example.")),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
    }
    z
}

fn main() {
    let now = 1_710_000_000;
    let apex = name("victim.example.");

    // --- NSEC: full enumeration by following the chain. ---
    let nsec_signed = sign_zone(
        &build_zone(),
        &SignerConfig {
            denial: Denial::Nsec,
            ..SignerConfig::standard(&apex, now)
        },
    )
    .unwrap();
    println!("NSEC zone walk (each NSEC record names its successor):");
    let mut cur = apex.clone();
    let mut walked = Vec::new();
    loop {
        let rec = &nsec_signed.zone.rrset(&cur, RrType::NSEC).unwrap()[0];
        let next = match &rec.rdata {
            RData::Nsec { next, .. } => next.clone(),
            _ => unreachable!(),
        };
        walked.push(cur.to_string());
        if next == apex {
            break;
        }
        cur = next;
    }
    for n in &walked {
        println!("  {n}");
    }
    println!(
        "  -> the whole zone, including the secret names, in {} steps\n",
        walked.len()
    );

    // --- NSEC3: the chain only leaks hashes… ---
    let nsec3_signed = sign_zone(&build_zone(), &SignerConfig::standard(&apex, now)).unwrap();
    println!("NSEC3 chain (hashes only):");
    for (hash, _) in &nsec3_signed.nsec3_index {
        println!("  {}", base32::encode(hash));
    }

    // --- …but a dictionary breaks the guessable ones offline. ---
    let params = nsec3_signed.nsec3_params().unwrap().clone();
    let dictionary = [
        "www", "api", "mail", "ftp", "vpn", "smtp", "ns1", "dev", "staging", "admin", "webmail",
        "portal", "shop", "blog", "cdn",
    ];
    println!(
        "\noffline dictionary attack against the hashes ({} candidates):",
        dictionary.len()
    );
    let mut cracked = 0;
    for word in dictionary {
        let candidate: Name = name(&format!("{word}.victim.example."));
        let h = nsec3_hash(&candidate, &params).digest;
        if nsec3_signed
            .nsec3_index
            .binary_search_by(|(x, _)| x.cmp(&h))
            .is_ok()
        {
            println!("  cracked: {candidate}");
            cracked += 1;
        }
    }
    println!(
        "\n{} of 6 subdomains recovered by guessing; only the unguessable names stay hidden.",
        cracked
    );

    // --- The same attack over the network, with the scanner toolkit. ---
    use dns_scanner::walk;
    use std::rc::Rc;
    let net = netsim::Network::new(7);
    let server_addr: std::net::IpAddr = "10.0.0.53".parse().unwrap();
    let attacker: std::net::IpAddr = "10.6.6.6".parse().unwrap();
    let server = dns_auth::AuthServer::new();
    server.add_zone(nsec3_signed.clone());
    net.register(server_addr, Rc::new(server));
    let harvest = walk::nsec3_collect(&net, attacker, server_addr, &apex, 60)
        .expect("NXDOMAIN responses leak the chain");
    println!(
        "\nnetwork harvest: {} distinct hashes collected from 60 probe queries",
        harvest.hashes.len()
    );
    let cracked = walk::dictionary_attack(&harvest, &apex, &dictionary);
    println!(
        "network-side dictionary attack cracked {} names:",
        cracked.len()
    );
    for (name, work) in &cracked {
        println!("  {name} (after {work} SHA-1 compressions of attacker work)");
    }
    println!("That asymmetry is RFC 9276's item 1 argument: if an attacker can afford a");
    println!("dictionary pass, extra hash iterations only punish legitimate validators —");
    println!("prefer NSEC (or zero iterations) unless zone confidentiality really matters.");
}
