//! CVE-2023-50868 demonstration: an attacker-controlled NSEC3 zone with a
//! high iteration count forces a validating resolver to burn CPU on every
//! negative lookup; an RFC 9276-compliant limit stops the attack cold.
//!
//! ```sh
//! cargo run --release --example cve_2023_50868
//! ```

use dns_resolver::lab::LabBuilder;
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_resolver::Rfc9276Policy;
use dns_wire::name::name;
use dns_wire::rrtype::{Rcode, RrType};
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::Denial;

fn main() {
    let now = 1_710_000_000;
    // The attacker's zone: everything legitimate except the insane
    // iteration count (2,500 — the RFC 5155 ceiling for 4096-bit keys).
    let mut lab = LabBuilder::new(now)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .simple_zone(
            &name("attacker.com."),
            Denial::Nsec3 {
                params: Nsec3Params::new(2500, vec![0xee; 58]),
                opt_out: false,
            },
        )
        .build();

    println!("attacker zone: attacker.com., 2500 additional iterations, 58-byte salt\n");

    // Victim 1: a pre-2021 resolver with no iteration limits.
    let victim_addr = lab.alloc.v4();
    let mut cfg =
        ResolverConfig::validating(victim_addr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.policy = Rfc9276Policy::unlimited();
    let victim = Resolver::new(cfg);

    // Victim 2: a patched resolver (CVE-2023-50868 fix: limit 50).
    let patched_addr = lab.alloc.v4();
    let mut cfg =
        ResolverConfig::validating(patched_addr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.policy = Rfc9276Policy::insecure_above(50);
    let patched = Resolver::new(cfg);

    // The attack: a burst of unique nonexistent names (cache-busting),
    // each forcing a fresh closest-encloser proof validation.
    const QUERIES: usize = 50;
    let mut victim_cost = 0u64;
    let mut patched_cost = 0u64;
    let t_unlimited = std::time::Instant::now();
    for i in 0..QUERIES {
        let qname = name(&format!("a{i}.b.c.d.e.attacker.com."));
        let out = victim.resolve(&lab.net, &qname, RrType::A);
        assert_eq!(out.rcode, Rcode::NxDomain);
        victim_cost += out.cost.sha1_compressions;
    }
    let unlimited_time = t_unlimited.elapsed();
    let t_patched = std::time::Instant::now();
    for i in 0..QUERIES {
        let qname = name(&format!("x{i}.b.c.d.e.attacker.com."));
        let out = patched.resolve(&lab.net, &qname, RrType::A);
        assert_eq!(
            out.rcode,
            Rcode::NxDomain,
            "downgraded to insecure, still answers"
        );
        patched_cost += out.cost.sha1_compressions;
    }
    let patched_time = t_patched.elapsed();

    println!("{QUERIES} unique NXDOMAIN queries against each resolver:");
    println!("  unlimited validator: {victim_cost:>10} SHA-1 compressions  ({unlimited_time:?})");
    println!("  patched (limit 50):  {patched_cost:>10} SHA-1 compressions  ({patched_time:?})");
    println!(
        "  amplification removed: {:.0}x",
        victim_cost as f64 / patched_cost.max(1) as f64
    );
    println!("\nGruza et al. (WOOT '24) measured up to 72x CPU instructions on production");
    println!("resolvers from the same primitive; the patched resolver answers insecurely");
    println!("(NXDOMAIN without AD, EDE 27) and does no hashing at all.");
}
