//! RFC conformance across crates: RFC 5155 hash vectors through the
//! public API, wire-format round trips of full signed responses, and the
//! canonical-ordering contract between signer and validator.

use dns_wire::base32;
use dns_wire::message::Message;
use dns_wire::name::name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Rcode, RrType};
use dns_zone::nsec3hash::{nsec3_hash, Nsec3Params};
use dns_zone::signer::{sign_zone, verify_rrsig, SignerConfig};
use dns_zone::Zone;
use heroes as _;

const NOW: u32 = 1_710_000_000;

#[test]
fn rfc5155_appendix_a_hash_through_public_api() {
    // The canonical test vector: H(example) with salt aabbccdd, 12
    // additional iterations.
    let params = Nsec3Params::new(12, vec![0xaa, 0xbb, 0xcc, 0xdd]);
    let h = nsec3_hash(&name("example."), &params);
    assert_eq!(
        base32::encode(&h.digest),
        "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"
    );
    // Iterated cost: 13 hashes, each one compression (short input).
    assert_eq!(h.compressions, 13);
}

#[test]
fn signed_response_survives_wire_roundtrip_and_still_verifies() {
    let apex = name("roundtrip.example.");
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa {
            mname: name("ns1.roundtrip.example."),
            rname: name("host.roundtrip.example."),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        },
    ))
    .unwrap();
    zone.add(Record::new(
        name("www.roundtrip.example."),
        300,
        RData::A("192.0.2.1".parse().unwrap()),
    ))
    .unwrap();
    let signed = sign_zone(&zone, &SignerConfig::standard(&apex, NOW)).unwrap();

    // Build an authoritative response, push it through wire format.
    let server = dns_auth::AuthServer::new();
    server.add_zone(signed.clone());
    let query = Message::query(7, name("www.roundtrip.example."), RrType::A);
    let response = server.answer(&query);
    let decoded = Message::decode(&response.encode()).unwrap();
    assert_eq!(decoded, response);

    // The RRSIG from the decoded bytes still verifies against the zone
    // key: canonical forms survived serialization.
    let rrset: Vec<Record> = decoded
        .answers
        .iter()
        .filter(|r| r.rrtype() == RrType::A)
        .cloned()
        .collect();
    let sig = decoded
        .answers
        .iter()
        .find(|r| r.rrtype() == RrType::RRSIG)
        .expect("RRSIG present");
    let zsk = signed.keys.iter().find(|k| !k.is_ksk()).unwrap();
    assert!(verify_rrsig(
        &sig.rdata,
        &name("www.roundtrip.example."),
        &rrset,
        zsk.pair.public_key()
    ));
}

#[test]
fn case_randomization_does_not_break_validation() {
    // 0x20-style case games: hashing and signing are case-insensitive by
    // canonicalization.
    let params = Nsec3Params::rfc9276();
    assert_eq!(
        nsec3_hash(&name("WwW.ExAmPlE.CoM."), &params).digest,
        nsec3_hash(&name("www.example.com."), &params).digest,
    );
}

#[test]
fn nxdomain_response_from_auth_validates_in_resolver_types() {
    use dns_resolver::cost::CostMeter;
    use dns_resolver::validator::{parse_nsec3_set, verify_nxdomain};

    let apex = name("conform.example.");
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa {
            mname: name("ns1.conform.example."),
            rname: name("host.conform.example."),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        },
    ))
    .unwrap();
    for i in 0..10 {
        zone.add(Record::new(
            name(&format!("h{i}.conform.example.")),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
    }
    let signed = sign_zone(
        &zone,
        &SignerConfig::with_nsec3(&apex, NOW, Nsec3Params::new(5, vec![1, 2, 3]), false),
    )
    .unwrap();
    let server = dns_auth::AuthServer::new();
    server.add_zone(signed);
    let query = Message::query(9, name("no.such.name.conform.example."), RrType::A);
    let response = Message::decode(&server.answer(&query).encode()).unwrap();
    assert_eq!(response.rcode, Rcode::NxDomain);
    let nsec3s: Vec<&Record> = response
        .authorities
        .iter()
        .filter(|r| r.rrtype() == RrType::NSEC3)
        .collect();
    let (params, views) = parse_nsec3_set(&nsec3s).unwrap();
    assert_eq!(params.iterations, 5);
    let meter = CostMeter::new();
    let proof = verify_nxdomain(
        &name("no.such.name.conform.example."),
        &apex,
        &params,
        &views,
        &meter,
    )
    .unwrap();
    assert_eq!(proof.closest_encloser, apex);
    // 3 labels to walk + wildcard + next-closer coverage: ≥ 5 chains at 6
    // hashes each.
    assert!(
        meter.sha1_compressions() >= 5 * 6,
        "{}",
        meter.sha1_compressions()
    );
}
