//! End-to-end determinism: the whole pipeline is a pure function of its
//! seed. Running the domain census and the resolver study twice with the
//! same seed must produce byte-identical reports; a different seed must
//! produce a different population.
//!
//! This is the contract that makes every experiment in this repository
//! reproducible from its command line alone (see "Seed threading" in the
//! README) — and, since the drivers went parallel, the contract extends
//! across thread counts: `threads = 1` and `threads = N` must render to
//! the same bytes. `scripts/ci.sh` runs this suite under both
//! `HEROES_THREADS=1` and `HEROES_THREADS=4` to pin the environment
//! plumbing as well as the explicit `_with` paths exercised here.

use analysis::domains::DomainStats;
use analysis::ResolverStats;
use nsec3_core::experiments::{
    run_domain_census, run_domain_census_with, run_resolver_study, run_resolver_study_with,
    run_tld_census_with, DEFAULT_LAB_SEED,
};
use popgen::{generate_domains, generate_fleet, generate_tlds, Scale};

const NOW: u32 = 1_710_000_000;

/// A census rendered to one comparable string: every record plus the
/// aggregate stats.
fn census_report(seed: u64) -> String {
    let specs = generate_domains(Scale(1.0 / 50_000.0), seed);
    let records = run_domain_census(&specs, NOW, 64);
    let stats = DomainStats::compute(&records);
    format!("{records:?}\n{stats:?}")
}

/// A resolver study rendered to one comparable string.
fn resolver_report(seed: u64) -> String {
    let fleet = generate_fleet(Scale(1.0 / 20_000.0), seed);
    let study = run_resolver_study(NOW, &fleet);
    let all = study.all();
    let stats = ResolverStats::compute(&all);
    format!("{all:?}\n{stats:?}")
}

#[test]
fn domain_census_is_deterministic_per_seed() {
    let a = census_report(7);
    let b = census_report(7);
    assert_eq!(a, b, "same seed must reproduce the census byte for byte");

    let c = census_report(8);
    assert_ne!(a, c, "different seeds must sample different populations");
}

#[test]
fn resolver_study_is_deterministic_per_seed() {
    let a = resolver_report(7);
    let b = resolver_report(7);
    assert_eq!(a, b, "same seed must reproduce the study byte for byte");

    let c = resolver_report(8);
    assert_ne!(a, c, "different seeds must sample different fleets");
}

#[test]
fn domain_census_is_identical_across_thread_counts() {
    let specs = generate_domains(Scale(1.0 / 50_000.0), 42);
    let sequential = run_domain_census_with(&specs, NOW, 64, 1, DEFAULT_LAB_SEED);
    let sharded = run_domain_census_with(&specs, NOW, 64, 4, DEFAULT_LAB_SEED);
    assert_eq!(
        format!("{sequential:?}"),
        format!("{sharded:?}"),
        "threads=1 and threads=4 must render byte-identically"
    );
}

#[test]
fn resolver_study_is_identical_across_thread_counts() {
    let fleet = generate_fleet(Scale(1.0 / 20_000.0), 42);
    let sequential = run_resolver_study_with(NOW, &fleet, 1, DEFAULT_LAB_SEED);
    let sharded = run_resolver_study_with(NOW, &fleet, 4, DEFAULT_LAB_SEED);
    assert_eq!(
        format!("{:?}", sequential.all()),
        format!("{:?}", sharded.all()),
        "resolver classifications (addresses included) must not depend on sharding"
    );
    assert_eq!(
        format!("{:?}", ResolverStats::compute(&sequential.all())),
        format!("{:?}", ResolverStats::compute(&sharded.all())),
    );
}

#[test]
fn tld_census_is_identical_across_thread_counts() {
    let tlds: Vec<_> = generate_tlds().into_iter().step_by(97).collect();
    let sequential = run_tld_census_with(&tlds, NOW, 1.0 / 100_000.0, 1, DEFAULT_LAB_SEED);
    let sharded = run_tld_census_with(&tlds, NOW, 1.0 / 100_000.0, 3, DEFAULT_LAB_SEED);
    assert_eq!(
        format!("{sequential:?}"),
        format!("{sharded:?}"),
        "threads=1 and threads=3 must render byte-identically"
    );
}
