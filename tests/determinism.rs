//! End-to-end determinism: the whole pipeline is a pure function of its
//! seed. Running the domain census and the resolver study twice with the
//! same seed must produce byte-identical reports; a different seed must
//! produce a different population.
//!
//! This is the contract that makes every experiment in this repository
//! reproducible from its command line alone (see "Seed threading" in the
//! README) — and, since the drivers went parallel, the contract extends
//! across thread counts: `threads = 1` and `threads = N` must render to
//! the same bytes. `scripts/ci.sh` runs this suite under both
//! `HEROES_THREADS=1` and `HEROES_THREADS=4` to pin the environment
//! plumbing as well as the explicit [`DriverConfig`] paths exercised here.

use analysis::domains::DomainStats;
use analysis::ResolverStats;
use dns_scanner::retry::BreakerConfig;
use netsim::{Episode, EpisodeKind, FaultSchedule, RetryPolicy, Scope};
use nsec3_core::experiments::{
    run_domain_census, run_domain_census_cfg, run_domain_census_stream, run_resolver_study,
    run_resolver_study_cfg, run_tld_census_cfg, run_unreachability_cfg, DriverConfig, ScanProfile,
    DEFAULT_LAB_SEED,
};
use popgen::{generate_domains, generate_fleet, generate_tlds, Scale};

mod serving_support {
    pub use nsec3_core::serving::{run_serving_cfg, ServingScenario};
    pub use popgen::domains::{DnssecKind, DomainSpec};
    pub use popgen::traffic::{diurnal_schedule, QueryMix, TrafficModel};
    pub use popgen::DomainGenerator;

    /// The first `count` non-opt-out NSEC3 zones of the calibrated
    /// population — the serving driver's cacheable domain set.
    pub fn nsec3_population(count: usize) -> Vec<DomainSpec> {
        let generator = DomainGenerator::new(popgen::Scale(1.0 / 3_020.0), 42);
        let mut out = Vec::with_capacity(count);
        let mut i = 0u64;
        while out.len() < count && i < generator.len() {
            let spec = generator.get(i);
            if matches!(spec.dnssec, DnssecKind::Nsec3 { opt_out: false, .. }) {
                out.push(spec);
            }
            i += 1;
        }
        out
    }
}

const NOW: u32 = 1_710_000_000;

/// A census rendered to one comparable string: every record plus the
/// aggregate stats.
fn census_report(seed: u64) -> String {
    let specs = generate_domains(Scale(1.0 / 50_000.0), seed);
    let records = run_domain_census(&specs, NOW, 64);
    let stats = DomainStats::compute(&records);
    format!("{records:?}\n{stats:?}")
}

/// A resolver study rendered to one comparable string.
fn resolver_report(seed: u64) -> String {
    let fleet = generate_fleet(Scale(1.0 / 20_000.0), seed);
    let study = run_resolver_study(NOW, &fleet);
    let all = study.all();
    let stats = ResolverStats::compute(&all);
    format!("{all:?}\n{stats:?}")
}

#[test]
fn domain_census_is_deterministic_per_seed() {
    let a = census_report(7);
    let b = census_report(7);
    assert_eq!(a, b, "same seed must reproduce the census byte for byte");

    let c = census_report(8);
    assert_ne!(a, c, "different seeds must sample different populations");
}

#[test]
fn resolver_study_is_deterministic_per_seed() {
    let a = resolver_report(7);
    let b = resolver_report(7);
    assert_eq!(a, b, "same seed must reproduce the study byte for byte");

    let c = resolver_report(8);
    assert_ne!(a, c, "different seeds must sample different fleets");
}

#[test]
fn domain_census_is_identical_across_thread_counts() {
    let specs = generate_domains(Scale(1.0 / 50_000.0), 42);
    let sequential =
        run_domain_census_cfg(&specs, 64, &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED)).0;
    let sharded =
        run_domain_census_cfg(&specs, 64, &DriverConfig::clean(NOW, 4, DEFAULT_LAB_SEED)).0;
    assert_eq!(
        format!("{sequential:?}"),
        format!("{sharded:?}"),
        "threads=1 and threads=4 must render byte-identically"
    );
}

#[test]
fn resolver_study_is_identical_across_thread_counts() {
    let fleet = generate_fleet(Scale(1.0 / 20_000.0), 42);
    let sequential = run_resolver_study_cfg(&fleet, &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED));
    let sharded = run_resolver_study_cfg(&fleet, &DriverConfig::clean(NOW, 4, DEFAULT_LAB_SEED));
    assert_eq!(
        format!("{:?}", sequential.all()),
        format!("{:?}", sharded.all()),
        "resolver classifications (addresses included) must not depend on sharding"
    );
    assert_eq!(
        format!("{:?}", ResolverStats::compute(&sequential.all())),
        format!("{:?}", ResolverStats::compute(&sharded.all())),
    );
}

/// Flow-keyed faults only (loss + jittered latency): shard-invariant for
/// every driver, because decisions hash the schedule seed with the flow,
/// never the shard-local clock or RNG.
fn flow_keyed_lossy() -> ScanProfile {
    ScanProfile {
        schedule: FaultSchedule {
            base: Default::default(),
            seed: 0x9276,
            episodes: vec![
                Episode::always(EpisodeKind::Flap {
                    scope: Scope::All,
                    drop_chance: 0.2,
                }),
                Episode::always(EpisodeKind::LatencySpike {
                    scope: Scope::All,
                    extra_micros: 3_000,
                    jitter_micros: 2_000,
                }),
            ],
        },
        retry: RetryPolicy::adaptive(7),
        breaker: BreakerConfig::default(),
    }
}

#[test]
fn faulty_census_is_identical_across_thread_counts() {
    // Time-windowed and stateful episodes (an outage window, token-bucket
    // rate limiting) are clock-sensitive, so the census runs them at
    // `batch_size = 1`: every domain gets a fresh lab whose virtual clock
    // starts at zero, and the schedule replays identically no matter how
    // the specs are sharded.
    let specs: Vec<_> = generate_domains(Scale(1.0 / 100_000.0), 42)
        .into_iter()
        .take(40)
        .collect();
    let mut profile = flow_keyed_lossy();
    profile.schedule.episodes.push(Episode::window(
        0,
        25_000,
        EpisodeKind::Outage { scope: Scope::All },
    ));
    profile
        .schedule
        .episodes
        .push(Episode::always(EpisodeKind::RateLimit {
            scope: Scope::All,
            capacity: 6,
            refill_interval_micros: 40_000,
        }));
    let cfg =
        |threads| DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED).with_profile(profile.clone());
    let (rec1, st1) = run_domain_census_cfg(&specs, 1, &cfg(1));
    let (rec2, st2) = run_domain_census_cfg(&specs, 1, &cfg(2));
    let (rec4, st4) = run_domain_census_cfg(&specs, 1, &cfg(4));
    assert_eq!(
        format!("{rec1:?}"),
        format!("{rec2:?}"),
        "faulty census must render byte-identically at threads=1 and 2"
    );
    assert_eq!(
        format!("{rec1:?}"),
        format!("{rec4:?}"),
        "faulty census must render byte-identically at threads=1 and 4"
    );
    assert_eq!(st1, st2);
    assert_eq!(st1, st4);
    assert!(st1.is_consistent(), "sent = answered + timed_out + skipped");
    assert!(
        st1.retried > 0,
        "a lossy profile must show retries: {st1:?}"
    );
    assert_eq!(rec1.len(), specs.len(), "no record may be dropped");
}

#[test]
fn faulty_resolver_study_is_identical_across_thread_counts() {
    let fleet = generate_fleet(Scale(1.0 / 20_000.0), 42);
    let profile = flow_keyed_lossy();
    let cfg =
        |threads| DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED).with_profile(profile.clone());
    let s1 = run_resolver_study_cfg(&fleet, &cfg(1));
    let s2 = run_resolver_study_cfg(&fleet, &cfg(2));
    let s4 = run_resolver_study_cfg(&fleet, &cfg(4));
    assert_eq!(
        format!("{:?}", s1.all()),
        format!("{:?}", s2.all()),
        "faulty study must render byte-identically at threads=1 and 2"
    );
    assert_eq!(
        format!("{:?}", s1.all()),
        format!("{:?}", s4.all()),
        "faulty study must render byte-identically at threads=1 and 4"
    );
    assert_eq!(s1.stats, s2.stats);
    assert_eq!(s1.stats, s4.stats);
    assert!(s1.stats.is_consistent());
    assert!(
        s1.stats.retried > 0,
        "a lossy profile must show retries: {:?}",
        s1.stats
    );
    assert_eq!(
        s1.all().len(),
        fleet.len(),
        "every resolver keeps a classification, reachable or not"
    );
}

#[test]
fn faulty_tld_census_and_unreachability_account_probes() {
    let profile = flow_keyed_lossy();

    // The TLD census shares one registry lab per shard, so under faults
    // the slicing is part of the experiment input: a fixed thread count
    // replays byte for byte, and the loss accounting always balances.
    let tlds: Vec<_> = generate_tlds().into_iter().step_by(97).collect();
    let cfg = DriverConfig::clean(NOW, 3, DEFAULT_LAB_SEED).with_profile(profile.clone());
    let (obs_a, tld_st_a) = run_tld_census_cfg(&tlds, 1.0 / 100_000.0, &cfg);
    let (obs_b, tld_st_b) = run_tld_census_cfg(&tlds, 1.0 / 100_000.0, &cfg);
    assert_eq!(
        format!("{obs_a:?}"),
        format!("{obs_b:?}"),
        "a faulty TLD census must replay byte for byte at a fixed thread count"
    );
    assert_eq!(tld_st_a, tld_st_b);
    assert!(tld_st_a.is_consistent());

    // Unreachability at batch_size = 1 is shard-invariant like the
    // census: every NSEC3 domain gets a fresh zero-clock lab.
    let specs: Vec<_> = generate_domains(Scale(1.0 / 100_000.0), 42)
        .into_iter()
        .take(60)
        .collect();
    let cfg =
        |threads| DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED).with_profile(profile.clone());
    let (un1, un_st1) = run_unreachability_cfg(&specs, 1, &cfg(1));
    let (un4, un_st4) = run_unreachability_cfg(&specs, 1, &cfg(4));
    assert_eq!(format!("{un1:?}"), format!("{un4:?}"));
    assert_eq!(un_st1, un_st4);
    assert!(un_st1.is_consistent());
    assert_eq!(
        un1.reachable + un1.unreachable + un1.lost,
        un1.probed,
        "unreachability accounting must cover every probe"
    );
}

#[test]
fn streaming_census_is_identical_across_thread_counts() {
    // The streaming driver shards an index range instead of a spec
    // slice; `range_shards` must cut it exactly where the slice shards
    // would, so the merged tally and probe accounting are byte-identical
    // at every thread count. ~1.5 K domains keeps shard cuts that do not
    // align with the 64-domain batch boundaries.
    let scale = Scale(1.0 / 200_000.0);
    let render = |threads| {
        let cfg = DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED);
        let report = run_domain_census_stream(scale, 42, 64, &cfg);
        format!("{:?}\n{:?}", report.stats, report.probe_stats)
    };
    let one = render(1);
    assert_eq!(
        one,
        render(4),
        "streaming census must render byte-identically at threads=1 and 4"
    );
    assert_eq!(
        one,
        render(8),
        "streaming census must render byte-identically at threads=1 and 8"
    );
}

#[test]
fn faulty_streaming_census_is_identical_across_thread_counts() {
    // Flow-keyed faults at batch_size = 1: every domain gets a fresh
    // zero-clock lab, so the fault schedule replays identically however
    // the index range is sharded — the streaming analogue of
    // `faulty_census_is_identical_across_thread_counts`.
    let scale = Scale(1.0 / 500_000.0);
    let profile = flow_keyed_lossy();
    let render = |threads| {
        let cfg = DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED).with_profile(profile.clone());
        let report = run_domain_census_stream(scale, 42, 1, &cfg);
        format!("{:?}\n{:?}", report.stats, report.probe_stats)
    };
    let one = render(1);
    assert_eq!(
        one,
        render(4),
        "faulty streaming census must render byte-identically at threads=1 and 4"
    );
}

#[test]
fn signed_zone_is_identical_across_thread_counts() {
    // The zone signer shards NSEC3 hashing and RRSIG generation over
    // sim-par once a zone crosses the inline threshold; with thread-local
    // hash caches warm or cold, the output must not depend on the thread
    // count. 300 names is well past the threshold.
    use dns_wire::name::Name;
    use dns_wire::rdata::RData;
    use dns_wire::record::Record;
    use dns_zone::signer::{sign_zone_with_threads, SignerConfig};
    use dns_zone::Zone;

    let apex = Name::parse("big.example.").unwrap();
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa {
            mname: Name::parse("ns1.big.example.").unwrap(),
            rname: Name::parse("host.big.example.").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        },
    ))
    .unwrap();
    for i in 0..300 {
        zone.add(Record::new(
            Name::parse(&format!("host-{i:03}.big.example.")).unwrap(),
            300,
            RData::A(
                format!("192.0.{}.{}", i / 250, i % 250 + 1)
                    .parse()
                    .unwrap(),
            ),
        ))
        .unwrap();
    }
    let config = SignerConfig::standard(&apex, NOW);
    let renders: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let signed = sign_zone_with_threads(&zone, &config, threads).unwrap();
            format!("{:?}", signed.zone)
        })
        .collect();
    assert_eq!(
        renders[0], renders[1],
        "signed zone must render byte-identically at threads=1 and 2"
    );
    assert_eq!(
        renders[0], renders[2],
        "signed zone must render byte-identically at threads=1 and 4"
    );
}

#[test]
fn tld_census_is_identical_across_thread_counts() {
    let tlds: Vec<_> = generate_tlds().into_iter().step_by(97).collect();
    let sequential = run_tld_census_cfg(
        &tlds,
        1.0 / 100_000.0,
        &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED),
    )
    .0;
    let sharded = run_tld_census_cfg(
        &tlds,
        1.0 / 100_000.0,
        &DriverConfig::clean(NOW, 3, DEFAULT_LAB_SEED),
    )
    .0;
    assert_eq!(
        format!("{sequential:?}"),
        format!("{sharded:?}"),
        "threads=1 and threads=3 must render byte-identically"
    );
}

#[test]
fn serving_driver_is_identical_across_thread_counts_and_windows() {
    // The serving driver shards the resolver fleet, not the query
    // stream: every fleet member regenerates its own client block from
    // the index-stable traffic generator, so tallies must be
    // byte-identical at every thread count and in-flight window. The
    // cache layers are part of the claim — answer-cache eviction at
    // capacity used to be hash-order-dependent, and this pin is what
    // keeps it honest.
    use serving_support::*;
    let scenario = ServingScenario::new(
        nsec3_population(8),
        TrafficModel::new(12, 40, 42).with_mix(QueryMix::nxdomain_heavy()),
    )
    .with_fleet(3);
    let base = |threads| DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED);
    let r1 = run_serving_cfg(&scenario, &base(1));
    let t = &r1.tally;
    assert_eq!(t.queries, 480);
    assert_eq!(
        t.queries,
        t.served_cache + t.synthesized + t.forwarded + t.lost,
        "serving accounting invariant"
    );
    assert_eq!(t.lost, 0, "clean network loses nothing");
    assert!(t.synthesized > 0, "aggressive fleet must synthesize");
    for threads in [2usize, 4, 8] {
        let rn = run_serving_cfg(&scenario, &base(threads));
        assert_eq!(
            r1.rendered(),
            rn.rendered(),
            "serving run must render byte-identically at threads = {threads}"
        );
    }
    for window in [1usize, 4] {
        let rw = run_serving_cfg(&scenario, &base(4).with_window(window));
        assert_eq!(
            r1.rendered(),
            rw.rendered(),
            "window = {window} must match the default window"
        );
    }
}

#[test]
fn diurnal_serving_is_identical_across_thread_counts() {
    // Diurnal bursts are time-windowed latency episodes; each fleet
    // member replays them against its own zero-based virtual clock, so
    // the member remains an atomic unit of determinism and sharding
    // cannot move a burst.
    use serving_support::*;
    let scenario =
        ServingScenario::new(nsec3_population(6), TrafficModel::new(8, 25, 42)).with_fleet(2);
    let profile = ScanProfile {
        schedule: diurnal_schedule(0xd1a1, 2, 40_000),
        ..ScanProfile::clean()
    };
    let base = |threads: usize| {
        DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED).with_profile(profile.clone())
    };
    let r1 = run_serving_cfg(&scenario, &base(1));
    let r4 = run_serving_cfg(&scenario, &base(4));
    assert_eq!(
        r1.rendered(),
        r4.rendered(),
        "diurnal serving must render byte-identically at threads = 1 and 4"
    );
    assert!(r1.probe_stats.is_consistent());
    // The burst windows must actually bite: peak-hour queries pay the
    // latency spike, so the slowest answer is slower than the clean run's.
    let clean = run_serving_cfg(&scenario, &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED));
    let max_latency = |r: &nsec3_core::serving::ServingReport| {
        r.tally
            .latency_hist
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
    };
    assert!(
        max_latency(&r1) > max_latency(&clean),
        "diurnal spikes must surface in the latency tail"
    );
}

#[test]
fn adversarial_driver_is_identical_across_thread_counts_and_windows() {
    // The adversarial driver gives every zone its own lab, so tallies
    // are shard-invariant by construction — pin it anyway, clean and
    // lossy, across threads and windows, with the degradation
    // accounting invariant along for the ride.
    use nsec3_core::adversarial::{run_adversarial_cfg, AdversarialScenario, DefenseProfile};
    use popgen::generate_attack_zones;
    let scenario = AdversarialScenario {
        zones: generate_attack_zones("example.", 2),
        queries_per_zone: 2,
        defense: DefenseProfile::defended(),
    };
    let base = |threads| DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED);
    let r1 = run_adversarial_cfg(&scenario, &base(1));
    for threads in [2usize, 4] {
        let rn = run_adversarial_cfg(&scenario, &base(threads));
        assert_eq!(
            format!("{:?}", r1.per_family),
            format!("{:?}", rn.per_family),
            "clean run must render byte-identically at threads = {threads}"
        );
        assert_eq!(r1.probe_stats, rn.probe_stats);
    }
    let narrow = run_adversarial_cfg(&scenario, &base(1).with_window(1));
    assert_eq!(
        format!("{:?}", r1.per_family),
        format!("{:?}", narrow.per_family),
        "window = 1 must match the default window"
    );
    for (label, t) in &r1.per_family {
        assert_eq!(
            t.queries,
            t.completed + t.budget_exceeded + t.lost,
            "{label}: accounting invariant"
        );
        assert_eq!(t.lost, 0, "{label}: clean network loses nothing");
    }

    // Flow-keyed lossy profile: still byte-identical across thread
    // counts, with lost queries accounted but never classified.
    let lossy = |threads: usize| {
        DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED).with_profile(flow_keyed_lossy())
    };
    let l1 = run_adversarial_cfg(&scenario, &lossy(1));
    let l4 = run_adversarial_cfg(&scenario, &lossy(4));
    assert_eq!(
        format!("{:?}", l1.per_family),
        format!("{:?}", l4.per_family),
        "lossy run must render byte-identically at threads = 1 and 4"
    );
    assert_eq!(l1.probe_stats, l4.probe_stats);
    assert!(l1.probe_stats.is_consistent());
    for (label, t) in &l1.per_family {
        assert_eq!(
            t.queries,
            t.completed + t.budget_exceeded + t.lost,
            "{label}: lossy accounting invariant"
        );
    }
}

#[test]
fn chain_study_is_identical_across_thread_counts_and_windows() {
    // The chain-of-trust study gives every TLD its own lab and walks it
    // with a steppable recursion machine, so tallies are shard- and
    // window-invariant by construction — pin it anyway, clean and
    // lossy, with the per-bucket accounting invariant along.
    use nsec3_core::hierarchy::{run_chain_study_cfg, ChainStudy};
    use popgen::hierarchy::HierarchyModel;
    let study = ChainStudy::new(HierarchyModel::intact(16, 2, 7).with_faults(3));
    let base = |threads| DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED);
    let r1 = run_chain_study_cfg(&study, &base(1));
    for threads in [2usize, 4, 8] {
        let rn = run_chain_study_cfg(&study, &base(threads));
        assert_eq!(
            format!("{:?}", r1.per_scenario),
            format!("{:?}", rn.per_scenario),
            "clean chain study must render byte-identically at threads = {threads}"
        );
        assert_eq!(r1.probe_stats, rn.probe_stats);
    }
    let narrow = run_chain_study_cfg(&study, &base(4).with_window(1));
    assert_eq!(
        format!("{:?}", r1.per_scenario),
        format!("{:?}", narrow.per_scenario),
        "window = 1 must match the default window"
    );
    let total = r1.total();
    assert!(total.secure > 0, "signed intact chains authenticate");
    assert!(total.delegation_hits > 0, "warm leaf walks hit cached cuts");
    assert_eq!(total.lost, 0, "clean network loses nothing");
    for (key, t) in &r1.per_scenario {
        assert_eq!(
            t.queries,
            t.secure + t.insecure + t.bogus + t.bogus_anchor + t.lame + t.lost + t.budget_exceeded,
            "{key}: accounting invariant"
        );
    }

    // Flow-keyed lossy profile: still byte-identical, losses accounted
    // but never classified into a verdict bucket.
    let lossy = |threads: usize| base(threads).with_profile(flow_keyed_lossy());
    let l1 = run_chain_study_cfg(&study, &lossy(1));
    let l4 = run_chain_study_cfg(&study, &lossy(4));
    assert_eq!(
        format!("{:?}", l1.per_scenario),
        format!("{:?}", l4.per_scenario),
        "lossy chain study must render byte-identically at threads = 1 and 4"
    );
    assert_eq!(l1.probe_stats, l4.probe_stats);
    assert!(l1.probe_stats.is_consistent());
    for (key, t) in &l1.per_scenario {
        assert_eq!(
            t.queries,
            t.secure + t.insecure + t.bogus + t.bogus_anchor + t.lame + t.lost + t.budget_exceeded,
            "{key}: lossy accounting invariant"
        );
    }
}
