//! End-to-end determinism: the whole pipeline is a pure function of its
//! seed. Running the domain census and the resolver study twice with the
//! same seed must produce byte-identical reports; a different seed must
//! produce a different population.
//!
//! This is the contract that makes every experiment in this repository
//! reproducible from its command line alone (see "Seed threading" in the
//! README).

use analysis::domains::DomainStats;
use analysis::ResolverStats;
use nsec3_core::experiments::{run_domain_census, run_resolver_study};
use nsec3_core::testbed::build_testbed;
use popgen::{generate_domains, generate_fleet, Scale};

const NOW: u32 = 1_710_000_000;

/// A census rendered to one comparable string: every record plus the
/// aggregate stats.
fn census_report(seed: u64) -> String {
    let specs = generate_domains(Scale(1.0 / 50_000.0), seed);
    let records = run_domain_census(&specs, NOW, 64);
    let stats = DomainStats::compute(&records);
    format!("{records:?}\n{stats:?}")
}

/// A resolver study rendered to one comparable string.
fn resolver_report(seed: u64) -> String {
    let fleet = generate_fleet(Scale(1.0 / 20_000.0), seed);
    let mut tb = build_testbed(NOW);
    let study = run_resolver_study(&mut tb, &fleet);
    let all = study.all();
    let stats = ResolverStats::compute(&all);
    format!("{all:?}\n{stats:?}")
}

#[test]
fn domain_census_is_deterministic_per_seed() {
    let a = census_report(7);
    let b = census_report(7);
    assert_eq!(a, b, "same seed must reproduce the census byte for byte");

    let c = census_report(8);
    assert_ne!(a, c, "different seeds must sample different populations");
}

#[test]
fn resolver_study_is_deterministic_per_seed() {
    let a = resolver_report(7);
    let b = resolver_report(7);
    assert_eq!(a, b, "same seed must reproduce the study byte for byte");

    let c = resolver_report(8);
    assert_ne!(a, c, "different seeds must sample different fleets");
}
