//! The measurement pipelines under adverse network conditions — loss,
//! duplication, corruption — in the smoltcp fault-injection spirit. The
//! methodology must degrade gracefully, not misclassify.

use analysis::DomainStats;
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_resolver::{LabBuilder, Rfc9276Policy};
use dns_scanner::census::Census;
use dns_scanner::prober::{ProbePlan, Prober};
use dns_wire::name::name;
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::Denial;
use netsim::{FaultConfig, RetryPolicy};
use std::rc::Rc;

const NOW: u32 = 1_710_000_000;

#[test]
fn census_survives_packet_loss_via_retries() {
    let mut lab = LabBuilder::new(NOW)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .simple_zone(
            &name("lossy.com."),
            Denial::Nsec3 {
                params: Nsec3Params::new(7, vec![0xaa; 4]),
                opt_out: false,
            },
        )
        .build();
    lab.net.set_faults(FaultConfig {
        drop_chance: 0.15,
        ..Default::default()
    });
    let raddr = lab.alloc.v4();
    let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.retry = RetryPolicy::fixed(6);
    let resolver = Resolver::new(cfg);
    let census = Census::new(&lab.net, &resolver, "lossy");
    // Scan the same domain repeatedly: with 15 % loss and 6 retries, the
    // parameters must come back identical every time they come back.
    let mut seen = Vec::new();
    for _ in 0..10 {
        let obs = census.observe(&name("lossy.com."));
        if let Some(p) = obs.class.nsec3_enabled() {
            seen.push((p.iterations, p.salt.len()));
        }
    }
    assert!(seen.len() >= 7, "most scans succeed: {}/10", seen.len());
    assert!(
        seen.iter().all(|&p| p == (7, 4)),
        "never a wrong parameter: {seen:?}"
    );
}

#[test]
fn prober_classification_stable_under_duplication() {
    let mut b = LabBuilder::new(NOW)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .simple_zone(&name("tb.com."), Denial::nsec3_rfc9276())
        .simple_zone(&name("valid.tb.com."), Denial::nsec3_rfc9276());
    let mut expired = dns_resolver::ZoneSpec::new(
        dns_resolver::lab::simple_zone_contents(&name("expired.tb.com.")),
        Denial::nsec3_rfc9276(),
    );
    expired.expired = true;
    b = b.zone(expired);
    for n in [100u16, 150, 151, 200] {
        b = b.simple_zone(
            &name(&format!("it-{n}.tb.com.")),
            Denial::Nsec3 {
                params: Nsec3Params::new(n, vec![]),
                opt_out: false,
            },
        );
    }
    let mut lab = b.build();
    lab.net.set_faults(FaultConfig {
        duplicate_chance: 0.3,
        ..Default::default()
    });
    let raddr = lab.alloc.v4();
    let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.policy = Rfc9276Policy::insecure_above(150);
    lab.net.register(raddr, Rc::new(Resolver::new(cfg)));
    let plan = ProbePlan {
        valid: name("www.valid.tb.com."),
        expired: name("www.expired.tb.com."),
        it_zones: [100u16, 150, 151, 200]
            .iter()
            .map(|n| (*n, name(&format!("it-{n}.tb.com."))))
            .collect(),
        it_2501_expired: None,
    };
    let src = lab.alloc.v4();
    let c = Prober::new(&lab.net, src, &plan).classify(raddr);
    assert!(!c.unreachable);
    assert!(c.is_validator);
    assert_eq!(
        c.insecure_limit,
        Some(150),
        "duplication must not shift the threshold"
    );
    assert!(!c.flaky);
}

#[test]
fn corruption_leads_to_retries_not_misclassification() {
    // Corrupted responses fail to decode or fail id checks; the resolver
    // retries. A census over a corrupting network either gets the right
    // answer or none.
    let mut lab = LabBuilder::new(NOW)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .simple_zone(
            &name("noisy.com."),
            Denial::Nsec3 {
                params: Nsec3Params::new(3, vec![]),
                opt_out: false,
            },
        )
        .build();
    lab.net.set_faults(FaultConfig {
        corrupt_chance: 0.10,
        ..Default::default()
    });
    let raddr = lab.alloc.v4();
    let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.retry = RetryPolicy::fixed(6);
    // Corruption can flip signature bits: validation fails (SERVFAIL), but
    // it must never report *different parameters*.
    let resolver = Resolver::new(cfg);
    let census = Census::new(&lab.net, &resolver, "noisy");
    let mut params_seen = std::collections::HashSet::new();
    for _ in 0..10 {
        let obs = census.observe(&name("noisy.com."));
        if let Some(p) = obs.class.nsec3_enabled() {
            params_seen.insert((p.iterations, p.salt.len()));
        }
    }
    assert!(
        params_seen.len() <= 1,
        "no wrong parameters: {params_seen:?}"
    );
    // Statistics computed over whatever was measured are still well formed.
    let stats = DomainStats::compute(&[]);
    assert_eq!(stats.total, 0);
}
