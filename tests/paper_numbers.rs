//! The paper's headline numbers, reproduced at test scale with sampling
//! tolerances. The bench harnesses print the same comparisons at larger
//! scales; this test keeps the calibration honest in CI.

use analysis::{DomainStats, ResolverStats};
use nsec3_core::experiments::{records_from_specs, run_resolver_study};
use popgen::{generate_domains, generate_fleet, generate_tlds, Scale};

const NOW: u32 = 1_710_000_000;

#[test]
fn section_5_1_domain_marginals() {
    let specs = generate_domains(Scale(1.0 / 2_000.0), 42); // 151K domains
    let stats = DomainStats::compute(&records_from_specs(&specs));
    let close = |measured: f64, paper: f64, tol: f64, what: &str| {
        assert!(
            (measured - paper).abs() <= tol,
            "{what}: measured {measured:.2}, paper {paper}, tol {tol}"
        );
    };
    close(stats.dnssec_pct(), 8.8, 0.7, "DNSSEC share");
    close(stats.nsec3_of_dnssec_pct(), 58.9, 2.0, "NSEC3 of DNSSEC");
    close(
        stats.non_compliant_pct(),
        87.8,
        2.0,
        "headline non-compliance",
    );
    close(stats.zero_iteration_pct(), 12.2, 2.0, "zero iterations");
    close(stats.no_salt_pct(), 8.6, 2.0, "no salt");
    close(stats.opt_out_pct(), 6.4, 1.5, "opt-out");
    // Long-tail absolutes.
    assert_eq!(stats.iterations_cdf.count_over(150), 43);
    assert_eq!(stats.iterations_cdf.max(), Some(500));
    assert_eq!(stats.salt_cdf.count_over(45), 170);
    assert_eq!(stats.salt_cdf.max(), Some(160));
}

#[test]
fn section_5_1_tld_exact_numbers() {
    use popgen::domains::DnssecKind;
    let tlds = generate_tlds();
    assert_eq!(tlds.len(), 1449);
    let nsec3: Vec<_> = tlds
        .iter()
        .filter_map(|t| match t.dnssec {
            DnssecKind::Nsec3 { iterations, .. } => Some(iterations),
            _ => None,
        })
        .collect();
    assert_eq!(nsec3.len(), 1302);
    assert_eq!(nsec3.iter().filter(|&&i| i == 0).count(), 688);
    assert_eq!(nsec3.iter().filter(|&&i| i == 100).count(), 447);
    // 47.2 % of NSEC3 TLDs non-compliant.
    let pct = (1302 - 688) as f64 / 1302.0 * 100.0;
    assert!((pct - 47.2).abs() < 0.3, "{pct}");
}

#[test]
fn section_5_2_resolver_shares_end_to_end() {
    // Full pipeline at a scale that still finishes quickly: ~1 K
    // resolvers, ~115 validators, each probed with 50 testbed queries.
    let fleet = generate_fleet(Scale(1.0 / 2_000.0), 7);
    let study = run_resolver_study(NOW, &fleet);
    let stats = ResolverStats::compute(&study.all());
    assert!(
        stats.validators >= 40,
        "enough validators: {}",
        stats.validators
    );

    let close = |measured: f64, paper: f64, tol: f64, what: &str| {
        assert!(
            (measured - paper).abs() <= tol,
            "{what}: measured {measured:.2}, paper {paper}, tol {tol}"
        );
    };
    // Generous tolerances: N is small and the tiny behavioural groups are
    // inflated by the min-1 survival rule.
    close(stats.item6_pct(), 59.9, 12.0, "item 6 share");
    close(stats.item8_pct(), 18.4, 10.0, "item 8 share");
    close(stats.limiting_pct(), 78.3, 12.0, "limiting share");
    // Threshold ordering (who wins): 150 and 100 dominate 50.
    let at150 = stats.insecure_limits.get(&150).copied().unwrap_or(0);
    let at100 = stats.insecure_limits.get(&100).copied().unwrap_or(0);
    let at50 = stats.insecure_limits.get(&50).copied().unwrap_or(0);
    assert!(at100 > at50, "100 ({at100}) > 50 ({at50})");
    assert!(at150 > at50, "150 ({at150}) > 50 ({at50})");
    // SERVFAIL mostly starts at 151.
    let sf151 = stats.servfail_starts.get(&151).copied().unwrap_or(0);
    let sf_other: u64 = stats
        .servfail_starts
        .iter()
        .filter(|(k, _)| **k != 151)
        .map(|(_, v)| *v)
        .sum();
    assert!(sf151 >= sf_other, "151 dominates: {sf151} vs {sf_other}");
    // The special groups exist.
    assert!(stats.servfail_starts.contains_key(&1), "copiers present");
    assert!(
        stats.servfail_starts.contains_key(&101),
        "Technitium present"
    );
    assert!(stats.ra_missing >= 1, "copier RA fingerprint observed");
}

#[test]
fn figure_2_tranco_uniformity() {
    use popgen::domains::DnssecKind;
    let list = popgen::generate_tranco(Scale(0.2), 11);
    let nsec3: Vec<(u64, u16)> = list
        .iter()
        .filter_map(|e| match e.dnssec {
            DnssecKind::Nsec3 { iterations, .. } => Some((e.rank, iterations)),
            _ => None,
        })
        .collect();
    // Compliance share in each third of the rank space stays flat.
    let third = list.len() as u64 / 3;
    let share = |lo: u64, hi: u64| {
        let in_range: Vec<_> = nsec3.iter().filter(|(r, _)| *r >= lo && *r < hi).collect();
        let zero = in_range.iter().filter(|(_, it)| *it == 0).count() as f64;
        zero / in_range.len().max(1) as f64
    };
    let a = share(0, third);
    let b = share(third, 2 * third);
    let c = share(2 * third, 3 * third);
    assert!(
        (a - b).abs() < 0.06 && (b - c).abs() < 0.06,
        "{a:.3} {b:.3} {c:.3}"
    );
}
