//! Cross-crate integration: the complete §4.2 pipeline — testbed, mixed
//! fleet, probing, classification, aggregation — on one small network.

use analysis::{figure3_series, ResolverStats};
use nsec3_core::experiments::run_resolver_study;
use nsec3_core::testbed::build_testbed;
use popgen::resolvers::{Access, Behavior, Family, ResolverSpec};

const NOW: u32 = 1_710_000_000;

fn spec(idx: u64, behavior: Behavior) -> ResolverSpec {
    ResolverSpec {
        idx,
        family: Family::V4,
        access: Access::Open,
        behavior,
        ede_visible: true,
    }
}

#[test]
fn mixed_fleet_classifies_exactly() {
    let fleet = vec![
        spec(0, Behavior::ValidatorUnlimited),
        spec(
            1,
            Behavior::InsecureAt {
                limit: 150,
                google_style: false,
            },
        ),
        spec(
            2,
            Behavior::InsecureAt {
                limit: 100,
                google_style: true,
            },
        ),
        spec(
            3,
            Behavior::InsecureAt {
                limit: 50,
                google_style: false,
            },
        ),
        spec(
            4,
            Behavior::ServfailFrom {
                first: 151,
                technitium: false,
            },
        ),
        spec(
            5,
            Behavior::ServfailFrom {
                first: 101,
                technitium: true,
            },
        ),
        spec(6, Behavior::QueryCopier),
        spec(7, Behavior::Item7Violator { limit: 150 }),
        spec(8, Behavior::NonValidator),
    ];
    let study = run_resolver_study(NOW, &fleet);
    let all = study.all();
    assert_eq!(all.len(), 9, "every resolver answered the prober");

    let stats = ResolverStats::compute(&all);
    assert_eq!(stats.validators, 8);
    // Items 6: the three InsecureAt + the Item7Violator.
    assert_eq!(stats.item6, 4, "{:?}", stats.insecure_limits);
    // Item 8: two ServfailFrom + the copier.
    assert_eq!(stats.item8, 3, "{:?}", stats.servfail_starts);
    assert_eq!(stats.limiting, 7);
    // Exact thresholds recovered from behaviour alone.
    assert_eq!(stats.insecure_limits.get(&150), Some(&2)); // incl. violator
    assert_eq!(stats.insecure_limits.get(&100), Some(&1));
    assert_eq!(stats.insecure_limits.get(&50), Some(&1));
    assert_eq!(stats.servfail_starts.get(&151), Some(&1));
    assert_eq!(stats.servfail_starts.get(&101), Some(&1));
    assert_eq!(stats.servfail_starts.get(&1), Some(&1));
    // The item 7 violator is caught by the it-2501-expired probe.
    assert_eq!(stats.item7_violations, 1);
    assert!(stats.item7_tested >= 4);
    // The copier's RA fingerprint.
    assert_eq!(stats.ra_missing, 1);
    // EDE 27 present for the non-Google limiting resolvers with visible
    // EDE (BIND-like ×2 incl. violator, 50-limit, both SERVFAILers — the
    // copier suppresses EDE by construction).
    assert!(stats.ede27 >= 4, "{}", stats.ede27);
}

#[test]
fn figure3_curves_have_paper_shape() {
    // A fleet shaped like §5.2: mostly 150-limits, some Google-100s, a
    // SERVFAIL-at-151 block.
    let mut fleet = Vec::new();
    for i in 0..6 {
        fleet.push(spec(
            i,
            Behavior::InsecureAt {
                limit: 150,
                google_style: false,
            },
        ));
    }
    for i in 6..10 {
        fleet.push(spec(
            i,
            Behavior::InsecureAt {
                limit: 100,
                google_style: true,
            },
        ));
    }
    for i in 10..13 {
        fleet.push(spec(
            i,
            Behavior::ServfailFrom {
                first: 151,
                technitium: false,
            },
        ));
    }
    let study = run_resolver_study(NOW, &fleet);
    let series = figure3_series(&study.all());
    let at = |n: u16| series.iter().find(|p| p.n == n).copied().unwrap();

    // All validators secure at it-1.
    assert_eq!(at(1).ad_nxdomain, 100.0);
    assert_eq!(at(1).servfail, 0.0);
    // Google block drops AD after 100.
    assert!(at(101).ad_nxdomain < at(100).ad_nxdomain);
    // Everyone else drops after 150; SERVFAIL block appears at 151.
    assert!(at(151).ad_nxdomain < at(101).ad_nxdomain);
    assert_eq!(at(150).servfail, 0.0);
    assert!((at(151).servfail - 3.0 / 13.0 * 100.0).abs() < 0.1);
    // NXDOMAIN share shrinks exactly by the SERVFAIL share.
    assert!((at(151).nxdomain + at(151).servfail - 100.0).abs() < 0.1);
    // And the state persists to 500.
    assert_eq!(at(500).ad_nxdomain, 0.0);
    assert!((at(500).servfail - at(151).servfail).abs() < 0.1);
}

#[test]
fn closed_resolvers_only_reachable_via_their_probes() {
    let mut tb = build_testbed(NOW);
    let fleet = vec![ResolverSpec {
        idx: 0,
        family: Family::V4,
        access: Access::Closed,
        behavior: Behavior::InsecureAt {
            limit: 150,
            google_style: false,
        },
        ede_visible: true,
    }];
    let deployed = nsec3_core::deploy_fleet(&mut tb.lab, &fleet);
    let probe = deployed[0]
        .probe
        .clone()
        .expect("closed resolver has a probe");
    // Direct prober from a random address: silence.
    let outsider = tb.lab.alloc.v4();
    let direct = dns_scanner::prober::Prober::new(&tb.lab.net, outsider, &tb.plan)
        .classify(deployed[0].addr);
    assert!(direct.unreachable, "closed resolver is silent from outside");
    // Via the Atlas probe: full classification, EDE hidden.
    let c = dns_scanner::classify_via_probe(&tb.lab.net, &probe, &tb.plan);
    assert!(!c.unreachable);
    assert!(c.is_validator);
    assert_eq!(c.insecure_limit, Some(150));
    assert!(!c.ede27_on_limit, "Atlas supplies no EDE data");
}
