//! Every vendor profile deployed against the real testbed must classify
//! back to exactly the thresholds the paper reports for that vendor.

use std::rc::Rc;

use dns_resolver::profiles::VendorProfile;
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_scanner::prober::Prober;
use nsec3_core::testbed::build_testbed;

#[test]
fn profiles_round_trip_through_the_testbed() {
    let mut tb = build_testbed(1_710_000_000);
    let scanner = tb.lab.alloc.v4();
    // (profile, expected insecure-limit, expected servfail-start, EDE 27)
    let expectations = [
        (VendorProfile::Bind9_2021, Some(150), None, true),
        (VendorProfile::Bind9_2023, Some(50), None, true),
        (VendorProfile::Unbound, Some(150), None, true),
        (VendorProfile::KnotResolver2021, Some(150), None, true),
        (VendorProfile::KnotResolver2023, Some(50), None, true),
        (VendorProfile::PowerDnsRecursor2021, Some(150), None, true),
        (VendorProfile::PowerDnsRecursor2023, Some(50), None, true),
        (VendorProfile::GooglePublicDns, Some(100), None, false),
        (VendorProfile::Cloudflare, Some(150), Some(151), true),
        (VendorProfile::OpenDns, Some(150), Some(151), false),
        (VendorProfile::Quad9, Some(150), None, false),
        (VendorProfile::Technitium, Some(100), Some(101), true),
        (VendorProfile::LegacyUnlimited, None, None, false),
    ];
    for (profile, insecure, servfail, ede27) in expectations {
        let addr = tb.lab.alloc.v4();
        let mut cfg =
            ResolverConfig::validating(addr, tb.lab.root_hints.clone(), tb.lab.anchor.clone());
        cfg.now = tb.lab.now;
        cfg.policy = profile.policy();
        tb.lab.net.register(addr, Rc::new(Resolver::new(cfg)));
        let c = Prober::new(&tb.lab.net, scanner, &tb.plan).classify(addr);
        assert!(!c.unreachable, "{}", profile.name());
        assert!(c.is_validator, "{}", profile.name());
        assert_eq!(
            c.insecure_limit,
            insecure,
            "{} insecure limit",
            profile.name()
        );
        assert_eq!(
            c.servfail_start,
            servfail,
            "{} servfail start",
            profile.name()
        );
        assert_eq!(c.ede27_on_limit, ede27, "{} EDE 27", profile.name());
        assert!(!c.flaky, "{} must be stable", profile.name());
        // None of the stock profiles violate item 7.
        assert_ne!(c.item7_violation, Some(true), "{}", profile.name());
    }
}

#[test]
fn google_threshold_is_exactly_100_101() {
    let mut tb = build_testbed(1_710_000_000);
    let scanner = tb.lab.alloc.v4();
    let addr = tb.lab.alloc.v4();
    let mut cfg =
        ResolverConfig::validating(addr, tb.lab.root_hints.clone(), tb.lab.anchor.clone());
    cfg.now = tb.lab.now;
    cfg.policy = VendorProfile::GooglePublicDns.policy();
    tb.lab.net.register(addr, Rc::new(Resolver::new(cfg)));
    let c = Prober::new(&tb.lab.net, scanner, &tb.plan).classify(addr);
    // "38.3K open IPv4 resolvers returned NXDOMAIN with the AD bit set
    // for 100 iterations and cleared for 101" — the successor zones in
    // the testbed pin this down exactly.
    let at = |n: u16| {
        c.responses
            .iter()
            .find(|(x, _)| *x == n)
            .map(|(_, o)| o.clone())
            .unwrap()
    };
    assert!(at(100).ad);
    assert!(!at(101).ad);
    assert_eq!(at(101).rcode, dns_wire::rrtype::Rcode::NxDomain);
}
