//! Equivalence pins for the zero-copy wire refactor: every experiment
//! driver's rendered output is hashed and compared against constants
//! captured from the pre-refactor message path (owned `Message::decode`,
//! per-call `Vec` encodes, copying `frame_tcp`). The borrowed
//! `MessageView` path, pooled encode buffers, and the authoritative
//! answer-template cache must reproduce these bytes exactly — on clean
//! networks and under a fault profile that drops *and corrupts*
//! datagrams (corruption exercises the parse-acceptance boundary, which
//! the view path must not move).
//!
//! If a deliberate behaviour change ever invalidates these constants,
//! re-capture them by running this test with `--nocapture` and copying
//! the printed values — but do that only when the change is intended.

use analysis::domains::DomainStats;
use analysis::ResolverStats;
use dns_scanner::retry::BreakerConfig;
use netsim::{Episode, EpisodeKind, FaultConfig, FaultSchedule, RetryPolicy, Scope};
use nsec3_core::experiments::{
    run_domain_census_cfg, run_domain_census_stream, run_resolver_study_cfg, run_tld_census_cfg,
    run_unreachability_cfg, DriverConfig, ScanProfile, DEFAULT_LAB_SEED,
};
use popgen::domains::DomainSpec;
use popgen::{generate_domains, generate_fleet, generate_tlds, Scale};

const NOW: u32 = 1_710_000_000;

/// A two-thread config carrying `profile` — the shape every pin uses.
fn cfg_with(profile: ScanProfile) -> DriverConfig {
    DriverConfig::clean(NOW, 2, DEFAULT_LAB_SEED).with_profile(profile)
}

/// FNV-1a over the rendered report: stable, dependency-free, and enough
/// to pin byte identity.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn census_specs() -> Vec<DomainSpec> {
    generate_domains(Scale(1.0 / 500_000.0), 42)
}

/// A profile that loses *and corrupts* datagrams: corrupted queries and
/// responses probe the decoder-acceptance boundary on both ends.
fn corrupting_profile() -> ScanProfile {
    ScanProfile {
        schedule: FaultSchedule {
            base: FaultConfig {
                drop_chance: 0.02,
                corrupt_chance: 0.10,
                duplicate_chance: 0.05,
                size_limit: None,
            },
            seed: 0x5155,
            episodes: vec![
                Episode::always(EpisodeKind::Flap {
                    scope: Scope::All,
                    drop_chance: 0.05,
                }),
                Episode::always(EpisodeKind::LatencySpike {
                    scope: Scope::All,
                    extra_micros: 1_500,
                    jitter_micros: 700,
                }),
            ],
        },
        retry: RetryPolicy::adaptive(0x9276),
        breaker: BreakerConfig::default(),
    }
}

#[test]
fn clean_domain_census_output_is_pinned() {
    let specs = census_specs();
    let (records, stats) = run_domain_census_cfg(&specs, 64, &cfg_with(ScanProfile::clean()));
    let report = format!(
        "{records:?}\n{:?}\n{stats:?}",
        DomainStats::compute(&records)
    );
    let hash = fnv1a(&report);
    eprintln!(
        "clean_domain_census hash: {hash:#018x} over {} bytes",
        report.len()
    );
    assert_eq!(hash, 0x3af2_d772_794d_3d5c, "clean census output moved");
}

/// The streaming census never materialises specs or records, yet its
/// merged statistics must equal — byte for byte, through `Debug` — the
/// statistics computed from the batched path's record list. Since the
/// batched output is pinned above, equality transfers the pin to the
/// streaming pipeline.
#[test]
fn streaming_census_matches_pinned_batch_path() {
    let scale = Scale(1.0 / 500_000.0);
    let cfg = cfg_with(ScanProfile::clean());
    let (records, stats) = run_domain_census_cfg(&census_specs(), 64, &cfg);
    let report = run_domain_census_stream(scale, 42, 64, &cfg);
    assert_eq!(
        format!("{:?}", report.stats),
        format!("{:?}", DomainStats::compute(&records)),
        "streaming stats diverged from the pinned batch census"
    );
    assert_eq!(
        format!("{:?}", report.probe_stats),
        format!("{stats:?}"),
        "streaming probe accounting diverged from the pinned batch census"
    );
    assert!(report.in_flight_high_water >= 1);
}

/// Same transfer under the corrupting fault profile, at `batch_size = 1`
/// (the shard-invariant geometry the faulty pin uses): losses, retries,
/// and breaker skips must land identically whether records are collected
/// or folded straight into the streaming tally.
#[test]
fn streaming_census_matches_batch_path_under_faults() {
    let scale = Scale(1.0 / 500_000.0);
    let cfg = cfg_with(corrupting_profile());
    let (records, stats) = run_domain_census_cfg(&census_specs(), 1, &cfg);
    let report = run_domain_census_stream(scale, 42, 1, &cfg);
    assert_eq!(
        format!("{:?}", report.stats),
        format!("{:?}", DomainStats::compute(&records)),
        "faulty streaming stats diverged from the batch census"
    );
    assert_eq!(
        format!("{:?}", report.probe_stats),
        format!("{stats:?}"),
        "faulty streaming probe accounting diverged from the batch census"
    );
}

#[test]
fn faulty_domain_census_output_is_pinned() {
    let specs: Vec<DomainSpec> = census_specs().into_iter().take(40).collect();
    let profile = corrupting_profile();
    let (records, stats) = run_domain_census_cfg(&specs, 1, &cfg_with(profile));
    let report = format!("{records:?}\n{stats:?}");
    let hash = fnv1a(&report);
    eprintln!(
        "faulty_domain_census hash: {hash:#018x} over {} bytes",
        report.len()
    );
    assert_eq!(hash, 0x203a_77e3_0069_95b4, "faulty census output moved");
}

#[test]
fn resolver_study_output_is_pinned() {
    let fleet = generate_fleet(Scale(1.0 / 100_000.0), 42);
    let study = run_resolver_study_cfg(&fleet, &cfg_with(ScanProfile::clean()));
    let all = study.all();
    let report = format!(
        "{all:?}\n{:?}\n{:?}",
        ResolverStats::compute(&all),
        study.stats
    );
    let hash = fnv1a(&report);
    eprintln!(
        "resolver_study hash: {hash:#018x} over {} bytes",
        report.len()
    );
    assert_eq!(hash, 0x9f6a_1260_c582_fa6f, "resolver study output moved");
}

#[test]
fn faulty_resolver_study_output_is_pinned() {
    let fleet = generate_fleet(Scale(1.0 / 100_000.0), 42);
    let profile = corrupting_profile();
    let study = run_resolver_study_cfg(&fleet, &cfg_with(profile));
    let all = study.all();
    let report = format!("{all:?}\n{:?}", study.stats);
    let hash = fnv1a(&report);
    eprintln!(
        "faulty_resolver_study hash: {hash:#018x} over {} bytes",
        report.len()
    );
    assert_eq!(
        hash, 0x8d71_8fde_cbdd_92fb,
        "faulty resolver study output moved"
    );
}

#[test]
fn tld_census_output_is_pinned() {
    let tlds: Vec<_> = generate_tlds().into_iter().step_by(29).collect();
    let (obs, stats) = run_tld_census_cfg(&tlds, 1.0 / 100_000.0, &cfg_with(ScanProfile::clean()));
    let report = format!("{obs:?}\n{stats:?}");
    let hash = fnv1a(&report);
    eprintln!("tld_census hash: {hash:#018x} over {} bytes", report.len());
    assert_eq!(hash, 0x5fab_0506_fb3e_7e9d, "TLD census output moved");
}

#[test]
fn unreachability_output_is_pinned() {
    let specs = census_specs();
    let (result, stats) = run_unreachability_cfg(&specs, 32, &cfg_with(ScanProfile::clean()));
    let report = format!("{result:?}\n{stats:?}");
    let hash = fnv1a(&report);
    eprintln!(
        "unreachability hash: {hash:#018x} over {} bytes",
        report.len()
    );
    assert_eq!(hash, 0x3515_4b9e_cac9_0208, "unreachability output moved");
}

#[test]
fn stepped_recursion_reproduces_blocking_resolution() {
    // The recursion-machine refactor's contract: driving a walk one
    // level at a time through `begin_recursion`/`step` produces the
    // same outcomes — rcode, AD, answers, cost — as the blocking
    // `resolve` path, including when the hierarchy collapses to a
    // single zone (the old one-hop shape). Two identically seeded
    // hierarchies, one walked each way.
    use dns_resolver::resolver::{RecursionStep, Resolver, ResolverConfig};
    use dns_wire::name::Name;
    use dns_wire::rrtype::RrType;
    use nsec3_core::hierarchy::build_hierarchy;
    use popgen::hierarchy::HierarchyModel;

    for (tld_count, leaves) in [(1usize, 1usize), (4, 2)] {
        let model = HierarchyModel::intact(tld_count, leaves, 7);
        let probes: Vec<Name> = {
            let h = build_hierarchy(&model, NOW, DEFAULT_LAB_SEED);
            let mut names = Vec::new();
            for tld in &h.tlds {
                for leaf in &tld.leaves {
                    names.push(Name::parse(&format!("www.{}", leaf.name)).unwrap());
                    names.push(Name::parse(&format!("nope.{}", leaf.name)).unwrap());
                }
            }
            names
        };
        let walk = |stepped: bool| -> String {
            let h = build_hierarchy(&model, NOW, DEFAULT_LAB_SEED);
            let mut lab = h.lab;
            let raddr = lab.alloc.v4();
            let mut rcfg =
                ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
            rcfg.now = lab.now;
            rcfg.delegation_cache = true;
            let resolver = Resolver::new(rcfg);
            let mut rendered = String::new();
            for probe in &probes {
                let out = if stepped {
                    let mut machine = resolver.begin_recursion(&lab.net, probe, RrType::A);
                    loop {
                        if let RecursionStep::Done(out) = machine.step(&lab.net) {
                            break out;
                        }
                    }
                } else {
                    resolver.resolve(&lab.net, probe, RrType::A)
                };
                rendered.push_str(&format!("{probe} {out:?}\n"));
            }
            rendered
        };
        let blocking = walk(false);
        let stepped = walk(true);
        assert_eq!(
            fnv1a(&blocking),
            fnv1a(&stepped),
            "tld_count = {tld_count}: stepped walk diverged from blocking walk"
        );
        assert!(blocking.contains("rcode: NoError"));
    }
}
