//! Shared plumbing for the experiment harnesses (`src/bin/*.rs`): CLI
//! parsing, the canonical experiment timestamp, and output helpers.
//!
//! Every harness regenerates one table or figure of the paper and prints
//! a paper-vs-measured comparison; see DESIGN.md §4 for the index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use popgen::Scale;

pub mod microbench;

/// The fixed "now" all experiments sign and validate at (March 2024-ish,
/// matching the paper's measurement window; any fixed value works — the
/// simulation has no wall clock).
pub const EXPERIMENT_NOW: u32 = 1_710_000_000;

/// Parsed common CLI options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Population scale (default varies per harness).
    pub scale: Scale,
    /// RNG seed.
    pub seed: u64,
    /// End-to-end sample size for closed-loop validation runs.
    pub e2e_sample: usize,
    /// Worker threads for the sharded experiment drivers (default: the
    /// `HEROES_THREADS` environment variable, else 1). Output is
    /// byte-identical for every value.
    pub threads: usize,
}

impl Options {
    /// Parse `--scale 1/1000`, `--seed N`, `--e2e-sample N`,
    /// `--threads N` from argv.
    pub fn parse(default_scale: Scale) -> Options {
        let mut opts = Options {
            scale: default_scale,
            seed: 42,
            e2e_sample: 600,
            threads: sim_par::default_threads(),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    opts.scale = parse_scale(&args[i + 1]).unwrap_or(default_scale);
                    i += 2;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(42);
                    i += 2;
                }
                "--e2e-sample" if i + 1 < args.len() => {
                    opts.e2e_sample = args[i + 1].parse().unwrap_or(600);
                    i += 2;
                }
                "--threads" if i + 1 < args.len() => {
                    opts.threads = args[i + 1]
                        .parse::<usize>()
                        .map(|n| n.clamp(1, sim_par::MAX_THREADS))
                        .unwrap_or(opts.threads);
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale 1/N | --seed N | --e2e-sample N | --threads N (defaults: scale {}, seed 42, sample 600, threads from HEROES_THREADS else 1)",
                        fmt_scale(default_scale)
                    );
                    std::process::exit(0);
                }
                _ => i += 1,
            }
        }
        opts
    }
}

/// Parse `1/1000` or a plain float.
pub fn parse_scale(s: &str) -> Option<Scale> {
    if let Some((num, den)) = s.split_once('/') {
        let n: f64 = num.trim().parse().ok()?;
        let d: f64 = den.trim().parse().ok()?;
        if d > 0.0 {
            return Some(Scale(n / d));
        }
        return None;
    }
    s.trim().parse::<f64>().ok().map(Scale)
}

/// Format a scale as `1/N`.
pub fn fmt_scale(scale: Scale) -> String {
    if scale.0 >= 1.0 {
        "1/1".to_string()
    } else {
        format!("1/{}", (1.0 / scale.0).round() as u64)
    }
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Peak resident-set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux. The high-water mark is
/// monotonic for the life of the process, so harnesses that compare RSS
/// across sweep points must run each point in its own child process.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Write `contents` to `target/experiments/<name>` and report the path.
pub fn write_artifact(name: &str, contents: &str) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, contents).is_ok() {
            println!("  [wrote {}]", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("1/1000").unwrap().0, 0.001);
        assert_eq!(parse_scale("0.01").unwrap().0, 0.01);
        assert!(parse_scale("1/0").is_none());
        assert!(parse_scale("x").is_none());
    }

    #[test]
    fn scale_formatting() {
        assert_eq!(fmt_scale(Scale(0.001)), "1/1000");
        assert_eq!(fmt_scale(Scale(1.0)), "1/1");
    }
}
