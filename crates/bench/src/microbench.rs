//! A minimal benchmark runner — the in-workspace replacement for the
//! external `criterion` crate.
//!
//! Each `src/bin/bench_*.rs` harness builds a [`Suite`], registers timed
//! closures with [`Suite::bench`], and calls [`Suite::finish`], which
//! prints a human-readable table and writes machine-readable JSON to
//! `BENCH_<suite>.json` in the working directory so runs can be diffed
//! over time.
//!
//! Methodology per benchmark:
//!
//! 1. warm up for a fixed wall-clock budget,
//! 2. calibrate a batch size so one timed sample lasts ≈2 ms (amortising
//!    `Instant` overhead),
//! 3. time ~30 batches and report per-iteration min / median / p99 /
//!    mean nanoseconds.
//!
//! `MICROBENCH_SAMPLES` overrides the sample count (e.g. in CI smoke
//! runs).

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(60);
const TARGET_SAMPLE: Duration = Duration::from_millis(2);
const DEFAULT_SAMPLES: usize = 30;

/// Per-iteration summary statistics, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Fastest observed sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 99th-percentile sample (nearest-rank).
    pub p99_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
}

/// Summarize per-iteration timings (ns). Panics on an empty slice.
pub fn summarize(samples_ns: &[f64]) -> Stats {
    assert!(!samples_ns.is_empty(), "no samples");
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let rank = |q: f64| {
        let idx = (q * sorted.len() as f64).ceil() as usize;
        sorted[idx.clamp(1, sorted.len()) - 1]
    };
    Stats {
        min_ns: sorted[0],
        median_ns: rank(0.50),
        p99_ns: rank(0.99),
        mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
    }
}

/// One finished benchmark within a suite.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id, e.g. `"iterations/150"`.
    pub name: String,
    /// Iterations per timed sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Per-iteration statistics.
    pub stats: Stats,
}

/// A named collection of benchmarks sharing one JSON artifact.
pub struct Suite {
    name: String,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Start a suite; `name` becomes the `BENCH_<name>.json` artifact.
    pub fn new(name: &str) -> Suite {
        let samples = std::env::var("MICROBENCH_SAMPLES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SAMPLES)
            .max(1);
        Suite {
            name: name.to_string(),
            samples,
            results: Vec::new(),
        }
    }

    /// Time `f` (its return value is black-boxed so work is not
    /// optimised away) and record the result under `id`.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        // Warm up: caches, allocator, branch predictors.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            black_box(f());
        }

        // Calibrate the batch size from a single measured iteration.
        let once = Instant::now();
        black_box(f());
        let per_iter = once.elapsed().max(Duration::from_nanos(1));
        let batch = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000_000) as u64;

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        let stats = summarize(&samples_ns);
        println!(
            "  {:<44} min {:>12}  median {:>12}  p99 {:>12}",
            id,
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p99_ns),
        );
        self.results.push(BenchResult {
            name: id.to_string(),
            iters_per_sample: batch,
            samples: self.samples,
            stats,
        });
    }

    /// Render the suite as JSON (stable key order, no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"suite\": \"{}\",\n  \"results\": [\n",
            self.name
        ));
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters_per_sample\": {}, \"samples\": {}, \
                 \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"p99_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
                r.name,
                r.iters_per_sample,
                r.samples,
                r.stats.min_ns,
                r.stats.median_ns,
                r.stats.p99_ns,
                r.stats.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<suite>.json` and report the path. Consumes the
    /// suite; call last.
    pub fn finish(self) {
        let path = format!("BENCH_{}.json", self.name);
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("  [wrote {path}]"),
            Err(e) => eprintln!("  [failed to write {path}: {e}]"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(&samples);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 50.0);
        assert_eq!(s.p99_ns, 99.0);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summarize_single_sample() {
        let s = summarize(&[7.0]);
        assert_eq!(s.min_ns, 7.0);
        assert_eq!(s.median_ns, 7.0);
        assert_eq!(s.p99_ns, 7.0);
        assert_eq!(s.mean_ns, 7.0);
    }

    #[test]
    fn json_shape_is_machine_readable() {
        let mut suite = Suite {
            name: "unit".to_string(),
            samples: 3,
            results: vec![BenchResult {
                name: "op/1".to_string(),
                iters_per_sample: 10,
                samples: 3,
                stats: Stats {
                    min_ns: 1.0,
                    median_ns: 2.0,
                    p99_ns: 3.0,
                    mean_ns: 2.0,
                },
            }],
        };
        suite.results.push(suite.results[0].clone());
        let json = suite.to_json();
        assert!(json.contains("\"suite\": \"unit\""));
        assert!(json.contains("\"name\": \"op/1\""));
        assert!(json.contains("\"median_ns\": 2.0"));
        assert_eq!(json.matches("{\"name\"").count(), 2);
        // Trailing-comma discipline: exactly one separator for two rows.
        assert_eq!(
            json.matches("}},\n").count() + json.matches("},\n").count(),
            1
        );
    }

    #[test]
    fn bench_records_plausible_timings() {
        let mut suite = Suite {
            name: "selftest".to_string(),
            samples: 5,
            results: vec![],
        };
        let mut acc = 0u64;
        suite.bench("wrapping_sum", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        let r = &suite.results[0];
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
        assert!(r.stats.min_ns > 0.0);
        assert!(r.stats.min_ns <= r.stats.median_ns);
        assert!(r.stats.median_ns <= r.stats.p99_ns);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
