//! E3 — Figure 3: RCODE shares of validating resolvers per iteration
//! count, one panel per (openness, family) pool.
//!
//! Paper landmarks: NXDOMAIN+AD dominates at low N and collapses at the
//! vendor limits (50/100/150); SERVFAIL jumps at 151 and stays high;
//! plain NXDOMAIN takes over past each insecure limit.

use analysis::resolvers::Panel;
use analysis::{figure3_csv, figure3_series, figure3_svg, render_figure3_panel};
use heroes_bench::{fmt_scale, header, write_artifact, Options, EXPERIMENT_NOW};
use nsec3_core::experiments::{run_resolver_study_cfg, DriverConfig, DEFAULT_LAB_SEED};
use nsec3_core::testbed::paper_subdomain_count;
use popgen::{generate_fleet, Scale};

fn main() {
    let opts = Options::parse(Scale(1.0 / 200.0));
    println!(
        "Figure 3 at fleet scale {} (seed {})",
        fmt_scale(opts.scale),
        opts.seed
    );
    let fleet = generate_fleet(opts.scale, opts.seed);
    println!(
        "testbed: {} subdomains (+ it-2501-expired); fleet: {} resolvers",
        paper_subdomain_count(),
        fleet.len()
    );
    let t0 = std::time::Instant::now();
    let study = run_resolver_study_cfg(
        &fleet,
        &DriverConfig::clean(EXPERIMENT_NOW, opts.threads, DEFAULT_LAB_SEED),
    );
    println!("study completed in {:?}", t0.elapsed());

    for (panel, classifications) in &study.per_panel {
        let series = figure3_series(classifications);
        header(&format!(
            "{} — {} validators",
            panel.title(),
            classifications.iter().filter(|c| c.is_validator).count()
        ));
        // Print the landmark rows (the paper's x-axis interest points).
        let landmarks = [1u16, 25, 50, 51, 100, 101, 150, 151, 200, 300, 400, 500];
        let shown: Vec<_> = series
            .iter()
            .filter(|p| landmarks.contains(&p.n))
            .cloned()
            .collect();
        print!("{}", render_figure3_panel(panel.title(), &shown));
        let (csv_name, svg_name) = match panel {
            Panel::OpenV4 => ("fig3a_open_v4.csv", "fig3a_open_v4.svg"),
            Panel::OpenV6 => ("fig3b_open_v6.csv", "fig3b_open_v6.svg"),
            Panel::ClosedV4 => ("fig3c_closed_v4.csv", "fig3c_closed_v4.svg"),
            Panel::ClosedV6 => ("fig3d_closed_v6.csv", "fig3d_closed_v6.svg"),
        };
        write_artifact(csv_name, &figure3_csv(&series));
        write_artifact(svg_name, &figure3_svg(panel.title(), &series));
    }

    // Shape checks the paper's Figure 3 shows.
    header("Shape checks vs the paper");
    if let Some(open_v4) = study.per_panel.get(&Panel::OpenV4) {
        let series = figure3_series(open_v4);
        let at = |n: u16| series.iter().find(|p| p.n == n).cloned();
        if let (Some(p100), Some(p101), Some(p150), Some(p151)) =
            (at(100), at(101), at(150), at(151))
        {
            println!(
                "  AD share drop at 100→101 (Google limit):  {:.1} % → {:.1} %",
                p100.ad_nxdomain, p101.ad_nxdomain
            );
            println!(
                "  AD share drop at 150→151 (major vendors): {:.1} % → {:.1} %",
                p150.ad_nxdomain, p151.ad_nxdomain
            );
            println!(
                "  SERVFAIL jump at 150→151:                 {:.1} % → {:.1} %",
                p150.servfail, p151.servfail
            );
        }
    }
}
