//! Bench: zone signing cost by zone size and denial mechanism
//! (DESIGN.md ablation 4: opt-out vs full chain, NSEC vs NSEC3), plus an
//! explicit thread sweep over the sharded signer — after asserting that
//! every thread count renders the same signed zone byte for byte.
//! Writes `BENCH_zone_signing.json`.

use std::hint::black_box;

use dns_wire::name::{name, Name};
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::{sign_zone, sign_zone_with_threads, Denial, SignerConfig};
use dns_zone::Zone;
use heroes_bench::microbench::Suite;
use heroes_bench::EXPERIMENT_NOW as NOW;

/// A zone with `n` hosts plus `n/4` insecure delegations.
fn make_zone(n: usize) -> Zone {
    let apex = name("bench.example.");
    let mut z = Zone::new(apex.clone());
    z.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa {
            mname: name("ns1.bench.example."),
            rname: name("host.bench.example."),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        },
    ))
    .unwrap();
    for i in 0..n {
        let owner = Name::parse(&format!("host{i}.bench.example.")).unwrap();
        z.add(Record::new(
            owner,
            300,
            RData::A(format!("10.1.{}.{}", i / 256, i % 256).parse().unwrap()),
        ))
        .unwrap();
    }
    for i in 0..n / 4 {
        let cut = Name::parse(&format!("sub{i}.bench.example.")).unwrap();
        z.add(Record::new(cut, 3600, RData::Ns(name("ns.other.example."))))
            .unwrap();
    }
    z
}

fn main() {
    let mut suite = Suite::new("zone_signing");

    for n in [10usize, 100, 1000] {
        let zone = make_zone(n);
        let cfg = SignerConfig::standard(zone.apex(), NOW);
        suite.bench(&format!("size_nsec3_rfc9276/{n}"), || {
            sign_zone(black_box(&zone), &cfg).unwrap()
        });
    }

    // Thread sweep at n = 1000, gated on determinism: every thread count
    // must produce the identical signed zone before its timing counts.
    {
        let zone = make_zone(1000);
        let cfg = SignerConfig::standard(zone.apex(), NOW);
        let baseline = format!("{:?}", sign_zone_with_threads(&zone, &cfg, 1).unwrap().zone);
        for threads in [2usize, 4] {
            let sharded = format!(
                "{:?}",
                sign_zone_with_threads(&zone, &cfg, threads).unwrap().zone
            );
            assert_eq!(
                baseline, sharded,
                "signed zone diverged between threads=1 and threads={threads}"
            );
        }
        println!("  parity: signed zone byte-identical at threads=1/2/4");
        for threads in [1usize, 2, 4] {
            suite.bench(&format!("size_nsec3_rfc9276_threads/{threads}"), || {
                sign_zone_with_threads(black_box(&zone), &cfg, threads).unwrap()
            });
        }
    }

    let zone = make_zone(200);
    let variants: Vec<(&str, Denial)> = vec![
        ("nsec", Denial::Nsec),
        ("nsec3_it0", Denial::nsec3_rfc9276()),
        (
            "nsec3_it0_optout",
            Denial::Nsec3 {
                params: Nsec3Params::rfc9276(),
                opt_out: true,
            },
        ),
        (
            "nsec3_it100_salt8",
            Denial::Nsec3 {
                params: Nsec3Params::new(100, vec![0xab; 8]),
                opt_out: false,
            },
        ),
    ];
    for (label, denial) in variants {
        let cfg = SignerConfig {
            denial,
            ..SignerConfig::standard(zone.apex(), NOW)
        };
        suite.bench(&format!("denial_mechanism_200_names/{label}"), || {
            sign_zone(black_box(&zone), &cfg).unwrap()
        });
    }

    suite.finish();
}
