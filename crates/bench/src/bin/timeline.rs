//! Future-work extension (paper §6, item ii): monitor the maximum
//! iteration values enforced by recursive resolvers over time.
//!
//! Each era's vendor mix (calibrated to the release history §4.2 cites)
//! is deployed against the testbed and classified with the same §4.2
//! prober, producing the adoption trajectory the paper proposes to track
//! — plus the unreachability consequence at each point.

use analysis::{pct, ResolverStats};
use heroes_bench::{fmt_scale, header, Options, EXPERIMENT_NOW};
use nsec3_core::experiments::{
    records_from_specs, run_resolver_study_cfg, DriverConfig, DEFAULT_LAB_SEED,
};
use popgen::resolvers::generate_fleet_with_mix;
use popgen::{eras, generate_domains, Scale};

fn main() {
    let opts = Options::parse(Scale(1.0 / 500.0));
    println!(
        "RFC 9276 adoption timeline at fleet scale {} (seed {})",
        fmt_scale(opts.scale),
        opts.seed
    );

    // The domain side is fixed (the paper's 2024 population): what changes
    // over time is how resolvers treat it.
    let domains = generate_domains(Scale(1.0 / 10_000.0), opts.seed);
    let records = records_from_specs(&domains);
    let nsec3_total = records.iter().filter(|r| r.nsec3.is_some()).count() as u64;
    let over_zero = records
        .iter()
        .filter(|r| r.nsec3.map(|(it, _)| it > 0).unwrap_or(false))
        .count() as u64;

    header(
        "era | limiting | item 6 | item 8 | dominant limit | domains at risk on strict resolvers",
    );
    for era in eras() {
        let fleet = generate_fleet_with_mix(opts.scale, opts.seed, era.mix);
        let study = run_resolver_study_cfg(
            &fleet,
            &DriverConfig::clean(EXPERIMENT_NOW, opts.threads, DEFAULT_LAB_SEED),
        );
        let stats = ResolverStats::compute(&study.all());
        let dominant = stats
            .insecure_limits
            .iter()
            .chain(stats.servfail_starts.iter())
            .max_by_key(|(_, count)| **count)
            .map(|(limit, _)| limit.to_string())
            .unwrap_or_else(|| "-".into());
        // Domains at risk: with strict (SERVFAIL) resolvers present, every
        // non-zero-iteration domain's negative lookups fail there.
        let strict_share = pct(stats.item8, stats.validators);
        println!(
            "  {:<28} {:>6.1} %  {:>6.1} %  {:>6.1} %  limit {:>4}   {:.1} % of resolvers x {} domains",
            format!("{} ({})", era.label, era.year),
            stats.limiting_pct(),
            stats.item6_pct(),
            stats.item8_pct(),
            dominant,
            strict_share,
            over_zero,
        );
    }

    header("Interpretation");
    println!("  The enforced maximum tightens 2020 → 2026 (none → 150 → 150/100 → 50), while");
    println!(
        "  {:.1} % of the NSEC3-enabled domain population ({over_zero} of {nsec3_total} here) still",
        pct(over_zero, nsec3_total)
    );
    println!("  uses non-zero iterations — the collision course the paper warns about.");
}
