//! E4 — Table 1: the twelve RFC 9276 guidance items, with this
//! implementation's conformance-check coverage.

use analysis::rfc9276::ITEMS;

fn main() {
    println!("RFC 9276 guidance items (Table 1) and where this system checks them\n");
    println!(
        "{:<4} {:<16} {:<64} checked by",
        "item", "keyword", "guidance"
    );
    println!("{}", "-".repeat(120));
    for item in ITEMS {
        let checker = match item.number {
            1 => "analysis::DomainStats (NSEC vs NSEC3 shares)",
            2 => "analysis::DomainCompliance::item2_zero_iterations",
            3 => "analysis::DomainCompliance::item3_no_salt",
            4 => "analysis::DomainCompliance::item4_no_opt_out",
            5 => "popgen::tlds (85.4 % opt-out among TLDs)",
            6 => "scanner::ResolverClassification::implements_item6",
            7 => "scanner::ResolverClassification::item7_violation (it-2501-expired)",
            8 => "scanner::ResolverClassification::implements_item8",
            9 => "excluded, as in the paper (§4.2: non-strict wording)",
            10 => "scanner::ResolverClassification::ede27_on_limit",
            11 => "excluded, as in the paper (follows from item 9)",
            12 => "scanner::ResolverClassification::item12_gap",
            _ => unreachable!(),
        };
        println!(
            "{:<4} {:<16} {:<64} {}",
            item.number,
            item.keyword.as_str(),
            item.guidance,
            checker
        );
    }
}
