//! Fault-tolerance sweep: what does packet loss cost the census, and how
//! fast does the adaptive retry policy recover from an outage?
//!
//! Two experiments, both written to `BENCH_faults.json`:
//!
//! * **Loss sweep** — the domain census under flow-keyed loss at 0 %,
//!   1 %, 5 % and 20 % drop chance, same adaptive retry policy at every
//!   point. Reports wall-clock per point, the retry volume, and the
//!   answered share from the merged [`ProbeStats`], so retry overhead is
//!   the ratio against the 0 % row.
//! * **Outage recovery** — a lone probe target behind a scheduled
//!   outage of 1 s / 5 s / 15 s of virtual time. The client re-probes
//!   under the adaptive policy until the first response and the sweep
//!   reports how much *virtual* time past the outage end that took —
//!   the latency cost of backing off (timeouts cost 2 s, backoff up to
//!   4 s, so recovery is never instant).
//!
//! `MICROBENCH_SAMPLES` overrides the repetitions per loss point
//! (default 3; best run counts).

use std::net::IpAddr;
use std::rc::Rc;

use dns_scanner::retry::BreakerConfig;
use heroes_bench::{fmt_scale, header, Options, EXPERIMENT_NOW};
use netsim::{Episode, EpisodeKind, FaultSchedule, Network, Node, Outcome, RetryPolicy, Scope};
use nsec3_core::experiments::{run_domain_census_cfg, DriverConfig, ScanProfile, DEFAULT_LAB_SEED};
use popgen::{generate_domains, Scale};

const LOSS_SWEEP: [f64; 4] = [0.0, 0.01, 0.05, 0.20];
const OUTAGES_MICROS: [u64; 3] = [1_000_000, 5_000_000, 15_000_000];

/// Answers every datagram with its own payload — the cheapest possible
/// responder, so the recovery experiment measures only the fault engine
/// and the retry policy.
struct Echo;

impl Node for Echo {
    fn handle(
        &self,
        _net: &Network,
        _src: IpAddr,
        payload: &[u8],
        reply: &mut Vec<u8>,
    ) -> Option<()> {
        reply.extend_from_slice(payload);
        Some(())
    }
}

fn loss_profile(drop_chance: f64) -> ScanProfile {
    let mut episodes = Vec::new();
    if drop_chance > 0.0 {
        episodes.push(Episode::always(EpisodeKind::Flap {
            scope: Scope::All,
            drop_chance,
        }));
    }
    ScanProfile {
        schedule: FaultSchedule {
            base: Default::default(),
            seed: DEFAULT_LAB_SEED,
            episodes,
        },
        retry: RetryPolicy::adaptive(DEFAULT_LAB_SEED ^ 0x9276),
        breaker: BreakerConfig::default(),
    }
}

fn main() {
    let opts = Options::parse(Scale(1.0 / 200_000.0));
    let reps: usize = std::env::var("MICROBENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(3)
        .max(1);
    println!(
        "fault-tolerance sweep at scale {} (seed {}, {} reps per loss point)",
        fmt_scale(opts.scale),
        opts.seed,
        reps
    );
    let specs = generate_domains(opts.scale, opts.seed);
    println!(
        "population: {} domains, batch size 200, adaptive retry + breaker",
        specs.len()
    );

    header("Census under loss (best of reps per point)");
    let mut loss_rows: Vec<(f64, f64, dns_scanner::retry::ProbeStats)> = Vec::new();
    for &drop in &LOSS_SWEEP {
        let profile = loss_profile(drop);
        let mut best_ms = f64::INFINITY;
        let mut stats = Default::default();
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let cfg = DriverConfig::clean(EXPERIMENT_NOW, 1, DEFAULT_LAB_SEED)
                .with_profile(profile.clone());
            let (_, st) = run_domain_census_cfg(&specs, 200, &cfg);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            if ms < best_ms {
                best_ms = ms;
                stats = st;
            }
            assert!(st.is_consistent(), "loss accounting must balance at {drop}");
        }
        let overhead = loss_rows
            .first()
            .map(|(_, ms0, _)| best_ms / ms0)
            .unwrap_or(1.0);
        println!(
            "  loss {:>4.0} %: best {best_ms:>9.1} ms   overhead vs 0%: {overhead:>5.2}x   retried {:>6}   answered {:>6.2} %",
            drop * 100.0,
            stats.retried,
            stats.answered_share() * 100.0,
        );
        loss_rows.push((drop, best_ms, stats));
    }

    header("Outage recovery (virtual time past outage end until first answer)");
    let target: IpAddr = "10.0.0.1".parse().unwrap();
    let client: IpAddr = "10.0.0.9".parse().unwrap();
    let policy = RetryPolicy::adaptive(DEFAULT_LAB_SEED ^ 0x9276);
    let mut outage_rows: Vec<(u64, u64, u32)> = Vec::new();
    for &outage in &OUTAGES_MICROS {
        let net = Network::new(DEFAULT_LAB_SEED);
        net.register(target, Rc::new(Echo));
        net.set_schedule(FaultSchedule {
            base: Default::default(),
            seed: DEFAULT_LAB_SEED,
            episodes: vec![Episode::window(
                0,
                outage,
                EpisodeKind::Outage {
                    scope: Scope::Addr(target),
                },
            )],
        });
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            let report = net.send_query_with_policy(client, target, b"ping", &policy);
            if matches!(report.outcome, Outcome::Response { .. }) {
                break;
            }
            assert!(
                net.now_micros() < outage + 120_000_000,
                "no recovery within 2 virtual minutes of a {outage} us outage"
            );
        }
        let recovered_at = net.now_micros();
        let recovery = recovered_at.saturating_sub(outage);
        println!(
            "  outage {:>5.1} s: first answer {:>6.2} s after outage end ({rounds} probe round(s))",
            outage as f64 / 1e6,
            recovery as f64 / 1e6,
        );
        outage_rows.push((outage, recovery, rounds));
    }

    let ms0 = loss_rows[0].1;
    let mut json = String::from("{\n  \"suite\": \"faults\",\n");
    json.push_str(&format!("  \"domains\": {},\n", specs.len()));
    json.push_str("  \"loss_sweep\": [\n");
    for (i, (drop, best_ms, st)) in loss_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"loss/{drop}\", \"drop_chance\": {drop}, \"best_ms\": {best_ms:.1}, \"overhead_vs_0\": {:.3}, \"sent\": {}, \"answered\": {}, \"retried\": {}, \"timed_out\": {}, \"circuit_skipped\": {}, \"answered_share\": {:.4}}}{}\n",
            best_ms / ms0,
            st.sent,
            st.answered,
            st.retried,
            st.timed_out,
            st.circuit_skipped,
            st.answered_share(),
            if i + 1 < loss_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"outage_recovery\": [\n");
    for (i, (outage, recovery, rounds)) in outage_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"outage/{outage}us\", \"outage_micros\": {outage}, \"recovery_micros\": {recovery}, \"probe_rounds\": {rounds}}}{}\n",
            if i + 1 < outage_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_faults.json", &json) {
        Ok(()) => println!("  [wrote BENCH_faults.json]"),
        Err(e) => eprintln!("  [failed to write BENCH_faults.json: {e}]"),
    }
}
