//! Bench: end-to-end resolution cost through the full chain
//! (root → com → leaf), positive and negative, plus the policy-ordering
//! ablation (DESIGN.md ablation 5: limit check before vs after signature
//! verification). Writes `BENCH_validation.json`.

use std::hint::black_box;

use dns_resolver::lab::LabBuilder;
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_resolver::Rfc9276Policy;
use dns_wire::name::name;
use dns_wire::rrtype::RrType;
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::Denial;
use heroes_bench::microbench::Suite;
use heroes_bench::EXPERIMENT_NOW as NOW;

fn lab_and_resolver(
    leaf_iterations: u16,
    policy: Rfc9276Policy,
) -> (dns_resolver::lab::Lab, Resolver) {
    let mut lab = LabBuilder::new(NOW)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .simple_zone(
            &name("target.com."),
            Denial::Nsec3 {
                params: Nsec3Params::new(leaf_iterations, vec![]),
                opt_out: false,
            },
        )
        .build();
    let addr = lab.alloc.v4();
    let mut cfg = ResolverConfig::validating(addr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.policy = policy;
    (lab, Resolver::new(cfg))
}

fn main() {
    let mut suite = Suite::new("validation");

    let (lab, r) = lab_and_resolver(0, Rfc9276Policy::unlimited());
    suite.bench("resolve/positive_secure", || {
        r.resolve(&lab.net, black_box(&name("www.target.com.")), RrType::A)
    });
    let mut i = 0u64;
    suite.bench("resolve/nxdomain_secure_it0", || {
        i += 1;
        let q = name(&format!("q{i}.target.com."));
        r.resolve(&lab.net, black_box(&q), RrType::A)
    });

    for it in [0u16, 150, 500] {
        let (lab, r) = lab_and_resolver(it, Rfc9276Policy::unlimited());
        let mut i = 0u64;
        suite.bench(&format!("resolve/nxdomain_by_iterations/it{it}"), || {
            i += 1;
            let q = name(&format!("q{i}.target.com."));
            r.resolve(&lab.net, black_box(&q), RrType::A)
        });
    }

    // Over-limit zone (it=500). The limit-enforcing resolver refuses
    // cheaply; the unlimited one pays the full hashing bill.
    for (label, policy) in [
        ("unlimited_pays_full_cost", Rfc9276Policy::unlimited()),
        (
            "servfail_above_150_refuses_cheaply",
            Rfc9276Policy::servfail_above(150),
        ),
        (
            "insecure_above_150_downgrades",
            Rfc9276Policy::insecure_above(150),
        ),
    ] {
        let (lab, r) = lab_and_resolver(500, policy);
        let mut i = 0u64;
        suite.bench(&format!("resolve/over_limit_policy/{label}"), || {
            i += 1;
            let q = name(&format!("q{i}.target.com."));
            r.resolve(&lab.net, black_box(&q), RrType::A)
        });
    }

    // Cold: every query unique (cache useless).
    let (lab, r) = lab_and_resolver(0, Rfc9276Policy::unlimited());
    let mut i = 0u64;
    suite.bench("resolve/caching/unique_names_cold_path", || {
        i += 1;
        r.resolve(
            &lab.net,
            black_box(&name(&format!("c{i}.target.com."))),
            RrType::A,
        )
    });
    // Warm: the same name repeatedly (answer-cache hit).
    let (lab, r) = lab_and_resolver(0, Rfc9276Policy::unlimited());
    let q = name("www.target.com.");
    let _ = r.resolve(&lab.net, &q, RrType::A);
    suite.bench("resolve/caching/repeated_name_cache_hit", || {
        r.resolve(&lab.net, black_box(&q), RrType::A)
    });
    // RFC 8198: unique nonexistent names, synthesized from one proof.
    let mut lab3 = LabBuilder::new(NOW)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .simple_zone(
            &name("target.com."),
            Denial::Nsec3 {
                params: Nsec3Params::new(0, vec![]),
                opt_out: false,
            },
        )
        .build();
    let addr = lab3.alloc.v4();
    let mut cfg = ResolverConfig::validating(addr, lab3.root_hints.clone(), lab3.anchor.clone());
    cfg.now = lab3.now;
    cfg.aggressive_nsec3 = true;
    let r3 = Resolver::new(cfg);
    let _ = r3.resolve(&lab3.net, &name("warmup.target.com."), RrType::A);
    let mut j = 0u64;
    suite.bench("resolve/caching/unique_nxdomains_rfc8198_synthesis", || {
        j += 1;
        r3.resolve(
            &lab3.net,
            black_box(&name(&format!("s{j}.target.com."))),
            RrType::A,
        )
    });

    suite.finish();
}
