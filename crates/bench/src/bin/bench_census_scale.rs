//! Memory/scale sweep for the streaming census: run the event-driven
//! census at 10 K, 100 K, and 1 M domains × 1, 2, 4, and 8 worker
//! threads, recording wall time, peak RSS, and the event core's
//! in-flight high-water mark per point. Results land in
//! `BENCH_census_scale.json`.
//!
//! Peak RSS (`VmHWM`) is monotonic for the life of a process, so the
//! sweep re-executes itself once per point (`--point`) and reads the
//! child's high-water mark — each point gets a fresh address space and
//! the numbers are comparable. The streaming pipeline's whole claim is
//! that the peak is set by the batch/window geometry, not the
//! population: the 1 M column should match the 10 K column.
//!
//! Every sweep point digests its merged statistics; points at the same
//! scale must agree byte for byte across thread counts, and the sweep
//! aborts if they do not.
//!
//! `--smoke --rss-ceiling-mb N [--threads T]` runs the 100 K point
//! in-process and fails if peak RSS exceeds the ceiling — the CI gate
//! for streaming-memory regressions (`scripts/ci.sh` runs it at 1 and
//! 4 threads).

use heroes_bench::{peak_rss_kb, EXPERIMENT_NOW};
use nsec3_core::experiments::{DriverConfig, DEFAULT_LAB_SEED};
use nsec3_core::run_domain_census_stream;
use popgen::Scale;

const POPULATION_SEED: u64 = 42;
const BATCH_SIZE: usize = 512;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// `(label, scale denominator)` — `domain_count` at these scales lands
/// on 10 213, 100 213, and 1 000 213 domains respectively.
const SCALES: [(&str, f64); 3] = [("10k", 30_200.0), ("100k", 3_020.0), ("1M", 302.0)];

/// FNV-1a over the rendered statistics — the cross-thread identity
/// check, same construction as the driver-equivalence pins.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Point {
    label: String,
    domains: u64,
    threads: usize,
    wall_ms: f64,
    peak_rss_kb: u64,
    high_water: usize,
    digest: u64,
}

/// Run one sweep point in this process and return its measurements.
fn run_point(denom: f64, threads: usize) -> Point {
    let scale = Scale(1.0 / denom);
    let cfg = DriverConfig::clean(EXPERIMENT_NOW, threads, DEFAULT_LAB_SEED);
    let t0 = std::time::Instant::now();
    let report = run_domain_census_stream(scale, POPULATION_SEED, BATCH_SIZE, &cfg);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Point {
        label: String::new(),
        domains: popgen::domain_count(scale),
        threads,
        wall_ms,
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
        high_water: report.in_flight_high_water,
        digest: fnv1a(&format!("{:?}\n{:?}", report.stats, report.probe_stats)),
    }
}

/// Child mode: one point, one machine-readable line on stdout.
fn child_main(denom: f64, threads: usize) {
    let p = run_point(denom, threads);
    println!(
        "POINT domains={} threads={} wall_ms={:.1} peak_rss_kb={} hw={} digest={:#018x}",
        p.domains, p.threads, p.wall_ms, p.peak_rss_kb, p.high_water, p.digest
    );
}

/// Parse the child's `POINT` line back into a [`Point`].
fn parse_point(label: &str, line: &str) -> Option<Point> {
    let mut p = Point {
        label: label.to_string(),
        domains: 0,
        threads: 0,
        wall_ms: 0.0,
        peak_rss_kb: 0,
        high_water: 0,
        digest: 0,
    };
    for field in line.strip_prefix("POINT ")?.split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "domains" => p.domains = value.parse().ok()?,
            "threads" => p.threads = value.parse().ok()?,
            "wall_ms" => p.wall_ms = value.parse().ok()?,
            "peak_rss_kb" => p.peak_rss_kb = value.parse().ok()?,
            "hw" => p.high_water = value.parse().ok()?,
            "digest" => p.digest = u64::from_str_radix(value.trim_start_matches("0x"), 16).ok()?,
            _ => return None,
        }
    }
    Some(p)
}

fn smoke(threads: usize, ceiling_mb: u64) -> ! {
    let denom = SCALES[1].1; // the 100 K point
    let p = run_point(denom, threads);
    let peak_mb = p.peak_rss_kb / 1024;
    println!(
        "smoke: {} domains, {} thread(s): {:.1} ms, peak RSS {} MB (ceiling {} MB), in-flight high water {}",
        p.domains, threads, p.wall_ms, peak_mb, ceiling_mb, p.high_water
    );
    if p.peak_rss_kb > ceiling_mb * 1024 {
        eprintln!(
            "error: streaming census peak RSS {peak_mb} MB exceeds the {ceiling_mb} MB ceiling"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    // Mode dispatch: `--point D T` (child), `--smoke` (CI gate), else
    // the full parent sweep.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--point") {
        let denom: f64 = args[i + 1].parse().expect("--point <denom> <threads>");
        let threads: usize = args[i + 2].parse().expect("--point <denom> <threads>");
        child_main(denom, threads);
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        let mut threads = sim_par::default_threads();
        let mut ceiling_mb = 512u64;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--threads" if i + 1 < args.len() => {
                    threads = args[i + 1].parse().unwrap_or(threads);
                    i += 2;
                }
                "--rss-ceiling-mb" if i + 1 < args.len() => {
                    ceiling_mb = args[i + 1].parse().unwrap_or(ceiling_mb);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        smoke(threads, ceiling_mb);
    }

    let exe = std::env::current_exe().expect("own executable path");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "streaming-census scale sweep (batch {BATCH_SIZE}, seed {POPULATION_SEED}, host has {cores} core(s))"
    );
    println!("each point runs in a child process so VmHWM is per-point\n");
    println!(
        "  {:<6} {:>9} {:>8} {:>12} {:>13} {:>9}",
        "scale", "domains", "threads", "wall ms", "peak RSS MB", "in-flight"
    );

    let mut points: Vec<Point> = Vec::new();
    for (label, denom) in SCALES {
        let mut scale_digest: Option<u64> = None;
        for threads in THREAD_SWEEP {
            let out = std::process::Command::new(&exe)
                .args(["--point", &denom.to_string(), &threads.to_string()])
                .output()
                .expect("spawn sweep point");
            assert!(
                out.status.success(),
                "point {label}/threads-{threads} failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let stdout = String::from_utf8_lossy(&out.stdout);
            let line = stdout
                .lines()
                .find(|l| l.starts_with("POINT "))
                .unwrap_or_else(|| panic!("no POINT line from {label}/threads-{threads}"));
            let p =
                parse_point(label, line).unwrap_or_else(|| panic!("unparsable POINT line: {line}"));
            // The non-negotiable: every thread count at a scale yields
            // the same merged statistics, byte for byte.
            match scale_digest {
                None => scale_digest = Some(p.digest),
                Some(d) => assert_eq!(
                    d, p.digest,
                    "{label}: threads={threads} diverged from threads={}",
                    THREAD_SWEEP[0]
                ),
            }
            println!(
                "  {:<6} {:>9} {:>8} {:>12.1} {:>13.1} {:>9}",
                label,
                p.domains,
                p.threads,
                p.wall_ms,
                p.peak_rss_kb as f64 / 1024.0,
                p.high_water
            );
            points.push(p);
        }
        println!(
            "         [digest {:#018x} identical at 1/2/4/8 threads]",
            scale_digest.unwrap()
        );
    }

    // The flatness headline: peak RSS at 1 M vs 10 K domains.
    let peak_at = |label: &str| {
        points
            .iter()
            .filter(|p| p.label == label)
            .map(|p| p.peak_rss_kb)
            .max()
            .unwrap_or(0)
    };
    let (small, large) = (peak_at("10k"), peak_at("1M"));
    if small > 0 {
        println!(
            "\npeak RSS 10k → 1M: {:.1} MB → {:.1} MB ({:.2}x across a 100x population)",
            small as f64 / 1024.0,
            large as f64 / 1024.0,
            large as f64 / small as f64
        );
    }

    let mut json = String::from("{\n  \"suite\": \"census_scale\",\n");
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(&format!(
        "  \"batch_size\": {BATCH_SIZE},\n  \"results\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}/threads-{}\", \"domains\": {}, \"threads\": {}, \"wall_ms\": {:.1}, \
             \"peak_rss_kb\": {}, \"in_flight_high_water\": {}, \"digest\": \"{:#018x}\"}}{}\n",
            p.label,
            p.threads,
            p.domains,
            p.threads,
            p.wall_ms,
            p.peak_rss_kb,
            p.high_water,
            p.digest,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_census_scale.json", &json) {
        Ok(()) => println!("  [wrote BENCH_census_scale.json]"),
        Err(e) => eprintln!("  [failed to write BENCH_census_scale.json: {e}]"),
    }
}
