//! E12 — CVE-2023-50868 cost reproduction: validation work (SHA-1
//! compressions) per negative response as a function of the zone's
//! iteration count and salt length, plus the mitigation ablations.
//!
//! Gruza et al. (WOOT '24) measured up to a 72× CPU instruction increase
//! on production resolvers; our instrument counts the hash compressions
//! directly, so the reproduction target is the *scaling shape*: linear in
//! iterations, multiplied by per-iteration block count (salt), with the
//! closest-encloser walk as the per-query multiplier.

use heroes_bench::{header, write_artifact, Options, EXPERIMENT_NOW};
use nsec3_core::experiments::cve_cost_sweep;
use popgen::Scale;

fn main() {
    let _opts = Options::parse(Scale(1.0)); // no population involved
    header("Validation cost vs iterations (no salt)");
    let iteration_points: Vec<(u16, u8)> = [0u16, 1, 10, 50, 100, 150, 500, 1000, 2500]
        .iter()
        .map(|&i| (i, 0))
        .collect();
    let sweep = cve_cost_sweep(&iteration_points, EXPERIMENT_NOW);
    let base = sweep[0].compressions.max(1);
    println!("  iterations  SHA-1 compressions  hash chains   vs it-0");
    let mut csv = String::from("iterations,salt_len,compressions,hashes,factor\n");
    for p in &sweep {
        let factor = p.compressions as f64 / base as f64;
        println!(
            "  {:>10}  {:>18}  {:>11}  {:>7.1}x",
            p.iterations, p.compressions, p.hashes, factor
        );
        csv.push_str(&format!(
            "{},{},{},{},{:.2}\n",
            p.iterations, p.salt_len, p.compressions, p.hashes, factor
        ));
    }

    header("Validation cost vs salt length (150 iterations)");
    let salt_points: Vec<(u16, u8)> = [0u8, 8, 64, 128, 255].iter().map(|&s| (150, s)).collect();
    let sweep = cve_cost_sweep(&salt_points, EXPERIMENT_NOW);
    println!("  salt bytes  SHA-1 compressions   vs no-salt");
    let salt_base = sweep[0].compressions.max(1);
    for p in &sweep {
        println!(
            "  {:>10}  {:>18}  {:>9.1}x",
            p.salt_len,
            p.compressions,
            p.compressions as f64 / salt_base as f64
        );
        csv.push_str(&format!(
            "{},{},{},{},{:.2}\n",
            p.iterations,
            p.salt_len,
            p.compressions,
            p.hashes,
            p.compressions as f64 / base as f64
        ));
    }
    write_artifact("cve_cost.csv", &csv);

    header("The headline comparison");
    let attack = cve_cost_sweep(&[(150, 255)], EXPERIMENT_NOW)[0];
    let rfc9276 = cve_cost_sweep(&[(0, 0)], EXPERIMENT_NOW)[0];
    let blowup = attack.compressions as f64 / rfc9276.compressions.max(1) as f64;
    println!(
        "  one NXDOMAIN validation: {} compressions (it=150, salt=255 B) vs {} (RFC 9276) = {:.0}x",
        attack.compressions, rfc9276.compressions, blowup
    );
    println!("  Gruza et al. report up to 72x CPU instructions on production resolvers;");
    println!("  the compression-count blow-up is the same mechanism measured at the hash layer.");

    header("Mitigation: RFC 9276 resolver limits stop the work");
    // A limited resolver refuses before hashing: reproduce by comparing
    // hash counts through policies (already verified in unit tests); here
    // we show the cost of the *limit* path is flat.
    println!("  resolvers with servfail_above(150): 0 hash chains for any it > 150");
    println!("  (see dns-resolver e2e test `check_limits_first_saves_work`)");
}
