//! Iterative-recursion cost sweep over the signed root→TLD→leaf
//! delegation graph: what does a full cold walk cost, how much does the
//! delegation cache save on warm walks, and how does the bill grow with
//! chain depth?
//!
//! Stands the whole [`popgen::HierarchyModel`] up in one lab
//! ([`nsec3_core::build_hierarchy`]) and walks every leaf with a
//! validating resolver, measuring upstream messages, machine steps
//! (delegation levels), and crypto work per query. Results land in
//! `BENCH_recursion.json`.
//!
//! The paper-facing claims are asserted, so CI fails if they regress:
//!
//! * a warm delegation cache issues **strictly fewer** upstream queries
//!   per walk than a cold one (and records actual cache hits);
//! * the cached fleet's total upstream bill stays under the cacheless
//!   fleet's for the same probe set;
//! * deep chains amplify: a root→TLD→leaf walk costs at least
//!   [`DEPTH_AMPLIFICATION_FLOOR`]× the messages of a root→TLD walk.
//!
//! Knobs: `HEROES_REC_TLDS` (default 24), `HEROES_REC_LEAVES` (leaves
//! per TLD, default 4), plus the usual `HEROES_THREADS` for the sharded
//! chain-study pass.

use dns_resolver::resolver::{RecursionStep, Resolver, ResolverConfig};
use dns_wire::name::Name;
use dns_wire::rrtype::{Rcode, RrType};
use heroes_bench::{header, EXPERIMENT_NOW};
use nsec3_core::experiments::DEFAULT_LAB_SEED;
use nsec3_core::hierarchy::build_hierarchy;
use popgen::hierarchy::HierarchyModel;

/// A three-zone walk must cost at least this multiple of a two-zone
/// walk in upstream messages (cold, cacheless).
const DEPTH_AMPLIFICATION_FLOOR: f64 = 1.2;

fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Per-pass accounting for one probe sweep.
#[derive(Default)]
struct Sweep {
    walks: u64,
    messages: u64,
    steps: u64,
    sha1: u64,
    signatures: u64,
    virtual_micros: u64,
}

impl Sweep {
    fn per_walk(&self, v: u64) -> f64 {
        v as f64 / (self.walks.max(1)) as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"walks\": {}, \"messages_per_walk\": {:.2}, \"steps_per_walk\": {:.2}, \"sha1_per_walk\": {:.1}, \"signatures_per_walk\": {:.2}, \"virtual_micros_per_walk\": {:.1}}}",
            self.walks,
            self.per_walk(self.messages),
            self.per_walk(self.steps),
            self.per_walk(self.sha1),
            self.per_walk(self.signatures),
            self.per_walk(self.virtual_micros),
        )
    }
}

/// Walk `probes` on a fresh resolver over a freshly built hierarchy,
/// stepping the recursion machine by hand so delegation levels are
/// observable. Returns `(first-walk-per-TLD sweep, repeat-walk sweep,
/// resolver)` — with one probe per TLD the repeat sweep stays empty.
fn sweep(
    model: &HierarchyModel,
    delegation_cache: bool,
    probes_per_tld: usize,
) -> (Sweep, Sweep, Resolver) {
    let h = build_hierarchy(model, EXPERIMENT_NOW, DEFAULT_LAB_SEED);
    let mut lab = h.lab;
    let raddr = lab.alloc.v4();
    let mut rcfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
    rcfg.now = lab.now;
    rcfg.delegation_cache = delegation_cache;
    let resolver = Resolver::new(rcfg);
    let mut cold = Sweep::default();
    let mut warm = Sweep::default();
    for tld in &h.tlds {
        for (i, leaf) in tld.leaves.iter().take(probes_per_tld).enumerate() {
            let q = Name::parse(&format!("www.{}", leaf.name)).expect("probe parses");
            let sweep = if i == 0 { &mut cold } else { &mut warm };
            let started = lab.net.now_micros();
            let mut machine = resolver.begin_recursion(&lab.net, &q, RrType::A);
            let out = loop {
                sweep.steps += 1;
                if let RecursionStep::Done(out) = machine.step(&lab.net) {
                    break out;
                }
            };
            assert_ne!(
                out.rcode,
                Rcode::ServFail,
                "intact hierarchy must resolve {q}: {:?}",
                out.ede
            );
            sweep.walks += 1;
            sweep.messages += out.cost.messages_sent;
            sweep.sha1 += out.cost.sha1_compressions;
            sweep.signatures += out.cost.signatures_verified;
            sweep.virtual_micros += lab.net.now_micros() - started;
        }
    }
    (cold, warm, resolver)
}

fn main() {
    let tlds = env_knob("HEROES_REC_TLDS", 24);
    let leaves = env_knob("HEROES_REC_LEAVES", 4);
    let model = HierarchyModel::intact(tlds, leaves, 7);
    println!("iterative recursion sweep: {tlds} TLD(s), {leaves} leaf zone(s) each");

    header("Cold vs warm (delegation cache on)");
    let t0 = std::time::Instant::now();
    let (cold, warm, cached_resolver) = sweep(&model, true, leaves);
    let cached_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "  cold walks  {:>4}: {:>6.2} msg/walk {:>6.2} steps/walk {:>8.1} sha1/walk",
        cold.walks,
        cold.per_walk(cold.messages),
        cold.per_walk(cold.steps),
        cold.per_walk(cold.sha1),
    );
    println!(
        "  warm walks  {:>4}: {:>6.2} msg/walk {:>6.2} steps/walk {:>8.1} sha1/walk",
        warm.walks,
        warm.per_walk(warm.messages),
        warm.per_walk(warm.steps),
        warm.per_walk(warm.sha1),
    );
    println!(
        "  delegation cache: {} hits / {} misses / {} evictions",
        cached_resolver.delegation_hits(),
        cached_resolver.delegation_misses(),
        cached_resolver.delegation_evictions(),
    );

    header("Cacheless baseline (same probes)");
    let t1 = std::time::Instant::now();
    let (nc_cold, nc_warm, nocache_resolver) = sweep(&model, false, leaves);
    let nocache_ms = t1.elapsed().as_secs_f64() * 1e3;
    let cached_total = cold.messages + warm.messages;
    let nocache_total = nc_cold.messages + nc_warm.messages;
    println!(
        "  cacheless total upstream: {nocache_total} msgs   cached total: {cached_total} msgs"
    );

    header("Depth amplification (cold, cacheless)");
    // Same hierarchy, two probe depths: a root→TLD walk (NXDOMAIN at the
    // TLD apex) versus the full root→TLD→leaf walk.
    let shallow = {
        let h = build_hierarchy(&model, EXPERIMENT_NOW, DEFAULT_LAB_SEED);
        let mut lab = h.lab;
        let raddr = lab.alloc.v4();
        let mut rcfg =
            ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        rcfg.now = lab.now;
        let resolver = Resolver::new(rcfg);
        let mut msgs = 0u64;
        let mut walks = 0u64;
        for tld in &h.tlds {
            let q = Name::parse(&format!("does-not-exist.{}", tld.spec.name)).unwrap();
            let out = resolver.resolve(&lab.net, &q, RrType::A);
            assert_ne!(out.rcode, Rcode::ServFail, "shallow probe must resolve");
            msgs += out.cost.messages_sent;
            walks += 1;
        }
        msgs as f64 / walks.max(1) as f64
    };
    let deep = nc_cold.per_walk(nc_cold.messages);
    let amplification = deep / shallow.max(1.0);
    println!(
        "  shallow {shallow:>6.2} msg/walk   deep {deep:>6.2} msg/walk   amplification {amplification:>5.2}x"
    );

    header("Gates");
    assert!(
        cached_resolver.delegation_hits() > 0,
        "warm walks must hit the delegation cache"
    );
    assert_eq!(
        nocache_resolver.delegation_hits() + nocache_resolver.delegation_misses(),
        0,
        "cacheless resolver must not touch delegation counters"
    );
    assert!(
        warm.walks == 0 || warm.per_walk(warm.messages) < cold.per_walk(cold.messages),
        "warm walks must issue strictly fewer upstream queries: {:.2} vs {:.2}",
        warm.per_walk(warm.messages),
        cold.per_walk(cold.messages),
    );
    assert!(
        cached_total < nocache_total,
        "cached fleet must beat the cacheless upstream bill: {cached_total} vs {nocache_total}"
    );
    assert!(
        amplification >= DEPTH_AMPLIFICATION_FLOOR,
        "deep-chain amplification {amplification:.2} under floor {DEPTH_AMPLIFICATION_FLOOR}"
    );
    println!("  all gates passed");

    let json = format!(
        "{{\n  \"suite\": \"recursion\",\n  \"tlds\": {tlds},\n  \"leaves_per_tld\": {leaves},\n  \"cached_ms\": {cached_ms:.1},\n  \"nocache_ms\": {nocache_ms:.1},\n  \"cold\": {},\n  \"warm\": {},\n  \"cacheless_cold\": {},\n  \"cacheless_warm\": {},\n  \"delegation\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n  \"upstream_total\": {{\"cached\": {cached_total}, \"cacheless\": {nocache_total}}},\n  \"depth\": {{\"shallow_msgs_per_walk\": {shallow:.2}, \"deep_msgs_per_walk\": {deep:.2}, \"amplification\": {amplification:.2}, \"floor\": {DEPTH_AMPLIFICATION_FLOOR}}}\n}}\n",
        cold.json(),
        warm.json(),
        nc_cold.json(),
        nc_warm.json(),
        cached_resolver.delegation_hits(),
        cached_resolver.delegation_misses(),
        cached_resolver.delegation_evictions(),
    );
    match std::fs::write("BENCH_recursion.json", &json) {
        Ok(()) => println!("  [wrote BENCH_recursion.json]"),
        Err(e) => eprintln!("  [failed to write BENCH_recursion.json: {e}]"),
    }
}
