//! E5 — Table 2: the ten most frequent authoritative name-server
//! operators over NSEC3-enabled domains, with exclusive-serve counts and
//! dominant parameter sets.
//!
//! Paper landmarks: Squarespace 39.4 % (1/8), one.com 9.5 %
//! (5/5, 5/4, 1/2, 1/4), OVHcloud 8.4 % (8/8), …, Hostpoint 1.3 % (1/40);
//! the top 10 exclusively serve 77.7 % of NSEC3-enabled domains.

use analysis::{compare_line, fmt_pct, operator_table, render_table2};
use heroes_bench::{fmt_scale, header, write_artifact, Options};
use nsec3_core::experiments::records_from_specs;
use popgen::{generate_domains, Scale};

fn main() {
    let opts = Options::parse(Scale::BENCH);
    println!(
        "Table 2 at scale {} (seed {})",
        fmt_scale(opts.scale),
        opts.seed
    );
    let specs = generate_domains(opts.scale, opts.seed);
    let records = records_from_specs(&specs);
    let table = operator_table(&records, 10);

    header("Top-10 operators of NSEC3-enabled domains (exclusive serving)");
    print!("{}", render_table2(&table));

    let top10_share: f64 = table.iter().map(|r| r.share_pct).sum();
    print!(
        "{}",
        compare_line(
            "top-10 exclusive share of NSEC3-enabled",
            "77.7 %",
            &fmt_pct(top10_share)
        )
    );
    // Landmark rows.
    if let Some(first) = table.first() {
        print!(
            "{}",
            compare_line(
                "largest operator share (Squarespace)",
                "39.4 %",
                &fmt_pct(first.share_pct)
            )
        );
        let params = first
            .params
            .first()
            .map(|(it, s, _)| format!("{it}/{s}"))
            .unwrap_or_default();
        print!("{}", compare_line("its parameter set", "1/8", &params));
    }

    let mut csv = String::from("operator,count,share_pct,top_params\n");
    for row in &table {
        let params: Vec<String> = row
            .params
            .iter()
            .take(4)
            .map(|(it, s, p)| format!("{it}/{s}:{p:.1}%"))
            .collect();
        csv.push_str(&format!(
            "{},{},{:.2},{}\n",
            row.operator,
            row.count,
            row.share_pct,
            params.join(" ")
        ));
    }
    write_artifact("table2_operators.csv", &csv);
}
