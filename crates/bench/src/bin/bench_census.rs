//! Thread-scaling sweep for the sharded domain census: run the same
//! end-to-end census at 1, 2, 4, and 8 worker threads, verify every
//! sweep point reproduces the single-threaded output byte for byte, and
//! write the wall-clock numbers to `BENCH_census.json`.
//!
//! Speedup is hardware-bound — on a single-core host every point
//! measures about the same — so nothing here asserts on it; the host's
//! core count is printed alongside the numbers for interpretation. The
//! determinism check, by contrast, is absolute and always enforced.
//!
//! `MICROBENCH_SAMPLES` overrides the repetitions per sweep point
//! (default 3; the best run counts, standard practice for wall-clock
//! sweeps).

use heroes_bench::{fmt_scale, header, Options, EXPERIMENT_NOW};
use nsec3_core::experiments::{run_domain_census_cfg, DriverConfig, DEFAULT_LAB_SEED};
use popgen::{generate_domains, Scale};

const SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let opts = Options::parse(Scale(1.0 / 200_000.0));
    let reps: usize = std::env::var("MICROBENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(3)
        .max(1);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "census thread-scaling sweep at scale {} (seed {}, {} reps per point, host has {} core(s))",
        fmt_scale(opts.scale),
        opts.seed,
        reps,
        cores
    );
    let specs = generate_domains(opts.scale, opts.seed);
    println!("population: {} domains, batch size 200", specs.len());

    header("Sweep (best of reps per point)");
    let reference = run_domain_census_cfg(
        &specs,
        200,
        &DriverConfig::clean(EXPERIMENT_NOW, 1, DEFAULT_LAB_SEED),
    )
    .0;
    let mut rows: Vec<(usize, f64)> = Vec::new();
    for &threads in &SWEEP {
        let mut best_ms = f64::INFINITY;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let cfg = DriverConfig::clean(EXPERIMENT_NOW, threads, DEFAULT_LAB_SEED);
            let out = run_domain_census_cfg(&specs, 200, &cfg).0;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            best_ms = best_ms.min(ms);
            // The whole point of fixed sharding: every thread count
            // yields the single-threaded output, byte for byte.
            assert_eq!(
                format!("{out:?}"),
                format!("{reference:?}"),
                "threads={threads} diverged from the sequential census"
            );
        }
        let speedup = rows.first().map(|(_, t1)| t1 / best_ms).unwrap_or(1.0);
        println!(
            "  threads {threads}: best {best_ms:>9.1} ms   speedup vs 1: {speedup:>5.2}x   output identical: yes"
        );
        rows.push((threads, best_ms));
    }

    let t1 = rows[0].1;
    let mut json = String::from("{\n  \"suite\": \"census\",\n");
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(&format!(
        "  \"domains\": {},\n  \"results\": [\n",
        specs.len()
    ));
    for (i, (threads, best_ms)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"threads/{threads}\", \"threads\": {threads}, \"best_ms\": {best_ms:.1}, \"speedup_vs_1\": {:.3}}}{}\n",
            t1 / best_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_census.json", &json) {
        Ok(()) => println!("  [wrote BENCH_census.json]"),
        Err(e) => eprintln!("  [failed to write BENCH_census.json: {e}]"),
    }
}
