//! Adversarial denial-of-existence cost sweep: what does each attack
//! family cost a validating resolver per query, undefended versus behind
//! the layered defense (RFC 9276 iteration clamp + per-query work
//! budget)?
//!
//! Runs every [`popgen::adversarial::AttackFamily`] twice — once with
//! [`DefenseProfile::undefended`], once with
//! [`DefenseProfile::defended`] — and reports SHA-1 compressions,
//! signature verifications and combined work units per query, plus the
//! budget-abort tallies (degraded queries are accounted separately and
//! never pollute completed-query averages). Results land in
//! `BENCH_adversarial.json`.
//!
//! The paper-facing claims are asserted, so CI fails if they regress:
//!
//! * every attack family costs an undefended resolver ≥ 10× the
//!   RFC 9276 baseline per query (work units);
//! * the defense holds the *total* per-query bill of every family to a
//!   small constant factor of the baseline;
//! * the defense actually saves work on the expensive families
//!   (undefended / defended compressions-per-query stays above a floor).
//!
//! Knobs: `HEROES_ADV_ZONES` (zones per family, default 2),
//! `HEROES_ADV_QUERIES` (queries per zone, default 6), plus the usual
//! `HEROES_THREADS`.

use heroes_bench::{header, EXPERIMENT_NOW};
use nsec3_core::adversarial::{
    run_adversarial_cfg, AdversarialScenario, DefenseProfile, FamilyTally,
};
use nsec3_core::experiments::DriverConfig;
use popgen::adversarial::AttackFamily;
use popgen::generate_attack_zones;

/// Attack families must cost an undefended resolver at least this
/// multiple of the baseline (work units per completed query).
const AMPLIFICATION_FLOOR: f64 = 10.0;
/// The defense must hold every family's total per-query bill under this
/// multiple of the undefended baseline.
const DEFENDED_CEILING: f64 = 32.0;
/// Undefended / defended compressions-per-query floor for the
/// hash-heavy families (the ci.sh gate).
const SAVINGS_FLOOR: f64 = 1.2;

fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn run(defense: DefenseProfile, zones_per_family: usize, queries: u64) -> Vec<FamilyTally> {
    let scenario = AdversarialScenario {
        zones: generate_attack_zones("example.", zones_per_family),
        queries_per_zone: queries,
        defense,
    };
    let cfg = DriverConfig::from_env(EXPERIMENT_NOW);
    let report = run_adversarial_cfg(&scenario, &cfg);
    AttackFamily::ALL
        .iter()
        .map(|f| report.family(*f))
        .collect()
}

fn main() {
    let zones_per_family = env_knob("HEROES_ADV_ZONES", 2);
    let queries = env_knob("HEROES_ADV_QUERIES", 6) as u64;
    println!(
        "adversarial workload sweep: {zones_per_family} zone(s) per family, {queries} queries per zone"
    );

    header("Undefended (unlimited iterations, unlimited budget)");
    let t0 = std::time::Instant::now();
    let undefended = run(DefenseProfile::undefended(), zones_per_family, queries);
    let undefended_ms = t0.elapsed().as_secs_f64() * 1e3;
    for (family, t) in AttackFamily::ALL.iter().zip(&undefended) {
        println!(
            "  {:<17} {:>10.1} compressions/q {:>6.1} sigs/q {:>10.1} work-units/q  ({}/{} completed)",
            family.label(),
            t.compressions_per_query(),
            t.signatures_per_query(),
            t.work_units_per_query(),
            t.completed,
            t.queries,
        );
    }

    header("Defended (servfail > 150 iterations + hardened work budget)");
    let t1 = std::time::Instant::now();
    let defended = run(DefenseProfile::defended(), zones_per_family, queries);
    let defended_ms = t1.elapsed().as_secs_f64() * 1e3;
    for (family, t) in AttackFamily::ALL.iter().zip(&defended) {
        println!(
            "  {:<17} {:>10.1} total-work-units/q  {:>3}/{} budget-aborted",
            family.label(),
            t.total_work_units_per_query(),
            t.budget_exceeded,
            t.queries,
        );
    }

    let base_undef = &undefended[0];
    assert_eq!(
        base_undef.completed, base_undef.queries,
        "baseline completes undefended"
    );
    let base_work = base_undef.work_units_per_query().max(1.0);

    header("Gates");
    let mut rows = String::new();
    for (i, family) in AttackFamily::ALL.iter().enumerate() {
        let u = &undefended[i];
        let d = &defended[i];
        let amplification = u.total_work_units_per_query() / base_work;
        let defended_factor = d.total_work_units_per_query() / base_work;
        let savings = if d.total_compressions_per_query() > 0.0 {
            u.total_compressions_per_query() / d.total_compressions_per_query()
        } else {
            f64::INFINITY
        };
        println!(
            "  {:<17} amplification {amplification:>8.1}x   defended bill {defended_factor:>5.1}x baseline   hash savings {savings:>6.1}x",
            family.label(),
        );
        if *family != AttackFamily::Baseline {
            assert!(
                u.work_units_per_query() >= AMPLIFICATION_FLOOR * base_work,
                "{}: undefended amplification {:.1} under floor {AMPLIFICATION_FLOOR}",
                family.label(),
                u.work_units_per_query() / base_work,
            );
            assert!(
                d.total_work_units_per_query() <= DEFENDED_CEILING * base_work,
                "{}: defended bill {defended_factor:.1}x over ceiling {DEFENDED_CEILING}x",
                family.label(),
            );
        }
        // The hash-heavy families must show real savings (the keytag
        // family attacks signatures, not hashes, so it is exempt here —
        // its bill is covered by the ceiling above).
        if matches!(
            family,
            AttackFamily::MaxIterations | AttackFamily::DeepChain
        ) {
            assert!(
                savings >= SAVINGS_FLOOR,
                "{}: hash savings {savings:.2} under floor {SAVINGS_FLOOR}",
                family.label(),
            );
        }
        // Degradation accounting: nothing is silently dropped.
        for t in [u, d] {
            assert_eq!(
                t.queries,
                t.completed + t.budget_exceeded + t.lost,
                "{}: accounting invariant",
                family.label()
            );
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"undefended\": {}, \"defended\": {}, \"amplification_vs_baseline\": {:.2}, \"defended_bill_vs_baseline\": {:.2}, \"hash_savings\": {:.2}}}{}\n",
            family.label(),
            tally_json(u),
            tally_json(d),
            amplification,
            defended_factor,
            if savings.is_finite() { savings } else { -1.0 },
            if i + 1 < AttackFamily::ALL.len() { "," } else { "" },
        ));
    }
    println!("  all gates passed");

    let mut json = String::from("{\n  \"suite\": \"adversarial\",\n");
    json.push_str(&format!(
        "  \"zones_per_family\": {zones_per_family},\n  \"queries_per_zone\": {queries},\n"
    ));
    json.push_str(&format!(
        "  \"undefended_ms\": {undefended_ms:.1},\n  \"defended_ms\": {defended_ms:.1},\n"
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"amplification_floor\": {AMPLIFICATION_FLOOR}, \"defended_ceiling\": {DEFENDED_CEILING}, \"savings_floor\": {SAVINGS_FLOOR}}},\n"
    ));
    json.push_str("  \"families\": [\n");
    json.push_str(&rows);
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_adversarial.json", &json) {
        Ok(()) => println!("  [wrote BENCH_adversarial.json]"),
        Err(e) => eprintln!("  [failed to write BENCH_adversarial.json: {e}]"),
    }
}

fn tally_json(t: &FamilyTally) -> String {
    format!(
        "{{\"queries\": {}, \"completed\": {}, \"budget_exceeded\": {}, \"lost\": {}, \"compressions_per_query\": {:.1}, \"signatures_per_query\": {:.2}, \"work_units_per_query\": {:.1}, \"total_work_units_per_query\": {:.1}}}",
        t.queries,
        t.completed,
        t.budget_exceeded,
        t.lost,
        t.compressions_per_query(),
        t.signatures_per_query(),
        t.work_units_per_query(),
        t.total_work_units_per_query(),
    )
}
