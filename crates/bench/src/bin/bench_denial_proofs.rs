//! Bench: denial-of-existence proof synthesis (server side) and
//! verification (resolver side), by query-name depth and iteration count
//! (DESIGN.md ablation 2: the closest-encloser walk multiplier).
//! Writes `BENCH_denial_proofs.json`.

use std::hint::black_box;

use dns_resolver::cost::CostMeter;
use dns_resolver::validator::{parse_nsec3_set, verify_nxdomain};
use dns_wire::name::{name, Name};
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;
use dns_zone::denial::nxdomain_proof;
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::{sign_zone, SignedZone, SignerConfig};
use dns_zone::Zone;
use heroes_bench::microbench::Suite;
use heroes_bench::EXPERIMENT_NOW as NOW;

fn make_signed(iterations: u16) -> SignedZone {
    let apex = name("bench.example.");
    let mut z = Zone::new(apex.clone());
    z.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa {
            mname: name("ns1.bench.example."),
            rname: name("host.bench.example."),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        },
    ))
    .unwrap();
    for i in 0..50 {
        let owner = Name::parse(&format!("host{i}.bench.example.")).unwrap();
        z.add(Record::new(
            owner,
            300,
            RData::A("10.0.0.1".parse().unwrap()),
        ))
        .unwrap();
    }
    sign_zone(
        &z,
        &SignerConfig::with_nsec3(
            &apex,
            NOW,
            Nsec3Params::new(iterations, vec![0xab; 8]),
            false,
        ),
    )
    .unwrap()
}

fn main() {
    let mut suite = Suite::new("denial_proofs");

    for iterations in [0u16, 150] {
        let z = make_signed(iterations);
        let qname = name("nx.bench.example.");
        suite.bench(&format!("nxdomain_proof_synthesis/{iterations}"), || {
            nxdomain_proof(black_box(&z), black_box(&qname)).unwrap()
        });
    }

    let z = make_signed(150);
    for depth in [1usize, 3, 6, 10] {
        let labels: Vec<String> = (0..depth).map(|i| format!("l{i}")).collect();
        let qname = Name::parse(&format!("{}.bench.example.", labels.join("."))).unwrap();
        let proof = nxdomain_proof(&z, &qname).unwrap();
        let nsec3s: Vec<&Record> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        let (params, views) = parse_nsec3_set(&nsec3s).unwrap();
        suite.bench(
            &format!("nxdomain_verify_by_label_depth_it150/{depth}"),
            || {
                let meter = CostMeter::new();
                verify_nxdomain(
                    black_box(&qname),
                    &name("bench.example."),
                    &params,
                    &views,
                    &meter,
                )
                .unwrap()
            },
        );
    }

    for iterations in [0u16, 50, 150, 500] {
        let z = make_signed(iterations);
        let qname = name("a.b.c.nx.bench.example.");
        let proof = nxdomain_proof(&z, &qname).unwrap();
        let nsec3s: Vec<&Record> = proof
            .records
            .iter()
            .filter(|r| r.rrtype() == RrType::NSEC3)
            .collect();
        let (params, views) = parse_nsec3_set(&nsec3s).unwrap();
        suite.bench(
            &format!("nxdomain_verify_by_iterations/{iterations}"),
            || {
                let meter = CostMeter::new();
                verify_nxdomain(
                    black_box(&qname),
                    &name("bench.example."),
                    &params,
                    &views,
                    &meter,
                )
                .unwrap()
            },
        );
    }

    suite.finish();
}
