//! E2 — Figure 2: CDF of popularity ranks of NSEC3-enabled domains in the
//! Tranco 1 M list, split by compliance with items 2 (iterations) and 3
//! (salt).
//!
//! Paper landmarks: 66.6 K DNSSEC-enabled; 27.2 K (40.8 %) NSEC3-enabled;
//! 22.8 % zero iterations; 23.6 % no salt; 12.7 % both; both curves grow
//! uniformly in rank.

use analysis::{cdf_csv, cdf_svg, compare_line, fmt_pct, ks_uniform, pct, render_cdf, Cdf};
use heroes_bench::{fmt_scale, header, write_artifact, Options};
use popgen::domains::DnssecKind;
use popgen::{generate_tranco, Scale};

fn main() {
    let opts = Options::parse(Scale(1.0)); // 1 M ranks is cheap enough
    println!(
        "Figure 2 at scale {} (seed {})",
        fmt_scale(opts.scale),
        opts.seed
    );
    let list = generate_tranco(opts.scale, opts.seed);

    let dnssec: Vec<_> = list
        .iter()
        .filter(|e| e.dnssec != DnssecKind::None)
        .collect();
    let nsec3: Vec<_> = list
        .iter()
        .filter_map(|e| match e.dnssec {
            DnssecKind::Nsec3 {
                iterations,
                salt_len,
                ..
            } => Some((e.rank, iterations, salt_len)),
            _ => None,
        })
        .collect();

    header("Tranco composition");
    print!(
        "{}",
        compare_line(
            "DNSSEC-enabled entries",
            "66.6 K",
            &dnssec.len().to_string()
        )
    );
    print!(
        "{}",
        compare_line(
            "NSEC3-enabled (% of DNSSEC)",
            "40.8 %",
            &fmt_pct(pct(nsec3.len() as u64, dnssec.len() as u64))
        )
    );
    let zero = nsec3.iter().filter(|(_, it, _)| *it == 0).count() as u64;
    let nosalt = nsec3.iter().filter(|(_, _, s)| *s == 0).count() as u64;
    let both = nsec3
        .iter()
        .filter(|(_, it, s)| *it == 0 && *s == 0)
        .count() as u64;
    print!(
        "{}",
        compare_line(
            "zero iterations",
            "22.8 %",
            &fmt_pct(pct(zero, nsec3.len() as u64))
        )
    );
    print!(
        "{}",
        compare_line(
            "no salt",
            "23.6 %",
            &fmt_pct(pct(nosalt, nsec3.len() as u64))
        )
    );
    print!(
        "{}",
        compare_line(
            "compliant with both",
            "12.7 %",
            &fmt_pct(pct(both, nsec3.len() as u64))
        )
    );

    header("CDF of popularity ranks (it = 0 and no-salt subsets)");
    // Rank CDFs in units of 10K ranks so the u32 samples stay small.
    let rank_bucket = |r: u64| (r / 10_000) as u32;
    let it0_cdf = Cdf::from_samples(
        nsec3
            .iter()
            .filter(|(_, it, _)| *it == 0)
            .map(|(r, _, _)| rank_bucket(*r)),
    );
    let nosalt_cdf = Cdf::from_samples(
        nsec3
            .iter()
            .filter(|(_, _, s)| *s == 0)
            .map(|(r, _, _)| rank_bucket(*r)),
    );
    let max_bucket = rank_bucket(list.len() as u64);
    print!(
        "{}",
        render_cdf("it = 0 (x = rank / 10K)", &it0_cdf, max_bucket)
    );
    print!(
        "{}",
        render_cdf("without salt (x = rank / 10K)", &nosalt_cdf, max_bucket)
    );

    // Uniformity check: the median rank of compliant entries should sit
    // near the middle of the list.
    if let Some(median) = it0_cdf.quantile(0.5) {
        print!(
            "{}",
            compare_line(
                "median rank of it=0 entries (uniform → ~50 %)",
                "~500 K",
                &format!("{} K", median * 10)
            )
        );
    }
    // The uniformity claim, quantified: KS distance from the uniform CDF.
    print!(
        "{}",
        compare_line(
            "KS distance of it=0 ranks from uniform",
            "small (uniform)",
            &format!("{:.3}", ks_uniform(&it0_cdf, max_bucket))
        )
    );
    print!(
        "{}",
        compare_line(
            "KS distance of no-salt ranks from uniform",
            "small (uniform)",
            &format!("{:.3}", ks_uniform(&nosalt_cdf, max_bucket))
        )
    );
    write_artifact("fig2_it0_rank_cdf.csv", &cdf_csv(&it0_cdf));
    write_artifact("fig2_nosalt_rank_cdf.csv", &cdf_csv(&nosalt_cdf));
    write_artifact(
        "fig2_it0_rank_cdf.svg",
        &cdf_svg(
            "Figure 2: CDF of popularity ranks (it = 0)",
            "Rank (in 10K)",
            &it0_cdf,
            max_bucket,
        ),
    );
    write_artifact(
        "fig2_nosalt_rank_cdf.svg",
        &cdf_svg(
            "Figure 2: CDF of popularity ranks (no salt)",
            "Rank (in 10K)",
            &nosalt_cdf,
            max_bucket,
        ),
    );
}
