//! Production-serving benchmark: Zipf client traffic through the
//! caching resolver fleet, gating the RFC 8198 fast path's three
//! headline claims in-binary. Results land in `BENCH_serving.json`.
//!
//! The gates (any failure aborts the run):
//!
//! 1. **Upstream collapse** — with an NXDOMAIN-heavy mix at Zipf skew
//!    1.0, aggressive NSEC3 caching must cut forwarded NXDOMAIN traffic
//!    by at least [`COLLAPSE_FLOOR`]× versus the same fleet with
//!    synthesis off.
//! 2. **Latency** — the warm fleet's p99 virtual latency must undercut
//!    the cold (cacheless) fleet's p50, and warm throughput must clear
//!    [`QPS_FLOOR`] queries/s of host wall time.
//! 3. **Flat memory** — a 1 M-query run must hold peak RSS flat against
//!    a 100 K-query run (each measured in a fresh child process, since
//!    `VmHWM` is monotonic): the query stream is regenerated per index
//!    and every cache is capacity-bounded, so ten times the traffic must
//!    not mean ten times the memory.
//!
//! Every serving arm also digests its merged tally at 1, 2, and 4
//! threads and aborts on divergence — the fleet merge is byte-identical
//! or it is wrong.
//!
//! `--smoke --rss-ceiling-mb N [--threads T]` runs a reduced-sample
//! collapse check plus an absolute RSS ceiling — the CI gate.

use heroes_bench::{peak_rss_kb, EXPERIMENT_NOW};
use nsec3_core::experiments::{DriverConfig, DEFAULT_LAB_SEED};
use nsec3_core::serving::{run_serving_cfg, ServingReport, ServingScenario};
use popgen::domains::{DnssecKind, DomainSpec};
use popgen::traffic::{QueryMix, TrafficModel};
use popgen::{DomainGenerator, Scale};

const POPULATION_SEED: u64 = 42;
/// Signed NSEC3 zones in the serving population.
const ZONES: usize = 24;
/// Resolver instances the clients partition across.
const FLEET: usize = 4;
/// Minimum upstream-NXDOMAIN reduction the aggressive fleet must show.
const COLLAPSE_FLOOR: f64 = 2.0;
/// Minimum warm-fleet throughput, queries per second of host wall time.
const QPS_FLOOR: f64 = 10_000.0;

/// FNV-1a over the rendered report — the cross-thread identity check,
/// same construction as the census scale sweep.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The first `ZONES` non-opt-out NSEC3 zones of the calibrated
/// population — the domains whose denial chains the fleet can cache
/// aggressively.
fn population() -> Vec<DomainSpec> {
    let generator = DomainGenerator::new(Scale(1.0 / 3_020.0), POPULATION_SEED);
    let mut out = Vec::with_capacity(ZONES);
    let mut i = 0u64;
    while out.len() < ZONES && i < generator.len() {
        let spec = generator.get(i);
        if matches!(spec.dnssec, DnssecKind::Nsec3 { opt_out: false, .. }) {
            out.push(spec);
        }
        i += 1;
    }
    assert_eq!(out.len(), ZONES, "population too small");
    out
}

fn traffic(clients: u64, qpc: u64, mix: QueryMix) -> TrafficModel {
    TrafficModel::new(clients, qpc, POPULATION_SEED).with_mix(mix)
}

/// Run one arm, timing it and checking the 1/2/4-thread digests agree.
fn run_arm(name: &str, scenario: &ServingScenario) -> (ServingReport, f64, u64) {
    let t0 = std::time::Instant::now();
    let report = run_serving_cfg(
        scenario,
        &DriverConfig::clean(EXPERIMENT_NOW, 1, DEFAULT_LAB_SEED),
    );
    let wall_s = t0.elapsed().as_secs_f64();
    let digest = fnv1a(&report.rendered());
    for threads in [2usize, 4] {
        let again = run_serving_cfg(
            scenario,
            &DriverConfig::clean(EXPERIMENT_NOW, threads, DEFAULT_LAB_SEED),
        );
        assert_eq!(
            fnv1a(&again.rendered()),
            digest,
            "{name}: threads={threads} diverged from threads=1"
        );
    }
    (report, wall_s, digest)
}

/// Child mode: one serving run, one machine-readable line — fresh
/// address space so `VmHWM` is per-point.
fn child_main(clients: u64, qpc: u64, threads: usize) {
    let scenario = ServingScenario::new(
        population(),
        traffic(clients, qpc, QueryMix::nxdomain_heavy()),
    )
    .with_fleet(FLEET);
    let t0 = std::time::Instant::now();
    let report = run_serving_cfg(
        &scenario,
        &DriverConfig::clean(EXPERIMENT_NOW, threads, DEFAULT_LAB_SEED),
    );
    println!(
        "POINT queries={} wall_ms={:.1} peak_rss_kb={} digest={:#018x}",
        report.tally.queries,
        t0.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb().unwrap_or(0),
        fnv1a(&report.rendered())
    );
}

struct RssPoint {
    queries: u64,
    wall_ms: f64,
    peak_rss_kb: u64,
}

/// Re-exec ourselves for one RSS point and parse the `POINT` line.
fn rss_point(clients: u64, qpc: u64, threads: usize) -> RssPoint {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(&exe)
        .args([
            "--point",
            &clients.to_string(),
            &qpc.to_string(),
            &threads.to_string(),
        ])
        .output()
        .expect("spawn serving point");
    assert!(
        out.status.success(),
        "serving point {clients}x{qpc} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("POINT "))
        .unwrap_or_else(|| panic!("no POINT line from {clients}x{qpc}"));
    let mut p = RssPoint {
        queries: 0,
        wall_ms: 0.0,
        peak_rss_kb: 0,
    };
    for field in line.trim_start_matches("POINT ").split_whitespace() {
        match field.split_once('=') {
            Some(("queries", v)) => p.queries = v.parse().expect("queries"),
            Some(("wall_ms", v)) => p.wall_ms = v.parse().expect("wall_ms"),
            Some(("peak_rss_kb", v)) => p.peak_rss_kb = v.parse().expect("peak_rss_kb"),
            _ => {}
        }
    }
    p
}

/// Reduced-sample CI gate: collapse factor plus an absolute RSS ceiling.
fn smoke(threads: usize, ceiling_mb: u64) -> ! {
    let base = ServingScenario::new(population(), traffic(16, 100, QueryMix::nxdomain_heavy()))
        .with_fleet(FLEET);
    let cfg = DriverConfig::clean(EXPERIMENT_NOW, threads, DEFAULT_LAB_SEED);
    let on = run_serving_cfg(&base, &cfg);
    let off = run_serving_cfg(&base.clone().with_aggressive(false), &cfg);
    let factor = off.tally.upstream_nxdomain as f64 / on.tally.upstream_nxdomain.max(1) as f64;
    let peak_kb = peak_rss_kb().unwrap_or(0);
    println!(
        "smoke: {} queries, {} thread(s): upstream NXDOMAIN {} -> {} ({factor:.1}x), \
         local answers {:.1} %, peak RSS {} MB (ceiling {ceiling_mb} MB)",
        on.tally.queries,
        threads,
        off.tally.upstream_nxdomain,
        on.tally.upstream_nxdomain,
        on.tally.local_answer_share() * 100.0,
        peak_kb / 1024,
    );
    if factor < COLLAPSE_FLOOR {
        eprintln!("error: upstream-NXDOMAIN collapse {factor:.2}x is below {COLLAPSE_FLOOR}x");
        std::process::exit(1);
    }
    if peak_kb > ceiling_mb * 1024 {
        eprintln!(
            "error: serving smoke peak RSS {} MB exceeds the {ceiling_mb} MB ceiling",
            peak_kb / 1024
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--point") {
        let clients: u64 = args[i + 1]
            .parse()
            .expect("--point <clients> <qpc> <threads>");
        let qpc: u64 = args[i + 2]
            .parse()
            .expect("--point <clients> <qpc> <threads>");
        let threads: usize = args[i + 3]
            .parse()
            .expect("--point <clients> <qpc> <threads>");
        child_main(clients, qpc, threads);
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        let mut threads = sim_par::default_threads();
        let mut ceiling_mb = 512u64;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--threads" if i + 1 < args.len() => {
                    threads = args[i + 1].parse().unwrap_or(threads);
                    i += 2;
                }
                "--rss-ceiling-mb" if i + 1 < args.len() => {
                    ceiling_mb = args[i + 1].parse().unwrap_or(ceiling_mb);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        smoke(threads, ceiling_mb);
    }

    println!("production serving benchmark ({ZONES} zones, fleet of {FLEET}, Zipf skew 1.0)\n");

    // Gate 1: upstream-NXDOMAIN collapse under the water-torture mix.
    let collapse_base =
        ServingScenario::new(population(), traffic(64, 1_000, QueryMix::nxdomain_heavy()))
            .with_fleet(FLEET);
    let (on, on_wall, on_digest) = run_arm("collapse/aggressive-on", &collapse_base);
    let (off, off_wall, _) = run_arm(
        "collapse/aggressive-off",
        &collapse_base.clone().with_aggressive(false),
    );
    let collapse = off.tally.upstream_nxdomain as f64 / on.tally.upstream_nxdomain.max(1) as f64;
    println!(
        "  collapse: upstream NXDOMAIN {} -> {} ({collapse:.1}x), upstream messages {} -> {}",
        off.tally.upstream_nxdomain,
        on.tally.upstream_nxdomain,
        off.tally.upstream_messages,
        on.tally.upstream_messages
    );
    println!(
        "  hash bill: {} NSEC3 hashes on vs {} off (RFC 8198 trades CPU for wire)",
        on.tally.nsec3_hashes, off.tally.nsec3_hashes
    );
    assert!(
        collapse >= COLLAPSE_FLOOR,
        "aggressive caching collapsed upstream NXDOMAIN only {collapse:.2}x (< {COLLAPSE_FLOOR}x)"
    );

    // Gate 2: warm p99 vs cold p50, plus the throughput floor.
    let warm_base = ServingScenario::new(population(), traffic(64, 1_000, QueryMix::browsing()))
        .with_fleet(FLEET);
    let (warm, warm_wall, warm_digest) = run_arm("latency/warm", &warm_base);
    let (cold, _, _) = run_arm(
        "latency/cold",
        &ServingScenario::new(population(), traffic(8, 100, QueryMix::browsing()))
            .with_fleet(FLEET)
            .cold(),
    );
    let warm_qps = warm.tally.queries as f64 / warm_wall;
    println!(
        "\n  latency: warm p50/p99 {}/{} us vs cold p50/p99 {}/{} us",
        warm.tally.p50_micros(),
        warm.tally.p99_micros(),
        cold.tally.p50_micros(),
        cold.tally.p99_micros()
    );
    println!(
        "  warm fleet: {:.0} q/s wall, answer-cache hit ratio {:.1} %, {:.1} % answered locally",
        warm_qps,
        warm.tally.answer_hit_ratio() * 100.0,
        warm.tally.local_answer_share() * 100.0
    );
    assert!(
        warm.tally.p99_micros() < cold.tally.p50_micros(),
        "warm p99 {} us must undercut cold p50 {} us",
        warm.tally.p99_micros(),
        cold.tally.p50_micros()
    );
    assert!(
        warm_qps >= QPS_FLOOR,
        "warm fleet served {warm_qps:.0} q/s, below the {QPS_FLOOR} q/s floor"
    );

    // Gate 3: flat RSS from 100 K to 1 M queries (fresh child per point).
    let small = rss_point(200, 500, 2);
    let large = rss_point(200, 5_000, 2);
    assert_eq!(small.queries, 100_000);
    assert_eq!(large.queries, 1_000_000);
    println!(
        "\n  memory: {} queries at {:.1} MB peak -> {} queries at {:.1} MB peak ({:.1} ms -> {:.1} ms)",
        small.queries,
        small.peak_rss_kb as f64 / 1024.0,
        large.queries,
        large.peak_rss_kb as f64 / 1024.0,
        small.wall_ms,
        large.wall_ms
    );
    let slack_kb = (small.peak_rss_kb / 2).max(64 * 1024);
    assert!(
        large.peak_rss_kb <= small.peak_rss_kb + slack_kb,
        "1M-query peak RSS {} KB is not flat against the 100K-query {} KB",
        large.peak_rss_kb,
        small.peak_rss_kb
    );

    println!("\n  [digests identical at 1/2/4 threads on every arm]");

    let json = format!(
        "{{\n  \"suite\": \"serving\",\n  \"zones\": {ZONES},\n  \"fleet\": {FLEET},\n  \"results\": [\n    \
         {{\"name\": \"collapse/upstream_nxdomain_off\", \"value\": {}}},\n    \
         {{\"name\": \"collapse/upstream_nxdomain_on\", \"value\": {}}},\n    \
         {{\"name\": \"collapse/factor\", \"value\": {collapse:.2}}},\n    \
         {{\"name\": \"collapse/wall_s_on\", \"value\": {on_wall:.2}}},\n    \
         {{\"name\": \"collapse/wall_s_off\", \"value\": {off_wall:.2}}},\n    \
         {{\"name\": \"warm/qps\", \"value\": {warm_qps:.0}}},\n    \
         {{\"name\": \"warm/p50_us\", \"value\": {}}},\n    \
         {{\"name\": \"warm/p99_us\", \"value\": {}}},\n    \
         {{\"name\": \"warm/answer_hit_ratio\", \"value\": {:.4}}},\n    \
         {{\"name\": \"warm/local_answer_share\", \"value\": {:.4}}},\n    \
         {{\"name\": \"cold/p50_us\", \"value\": {}}},\n    \
         {{\"name\": \"cold/p99_us\", \"value\": {}}},\n    \
         {{\"name\": \"rss/peak_kb_100k\", \"value\": {}}},\n    \
         {{\"name\": \"rss/peak_kb_1m\", \"value\": {}}},\n    \
         {{\"name\": \"digest/collapse_on\", \"value\": \"{on_digest:#018x}\"}},\n    \
         {{\"name\": \"digest/warm\", \"value\": \"{warm_digest:#018x}\"}}\n  ]\n}}\n",
        off.tally.upstream_nxdomain,
        on.tally.upstream_nxdomain,
        warm.tally.p50_micros(),
        warm.tally.p99_micros(),
        warm.tally.answer_hit_ratio(),
        warm.tally.local_answer_share(),
        cold.tally.p50_micros(),
        cold.tally.p99_micros(),
        small.peak_rss_kb,
        large.peak_rss_kb,
    );
    match std::fs::write("BENCH_serving.json", &json) {
        Ok(()) => println!("  [wrote BENCH_serving.json]"),
        Err(e) => eprintln!("  [failed to write BENCH_serving.json: {e}]"),
    }
}
