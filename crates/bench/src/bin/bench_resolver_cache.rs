//! Microbenchmarks for the resolver's [`TtlCache`] — the structure every
//! census and study query passes through (once for the answer cache, once
//! for the validated-key cache).
//!
//! Three cost regimes matter to the pipelines:
//!
//! * **eviction churn** — inserts at capacity trigger the
//!   collect-expired-then-arbitrary eviction scan;
//! * **TTL-expiry churn** — lookups that find only expired entries pay a
//!   removal on the read path;
//! * **steady-state mixes** — a Zipf-distributed query stream (the shape
//!   of real resolver traffic, heavy head + long tail) against the two
//!   cache geometries the resolver actually deploys: the wide answer
//!   cache (capacity 4096, large key universe) and the narrow
//!   validated-key cache (capacity 512, one key per zone).
//!
//! Results land in `BENCH_resolver_cache.json` via the shared
//! [`heroes_bench::microbench`] runner; hit ratios for the steady-state
//! mixes are printed after the timing table.

use dns_resolver::TtlCache;
use heroes_bench::microbench::Suite;
use sim_rng::{Rng, Xoshiro256pp};

/// Zipf(s = 1.0) sampler over ranks `0..n` via inverse-CDF lookup.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / rank as f64;
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> usize {
        let total = *self.cdf.last().expect("non-empty universe");
        let u = rng.next_f64() * total;
        self.cdf.partition_point(|&c| c <= u)
    }
}

/// A pre-sampled Zipf query stream over a `String` key universe, so the
/// timed loop measures the cache, not the sampler.
fn query_stream(universe: usize, queries: usize, seed: u64) -> (Vec<String>, Vec<usize>) {
    let keys: Vec<String> = (0..universe).map(|i| format!("d{i}.example./A")).collect();
    let zipf = Zipf::new(universe);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let stream: Vec<usize> = (0..queries).map(|_| zipf.sample(&mut rng)).collect();
    (keys, stream)
}

/// Run `stream` through a fresh cache of `capacity`; report the hit rate.
fn hit_ratio(capacity: usize, keys: &[String], stream: &[usize]) -> f64 {
    let cache: TtlCache<String, u32> = TtlCache::new(capacity);
    let mut now = 0u64;
    for &idx in stream {
        now += 1_000; // 1 ms of virtual time per query
        if cache.get(&keys[idx], now).is_none() {
            cache.put(keys[idx].clone(), idx as u32, now, 300);
        }
    }
    cache.hits() as f64 / (cache.hits() + cache.misses()) as f64
}

fn main() {
    println!("TtlCache microbenchmarks (answer cache: cap 4096; key cache: cap 512)");
    let mut suite = Suite::new("resolver_cache");

    // Eviction churn: the cache sits exactly at capacity and every insert
    // is a fresh key, forcing the eviction scan each time.
    {
        let cache: TtlCache<u64, u64> = TtlCache::new(1024);
        for k in 0..1024u64 {
            cache.put(k, k, 0, 3_600);
        }
        let mut next_key = 1024u64;
        suite.bench("churn/eviction-at-capacity", || {
            cache.put(next_key, next_key, 0, 3_600);
            next_key += 1;
            next_key
        });
    }

    // TTL-expiry churn: entries live 1 s, virtual time advances 2 s per
    // operation, so every get finds an expired entry and removes it.
    {
        let cache: TtlCache<u64, u64> = TtlCache::new(1024);
        let mut now = 0u64;
        suite.bench("churn/ttl-expiry", || {
            cache.put(7, 7, now, 1);
            now += 2_000_000;
            cache.get(&7, now)
        });
    }

    // Steady-state Zipf mixes: answer-cache geometry (wide universe, most
    // of the tail misses) vs key-cache geometry (universe fits entirely).
    let (wide_keys, wide_stream) = query_stream(20_000, 100_000, 42);
    let (narrow_keys, narrow_stream) = query_stream(300, 100_000, 43);
    {
        let cache: TtlCache<String, u32> = TtlCache::new(4096);
        let mut now = 0u64;
        let mut cursor = 0usize;
        suite.bench("zipf/answer-cache-4096", || {
            let idx = wide_stream[cursor % wide_stream.len()];
            cursor += 1;
            now += 1_000;
            if cache.get(&wide_keys[idx], now).is_none() {
                cache.put(wide_keys[idx].clone(), idx as u32, now, 300);
            }
            cursor
        });
    }
    {
        let cache: TtlCache<String, u32> = TtlCache::new(512);
        let mut now = 0u64;
        let mut cursor = 0usize;
        suite.bench("zipf/key-cache-512", || {
            let idx = narrow_stream[cursor % narrow_stream.len()];
            cursor += 1;
            now += 1_000;
            if cache.get(&narrow_keys[idx], now).is_none() {
                cache.put(narrow_keys[idx].clone(), idx as u32, now, 300);
            }
            cursor
        });
    }

    println!("\nsteady-state hit ratios over 100 K Zipf(1.0) queries:");
    let answer = hit_ratio(4096, &wide_keys, &wide_stream);
    let key = hit_ratio(512, &narrow_keys, &narrow_stream);
    println!(
        "  answer-cache geometry (cap 4096, 20 K keys): {:.1} % hits",
        answer * 100.0
    );
    println!(
        "  key-cache geometry    (cap  512, 300 keys):  {:.1} % hits",
        key * 100.0
    );
    assert!(
        key > answer,
        "the narrow key cache must out-hit the wide answer cache"
    );

    suite.finish();
}
