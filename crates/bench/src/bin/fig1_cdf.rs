//! E1 — Figure 1: CDFs of the salt length and the number of additional
//! iterations over all NSEC3-enabled domains.
//!
//! Paper landmarks: 12.2 % at 0 iterations; > 99.9 % at ≤ 25; long tail
//! to 500 (12 domains). Salt: 8.6 % at 0 bytes; 97.2 % ≤ 10 bytes; tail
//! to 160 bytes (9 domains).

use analysis::{cdf_csv, cdf_svg, compare_line, fmt_pct, render_cdf, DomainStats};
use heroes_bench::{fmt_scale, header, write_artifact, Options};
use nsec3_core::experiments::records_from_specs;
use popgen::{generate_domains, Scale};

fn main() {
    let opts = Options::parse(Scale::BENCH);
    println!(
        "Figure 1 at scale {} (seed {})",
        fmt_scale(opts.scale),
        opts.seed
    );
    let specs = generate_domains(opts.scale, opts.seed);
    let records = records_from_specs(&specs);
    let stats = DomainStats::compute(&records);

    header("CDF of additional iterations (NSEC3-enabled domains)");
    print!(
        "{}",
        render_cdf("No. of additional iterations", &stats.iterations_cdf, 50)
    );
    print!(
        "{}",
        compare_line(
            "at 0 iterations",
            "12.2 %",
            &fmt_pct(stats.iterations_cdf.fraction_at_most(0) * 100.0)
        )
    );
    print!(
        "{}",
        compare_line(
            "at ≤ 25 iterations",
            "99.9 %",
            &format!("{:.2} %", stats.iterations_cdf.fraction_at_most(25) * 100.0)
        )
    );
    print!(
        "{}",
        compare_line(
            "domains at exactly 500 (max)",
            "12",
            &(stats.iterations_cdf.count_over(499) - stats.iterations_cdf.count_over(500))
                .to_string()
        )
    );

    header("CDF of salt length (NSEC3-enabled domains)");
    print!("{}", render_cdf("Salt length (bytes)", &stats.salt_cdf, 50));
    print!(
        "{}",
        compare_line(
            "at 0 bytes (no salt)",
            "8.6 %",
            &fmt_pct(stats.salt_cdf.fraction_at_most(0) * 100.0)
        )
    );
    print!(
        "{}",
        compare_line(
            "at ≤ 10 bytes",
            "97.2 %",
            &format!("{:.2} %", stats.salt_cdf.fraction_at_most(10) * 100.0)
        )
    );
    print!(
        "{}",
        compare_line(
            "salts at exactly 160 bytes (max)",
            "9",
            &(stats.salt_cdf.count_over(159) - stats.salt_cdf.count_over(160)).to_string()
        )
    );

    write_artifact("fig1_iterations_cdf.csv", &cdf_csv(&stats.iterations_cdf));
    write_artifact("fig1_salt_cdf.csv", &cdf_csv(&stats.salt_cdf));
    write_artifact(
        "fig1_iterations_cdf.svg",
        &cdf_svg(
            "Figure 1: CDF of additional iterations (NSEC3-enabled domains)",
            "No. of add. it.",
            &stats.iterations_cdf,
            50,
        ),
    );
    write_artifact(
        "fig1_salt_cdf.svg",
        &cdf_svg(
            "Figure 1: CDF of salt length (NSEC3-enabled domains)",
            "Salt length (B)",
            &stats.salt_cdf,
            50,
        ),
    );
}
