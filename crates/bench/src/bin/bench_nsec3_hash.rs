//! Micro-bench: the NSEC3 hash itself — the primitive whose repetition
//! is CVE-2023-50868. Sweeps iterations and salt length (DESIGN.md
//! ablation 1), then races the single-block fast engine against the
//! streaming reference (`fastpath_vs_reference`) after asserting the two
//! agree byte for byte — digest *and* compressions — on every measured
//! parameter set. Writes `BENCH_nsec3_hash.json`.

use std::hint::black_box;

use dns_wire::name::{name, Name};
use dns_zone::nsec3hash::{
    clear_thread_cache, nsec3_hash, nsec3_hash_batch, nsec3_hash_cached, nsec3_hash_cached_batch,
    nsec3_hash_reference, Nsec3Params,
};
use heroes_bench::microbench::Suite;

fn main() {
    let mut suite = Suite::new("nsec3_hash");

    let n = name("some-average-length-label.example.com.");

    // Parity gate: a speedup that changes a digest or a compressions
    // count would invalidate every number below.
    for iterations in [0u16, 1, 10, 50, 150, 500, 2500] {
        for salt_len in [0usize, 8, 35, 36, 64, 255] {
            let params = Nsec3Params::new(iterations, vec![0xab; salt_len]);
            let fast = nsec3_hash(&n, &params);
            let reference = nsec3_hash_reference(&n, &params);
            assert_eq!(
                fast, reference,
                "fast engine diverged at iterations={iterations} salt_len={salt_len}"
            );
        }
    }
    println!("  parity: fast engine == streaming reference on all measured parameter sets");

    // Batch parity gate: the interleaved lanes must agree with the scalar
    // engine — digest *and* compressions — on every measured shape, ragged
    // batch sizes included. A lane that drifted would invalidate the batch
    // rows below (and the signer/scanner/census paths that use them).
    let batch_names: Vec<Name> = (0..16)
        .map(|i| name(&format!("lane{i:02}-some-average-label.example.com.")))
        .collect();
    for iterations in [0u16, 1, 150, 500, 2500] {
        for salt_len in [0usize, 8, 35, 36, 64] {
            let params = Nsec3Params::new(iterations, vec![0xab; salt_len]);
            for size in [1usize, 3, 7, 8, 16] {
                let batch = nsec3_hash_batch(&batch_names[..size], &params);
                for (bn, got) in batch_names[..size].iter().zip(&batch) {
                    assert_eq!(
                        *got,
                        nsec3_hash(bn, &params),
                        "batch lane diverged at iterations={iterations} salt_len={salt_len} size={size}"
                    );
                }
            }
        }
    }
    println!("  parity: batch lanes == scalar engine on all measured batch shapes");

    for iterations in [0u16, 1, 10, 50, 150, 500, 2500] {
        let params = Nsec3Params::new(iterations, vec![]);
        suite.bench(&format!("iterations/{iterations}"), || {
            nsec3_hash(black_box(&n), black_box(&params))
        });
    }

    for salt_len in [0usize, 8, 64, 255] {
        let params = Nsec3Params::new(150, vec![0xab; salt_len]);
        suite.bench(&format!("salt_len_at_150_iterations/{salt_len}"), || {
            nsec3_hash(black_box(&n), black_box(&params))
        });
    }

    let www = name("www.example.com.");
    let presets: [(&str, Nsec3Params); 4] = [
        ("presets/rfc9276_zero_no_salt", Nsec3Params::rfc9276()),
        (
            "presets/squarespace_1_8",
            Nsec3Params::new(1, vec![0xab; 8]),
        ),
        (
            "presets/identity_digital_100_8",
            Nsec3Params::new(100, vec![0xab; 8]),
        ),
        (
            "presets/wild_maximum_500_8",
            Nsec3Params::new(500, vec![0xab; 8]),
        ),
    ];
    for (label, p) in presets {
        suite.bench(label, || nsec3_hash(black_box(&www), &p));
    }

    // Head-to-head rows: the single-block engine vs the streaming
    // reference it replaced, at the iteration counts the paper's cost
    // model cares about, plus the thread-local cache on a hot key.
    for iterations in [0u16, 150, 500] {
        let params = Nsec3Params::new(iterations, vec![]);
        suite.bench(&format!("fastpath_vs_reference/fast_{iterations}"), || {
            nsec3_hash(black_box(&n), black_box(&params))
        });
        suite.bench(
            &format!("fastpath_vs_reference/reference_{iterations}"),
            || nsec3_hash_reference(black_box(&n), black_box(&params)),
        );
    }
    let params = Nsec3Params::new(500, vec![]);
    clear_thread_cache();
    suite.bench("fastpath_vs_reference/cached_500", || {
        nsec3_hash_cached(black_box(&n), black_box(&params))
    });

    // Batch rows: eight independent names — the signer's shard shape —
    // hashed one at a time vs through the interleaved lanes. `scalar8_*`
    // and `batch8_*` medians are directly comparable (same eight names,
    // same total work); the ragged and 16-lane rows pin the fallback and
    // the two-pass shapes.
    let eight = &batch_names[..8];
    for iterations in [0u16, 150, 500] {
        let params = Nsec3Params::new(iterations, vec![]);
        suite.bench(&format!("batch/scalar8_{iterations}"), || {
            for bn in eight {
                black_box(nsec3_hash(black_box(bn), &params));
            }
        });
        suite.bench(&format!("batch/batch8_{iterations}"), || {
            nsec3_hash_batch(black_box(eight), black_box(&params))
        });
    }
    let params = Nsec3Params::new(500, vec![]);
    suite.bench("batch/batch16_500", || {
        nsec3_hash_batch(black_box(&batch_names), black_box(&params))
    });
    suite.bench("batch/batch7_ragged_500", || {
        nsec3_hash_batch(black_box(&batch_names[..7]), black_box(&params))
    });
    clear_thread_cache();
    suite.bench("batch/cached_batch8_500", || {
        nsec3_hash_cached_batch(black_box(eight), black_box(&params))
    });

    suite.finish();
}
