//! Micro-bench: the NSEC3 hash itself — the primitive whose repetition
//! is CVE-2023-50868. Sweeps iterations and salt length (DESIGN.md
//! ablation 1), then races the single-block fast engine against the
//! streaming reference (`fastpath_vs_reference`) after asserting the two
//! agree byte for byte — digest *and* compressions — on every measured
//! parameter set. Writes `BENCH_nsec3_hash.json`.

use std::hint::black_box;

use dns_wire::name::name;
use dns_zone::nsec3hash::{
    clear_thread_cache, nsec3_hash, nsec3_hash_cached, nsec3_hash_reference, Nsec3Params,
};
use heroes_bench::microbench::Suite;

fn main() {
    let mut suite = Suite::new("nsec3_hash");

    let n = name("some-average-length-label.example.com.");

    // Parity gate: a speedup that changes a digest or a compressions
    // count would invalidate every number below.
    for iterations in [0u16, 1, 10, 50, 150, 500, 2500] {
        for salt_len in [0usize, 8, 35, 36, 64, 255] {
            let params = Nsec3Params::new(iterations, vec![0xab; salt_len]);
            let fast = nsec3_hash(&n, &params);
            let reference = nsec3_hash_reference(&n, &params);
            assert_eq!(
                fast, reference,
                "fast engine diverged at iterations={iterations} salt_len={salt_len}"
            );
        }
    }
    println!("  parity: fast engine == streaming reference on all measured parameter sets");
    for iterations in [0u16, 1, 10, 50, 150, 500, 2500] {
        let params = Nsec3Params::new(iterations, vec![]);
        suite.bench(&format!("iterations/{iterations}"), || {
            nsec3_hash(black_box(&n), black_box(&params))
        });
    }

    for salt_len in [0usize, 8, 64, 255] {
        let params = Nsec3Params::new(150, vec![0xab; salt_len]);
        suite.bench(&format!("salt_len_at_150_iterations/{salt_len}"), || {
            nsec3_hash(black_box(&n), black_box(&params))
        });
    }

    let www = name("www.example.com.");
    let presets: [(&str, Nsec3Params); 4] = [
        ("presets/rfc9276_zero_no_salt", Nsec3Params::rfc9276()),
        (
            "presets/squarespace_1_8",
            Nsec3Params::new(1, vec![0xab; 8]),
        ),
        (
            "presets/identity_digital_100_8",
            Nsec3Params::new(100, vec![0xab; 8]),
        ),
        (
            "presets/wild_maximum_500_8",
            Nsec3Params::new(500, vec![0xab; 8]),
        ),
    ];
    for (label, p) in presets {
        suite.bench(label, || nsec3_hash(black_box(&www), &p));
    }

    // Head-to-head rows: the single-block engine vs the streaming
    // reference it replaced, at the iteration counts the paper's cost
    // model cares about, plus the thread-local cache on a hot key.
    for iterations in [0u16, 150, 500] {
        let params = Nsec3Params::new(iterations, vec![]);
        suite.bench(&format!("fastpath_vs_reference/fast_{iterations}"), || {
            nsec3_hash(black_box(&n), black_box(&params))
        });
        suite.bench(
            &format!("fastpath_vs_reference/reference_{iterations}"),
            || nsec3_hash_reference(black_box(&n), black_box(&params)),
        );
    }
    let params = Nsec3Params::new(500, vec![]);
    clear_thread_cache();
    suite.bench("fastpath_vs_reference/cached_500", || {
        nsec3_hash_cached(black_box(&n), black_box(&params))
    });

    suite.finish();
}
