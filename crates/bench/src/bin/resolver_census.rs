//! E8–E11 — the §5.2 resolver statistics: validator discovery, RFC 9276
//! item 6/8 adoption and thresholds, EDE support, item 7 violations, and
//! item 12 gaps.
//!
//! Paper landmarks: 105.2 K open-IPv4 / 6.8 K open-IPv6 / 1,236 + 689
//! closed validators; 78.3 % limit iterations; 59.9 % item 6; 18.4 %
//! item 8; thresholds 150 ≫ 100 ≫ 50 (12.5× fewer at 50 than 150);
//! SERVFAIL from it-1 (418 resolvers) and it-101 (92); < 18 % EDE 27;
//! 0.2 % item 7 violations; 4.3 % item 12 gaps.

use analysis::{compare_line, fmt_pct, ResolverStats};
use heroes_bench::{fmt_scale, header, Options, EXPERIMENT_NOW};
use nsec3_core::experiments::{
    run_resolver_study_cfg, run_unreachability_cfg, DriverConfig, DEFAULT_LAB_SEED,
};
use popgen::{generate_domains, generate_fleet, Scale};

fn main() {
    let opts = Options::parse(Scale(1.0 / 200.0));
    println!(
        "§5.2 resolver census at fleet scale {} (seed {})",
        fmt_scale(opts.scale),
        opts.seed
    );
    let fleet = generate_fleet(opts.scale, opts.seed);
    let t0 = std::time::Instant::now();
    let study = run_resolver_study_cfg(
        &fleet,
        &DriverConfig::clean(EXPERIMENT_NOW, opts.threads, DEFAULT_LAB_SEED),
    );
    let all = study.all();
    println!(
        "probed {} resolvers across 4 pools in {:?} ({} worker thread(s))",
        all.len(),
        t0.elapsed(),
        opts.threads
    );

    let stats = ResolverStats::compute(&all);
    header("Validator discovery");
    for (panel, cls) in &study.per_panel {
        let v = cls.iter().filter(|c| c.is_validator).count();
        println!(
            "  {:<18} {:>6} responsive, {:>5} validators",
            panel.title(),
            cls.len(),
            v
        );
    }

    header("RFC 9276 adoption among validators");
    print!(
        "{}",
        compare_line(
            "limit iterations at all",
            "78.3 %",
            &fmt_pct(stats.limiting_pct())
        )
    );
    print!(
        "{}",
        compare_line(
            "item 6 (insecure above limit)",
            "59.9 %",
            &fmt_pct(stats.item6_pct())
        )
    );
    print!(
        "{}",
        compare_line(
            "item 8 (SERVFAIL above limit)",
            "18.4 %",
            &fmt_pct(stats.item8_pct())
        )
    );
    print!(
        "{}",
        compare_line(
            "item 12 gap (insecure then SERVFAIL)",
            "4.3 %",
            &fmt_pct(stats.item12_gap_pct())
        )
    );
    print!(
        "{}",
        compare_line(
            "item 7 violations (of insecure responders)",
            "0.2 %",
            &fmt_pct(stats.item7_violation_pct())
        )
    );
    print!(
        "{}",
        compare_line(
            "EDE 27 among limiting validators",
            "< 18 %",
            &fmt_pct(stats.ede27_of_limiting_pct())
        )
    );

    header("Insecure-limit histogram (item 6 thresholds)");
    for (limit, count) in &stats.insecure_limits {
        println!("  limit {limit:>4}: {count:>6} validators");
    }
    let at150 = stats.insecure_limits.get(&150).copied().unwrap_or(0);
    let at50 = stats.insecure_limits.get(&50).copied().unwrap_or(0).max(1);
    print!(
        "{}",
        compare_line(
            "ratio of limit-150 to limit-50 validators",
            "12.5x",
            &format!("{:.1}x", at150 as f64 / at50 as f64)
        )
    );

    header("SERVFAIL-start histogram (item 8 thresholds)");
    for (start, count) in &stats.servfail_starts {
        println!("  first SERVFAIL at it-{start}: {count:>6} validators");
    }
    print!(
        "{}",
        compare_line(
            "SERVFAIL from it-1 (query copiers)",
            "418 (full scale)",
            &stats
                .servfail_starts
                .get(&1)
                .copied()
                .unwrap_or(0)
                .to_string()
        )
    );
    print!(
        "{}",
        compare_line(
            "SERVFAIL from it-101 (Technitium-style)",
            "92 (full scale)",
            &stats
                .servfail_starts
                .get(&101)
                .copied()
                .unwrap_or(0)
                .to_string()
        )
    );
    print!(
        "{}",
        compare_line(
            "copier RA fingerprint (RA not set)",
            "yes",
            &format!("{} resolvers", stats.ra_missing)
        )
    );

    header("Unreachability implication (§5.2 / abstract), measured end to end");
    // A sample of real NSEC3-enabled zones, resolved through a strict
    // (SERVFAIL-from-it-1) resolver: the 418-resolver failure mode.
    // 1/10,000 keeps the absolute tail injections (213 domains) a small
    // fraction of the NSEC3 sample, so the share stays calibrated.
    let domains = generate_domains(Scale(1.0 / 10_000.0), opts.seed);
    let result = run_unreachability_cfg(
        &domains,
        250,
        &DriverConfig::clean(EXPERIMENT_NOW, opts.threads, DEFAULT_LAB_SEED),
    )
    .0;
    print!(
        "{}",
        compare_line(
            "NSEC3-enabled domains probed through a strict resolver",
            "13.6 M + 1.9 M at full scale",
            &result.probed.to_string()
        )
    );
    print!(
        "{}",
        compare_line(
            "rendered unreachable on negative lookups",
            "87.8 %",
            &fmt_pct(result.unreachable_pct())
        )
    );
    println!("  (the paper's 13.6 M = 87.8 % of 15.5 M NSEC3-enabled domains; the strict class");
    println!("  is the 418 it-1 SERVFAIL resolvers observed in §5.2)");
}
