//! Bench: message encode/decode throughput and the name compression
//! trade-off (DESIGN.md ablation 3). Writes `BENCH_wire.json`.

use std::hint::black_box;

use dns_wire::buf::Writer;
use dns_wire::message::Message;
use dns_wire::name::name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;
use heroes_bench::microbench::Suite;

fn sample_response() -> Message {
    let q = Message::query(7, name("host.service.dept.example.com."), RrType::A);
    let mut resp = Message::response_to(&q);
    resp.flags.aa = true;
    for i in 0..8 {
        resp.answers.push(Record::new(
            name("host.service.dept.example.com."),
            300,
            RData::A(format!("192.0.2.{i}").parse().unwrap()),
        ));
    }
    for i in 0..4 {
        resp.authorities.push(Record::new(
            name("example.com."),
            3600,
            RData::Ns(name(&format!("ns{i}.dns.example.com."))),
        ));
        resp.additionals.push(Record::new(
            name(&format!("ns{i}.dns.example.com.")),
            3600,
            RData::A(format!("198.51.100.{i}").parse().unwrap()),
        ));
    }
    resp
}

fn main() {
    let mut suite = Suite::new("wire");

    let resp = sample_response();
    suite.bench("encode_response", || black_box(&resp).encode());
    let encoded = resp.encode();
    suite.bench("decode_response", || {
        Message::decode(black_box(&encoded)).unwrap()
    });

    // Same 20 names written with and without compression.
    let names: Vec<_> = (0..20)
        .map(|i| name(&format!("host{i}.sub.department.example.com.")))
        .collect();
    suite.bench("write_names_compressing", || {
        let mut w = Writer::compressing();
        for n in &names {
            w.name(black_box(n));
        }
        w.finish()
    });
    suite.bench("write_names_plain", || {
        let mut w = Writer::plain();
        for n in &names {
            w.name(black_box(n));
        }
        w.finish()
    });
    // Size comparison printed once for the record.
    let mut wc = Writer::compressing();
    let mut wp = Writer::plain();
    for n in &names {
        wc.name(n);
        wp.name(n);
    }
    eprintln!(
        "compression saves {} of {} bytes on 20 sibling names",
        wp.len() - wc.len(),
        wp.len()
    );

    let rec = Record::new(
        name("0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.example."),
        300,
        RData::Nsec3 {
            hash_alg: 1,
            flags: 1,
            iterations: 100,
            salt: vec![0xaa, 0xbb, 0xcc, 0xdd],
            next_hashed: vec![0x33; 20],
            types: [RrType::A, RrType::RRSIG].into_iter().collect(),
        },
    );
    suite.bench("nsec3_record_encode", || {
        let mut w = Writer::plain();
        black_box(&rec).encode(&mut w);
        w.finish()
    });

    suite.finish();
}
