//! Bench: message encode/decode throughput, the zero-copy view and
//! pooled-buffer paths, the auth answer-template cache, and the name
//! compression trade-off (DESIGN.md ablation 3). Writes `BENCH_wire.json`.
//!
//! Before timing anything, a parity gate asserts that the lazy
//! [`MessageView`] accepts exactly the packets `Message::decode` accepts
//! (and materializes identical messages) over a generated corpus of
//! clean, truncated, and bit-flipped packets. CI runs this binary with
//! reduced samples, so the gate runs on every push.

use std::hint::black_box;
use std::net::IpAddr;
use std::rc::Rc;

use dns_wire::buf::{WireBuf, Writer};
use dns_wire::message::Message;
use dns_wire::name::name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;
use dns_wire::view::MessageView;
use heroes_bench::microbench::Suite;
use netsim::{Network, Node};
use sim_rng::{Rng, Xoshiro256pp};

fn sample_response() -> Message {
    let q = Message::query(7, name("host.service.dept.example.com."), RrType::A);
    let mut resp = Message::response_to(&q);
    resp.flags.aa = true;
    for i in 0..8 {
        resp.answers.push(Record::new(
            name("host.service.dept.example.com."),
            300,
            RData::A(format!("192.0.2.{i}").parse().unwrap()),
        ));
    }
    for i in 0..4 {
        resp.authorities.push(Record::new(
            name("example.com."),
            3600,
            RData::Ns(name(&format!("ns{i}.dns.example.com."))),
        ));
        resp.additionals.push(Record::new(
            name(&format!("ns{i}.dns.example.com.")),
            3600,
            RData::A(format!("198.51.100.{i}").parse().unwrap()),
        ));
    }
    resp
}

/// `MessageView` must agree with `Message::decode` — same accept/reject
/// decision, and identical materialized messages on accept — for every
/// packet in a corpus of clean encodings, every truncation prefix, and
/// seeded random bit flips.
fn view_decode_parity_gate() {
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    corpus.push(Message::query(1, name("www.example.com."), RrType::A).encode());
    let mut plain = Message::query(2, name("a.b.c.d.example."), RrType::TXT);
    plain.edns = None;
    corpus.push(plain.encode());
    corpus.push(sample_response().encode());
    let mut rng = Xoshiro256pp::seed_from_u64(0x9276_2024);
    let mut candidates: Vec<Vec<u8>> = Vec::new();
    for packet in &corpus {
        for cut in 0..packet.len() {
            candidates.push(packet[..cut].to_vec());
        }
        for _ in 0..256 {
            let mut mutated = packet.clone();
            let flips = 1 + (rng.next_u64() % 4) as usize;
            for _ in 0..flips {
                let idx = (rng.next_u64() % mutated.len() as u64) as usize;
                mutated[idx] ^= 1u8 << (rng.next_u64() % 8);
            }
            candidates.push(mutated);
        }
        candidates.push(packet.clone());
    }
    let mut accepted = 0usize;
    for c in &candidates {
        let via_decode = Message::decode(c);
        let via_view = MessageView::parse(c).and_then(|v| v.to_message());
        match (&via_decode, &via_view) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "view and decode disagree on contents");
                // validate() must accept too, without materializing.
                let v = MessageView::parse(c).expect("parse succeeded above");
                assert!(v.validate().is_ok(), "validate rejects a decodable packet");
                accepted += 1;
            }
            (Err(_), Err(_)) => {
                if let Ok(v) = MessageView::parse(c) {
                    assert!(
                        v.validate().is_err(),
                        "validate accepts a packet decode rejects"
                    );
                }
            }
            _ => panic!(
                "acceptance mismatch: decode={:?} view={:?}",
                via_decode.is_ok(),
                via_view.is_ok()
            ),
        }
    }
    eprintln!(
        "parity gate: {} candidates ({} accepted) — view == decode",
        candidates.len(),
        accepted
    );
}

fn main() {
    view_decode_parity_gate();

    let mut suite = Suite::new("wire");

    let resp = sample_response();
    suite.bench("encode_response", || black_box(&resp).encode());
    let encoded = resp.encode();
    suite.bench("decode_response", || {
        Message::decode(black_box(&encoded)).unwrap()
    });
    // The zero-copy read path: parse the header + question, then walk
    // every record structurally (type, class, TTL, RDATA bounds) without
    // materializing names or RDATA. Full RDATA validation (`validate()`)
    // costs about as much as `decode_response` — it decodes every RDATA —
    // and is measured implicitly through `auth_answer_cached` below.
    suite.bench("decode_view", || {
        let v = MessageView::parse(black_box(&encoded)).unwrap();
        let q = v.question().unwrap();
        let mut rdata_bytes = 0usize;
        for item in v.records() {
            let (_, rec) = item.unwrap();
            rdata_bytes += rec.rdata_bytes().len();
        }
        black_box((v.id(), q.qtype(), v.ancount(), rdata_bytes))
    });
    // Encode through the thread-local buffer pool instead of a fresh Vec.
    suite.bench("encode_pooled", || {
        dns_wire::with_pooled(|buf| {
            black_box(&resp).encode_into(buf);
            black_box(buf.len())
        })
    });

    // The auth server's warm answer path: template cache hit, patched in
    // place. Warmed once before timing.
    let auth = auth_fixture();
    let net = Network::new(1);
    let server = Rc::new(auth);
    let src: IpAddr = "10.9.9.9".parse().unwrap();
    let query = Message::query(7, name("host.bench.example."), RrType::A).encode();
    let mut reply = Vec::new();
    server
        .handle(&net, src, &query, &mut reply)
        .expect("warmup answer");
    suite.bench("auth_answer_cached", || {
        reply.clear();
        server.handle(&net, src, black_box(&query), &mut reply);
        black_box(reply.len())
    });

    // Same 20 names written with and without compression.
    let names: Vec<_> = (0..20)
        .map(|i| name(&format!("host{i}.sub.department.example.com.")))
        .collect();
    let mut comp_out = Vec::new();
    let mut comp_scratch = WireBuf::new();
    suite.bench("write_names_compressing", || {
        comp_out.clear();
        let mut w = Writer::compressing(&mut comp_out, &mut comp_scratch);
        for n in &names {
            w.name(black_box(n));
        }
        black_box(comp_out.len())
    });
    let mut plain_out = Vec::new();
    suite.bench("write_names_plain", || {
        plain_out.clear();
        let mut w = Writer::plain(&mut plain_out);
        for n in &names {
            w.name(black_box(n));
        }
        black_box(plain_out.len())
    });
    // Size comparison printed once for the record.
    let (mut wc_out, mut wc_scratch, mut wp_out) = (Vec::new(), WireBuf::new(), Vec::new());
    {
        let mut wc = Writer::compressing(&mut wc_out, &mut wc_scratch);
        let mut wp = Writer::plain(&mut wp_out);
        for n in &names {
            wc.name(n);
            wp.name(n);
        }
    }
    eprintln!(
        "compression saves {} of {} bytes on 20 sibling names",
        wp_out.len() - wc_out.len(),
        wp_out.len()
    );

    let rec = Record::new(
        name("0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.example."),
        300,
        RData::Nsec3 {
            hash_alg: 1,
            flags: 1,
            iterations: 100,
            salt: vec![0xaa, 0xbb, 0xcc, 0xdd],
            next_hashed: vec![0x33; 20],
            types: [RrType::A, RrType::RRSIG].into_iter().collect(),
        },
    );
    let mut rec_out = Vec::new();
    suite.bench("nsec3_record_encode", || {
        rec_out.clear();
        let mut w = Writer::plain(&mut rec_out);
        black_box(&rec).encode(&mut w);
        black_box(rec_out.len())
    });

    suite.finish();
}

/// A signed single-zone server for the warm-path row.
fn auth_fixture() -> dns_auth::AuthServer {
    use dns_zone::signer::{sign_zone, SignerConfig};
    use dns_zone::Zone;
    let mut z = Zone::new(name("bench.example."));
    z.add(Record::new(
        name("bench.example."),
        3600,
        RData::Soa {
            mname: name("ns1.bench.example."),
            rname: name("host.bench.example."),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        },
    ))
    .unwrap();
    z.add(Record::new(
        name("bench.example."),
        3600,
        RData::Ns(name("ns1.bench.example.")),
    ))
    .unwrap();
    z.add(Record::new(
        name("host.bench.example."),
        300,
        RData::A("192.0.2.1".parse().unwrap()),
    ))
    .unwrap();
    let signed = sign_zone(
        &z,
        &SignerConfig::standard(&name("bench.example."), 1_710_000_000),
    )
    .unwrap();
    let server = dns_auth::AuthServer::new();
    server.add_zone(signed);
    server
}
