//! E7 (end-to-end) — the TLD census with all 1,449 TLDs instantiated as
//! real signed zones under the root, scanned over the simulated network,
//! with zone files collected via AXFR from the sharing TLDs (the CZDS
//! substitute) and registered domains counted from them.

use analysis::{compare_line, fmt_pct, pct};
use heroes_bench::{header, Options, EXPERIMENT_NOW};
use nsec3_core::{run_tld_census_cfg, DriverConfig, DEFAULT_LAB_SEED};
use popgen::{generate_tlds, Scale};

fn main() {
    let opts = Options::parse(Scale(1.0)); // the TLD set is always exact
    let tlds = generate_tlds();
    // Delegation contents scaled 1/1000 inside each zone (capped at 200).
    let t0 = std::time::Instant::now();
    let observed = run_tld_census_cfg(
        &tlds,
        1.0 / 1_000.0,
        &DriverConfig::clean(EXPERIMENT_NOW, opts.threads, DEFAULT_LAB_SEED),
    )
    .0;
    println!(
        "scanned {} TLD zones end to end in {:?} ({} worker thread(s))",
        observed.len(),
        t0.elapsed(),
        opts.threads
    );

    header("Measured TLD population (vs paper §5.1)");
    let dnssec = observed.iter().filter(|t| t.dnssec).count();
    let nsec3: Vec<_> = observed.iter().filter(|t| t.nsec3.is_some()).collect();
    let it0 = nsec3.iter().filter(|t| t.nsec3.unwrap().0 == 0).count();
    let it100 = nsec3.iter().filter(|t| t.nsec3.unwrap().0 == 100).count();
    let optout = nsec3.iter().filter(|t| t.opt_out).count();
    let shared = observed.iter().filter(|t| t.axfr_ok).count();
    print!(
        "{}",
        compare_line(
            "delegated TLDs scanned",
            "1,449",
            &observed.len().to_string()
        )
    );
    print!(
        "{}",
        compare_line("DNSSEC-enabled", "1,354", &dnssec.to_string())
    );
    print!(
        "{}",
        compare_line("NSEC3-enabled", "1,302", &nsec3.len().to_string())
    );
    print!(
        "{}",
        compare_line("zero iterations", "688", &it0.to_string())
    );
    print!(
        "{}",
        compare_line("100 iterations", "447", &it100.to_string())
    );
    print!(
        "{}",
        compare_line(
            "opt-out observed (of NSEC3 TLDs)",
            "85.4 %",
            &fmt_pct(pct(optout as u64, nsec3.len() as u64))
        )
    );
    print!(
        "{}",
        compare_line(
            "TLD zones retrievable via AXFR/CZDS",
            "≥ 1,105",
            &shared.to_string()
        )
    );
    let counted: u64 = observed
        .iter()
        .filter(|t| t.nsec3.map(|(it, _)| it == 100).unwrap_or(false))
        .filter_map(|t| t.delegations)
        .sum();
    print!(
        "{}",
        compare_line(
            "domains counted under the 447 TLDs (scaled 1/1000)",
            "≥ 12.6 M → 12.6 K",
            &counted.to_string()
        )
    );
}
