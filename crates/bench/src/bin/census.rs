//! E6 + E7: the §5.1 headline census — registered domains and TLDs.
//!
//! Two passes: (1) paper-scale aggregate analysis over the declared
//! population, (2) a closed-loop end-to-end census over a sample of real
//! zones on the simulated network, verifying that the measurement
//! pipeline reproduces the declared parameters.
//!
//! Regenerates the §5.1 numbers: 8.8 % DNSSEC-enabled, 15.5 M
//! NSEC3-enabled, 87.8 % non-compliant, 12.2 % zero iterations, 8.6 % no
//! salt, 6.4 % opt-out; TLDs: 1,354 DNSSEC / 1,302 NSEC3 / 688 it=0 /
//! 447 it=100 / opt-out 85.4 %.

use analysis::{compare_line, fmt_count, fmt_pct, DomainStats};
use heroes_bench::{fmt_scale, header, Options, EXPERIMENT_NOW};
use nsec3_core::experiments::{
    records_from_specs, run_domain_census_cfg, DriverConfig, DEFAULT_LAB_SEED,
};
use popgen::domains::DnssecKind;
use popgen::{generate_domains, generate_tlds, generate_tlds_after_remediation, Scale};

fn main() {
    let opts = Options::parse(Scale::BENCH);
    println!(
        "§5.1 domain census at scale {} (seed {}, {} worker thread(s))",
        fmt_scale(opts.scale),
        opts.seed,
        opts.threads
    );

    // Pass 1: aggregate analysis over the declared population.
    header("Registered domains (declared population)");
    let specs = generate_domains(opts.scale, opts.seed);
    let records = records_from_specs(&specs);
    let stats = DomainStats::compute(&records);
    print!(
        "{}",
        compare_line(
            "registered domains analyzed",
            "302 M",
            &fmt_count(stats.total)
        )
    );
    print!(
        "{}",
        compare_line(
            "DNSSEC-enabled (% of registered)",
            "8.8 %",
            &fmt_pct(stats.dnssec_pct())
        )
    );
    print!(
        "{}",
        compare_line(
            "NSEC3-enabled (% of DNSSEC-enabled)",
            "58.9 %",
            &fmt_pct(stats.nsec3_of_dnssec_pct())
        )
    );
    print!(
        "{}",
        compare_line(
            "non-compliant with RFC 9276 item 2 (headline)",
            "87.8 %",
            &fmt_pct(stats.non_compliant_pct())
        )
    );
    print!(
        "{}",
        compare_line(
            "zero additional iterations",
            "12.2 %",
            &fmt_pct(stats.zero_iteration_pct())
        )
    );
    print!(
        "{}",
        compare_line("no salt", "8.6 %", &fmt_pct(stats.no_salt_pct()))
    );
    print!(
        "{}",
        compare_line("opt-out flag set", "6.4 %", &fmt_pct(stats.opt_out_pct()))
    );
    print!(
        "{}",
        compare_line(
            "domains with > 150 iterations",
            "43",
            &stats.iterations_cdf.count_over(150).to_string()
        )
    );
    print!(
        "{}",
        compare_line(
            "maximum iterations observed",
            "500",
            &stats.iterations_cdf.max().unwrap_or(0).to_string()
        )
    );
    print!(
        "{}",
        compare_line(
            "salts longer than 45 bytes",
            "170",
            &stats.salt_cdf.count_over(45).to_string()
        )
    );

    // Pass 2: closed-loop end-to-end census over real zones.
    header(&format!(
        "End-to-end census over {} instantiated zones (closed loop)",
        opts.e2e_sample
    ));
    let sample: Vec<_> = specs.iter().take(opts.e2e_sample).cloned().collect();
    let t0 = std::time::Instant::now();
    let cfg = DriverConfig::clean(EXPERIMENT_NOW, opts.threads, DEFAULT_LAB_SEED);
    let measured = run_domain_census_cfg(&sample, 200, &cfg).0;
    let declared = records_from_specs(&sample);
    let mut mismatches = 0;
    for (m, d) in measured.iter().zip(declared.iter()) {
        if m.dnssec != d.dnssec || m.nsec3 != d.nsec3 || m.opt_out != d.opt_out {
            mismatches += 1;
        }
    }
    println!(
        "  scanned {} zones over the simulated network in {:?}: {} parameter mismatches",
        measured.len(),
        t0.elapsed(),
        mismatches
    );
    let e2e_stats = DomainStats::compute(&measured);
    print!(
        "{}",
        compare_line(
            "e2e sample: zero iterations",
            &fmt_pct(DomainStats::compute(&declared).zero_iteration_pct()),
            &fmt_pct(e2e_stats.zero_iteration_pct())
        )
    );

    // TLDs (exact).
    header("TLDs (exact population)");
    let tlds = generate_tlds();
    let total = tlds.len() as u64;
    let dnssec = tlds.iter().filter(|t| t.dnssec != DnssecKind::None).count() as u64;
    let nsec3: Vec<_> = tlds
        .iter()
        .filter_map(|t| match t.dnssec {
            DnssecKind::Nsec3 {
                iterations,
                salt_len,
                opt_out,
            } => Some((iterations, salt_len, opt_out, t)),
            _ => None,
        })
        .collect();
    let iter0 = nsec3.iter().filter(|(it, _, _, _)| *it == 0).count();
    let iter100 = nsec3.iter().filter(|(it, _, _, _)| *it == 100).count();
    let salt0 = nsec3.iter().filter(|(_, s, _, _)| *s == 0).count();
    let salt8 = nsec3.iter().filter(|(_, s, _, _)| *s == 8).count();
    let salt10 = nsec3.iter().filter(|(_, s, _, _)| *s == 10).count();
    let optout = nsec3.iter().filter(|(_, _, o, _)| *o).count() as u64;
    let under447: u64 = tlds
        .iter()
        .filter(|t| t.registry_provider.is_some())
        .map(|t| t.est_domains)
        .sum();
    print!(
        "{}",
        compare_line("delegated TLDs", "1,449", &total.to_string())
    );
    print!(
        "{}",
        compare_line("DNSSEC-enabled TLDs", "1,354", &dnssec.to_string())
    );
    print!(
        "{}",
        compare_line("NSEC3-enabled TLDs", "1,302", &nsec3.len().to_string())
    );
    print!(
        "{}",
        compare_line("TLDs with zero iterations", "688", &iter0.to_string())
    );
    print!(
        "{}",
        compare_line("TLDs with 100 iterations", "447", &iter100.to_string())
    );
    print!(
        "{}",
        compare_line("TLDs without salt", "672", &salt0.to_string())
    );
    print!(
        "{}",
        compare_line("TLDs with 8-byte salt", "558", &salt8.to_string())
    );
    print!(
        "{}",
        compare_line("TLDs with 10-byte salt (max)", "7", &salt10.to_string())
    );
    print!(
        "{}",
        compare_line(
            "opt-out among NSEC3 TLDs",
            "85.4 %",
            &fmt_pct(analysis::pct(optout, nsec3.len() as u64))
        )
    );
    print!(
        "{}",
        compare_line(
            "domains under the 447 TLDs (lower bound)",
            "≥ 12.6 M",
            &fmt_count(under447)
        )
    );
    print!(
        "{}",
        compare_line(
            "non-compliant TLDs (item 2)",
            "47.2 %",
            &fmt_pct(analysis::pct(
                (nsec3.len() - iter0) as u64,
                nsec3.len() as u64
            ))
        )
    );

    // The paper notes the 447 Identity Digital TLDs were subsequently
    // reduced to 0 iterations: the concentration argument in one number.
    header("After the Identity Digital remediation (§5.1 note)");
    let after = generate_tlds_after_remediation();
    let nsec3_after: Vec<_> = after
        .iter()
        .filter_map(|t| match t.dnssec {
            DnssecKind::Nsec3 { iterations, .. } => Some(iterations),
            _ => None,
        })
        .collect();
    let zero_after = nsec3_after.iter().filter(|&&i| i == 0).count() as u64;
    print!(
        "{}",
        compare_line(
            "TLD compliance before → after one provider's fix",
            "52.8 % → 87.2 %",
            &format!(
                "{} → {}",
                fmt_pct(analysis::pct(iter0 as u64, nsec3.len() as u64)),
                fmt_pct(analysis::pct(zero_after, nsec3_after.len() as u64))
            )
        )
    );
}
