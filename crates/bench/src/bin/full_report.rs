//! The capstone harness: run every experiment at the given scales and
//! write one self-contained markdown report
//! (`target/experiments/REPORT.md`) with paper-vs-measured for every
//! table and figure — the machine-generated companion to EXPERIMENTS.md.

use std::fmt::Write as _;

use analysis::{figure3_series, operator_table, DomainStats, ResolverStats};
use heroes_bench::{fmt_scale, write_artifact, Options, EXPERIMENT_NOW};
use nsec3_core::experiments::{
    records_from_specs, run_resolver_study_cfg, run_tld_census_cfg, DriverConfig, DEFAULT_LAB_SEED,
};
use popgen::domains::DnssecKind;
use popgen::{generate_domains, generate_fleet, generate_tlds, generate_tranco, Scale};

struct Report {
    body: String,
}

impl Report {
    fn new() -> Self {
        Report {
            body: String::from("# Zeros Are Heroes — generated reproduction report\n"),
        }
    }

    fn section(&mut self, title: &str) {
        let _ = writeln!(self.body, "\n## {title}\n");
        let _ = writeln!(self.body, "| metric | paper | measured |");
        let _ = writeln!(self.body, "|---|---|---|");
    }

    fn row(&mut self, metric: &str, paper: &str, measured: String) {
        let _ = writeln!(self.body, "| {metric} | {paper} | {measured} |");
    }

    fn note(&mut self, text: &str) {
        let _ = writeln!(self.body, "\n{text}");
    }
}

fn main() {
    let opts = Options::parse(Scale::BENCH);
    let fleet_scale = Scale(opts.scale.0.clamp(1.0 / 500.0, 1.0 / 50.0));
    let mut report = Report::new();
    report.note(&format!(
        "Domain scale {}, fleet scale {}, seed {}. All values measured by \
         running the full pipeline on the simulated substrate.",
        fmt_scale(opts.scale),
        fmt_scale(fleet_scale),
        opts.seed
    ));

    // §5.1 domains.
    eprintln!("[1/5] domain census…");
    let specs = generate_domains(opts.scale, opts.seed);
    let stats = DomainStats::compute(&records_from_specs(&specs));
    report.section("§5.1 registered domains (Figure 1, headline)");
    report.row(
        "DNSSEC-enabled",
        "8.8 %",
        format!("{:.1} %", stats.dnssec_pct()),
    );
    report.row(
        "NSEC3-enabled of DNSSEC",
        "58.9 %",
        format!("{:.1} %", stats.nsec3_of_dnssec_pct()),
    );
    report.row(
        "non-compliant (item 2)",
        "87.8 %",
        format!("{:.1} %", stats.non_compliant_pct()),
    );
    report.row(
        "zero iterations",
        "12.2 %",
        format!("{:.1} %", stats.zero_iteration_pct()),
    );
    report.row("no salt", "8.6 %", format!("{:.1} %", stats.no_salt_pct()));
    report.row("opt-out", "6.4 %", format!("{:.1} %", stats.opt_out_pct()));
    report.row(
        "> 150 iterations",
        "43",
        stats.iterations_cdf.count_over(150).to_string(),
    );
    report.row(
        "max iterations",
        "500",
        stats.iterations_cdf.max().unwrap_or(0).to_string(),
    );
    report.row(
        "salts > 45 B",
        "170",
        stats.salt_cdf.count_over(45).to_string(),
    );

    // Table 2.
    eprintln!("[2/5] operator table…");
    let table = operator_table(&records_from_specs(&specs), 10);
    report.section("Table 2 (top operators)");
    let top10: f64 = table.iter().map(|r| r.share_pct).sum();
    report.row("top-10 exclusive share", "77.7 %", format!("{top10:.1} %"));
    if let Some(first) = table.first() {
        report.row("largest operator", "39.4 % (1/8)", {
            let p = first
                .params
                .first()
                .map(|(i, s, _)| format!("{i}/{s}"))
                .unwrap_or_default();
            format!("{:.1} % ({p})", first.share_pct)
        });
    }

    // Figure 2.
    eprintln!("[3/5] Tranco list…");
    let tranco = generate_tranco(Scale(1.0), opts.seed);
    let nsec3: Vec<_> = tranco
        .iter()
        .filter_map(|e| match e.dnssec {
            DnssecKind::Nsec3 {
                iterations,
                salt_len,
                ..
            } => Some((iterations, salt_len)),
            _ => None,
        })
        .collect();
    report.section("Figure 2 (Tranco)");
    report.row("NSEC3-enabled entries", "27.2 K", nsec3.len().to_string());
    let z = nsec3.iter().filter(|(i, _)| *i == 0).count() as f64 / nsec3.len() as f64 * 100.0;
    let b = nsec3.iter().filter(|(i, s)| *i == 0 && *s == 0).count() as f64 / nsec3.len() as f64
        * 100.0;
    report.row("zero iterations", "22.8 %", format!("{z:.1} %"));
    report.row("both compliant", "12.7 %", format!("{b:.1} %"));

    // TLDs end to end.
    eprintln!("[4/5] TLD census (end to end)…");
    let tlds = generate_tlds();
    let observed = run_tld_census_cfg(
        &tlds,
        1.0 / 2_000.0,
        &DriverConfig::clean(EXPERIMENT_NOW, opts.threads, DEFAULT_LAB_SEED),
    )
    .0;
    let nsec3_tlds: Vec<_> = observed.iter().filter(|t| t.nsec3.is_some()).collect();
    report.section("§5.1 TLDs (measured end to end)");
    report.row(
        "DNSSEC-enabled",
        "1,354",
        observed.iter().filter(|t| t.dnssec).count().to_string(),
    );
    report.row("NSEC3-enabled", "1,302", nsec3_tlds.len().to_string());
    report.row(
        "zero iterations",
        "688",
        nsec3_tlds
            .iter()
            .filter(|t| t.nsec3.unwrap().0 == 0)
            .count()
            .to_string(),
    );
    report.row(
        "100 iterations",
        "447",
        nsec3_tlds
            .iter()
            .filter(|t| t.nsec3.unwrap().0 == 100)
            .count()
            .to_string(),
    );
    report.row(
        "zones transferable",
        "≥ 1,105",
        observed.iter().filter(|t| t.axfr_ok).count().to_string(),
    );

    // §5.2 resolvers.
    eprintln!("[5/5] resolver study (this is the long one)…");
    let fleet = generate_fleet(fleet_scale, opts.seed);
    let study = run_resolver_study_cfg(
        &fleet,
        &DriverConfig::clean(EXPERIMENT_NOW, opts.threads, DEFAULT_LAB_SEED),
    );
    let rstats = ResolverStats::compute(&study.all());
    report.section("§5.2 validating resolvers (Figure 3, items 6–12)");
    report.row(
        "validators found",
        "114 K (full scale)",
        rstats.validators.to_string(),
    );
    report.row(
        "limit iterations",
        "78.3 %",
        format!("{:.1} %", rstats.limiting_pct()),
    );
    report.row("item 6", "59.9 %", format!("{:.1} %", rstats.item6_pct()));
    report.row("item 8", "18.4 %", format!("{:.1} %", rstats.item8_pct()));
    report.row(
        "item 12 gap",
        "4.3 %",
        format!("{:.1} %", rstats.item12_gap_pct()),
    );
    report.row(
        "item 7 violations",
        "0.2 %",
        format!("{:.1} %", rstats.item7_violation_pct()),
    );
    report.row(
        "EDE 27 of limiting",
        "< 18 %",
        format!("{:.1} %", rstats.ede27_of_limiting_pct()),
    );
    if let Some(open_v4) = study.per_panel.get(&analysis::resolvers::Panel::OpenV4) {
        let series = figure3_series(open_v4);
        let at = |n: u16| series.iter().find(|p| p.n == n).copied();
        if let (Some(p150), Some(p151)) = (at(150), at(151)) {
            report.row(
                "Fig. 3a AD drop at 150→151",
                "largest step",
                format!("{:.1} % → {:.1} %", p150.ad_nxdomain, p151.ad_nxdomain),
            );
            report.row(
                "Fig. 3a SERVFAIL at 151",
                "jump to plateau",
                format!("{:.1} %", p151.servfail),
            );
        }
    }

    report.note("Generated by `cargo run --release -p heroes-bench --bin full_report`.");
    write_artifact("REPORT.md", &report.body);
    println!("{}", report.body);
}
