//! Criterion bench: end-to-end resolution cost through the full chain
//! (root → com → leaf), positive and negative, plus the policy-ordering
//! ablation (DESIGN.md ablation 5: limit check before vs after signature
//! verification).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dns_resolver::lab::LabBuilder;
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_resolver::Rfc9276Policy;
use dns_wire::name::name;
use dns_wire::rrtype::RrType;
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::Denial;

const NOW: u32 = 1_710_000_000;

fn lab_and_resolver(
    leaf_iterations: u16,
    policy: Rfc9276Policy,
) -> (dns_resolver::lab::Lab, Resolver) {
    let mut lab = LabBuilder::new(NOW)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .simple_zone(
            &name("target.com."),
            Denial::Nsec3 { params: Nsec3Params::new(leaf_iterations, vec![]), opt_out: false },
        )
        .build();
    let addr = lab.alloc.v4();
    let mut cfg = ResolverConfig::validating(addr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.policy = policy;
    (lab, Resolver::new(cfg))
}

fn bench_positive_negative(c: &mut Criterion) {
    let (lab, r) = lab_and_resolver(0, Rfc9276Policy::unlimited());
    let mut i = 0u64;
    c.bench_function("resolve/positive_secure", |b| {
        b.iter(|| r.resolve(&lab.net, black_box(&name("www.target.com.")), RrType::A))
    });
    c.bench_function("resolve/nxdomain_secure_it0", |b| {
        b.iter(|| {
            i += 1;
            let q = name(&format!("q{i}.target.com."));
            r.resolve(&lab.net, black_box(&q), RrType::A)
        })
    });
}

fn bench_nxdomain_by_iterations(c: &mut Criterion) {
    let mut g = c.benchmark_group("resolve/nxdomain_by_iterations");
    for it in [0u16, 150, 500] {
        let (lab, r) = lab_and_resolver(it, Rfc9276Policy::unlimited());
        let mut i = 0u64;
        g.bench_function(format!("it{it}"), |b| {
            b.iter(|| {
                i += 1;
                let q = name(&format!("q{i}.target.com."));
                r.resolve(&lab.net, black_box(&q), RrType::A)
            })
        });
    }
    g.finish();
}

fn bench_policy_ablation(c: &mut Criterion) {
    // Over-limit zone (it=500). The limit-enforcing resolver refuses
    // cheaply; the unlimited one pays the full hashing bill.
    let mut g = c.benchmark_group("resolve/over_limit_policy");
    for (label, policy) in [
        ("unlimited_pays_full_cost", Rfc9276Policy::unlimited()),
        ("servfail_above_150_refuses_cheaply", Rfc9276Policy::servfail_above(150)),
        ("insecure_above_150_downgrades", Rfc9276Policy::insecure_above(150)),
    ] {
        let (lab, r) = lab_and_resolver(500, policy);
        let mut i = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                i += 1;
                let q = name(&format!("q{i}.target.com."));
                r.resolve(&lab.net, black_box(&q), RrType::A)
            })
        });
    }
    g.finish();
}

fn bench_caching(c: &mut Criterion) {
    let mut g = c.benchmark_group("resolve/caching");
    // Cold: every query unique (cache useless).
    let (lab, r) = lab_and_resolver(0, Rfc9276Policy::unlimited());
    let mut i = 0u64;
    g.bench_function("unique_names_cold_path", |b| {
        b.iter(|| {
            i += 1;
            r.resolve(&lab.net, black_box(&name(&format!("c{i}.target.com."))), RrType::A)
        })
    });
    // Warm: the same name repeatedly (answer-cache hit).
    let (lab, r) = lab_and_resolver(0, Rfc9276Policy::unlimited());
    let q = name("www.target.com.");
    let _ = r.resolve(&lab.net, &q, RrType::A);
    g.bench_function("repeated_name_cache_hit", |b| {
        b.iter(|| r.resolve(&lab.net, black_box(&q), RrType::A))
    });
    // RFC 8198: unique nonexistent names, synthesized from one proof.
    let mut lab3 = dns_resolver::lab::LabBuilder::new(NOW)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .simple_zone(
            &name("target.com."),
            Denial::Nsec3 { params: Nsec3Params::new(0, vec![]), opt_out: false },
        )
        .build();
    let addr = lab3.alloc.v4();
    let mut cfg = dns_resolver::ResolverConfig::validating(
        addr,
        lab3.root_hints.clone(),
        lab3.anchor.clone(),
    );
    cfg.now = lab3.now;
    cfg.aggressive_nsec3 = true;
    let r3 = Resolver::new(cfg);
    let _ = r3.resolve(&lab3.net, &name("warmup.target.com."), RrType::A);
    let mut j = 0u64;
    g.bench_function("unique_nxdomains_rfc8198_synthesis", |b| {
        b.iter(|| {
            j += 1;
            r3.resolve(&lab3.net, black_box(&name(&format!("s{j}.target.com."))), RrType::A)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_positive_negative,
    bench_nxdomain_by_iterations,
    bench_policy_ablation,
    bench_caching
);
criterion_main!(benches);
