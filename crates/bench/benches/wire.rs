//! Criterion bench: message encode/decode throughput and the name
//! compression trade-off (DESIGN.md ablation 3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dns_wire::buf::Writer;
use dns_wire::message::Message;
use dns_wire::name::name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;

fn sample_response() -> Message {
    let q = Message::query(7, name("host.service.dept.example.com."), RrType::A);
    let mut resp = Message::response_to(&q);
    resp.flags.aa = true;
    for i in 0..8 {
        resp.answers.push(Record::new(
            name("host.service.dept.example.com."),
            300,
            RData::A(format!("192.0.2.{i}").parse().unwrap()),
        ));
    }
    for i in 0..4 {
        resp.authorities.push(Record::new(
            name("example.com."),
            3600,
            RData::Ns(name(&format!("ns{i}.dns.example.com."))),
        ));
        resp.additionals.push(Record::new(
            name(&format!("ns{i}.dns.example.com.")),
            3600,
            RData::A(format!("198.51.100.{i}").parse().unwrap()),
        ));
    }
    resp
}

fn bench_encode_decode(c: &mut Criterion) {
    let resp = sample_response();
    c.bench_function("wire/encode_response", |b| b.iter(|| black_box(&resp).encode()));
    let encoded = resp.encode();
    c.bench_function("wire/decode_response", |b| {
        b.iter(|| Message::decode(black_box(&encoded)).unwrap())
    });
}

fn bench_compression_tradeoff(c: &mut Criterion) {
    // Same 20 names written with and without compression.
    let names: Vec<_> = (0..20)
        .map(|i| name(&format!("host{i}.sub.department.example.com.")))
        .collect();
    c.bench_function("wire/write_names_compressing", |b| {
        b.iter(|| {
            let mut w = Writer::compressing();
            for n in &names {
                w.name(black_box(n));
            }
            w.finish()
        })
    });
    c.bench_function("wire/write_names_plain", |b| {
        b.iter(|| {
            let mut w = Writer::plain();
            for n in &names {
                w.name(black_box(n));
            }
            w.finish()
        })
    });
    // Size comparison printed once for the record.
    let mut wc = Writer::compressing();
    let mut wp = Writer::plain();
    for n in &names {
        wc.name(n);
        wp.name(n);
    }
    eprintln!(
        "compression saves {} of {} bytes on 20 sibling names",
        wp.len() - wc.len(),
        wp.len()
    );
}

fn bench_nsec3_record_roundtrip(c: &mut Criterion) {
    let rec = Record::new(
        name("0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.example."),
        300,
        RData::Nsec3 {
            hash_alg: 1,
            flags: 1,
            iterations: 100,
            salt: vec![0xaa, 0xbb, 0xcc, 0xdd],
            next_hashed: vec![0x33; 20],
            types: [RrType::A, RrType::RRSIG].into_iter().collect(),
        },
    );
    c.bench_function("wire/nsec3_record_encode", |b| {
        b.iter(|| {
            let mut w = Writer::plain();
            black_box(&rec).encode(&mut w);
            w.finish()
        })
    });
}

criterion_group!(benches, bench_encode_decode, bench_compression_tradeoff, bench_nsec3_record_roundtrip);
criterion_main!(benches);
