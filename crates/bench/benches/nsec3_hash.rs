//! Criterion micro-bench: the NSEC3 hash itself — the primitive whose
//! repetition is CVE-2023-50868. Sweeps iterations and salt length
//! (DESIGN.md ablation 1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dns_wire::name::name;
use dns_zone::nsec3hash::{nsec3_hash, Nsec3Params};

fn bench_iterations(c: &mut Criterion) {
    let mut g = c.benchmark_group("nsec3_hash/iterations");
    let n = name("some-average-length-label.example.com.");
    for iterations in [0u16, 1, 10, 50, 150, 500, 2500] {
        let params = Nsec3Params::new(iterations, vec![]);
        g.bench_with_input(BenchmarkId::from_parameter(iterations), &params, |b, p| {
            b.iter(|| nsec3_hash(black_box(&n), black_box(p)))
        });
    }
    g.finish();
}

fn bench_salt(c: &mut Criterion) {
    let mut g = c.benchmark_group("nsec3_hash/salt_len_at_150_iterations");
    let n = name("some-average-length-label.example.com.");
    for salt_len in [0usize, 8, 64, 255] {
        let params = Nsec3Params::new(150, vec![0xab; salt_len]);
        g.bench_with_input(BenchmarkId::from_parameter(salt_len), &params, |b, p| {
            b.iter(|| nsec3_hash(black_box(&n), black_box(p)))
        });
    }
    g.finish();
}

fn bench_rfc9276_vs_wild(c: &mut Criterion) {
    let mut g = c.benchmark_group("nsec3_hash/presets");
    let n = name("www.example.com.");
    g.bench_function("rfc9276_zero_no_salt", |b| {
        let p = Nsec3Params::rfc9276();
        b.iter(|| nsec3_hash(black_box(&n), &p))
    });
    g.bench_function("squarespace_1_8", |b| {
        let p = Nsec3Params::new(1, vec![0xab; 8]);
        b.iter(|| nsec3_hash(black_box(&n), &p))
    });
    g.bench_function("identity_digital_100_8", |b| {
        let p = Nsec3Params::new(100, vec![0xab; 8]);
        b.iter(|| nsec3_hash(black_box(&n), &p))
    });
    g.bench_function("wild_maximum_500_8", |b| {
        let p = Nsec3Params::new(500, vec![0xab; 8]);
        b.iter(|| nsec3_hash(black_box(&n), &p))
    });
    g.finish();
}

criterion_group!(benches, bench_iterations, bench_salt, bench_rfc9276_vs_wild);
criterion_main!(benches);
