//! Property-based tests for the crypto layer.

use proptest::prelude::*;

use dns_crypto::hmac::Hmac;
use dns_crypto::keytag::key_tag;
use dns_crypto::sha1::{sha1, Sha1};
use dns_crypto::sha256::{sha256, Sha256};
use dns_crypto::simsig::{verify, KeyPair};
use dns_crypto::{ct_eq, hex_lower, hex_parse, Digest};

proptest! {
    /// Streaming in arbitrary chunkings equals the one-shot digest.
    #[test]
    fn sha1_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(any::<usize>(), 0..6),
    ) {
        let expected = sha1(&data);
        let mut h = Sha1::new();
        let mut rest: &[u8] = &data;
        for s in splits {
            if rest.is_empty() {
                break;
            }
            let cut = s % rest.len().max(1);
            let (head, tail) = rest.split_at(cut.min(rest.len()));
            h.update(head);
            rest = tail;
        }
        h.update(rest);
        prop_assert_eq!(h.finalize_fixed(), expected);
    }

    #[test]
    fn sha256_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cut in any::<usize>(),
    ) {
        let expected = sha256(&data);
        let cut = cut % (data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize_fixed(), expected);
    }

    /// padded_compressions predicts exactly what finalize performs.
    #[test]
    fn padded_compressions_exact(len in 0usize..600) {
        let data = vec![0xabu8; len];
        let mut h = Sha1::new();
        h.update(&data);
        let predicted = h.padded_compressions();
        let expected = (len + 9).div_ceil(64) as u64;
        prop_assert_eq!(predicted, expected);
    }

    /// Different inputs yield different digests (collision smoke).
    #[test]
    fn sha1_injective_smoke(a in proptest::collection::vec(any::<u8>(), 0..64),
                            b in proptest::collection::vec(any::<u8>(), 0..64)) {
        if a != b {
            prop_assert_ne!(sha1(&a), sha1(&b));
        }
    }

    /// HMAC verifies its own tags and rejects modified ones.
    #[test]
    fn hmac_verify_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        data in proptest::collection::vec(any::<u8>(), 0..100),
        flip in any::<u8>(),
    ) {
        let tag = Hmac::<Sha256>::mac(&key, &data);
        prop_assert!(Hmac::<Sha256>::verify(&key, &data, &tag));
        let mut bad = tag.clone();
        let idx = (flip as usize) % bad.len();
        bad[idx] ^= 0x01;
        prop_assert!(!Hmac::<Sha256>::verify(&key, &data, &bad));
    }

    /// SimSig: sign/verify holds for any seed and message; cross-key
    /// verification fails.
    #[test]
    fn simsig_soundness(
        seed_a in proptest::collection::vec(any::<u8>(), 1..32),
        seed_b in proptest::collection::vec(any::<u8>(), 1..32),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let a = KeyPair::from_seed(&seed_a);
        let sig = a.sign(&msg);
        prop_assert!(verify(a.public_key(), &msg, &sig));
        if seed_a != seed_b {
            let b = KeyPair::from_seed(&seed_b);
            prop_assert!(!verify(b.public_key(), &msg, &sig));
        }
    }

    /// Key tags: deterministic and within u16.
    #[test]
    fn keytag_deterministic(rdata in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(key_tag(&rdata), key_tag(&rdata));
    }

    /// Hex round trip.
    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(hex_parse(&hex_lower(&data)).unwrap(), data);
    }

    /// ct_eq agrees with ==.
    #[test]
    fn ct_eq_matches_eq(a in proptest::collection::vec(any::<u8>(), 0..32),
                        b in proptest::collection::vec(any::<u8>(), 0..32)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }
}
