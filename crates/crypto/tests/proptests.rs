//! Property-based tests for the crypto layer.

use sim_check::{gens, props};

use dns_crypto::hmac::{Hmac, HmacKey};
use dns_crypto::keytag::key_tag;
use dns_crypto::sha1::{sha1, IteratedSha1, Sha1};
use dns_crypto::sha256::{sha256, Sha256};
use dns_crypto::simsig::{verify, KeyPair};
use dns_crypto::{ct_eq, hex_lower, hex_parse, Digest};

props! {
    /// Streaming in arbitrary chunkings equals the one-shot digest.
    fn sha1_chunking_invariance(
        data in gens::vec_of(gens::u8s(..), 0..512),
        splits in gens::vec_of(gens::usizes(..), 0..6),
    ) {
        let expected = sha1(&data);
        let mut h = Sha1::new();
        let mut rest: &[u8] = &data;
        for s in splits {
            if rest.is_empty() {
                break;
            }
            let cut = s % rest.len().max(1);
            let (head, tail) = rest.split_at(cut.min(rest.len()));
            h.update(head);
            rest = tail;
        }
        h.update(rest);
        assert_eq!(h.finalize_fixed(), expected);
    }

    fn sha256_chunking_invariance(
        data in gens::vec_of(gens::u8s(..), 0..512),
        cut in gens::usizes(..),
    ) {
        let expected = sha256(&data);
        let cut = cut % (data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        assert_eq!(h.finalize_fixed(), expected);
    }

    /// padded_compressions predicts exactly what finalize performs.
    fn padded_compressions_exact(len in gens::usizes(0..600)) {
        let data = vec![0xabu8; len];
        let mut h = Sha1::new();
        h.update(&data);
        let predicted = h.padded_compressions();
        let expected = (len + 9).div_ceil(64) as u64;
        assert_eq!(predicted, expected);
    }

    /// Different inputs yield different digests (collision smoke).
    fn sha1_injective_smoke(a in gens::vec_of(gens::u8s(..), 0..64),
                            b in gens::vec_of(gens::u8s(..), 0..64)) {
        if a != b {
            assert_ne!(sha1(&a), sha1(&b));
        }
    }

    /// HMAC verifies its own tags and rejects modified ones.
    fn hmac_verify_roundtrip(
        key in gens::vec_of(gens::u8s(..), 0..100),
        data in gens::vec_of(gens::u8s(..), 0..100),
        flip in gens::u8s(..),
    ) {
        let tag = Hmac::<Sha256>::mac(&key, &data);
        assert!(Hmac::<Sha256>::verify(&key, &data, &tag));
        let mut bad = tag.clone();
        let idx = (flip as usize) % bad.len();
        bad[idx] ^= 0x01;
        assert!(!Hmac::<Sha256>::verify(&key, &data, &bad));
    }

    /// SimSig: sign/verify holds for any seed and message; cross-key
    /// verification fails.
    fn simsig_soundness(
        seed_a in gens::vec_of(gens::u8s(..), 1..32),
        seed_b in gens::vec_of(gens::u8s(..), 1..32),
        msg in gens::vec_of(gens::u8s(..), 0..200),
    ) {
        let a = KeyPair::from_seed(&seed_a);
        let sig = a.sign(&msg);
        assert!(verify(a.public_key(), &msg, &sig));
        if seed_a != seed_b {
            let b = KeyPair::from_seed(&seed_b);
            assert!(!verify(b.public_key(), &msg, &sig));
        }
    }

    /// Key tags: deterministic and within u16.
    fn keytag_deterministic(rdata in gens::vec_of(gens::u8s(..), 0..200)) {
        assert_eq!(key_tag(&rdata), key_tag(&rdata));
    }

    /// Hex round trip.
    fn hex_roundtrip(data in gens::vec_of(gens::u8s(..), 0..64)) {
        assert_eq!(hex_parse(&hex_lower(&data)).unwrap(), data);
    }

    /// ct_eq agrees with ==.
    fn ct_eq_matches_eq(a in gens::vec_of(gens::u8s(..), 0..32),
                        b in gens::vec_of(gens::u8s(..), 0..32)) {
        assert_eq!(ct_eq(&a, &b), a == b);
    }

    /// The interleaved batch engine is digest- and cost-identical to the
    /// scalar iterated engine for every ragged batch shape, salt length
    /// (crossing the 35→36 single/two-block template boundary), and
    /// iteration count, input lengths crossing the one-initial-block edge.
    fn iterated_sha1_batch_matches_scalar(
        inputs in gens::vec_of(gens::vec_of(gens::u8s(..), 0..64), 1..17),
        salt_len in gens::usizes(0..41),
        salt_fill in gens::u8s(..),
        it_idx in gens::usizes(0..5),
    ) {
        let iterations = [0u16, 1, 150, 500, 2500][it_idx];
        let salt = vec![salt_fill; salt_len];
        let engine = IteratedSha1::new(&salt);
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let batch = engine.hash_batch(&refs, iterations);
        assert_eq!(batch.len(), refs.len());
        for (input, got) in refs.iter().zip(&batch) {
            assert_eq!(
                *got,
                engine.hash(input, iterations),
                "lane diverged: {} inputs, salt {salt_len}B, {iterations} it",
                refs.len()
            );
        }
    }

    /// Batched HMAC-SHA-256 (the signer's RRSIG engine) equals scalar MACs
    /// for any key and ragged message batch.
    fn hmac_batch_matches_scalar(
        key in gens::vec_of(gens::u8s(..), 0..80),
        msgs in gens::vec_of(gens::vec_of(gens::u8s(..), 0..300), 0..17),
    ) {
        let key = HmacKey::<Sha256>::new(&key);
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let mut out = vec![[0u8; 32]; refs.len()];
        key.mac_batch_into(&refs, &mut out);
        for (msg, got) in refs.iter().zip(&out) {
            assert_eq!(got.to_vec(), key.mac(msg), "len {}", msg.len());
        }
    }
}
