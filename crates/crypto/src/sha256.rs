//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Used for DS record digests (digest type 2) and as the PRF inside the
//! [`crate::simsig`] simulated signature scheme.

use crate::Digest;

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Run the SHA-256 compression function over one 64-byte block, updating
/// `state` in place.
fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// Run L independent SHA-256 compressions in lockstep over lane-major state
/// (`states[v][j]` = state word `v` of lane `j`). Same SWAR layout as the
/// SHA-1 lane kernel (see `sha1::compress_words_lanes`): element-wise loops
/// over `[u32; L]` that LLVM vectorizes, with the schedule kept as a rolling
/// 16-word window. Per-lane arithmetic is identical to [`compress_block`].
fn compress_words_lanes<const L: usize>(states: &mut [[u32; L]; 8], words: &[[u32; L]; 16]) {
    let mut w = *words;
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *states;
    for i in 0..64 {
        let wi = if i < 16 {
            w[i]
        } else {
            // w[i-16] + s0(w[i-15]) + w[i-7] + s1(w[i-2]), indices mod 16.
            let w0 = w[i & 15];
            let w1 = w[(i + 1) & 15];
            let w9 = w[(i + 9) & 15];
            let w14 = w[(i + 14) & 15];
            let mut t = [0u32; L];
            for j in 0..L {
                let s0 = w1[j].rotate_right(7) ^ w1[j].rotate_right(18) ^ (w1[j] >> 3);
                let s1 = w14[j].rotate_right(17) ^ w14[j].rotate_right(19) ^ (w14[j] >> 10);
                t[j] = w0[j].wrapping_add(s0).wrapping_add(w9[j]).wrapping_add(s1);
            }
            w[i & 15] = t;
            t
        };
        let mut t1 = [0u32; L];
        for j in 0..L {
            let s1 = e[j].rotate_right(6) ^ e[j].rotate_right(11) ^ e[j].rotate_right(25);
            let ch = (e[j] & f[j]) ^ ((!e[j]) & g[j]);
            t1[j] = h[j]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(wi[j]);
        }
        let mut t2 = [0u32; L];
        for j in 0..L {
            let s0 = a[j].rotate_right(2) ^ a[j].rotate_right(13) ^ a[j].rotate_right(22);
            let maj = (a[j] & b[j]) ^ (a[j] & c[j]) ^ (b[j] & c[j]);
            t2[j] = s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        let mut ne = [0u32; L];
        let mut na = [0u32; L];
        for j in 0..L {
            ne[j] = d[j].wrapping_add(t1[j]);
            na[j] = t1[j].wrapping_add(t2[j]);
        }
        e = ne;
        d = c;
        c = b;
        b = a;
        a = na;
    }
    let new = [a, b, c, d, e, f, g, h];
    for (sv, nv) in states.iter_mut().zip(new) {
        for j in 0..L {
            sv[j] = sv[j].wrapping_add(nv[j]);
        }
    }
}

/// Build tail block `b` (64 bytes) of the padded stream for `msg` appended
/// at a block-aligned midstate: message bytes, then `0x80`, zeros, and — in
/// the final block — the 64-bit total bit length.
fn tail_block(msg: &[u8], total_bits: u64, b: usize, last: bool) -> [u8; 64] {
    let start = b * 64;
    let mut block = [0u8; 64];
    let len = msg.len();
    if start < len {
        let n = (len - start).min(64);
        block[..n].copy_from_slice(&msg[start..start + n]);
    }
    if len >= start && len < start + 64 {
        block[len - start] = 0x80;
    }
    if last {
        block[56..].copy_from_slice(&total_bits.to_be_bytes());
    }
    block
}

/// Finish a batch of messages appended to one shared block-aligned midstate
/// (`state` after `absorbed` bytes), exactly as `update(msg)` +
/// `finalize_fixed()` would per message — the engine under the batched HMAC.
///
/// Messages are grouped by padded tail-block count (equal-length groups run
/// in lockstep; the batched-signing workload is dominated by near-identical
/// canonical RRset buffers) and each group is driven through the lane kernel
/// eight then four wide, with a scalar tail.
pub(crate) fn finish_midstate_batch(
    state: [u32; 8],
    absorbed: u64,
    msgs: &[&[u8]],
    out: &mut [[u8; 32]],
) {
    use crate::sha1::padded_blocks;
    debug_assert_eq!(absorbed % 64, 0, "midstate must be block-aligned");
    debug_assert_eq!(msgs.len(), out.len());
    let mut order: Vec<u32> = (0..msgs.len() as u32).collect();
    order.sort_unstable_by_key(|&i| msgs[i as usize].len());
    let mut group = order.as_slice();
    while !group.is_empty() {
        let blocks = padded_blocks(msgs[group[0] as usize].len());
        let n = group
            .iter()
            .take_while(|&&i| padded_blocks(msgs[i as usize].len()) == blocks)
            .count();
        let (mut idxs, rest) = group.split_at(n);
        group = rest;
        while idxs.len() >= 8 {
            let (chunk, tail) = idxs.split_at(8);
            finish_lanes::<8>(state, absorbed, chunk, msgs, out, blocks);
            idxs = tail;
        }
        if idxs.len() >= 4 {
            let (chunk, tail) = idxs.split_at(4);
            finish_lanes::<4>(state, absorbed, chunk, msgs, out, blocks);
            idxs = tail;
        }
        for &i in idxs {
            let msg = msgs[i as usize];
            let total_bits = (absorbed + msg.len() as u64) * 8;
            let mut s = state;
            for b in 0..blocks {
                let block = tail_block(msg, total_bits, b as usize, b + 1 == blocks);
                compress_block(&mut s, &block);
            }
            write_digest(&s, &mut out[i as usize]);
        }
    }
}

/// Lane-interleaved arm of [`finish_midstate_batch`]: L same-block-count
/// messages from one midstate.
fn finish_lanes<const L: usize>(
    state: [u32; 8],
    absorbed: u64,
    idxs: &[u32],
    msgs: &[&[u8]],
    out: &mut [[u8; 32]],
    blocks: u64,
) {
    debug_assert_eq!(idxs.len(), L);
    let mut lanes = [[0u32; L]; 8];
    for (v, s) in state.iter().enumerate() {
        lanes[v] = [*s; L];
    }
    for b in 0..blocks {
        let mut words = [[0u32; L]; 16];
        for (j, &i) in idxs.iter().enumerate() {
            let msg = msgs[i as usize];
            let total_bits = (absorbed + msg.len() as u64) * 8;
            let block = tail_block(msg, total_bits, b as usize, b + 1 == blocks);
            for (wv, chunk) in words.iter_mut().zip(block.chunks_exact(4)) {
                wv[j] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
        }
        compress_words_lanes(&mut lanes, &words);
    }
    for (j, &i) in idxs.iter().enumerate() {
        let s: [u32; 8] = core::array::from_fn(|v| lanes[v][j]);
        write_digest(&s, &mut out[i as usize]);
    }
}

fn write_digest(state: &[u32; 8], out: &mut [u8; 32]) {
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
}

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
    compressions: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
            compressions: 0,
        }
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        self.compressions += 1;
        compress_block(&mut self.state, block);
    }

    /// The `(state, absorbed bytes)` midstate of a block-aligned hasher —
    /// the seed for [`finish_midstate_batch`]. Debug-asserts alignment.
    pub(crate) fn midstate_aligned(&self) -> ([u32; 8], u64) {
        debug_assert_eq!(self.buf_len, 0, "midstate requires block alignment");
        (self.state, self.len)
    }

    /// Finalize into a fixed-size array.
    pub fn finalize_fixed(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, a zero run to 56 mod 64 (slice fills, not
        // byte-at-a-time), 64-bit big-endian bit length.
        let n = self.buf_len;
        self.buf[n] = 0x80;
        self.buf[n + 1..].fill(0);
        if n + 9 > 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf = [0; 64];
        }
        self.buf[56..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Total compressions this hasher will have performed once finalized
    /// (see [`crate::sha1::Sha1::padded_compressions`]).
    pub fn padded_compressions(&self) -> u64 {
        let tail_blocks = (self.buf_len + 9).div_ceil(64) as u64;
        self.compressions + tail_blocks
    }
}

impl Digest for Sha256 {
    const OUTPUT_LEN: usize = 32;
    const BLOCK_LEN: usize = 64;

    fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len != 0 {
            let take = (64 - self.buf_len).min(rest.len());
            let (head, tail) = rest.split_at(take);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(head);
            self.buf_len += take;
            rest = tail;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }

    fn finalize_into(self, out: &mut [u8]) {
        out.copy_from_slice(&self.finalize_fixed());
    }

    fn compressions(&self) -> u64 {
        self.compressions
    }
}

/// One-shot SHA-256 returning the fixed-size digest.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize_fixed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_lower;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex_lower(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex_lower(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex_lower(&sha256(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex_lower(&h.finalize_fixed()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(777).collect();
        let oneshot = sha256(&data);
        for split in [0usize, 1, 63, 64, 65, 400, 776, 777] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize_fixed(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn midstate_batch_matches_streaming() {
        // Ragged batch sizes and message lengths spanning padding
        // boundaries, finished from a one-block midstate.
        let prefix = [0x36u8; 64];
        let mut seed = Sha256::new();
        seed.update(&prefix);
        let (state, absorbed) = seed.midstate_aligned();
        let msgs: Vec<Vec<u8>> = (0..21u8)
            .map(|i| {
                let len = [0, 1, 31, 32, 54, 55, 56, 63, 64, 65, 119, 120, 200][i as usize % 13]
                    + i as usize;
                vec![i ^ 0xc3; len]
            })
            .collect();
        for n in [0usize, 1, 3, 4, 5, 8, 11, 16, 21] {
            let refs: Vec<&[u8]> = msgs[..n].iter().map(|m| m.as_slice()).collect();
            let mut out = vec![[0u8; 32]; n];
            finish_midstate_batch(state, absorbed, &refs, &mut out);
            for (msg, got) in refs.iter().zip(&out) {
                let mut h = Sha256::new();
                h.update(&prefix);
                h.update(msg);
                assert_eq!(*got, h.finalize_fixed(), "len {}", msg.len());
            }
        }
    }
}
