//! SHA-1 (FIPS 180-4), implemented from scratch.
//!
//! SHA-1 is cryptographically broken for collision resistance, but it is the
//! *only* hash algorithm assigned for NSEC3 (RFC 5155 §11, algorithm 1), so a
//! faithful NSEC3 implementation must carry it. Two entry points share one
//! compression function:
//!
//! * [`Sha1`] — the streaming Merkle–Damgård construction with a compression
//!   counter for the CVE-2023-50868 cost model.
//! * [`compress_block`] / [`sha1_oneshot`] / [`IteratedSha1`] — the hot-path
//!   API used by NSEC3 hashing, which avoids per-call hasher construction and
//!   byte-at-a-time padding entirely. Cost is accounted arithmetically with
//!   [`padded_blocks`], which is exact: padding appends `0x80`, zeros to
//!   56 mod 64, and an 8-byte length, so a `len`-byte message always
//!   occupies `(len + 9).div_ceil(64)` blocks.

use crate::Digest;

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Run the SHA-1 compression function over one 64-byte block, updating
/// `state` in place.
///
/// The round function is unrolled into its four 20-round phases so the
/// per-round `f`/`k` selection compiles away — this is the innermost loop
/// of the NSEC3 iterated hash.
pub fn compress_block(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    compress_words(state, &w);
}

/// [`compress_block`] over a block already split into sixteen big-endian
/// words. [`IteratedSha1`] chains compressions without ever round-tripping
/// the digest through bytes.
///
/// The message schedule is a rolling 16-word window computed inside the
/// round loops (`w[i] ≡ w[i mod 16]`, with `i-3 ≡ i+13`, `i-8 ≡ i+8`,
/// `i-14 ≡ i+2` mod 16) instead of a precomputed 80-word array.
pub fn compress_words(state: &mut [u32; 5], words: &[u32; 16]) {
    let mut w = *words;
    let [mut a, mut b, mut c, mut d, mut e] = *state;

    macro_rules! schedule {
        ($i:expr) => {{
            let t = (w[($i + 13) & 15] ^ w[($i + 8) & 15] ^ w[($i + 2) & 15] ^ w[$i & 15])
                .rotate_left(1);
            w[$i & 15] = t;
            t
        }};
    }
    macro_rules! round {
        ($f:expr, $k:expr, $wi:expr) => {{
            let wi = $wi;
            let tmp = a
                .rotate_left(5)
                .wrapping_add($f)
                .wrapping_add(e)
                .wrapping_add($k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }};
    }

    for &wi in words.iter() {
        round!((b & c) | ((!b) & d), 0x5A827999, wi);
    }
    for i in 16..20 {
        round!((b & c) | ((!b) & d), 0x5A827999, schedule!(i));
    }
    for i in 20..40 {
        round!(b ^ c ^ d, 0x6ED9EBA1, schedule!(i));
    }
    for i in 40..60 {
        round!((b & c) | (b & d) | (c & d), 0x8F1BBCDC, schedule!(i));
    }
    for i in 60..80 {
        round!(b ^ c ^ d, 0xCA62C1D6, schedule!(i));
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

/// Number of 64-byte SHA-1 blocks a `len`-byte message occupies once padded:
/// the currency of the CVE-2023-50868 cost model, computed without hashing.
pub const fn padded_blocks(len: usize) -> u64 {
    (len + 9).div_ceil(64) as u64
}

// ---------------------------------------------------------------------------
// Multi-lane (interleaved) compression.
//
// One SHA-1 compression is a chain of dependent rotate/add/xor steps, so a
// single instance leaves most of a superscalar core's ALU ports idle. When a
// caller has a *batch* of independent messages (zone signing, zone walks,
// the census), interleaving L compressions SWAR-style — every variable
// becomes `[u32; L]`, every operation an element-wise loop the compiler
// vectorizes — hides that latency without unsafe code or intrinsics.
// Lane j of the interleaved kernel performs bit-for-bit the same arithmetic
// as the scalar kernel on lane j's words, so digests are byte-identical by
// construction (and pinned by differential proptests).
// ---------------------------------------------------------------------------

/// Widest interleave the batched engines use. Eight lanes of `u32` fill two
/// 128-bit SSE registers (or one 256-bit AVX register) per operation and
/// give the out-of-order core the deepest independent-chain supply.
pub const MAX_LANES: usize = 8;

/// Run L independent SHA-1 compressions in lockstep over lane-major state.
///
/// `states[v][j]` is state word `v` of lane `j`; `words[w][j]` is schedule
/// word `w` of lane `j`. Identical per-lane math to [`compress_words`].
fn compress_words_lanes<const L: usize>(states: &mut [[u32; L]; 5], words: &[[u32; L]; 16]) {
    let mut w = *words;
    let [mut a, mut b, mut c, mut d, mut e] = *states;

    macro_rules! schedule {
        ($i:expr) => {{
            let mut t = [0u32; L];
            let i13 = w[($i + 13) & 15];
            let i8 = w[($i + 8) & 15];
            let i2 = w[($i + 2) & 15];
            let i0 = w[$i & 15];
            for j in 0..L {
                t[j] = (i13[j] ^ i8[j] ^ i2[j] ^ i0[j]).rotate_left(1);
            }
            w[$i & 15] = t;
            t
        }};
    }
    macro_rules! round {
        ($f:expr, $k:expr, $wi:expr) => {{
            let wi = $wi;
            let mut tmp = [0u32; L];
            for j in 0..L {
                let f: u32 = $f(b[j], c[j], d[j]);
                tmp[j] = a[j]
                    .rotate_left(5)
                    .wrapping_add(f)
                    .wrapping_add(e[j])
                    .wrapping_add($k)
                    .wrapping_add(wi[j]);
            }
            e = d;
            d = c;
            let mut rb = [0u32; L];
            for j in 0..L {
                rb[j] = b[j].rotate_left(30);
            }
            c = rb;
            b = a;
            a = tmp;
        }};
    }

    let ch = |b: u32, c: u32, d: u32| (b & c) | ((!b) & d);
    let parity = |b: u32, c: u32, d: u32| b ^ c ^ d;
    let maj = |b: u32, c: u32, d: u32| (b & c) | (b & d) | (c & d);

    for &wi in words.iter() {
        round!(ch, 0x5A827999, wi);
    }
    for i in 16..20 {
        round!(ch, 0x5A827999, schedule!(i));
    }
    for i in 20..40 {
        round!(parity, 0x6ED9EBA1, schedule!(i));
    }
    for i in 40..60 {
        round!(maj, 0x8F1BBCDC, schedule!(i));
    }
    for i in 60..80 {
        round!(parity, 0xCA62C1D6, schedule!(i));
    }
    for j in 0..L {
        states[0][j] = states[0][j].wrapping_add(a[j]);
        states[1][j] = states[1][j].wrapping_add(b[j]);
        states[2][j] = states[2][j].wrapping_add(c[j]);
        states[3][j] = states[3][j].wrapping_add(d[j]);
        states[4][j] = states[4][j].wrapping_add(e[j]);
    }
}

/// Interleave L independent single-block compressions given per-lane state
/// and raw 64-byte blocks (the ergonomic, lane-minor API).
fn compress_blocks_lanes<const L: usize>(states: &mut [[u32; 5]; L], blocks: &[&[u8; 64]; L]) {
    let mut lane_states = transpose_states(states);
    let mut words = [[0u32; L]; 16];
    for (j, block) in blocks.iter().enumerate() {
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            words[i][j] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    compress_words_lanes(&mut lane_states, &words);
    untranspose_states(&lane_states, states);
}

/// Four independent SHA-1 compressions, interleaved. Lane `j` of `states`
/// updates exactly as [`compress_block`] would on `blocks[j]`.
pub fn compress_blocks_x4(states: &mut [[u32; 5]; 4], blocks: &[&[u8; 64]; 4]) {
    compress_blocks_lanes(states, blocks);
}

/// Eight independent SHA-1 compressions, interleaved (see
/// [`compress_blocks_x4`]).
pub fn compress_blocks_x8(states: &mut [[u32; 5]; 8], blocks: &[&[u8; 64]; 8]) {
    compress_blocks_lanes(states, blocks);
}

fn transpose_states<const L: usize>(states: &[[u32; 5]; L]) -> [[u32; L]; 5] {
    let mut out = [[0u32; L]; 5];
    for (j, s) in states.iter().enumerate() {
        for (v, word) in s.iter().enumerate() {
            out[v][j] = *word;
        }
    }
    out
}

fn untranspose_states<const L: usize>(lanes: &[[u32; L]; 5], states: &mut [[u32; 5]; L]) {
    for (j, s) in states.iter_mut().enumerate() {
        for (v, word) in s.iter_mut().enumerate() {
            *word = lanes[v][j];
        }
    }
}

/// Compress L pending `(input index, padded block)` pairs from [`H0`] in
/// lockstep and scatter the resulting states back by index.
fn flush_initial_lanes<const L: usize>(pending: &[(usize, [u8; 64])], states: &mut [[u32; 5]]) {
    debug_assert_eq!(pending.len(), L);
    let mut lanes = [[0u32; L]; 5];
    for (v, h) in H0.iter().enumerate() {
        lanes[v] = [*h; L];
    }
    let mut words = [[0u32; L]; 16];
    for (j, (_, block)) in pending.iter().enumerate() {
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            words[i][j] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    compress_words_lanes(&mut lanes, &words);
    for (j, (idx, _)) in pending.iter().enumerate() {
        for v in 0..5 {
            states[*idx][v] = lanes[v][j];
        }
    }
}

fn digest_bytes(state: &[u32; 5]) -> [u8; 20] {
    let mut out = [0u8; 20];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One-shot SHA-1 over a slice with no hasher construction and slice-copy
/// padding. Byte-identical to [`sha1`]; costs [`padded_blocks`]`(data.len())`
/// compressions.
pub fn sha1_oneshot(data: &[u8]) -> [u8; 20] {
    digest_bytes(&sha1_oneshot_state(data))
}

fn sha1_oneshot_state(data: &[u8]) -> [u32; 5] {
    let mut state = H0;
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        let arr: &[u8; 64] = block.try_into().expect("chunks_exact(64)");
        compress_block(&mut state, arr);
    }
    let rest = chunks.remainder();
    let mut block = [0u8; 64];
    block[..rest.len()].copy_from_slice(rest);
    block[rest.len()] = 0x80;
    if rest.len() + 9 > 64 {
        compress_block(&mut state, &block);
        block = [0u8; 64];
    }
    let bit_len = (data.len() as u64).wrapping_mul(8);
    block[56..].copy_from_slice(&bit_len.to_be_bytes());
    compress_block(&mut state, &block);
    state
}

/// The NSEC3 iterated-hash engine (RFC 5155 §5): repeated SHA-1 over
/// `digest || salt` with the padding precomputed.
///
/// For salt ≤ [`IteratedSha1::MAX_SINGLE_BLOCK_SALT`] bytes — every
/// parameter set observed in the wild uses 0–16 — each iteration's input is
/// `20 + salt_len ≤ 55` bytes, exactly one padded 64-byte block. The padded
/// block (salt, `0x80`, bit-length tail) is built **once** per parameter
/// set; each iteration then only copies the 20-byte digest into the block
/// head and runs one compression. Longer salts fall back to the multi-block
/// one-shot path, still without streaming-buffer overhead.
#[derive(Clone, Debug)]
pub struct IteratedSha1 {
    /// Padded iteration block; for single-block salts the salt lives at
    /// `[20..20 + salt_len]` and the tail is already in place.
    template: [u8; 64],
    /// The same block as sixteen schedule words. Words 0–4 are the digest
    /// slots; 5–15 (salt, padding, length) never change, so an iteration
    /// only rewrites five words and never touches bytes.
    template_words: [u32; 16],
    salt_len: usize,
    single_block: bool,
    /// Salt storage for the multi-block fallback (empty otherwise).
    overflow_salt: Vec<u8>,
    /// SHA-1 blocks per additional iteration: `padded_blocks(20 + salt_len)`.
    blocks_per_iteration: u64,
}

impl IteratedSha1 {
    /// Longest salt for which `20 + salt_len + 9 ≤ 64`, i.e. one padded
    /// block per iteration.
    pub const MAX_SINGLE_BLOCK_SALT: usize = 35;

    /// Build the engine for one parameter set (one salt).
    pub fn new(salt: &[u8]) -> Self {
        let single_block = salt.len() <= Self::MAX_SINGLE_BLOCK_SALT;
        let mut template = [0u8; 64];
        let overflow_salt = if single_block {
            let total = 20 + salt.len();
            template[20..total].copy_from_slice(salt);
            template[total] = 0x80;
            let bit_len = (total as u64) * 8;
            template[56..].copy_from_slice(&bit_len.to_be_bytes());
            Vec::new()
        } else {
            salt.to_vec()
        };
        let mut template_words = [0u32; 16];
        for (i, chunk) in template.chunks_exact(4).enumerate() {
            template_words[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        IteratedSha1 {
            template,
            template_words,
            salt_len: salt.len(),
            single_block,
            overflow_salt,
            blocks_per_iteration: padded_blocks(20 + salt.len()),
        }
    }

    fn salt(&self) -> &[u8] {
        if self.single_block {
            &self.template[20..20 + self.salt_len]
        } else {
            &self.overflow_salt
        }
    }

    /// `H(... H(H(input || salt) || salt) ...)` with `iterations`
    /// *additional* iterations, returning the digest and the exact number of
    /// compression-function invocations spent (identical to what the
    /// streaming reference performs).
    pub fn hash(&self, input: &[u8], iterations: u16) -> ([u8; 20], u64) {
        let compressions = padded_blocks(input.len() + self.salt_len)
            + u64::from(iterations) * self.blocks_per_iteration;
        // The digest is carried as five state words: the output words of one
        // compression are exactly the first five schedule words of the next,
        // so the chain never round-trips through bytes.
        let mut dw = self.initial(input);
        if self.single_block {
            let mut w = self.template_words;
            for _ in 0..iterations {
                w[..5].copy_from_slice(&dw);
                let mut state = H0;
                compress_words(&mut state, &w);
                dw = state;
            }
        } else {
            let mut buf = Vec::with_capacity(20 + self.salt_len);
            for _ in 0..iterations {
                buf.clear();
                buf.extend_from_slice(&digest_bytes(&dw));
                buf.extend_from_slice(self.salt());
                dw = sha1_oneshot_state(&buf);
            }
        }
        (digest_bytes(&dw), compressions)
    }

    /// [`IteratedSha1::hash`] over a batch of independent inputs, driving up
    /// to [`MAX_LANES`] iterated chains through the interleaved compression
    /// kernel simultaneously.
    ///
    /// Results are in input order, and every `(digest, compressions)` pair is
    /// byte-identical to what the scalar [`IteratedSha1::hash`] returns for
    /// the same input: lanes run the same arithmetic, ragged inputs (initial
    /// block > 55 bytes) seed their lane through the scalar one-shot, batch
    /// remainders shorter than four lanes finish on the scalar loop, and
    /// multi-block salts (> [`IteratedSha1::MAX_SINGLE_BLOCK_SALT`]) fall
    /// back to per-lane scalar hashing entirely.
    pub fn hash_batch(&self, inputs: &[&[u8]], iterations: u16) -> Vec<([u8; 20], u64)> {
        if !self.single_block {
            return inputs.iter().map(|i| self.hash(i, iterations)).collect();
        }
        let mut states = self.initial_batch(inputs);
        let mut rest: &mut [[u32; 5]] = &mut states;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at_mut(8);
            self.iterate_lanes::<8>(chunk.try_into().expect("split_at_mut(8)"), iterations);
            rest = tail;
        }
        if rest.len() >= 4 {
            let (chunk, tail) = rest.split_at_mut(4);
            self.iterate_lanes::<4>(chunk.try_into().expect("split_at_mut(4)"), iterations);
            rest = tail;
        }
        for dw in rest {
            self.iterate_scalar(dw, iterations);
        }
        inputs
            .iter()
            .zip(states)
            .map(|(input, dw)| {
                let compressions = padded_blocks(input.len() + self.salt_len)
                    + u64::from(iterations) * self.blocks_per_iteration;
                (digest_bytes(&dw), compressions)
            })
            .collect()
    }

    /// `H(input || salt)` for every input, interleaving the single-padded-
    /// block compressions (the common case: wire name + short salt ≤ 55
    /// bytes) across lanes; longer inputs seed through the scalar one-shot.
    fn initial_batch(&self, inputs: &[&[u8]]) -> Vec<[u32; 5]> {
        let mut states = vec![H0; inputs.len()];
        let mut pending: [(usize, [u8; 64]); MAX_LANES] = [(0, [0u8; 64]); MAX_LANES];
        let mut n_pending = 0;
        for (idx, input) in inputs.iter().enumerate() {
            let total = input.len() + self.salt_len;
            if total <= 55 {
                let (slot_idx, block) = &mut pending[n_pending];
                *slot_idx = idx;
                block.fill(0);
                block[..input.len()].copy_from_slice(input);
                block[input.len()..total].copy_from_slice(self.salt());
                block[total] = 0x80;
                let bit_len = (total as u64) * 8;
                block[56..].copy_from_slice(&bit_len.to_be_bytes());
                n_pending += 1;
                if n_pending == MAX_LANES {
                    flush_initial_lanes::<MAX_LANES>(&pending, &mut states);
                    n_pending = 0;
                }
            } else {
                states[idx] = self.initial(input);
            }
        }
        if n_pending >= 4 {
            flush_initial_lanes::<4>(&pending[..4], &mut states);
            pending.copy_within(4..n_pending, 0);
            n_pending -= 4;
        }
        for (idx, block) in &pending[..n_pending] {
            let mut state = H0;
            compress_block(&mut state, block);
            states[*idx] = state;
        }
        states
    }

    /// Run L single-block-salt iterated chains in lockstep: schedule words
    /// 5–15 are the shared salt/padding template broadcast across lanes,
    /// words 0–4 are each lane's carried digest.
    fn iterate_lanes<const L: usize>(&self, states: &mut [[u32; 5]; L], iterations: u16) {
        let mut w = [[0u32; L]; 16];
        for (wv, tw) in w.iter_mut().zip(self.template_words).skip(5) {
            *wv = [tw; L];
        }
        let mut lanes = transpose_states(states);
        for _ in 0..iterations {
            w[..5].copy_from_slice(&lanes[..5]);
            for (v, h) in H0.iter().enumerate() {
                lanes[v] = [*h; L];
            }
            compress_words_lanes(&mut lanes, &w);
        }
        untranspose_states(&lanes, states);
    }

    /// The scalar single-block iteration loop (shared by [`hash`] remainder
    /// lanes), updating the carried digest words in place.
    ///
    /// [`hash`]: IteratedSha1::hash
    fn iterate_scalar(&self, dw: &mut [u32; 5], iterations: u16) {
        let mut w = self.template_words;
        for _ in 0..iterations {
            w[..5].copy_from_slice(dw);
            let mut state = H0;
            compress_words(&mut state, &w);
            *dw = state;
        }
    }

    /// `H(input || salt)` — the iteration-0 hash, as state words.
    fn initial(&self, input: &[u8]) -> [u32; 5] {
        let total = input.len() + self.salt_len;
        if total <= 55 {
            // `input || salt` fits one padded block: build it in place.
            let mut block = [0u8; 64];
            block[..input.len()].copy_from_slice(input);
            block[input.len()..total].copy_from_slice(self.salt());
            block[total] = 0x80;
            let bit_len = (total as u64) * 8;
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
            let mut state = H0;
            compress_block(&mut state, &block);
            state
        } else if total <= 512 {
            // Wire name (≤ 255) + salt (≤ 255) always lands here: hash from
            // a stack buffer, no allocation.
            let mut buf = [0u8; 512];
            buf[..input.len()].copy_from_slice(input);
            buf[input.len()..total].copy_from_slice(self.salt());
            sha1_oneshot_state(&buf[..total])
        } else {
            let mut buf = Vec::with_capacity(total);
            buf.extend_from_slice(input);
            buf.extend_from_slice(self.salt());
            sha1_oneshot_state(&buf)
        }
    }
}

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes, mod 2^64.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
    compressions: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
            compressions: 0,
        }
    }
}

impl Sha1 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        self.compressions += 1;
        compress_block(&mut self.state, block);
    }

    /// Finalize into a fixed-size array (avoids the `Vec` of the trait API).
    pub fn finalize_fixed(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, a zero run to 56 mod 64 (written as slice fills,
        // not byte-at-a-time), 64-bit big-endian bit length.
        let n = self.buf_len;
        self.buf[n] = 0x80;
        self.buf[n + 1..].fill(0);
        if n + 9 > 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf = [0; 64];
        }
        self.buf[56..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        digest_bytes(&self.state)
    }

    /// Total compressions this hasher will have performed once finalized:
    /// the count so far plus the blocks implied by padding. Lets cost models
    /// account for a finalize without consuming the hasher.
    pub fn padded_compressions(&self) -> u64 {
        // Padding appends 1 byte (0x80), zeros to 56 mod 64, and 8 length
        // bytes; so the buffered remainder plus 9, rounded up to blocks.
        let tail_blocks = (self.buf_len + 9).div_ceil(64) as u64;
        self.compressions + tail_blocks
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        // Fast path: feed whole blocks directly once the buffer is aligned.
        let mut rest = data;
        if self.buf_len != 0 {
            let take = (64 - self.buf_len).min(rest.len());
            let (head, tail) = rest.split_at(take);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(head);
            self.buf_len += take;
            rest = tail;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }

    fn finalize_into(self, out: &mut [u8]) {
        out.copy_from_slice(&self.finalize_fixed());
    }

    fn compressions(&self) -> u64 {
        self.compressions
    }
}

/// One-shot SHA-1 returning the fixed-size digest.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize_fixed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_lower;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex_lower(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex_lower(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex_lower(&sha1(msg)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex_lower(&h.finalize_fixed()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1031).collect();
        let oneshot = sha1(&data);
        for split in [0usize, 1, 63, 64, 65, 500, 1030, 1031] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize_fixed(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn sha1_oneshot_equals_streaming_at_padding_boundaries() {
        let data: Vec<u8> = (0..=255u8).cycle().take(200).collect();
        for len in [0usize, 1, 54, 55, 56, 63, 64, 65, 119, 120, 128, 200] {
            assert_eq!(sha1_oneshot(&data[..len]), sha1(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn compression_count_matches_block_math() {
        // A message of `len` bytes plus 9 padding/length bytes, rounded up to
        // 64-byte blocks, is the expected number of compressions — both as
        // predicted (padded_compressions, padded_blocks) and as performed.
        for len in [0usize, 1, 55, 56, 63, 64, 119, 120, 1000] {
            let mut h = Sha1::new();
            h.update(&vec![0u8; len]);
            let expected = (len + 9).div_ceil(64) as u64;
            assert_eq!(h.padded_compressions(), expected, "predicted, len {len}");
            assert_eq!(padded_blocks(len), expected, "arithmetic, len {len}");
            // Count what finalize actually performs: whole blocks absorbed so
            // far plus the padding tail.
            let absorbed = h.compressions();
            assert_eq!(absorbed, (len / 64) as u64, "absorbed, len {len}");
            h.finalize_fixed();
        }
    }

    #[test]
    fn iterated_engine_matches_streaming_chain() {
        for salt_len in [0usize, 4, 16, 35, 36, 64, 255] {
            let salt: Vec<u8> = (0..salt_len as u8).collect();
            let engine = IteratedSha1::new(&salt);
            let input = b"\x03www\x07example\x03com\x00";
            for iterations in [0u16, 1, 2, 13, 150] {
                let (digest, cost) = engine.hash(input, iterations);
                // Streaming reference.
                let mut expected_cost = 0u64;
                let mut h = Sha1::new();
                h.update(input);
                h.update(&salt);
                expected_cost += h.padded_compressions();
                let mut expected = h.finalize_fixed();
                for _ in 0..iterations {
                    let mut h = Sha1::new();
                    h.update(&expected);
                    h.update(&salt);
                    expected_cost += h.padded_compressions();
                    expected = h.finalize_fixed();
                }
                assert_eq!(digest, expected, "salt {salt_len}, it {iterations}");
                assert_eq!(cost, expected_cost, "salt {salt_len}, it {iterations}");
            }
        }
    }

    #[test]
    fn interleaved_compress_matches_scalar() {
        let blocks: Vec<[u8; 64]> = (0..8u8)
            .map(|j| core::array::from_fn(|i| (i as u8).wrapping_mul(j + 1).wrapping_add(j)))
            .collect();
        let mut scalar: Vec<[u32; 5]> = (0..8u32)
            .map(|j| [H0[0] ^ j, H0[1], H0[2], H0[3], H0[4]])
            .collect();
        let mut x8: [[u32; 5]; 8] = scalar.clone().try_into().unwrap();
        let mut x4: [[u32; 5]; 4] = scalar[..4].to_vec().try_into().unwrap();
        compress_blocks_x8(&mut x8, &core::array::from_fn(|j| &blocks[j]));
        compress_blocks_x4(&mut x4, &core::array::from_fn(|j| &blocks[j]));
        for (j, s) in scalar.iter_mut().enumerate() {
            compress_block(s, &blocks[j]);
        }
        assert_eq!(x8.to_vec(), scalar);
        assert_eq!(x4.to_vec(), scalar[..4]);
    }

    #[test]
    fn hash_batch_matches_scalar() {
        // Batch sizes cover the x8 chunks, the x4 tail, and scalar leftovers;
        // input lengths cross the 55-byte single-initial-block boundary.
        for salt_len in [0usize, 8, 35, 36, 64] {
            let salt: Vec<u8> = (0..salt_len as u8).collect();
            let engine = IteratedSha1::new(&salt);
            let inputs: Vec<Vec<u8>> = (0..15u8).map(|i| vec![i ^ 0x5a; i as usize * 7]).collect();
            for size in [0usize, 1, 3, 4, 7, 8, 9, 12, 15] {
                let refs: Vec<&[u8]> = inputs[..size].iter().map(|v| v.as_slice()).collect();
                for iterations in [0u16, 1, 150] {
                    let batch = engine.hash_batch(&refs, iterations);
                    assert_eq!(batch.len(), size);
                    for (input, got) in refs.iter().zip(&batch) {
                        let want = engine.hash(input, iterations);
                        assert_eq!(*got, want, "salt {salt_len}, n {size}, it {iterations}");
                    }
                }
            }
        }
    }

    #[test]
    fn trait_digest_matches_fn() {
        assert_eq!(Sha1::digest(b"hello"), sha1(b"hello").to_vec());
    }

    #[test]
    fn finalize_into_matches_finalize() {
        let mut h = Sha1::new();
        h.update(b"finalize_into");
        let mut out = [0u8; 20];
        h.clone().finalize_into(&mut out);
        assert_eq!(out.to_vec(), h.finalize());
    }
}
