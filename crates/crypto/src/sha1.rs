//! SHA-1 (FIPS 180-4), implemented from scratch.
//!
//! SHA-1 is cryptographically broken for collision resistance, but it is the
//! *only* hash algorithm assigned for NSEC3 (RFC 5155 §11, algorithm 1), so a
//! faithful NSEC3 implementation must carry it. The implementation is a
//! straightforward streaming Merkle–Damgård construction over the 512-bit
//! compression function, with a compression counter for the CVE-2023-50868
//! cost model.

use crate::Digest;

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes, mod 2^64.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
    compressions: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
            compressions: 0,
        }
    }
}

impl Sha1 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        self.compressions += 1;
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }

    /// Finalize into a fixed-size array (avoids the `Vec` of the trait API).
    pub fn finalize_fixed(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update_inner(&[0x80]);
        while self.buf_len != 56 {
            self.update_inner(&[0]);
        }
        self.update_inner(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Total compressions this hasher will have performed once finalized:
    /// the count so far plus the blocks implied by padding. Lets cost models
    /// account for a finalize without consuming the hasher.
    pub fn padded_compressions(&self) -> u64 {
        // Padding appends 1 byte (0x80), zeros to 56 mod 64, and 8 length
        // bytes; so the buffered remainder plus 9, rounded up to blocks.
        let tail_blocks = (self.buf_len + 9).div_ceil(64) as u64;
        self.compressions + tail_blocks
    }

    /// Absorb without advancing the message length (used for padding).
    fn update_inner(&mut self, data: &[u8]) {
        for &byte in data {
            self.buf[self.buf_len] = byte;
            self.buf_len += 1;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        // Fast path: feed whole blocks directly once the buffer is aligned.
        let mut rest = data;
        if self.buf_len != 0 {
            let take = (64 - self.buf_len).min(rest.len());
            let (head, tail) = rest.split_at(take);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(head);
            self.buf_len += take;
            rest = tail;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }

    fn compressions(&self) -> u64 {
        self.compressions
    }
}

/// One-shot SHA-1 returning the fixed-size digest.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize_fixed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_lower;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex_lower(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex_lower(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex_lower(&sha1(msg)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex_lower(&h.finalize_fixed()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1031).collect();
        let oneshot = sha1(&data);
        for split in [0usize, 1, 63, 64, 65, 500, 1030, 1031] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize_fixed(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn compression_count_matches_block_math() {
        // A message of `len` bytes plus 9 padding/length bytes, rounded up to
        // 64-byte blocks, is the expected number of compressions.
        for len in [0usize, 1, 55, 56, 63, 64, 119, 120, 1000] {
            let mut h = Sha1::new();
            h.update(&vec![0u8; len]);
            // Replay the padding into a clone so we can observe the final count
            // (finalize_fixed consumes the hasher).
            let mut tally = h.clone();
            let bitlen = (len as u64) * 8;
            tally.update_inner(&[0x80]);
            while tally.buf_len != 56 {
                tally.update_inner(&[0]);
            }
            tally.update_inner(&bitlen.to_be_bytes());
            let expected = (len + 9).div_ceil(64) as u64;
            assert_eq!(tally.compressions(), expected, "len {len}");
        }
    }

    #[test]
    fn trait_digest_matches_fn() {
        assert_eq!(Sha1::digest(b"hello"), sha1(b"hello").to_vec());
    }
}
