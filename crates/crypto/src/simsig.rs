//! *SimSig*: a deterministic simulated DNSSEC signature scheme.
//!
//! # Substitution rationale (see DESIGN.md §2)
//!
//! The paper's infrastructure signs zones with real RSA/ECDSA keys. For the
//! reproduction, the only properties of the signature scheme that the
//! measurement exercises are:
//!
//! 1. a signature over the RFC 4034 canonical RRset buffer either verifies or
//!    does not (valid vs. bogus),
//! 2. temporal validity (inception/expiration) is enforced independently of
//!    the math (the `expired` and `it-2501-expired` testbed zones), and
//! 3. DNSKEY records are linked upward via DS digests.
//!
//! SimSig preserves all three while staying deterministic and dependency-free:
//! the "public key" is a 32-byte value derived from the secret, and a
//! signature is `HMAC-SHA-256(public_key, message)`. Anyone holding the public
//! key could forge signatures — that is irrelevant here because the simulation
//! is a closed loop with no adversary outside our own fault injectors, and the
//! fault injectors corrupt signatures explicitly rather than forging them.
//!
//! SimSig identifies itself with DNSSEC algorithm number 253 (`PRIVATEDNS`,
//! reserved by RFC 4034 §A.1.1 for private algorithms), though the zone signer
//! may label keys with any algorithm number to mimic populations in the wild.

use crate::hmac::{Hmac, HmacKey};
use crate::sha256::{sha256, Sha256};

/// DNSSEC algorithm number SimSig identifies itself with (PRIVATEDNS).
pub const SIMSIG_ALGORITHM: u8 = 253;

/// Length in bytes of a SimSig public key.
pub const PUBLIC_KEY_LEN: usize = 32;

/// Length in bytes of a SimSig signature.
pub const SIGNATURE_LEN: usize = 32;

/// Domain-separation suffix for public-key derivation.
const PK_DERIVE: &[u8] = b"heroes-simsig-public-v1";

/// A SimSig key pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyPair {
    secret: [u8; 32],
    public: [u8; 32],
}

impl KeyPair {
    /// Derive a key pair deterministically from a seed. The same seed always
    /// yields the same pair, which keeps whole-population experiments
    /// reproducible.
    pub fn from_seed(seed: &[u8]) -> Self {
        let secret = sha256(seed);
        let mut buf = Vec::with_capacity(32 + PK_DERIVE.len());
        buf.extend_from_slice(&secret);
        buf.extend_from_slice(PK_DERIVE);
        let public = sha256(&buf);
        KeyPair { secret, public }
    }

    /// The public key bytes, as stored in a DNSKEY RDATA public-key field.
    pub fn public_key(&self) -> &[u8; 32] {
        &self.public
    }

    /// Sign `message` (the RFC 4034 canonical signing buffer).
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        sign_with_public(&self.public, message)
    }

    /// A reusable signing context for this key. Whole-zone signing creates
    /// one per key instead of re-deriving the HMAC pad schedule for every
    /// RRset.
    pub fn signing_context(&self) -> Context {
        Context::new(&self.public)
    }
}

/// Precomputed per-key signing state: the HMAC pad schedule, derived once.
#[derive(Clone)]
pub struct Context {
    key: HmacKey<Sha256>,
}

impl Context {
    /// Build the context for the key identified by `public_key`.
    pub fn new(public_key: &[u8]) -> Self {
        Context {
            key: HmacKey::new(public_key),
        }
    }

    /// Sign `message`; identical output to [`KeyPair::sign`].
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        self.key.mac(message)
    }

    /// Sign a batch of messages, interleaving the HMAC-SHA-256 compressions
    /// across lanes; `out[i]` is byte-identical to
    /// [`Context::sign`]`(messages[i])`. The zone signer's RRSIG pass feeds
    /// each shard's canonical signing buffers through this in one call.
    pub fn sign_batch_into(&self, messages: &[&[u8]], out: &mut [[u8; 32]]) {
        self.key.mac_batch_into(messages, out);
    }
}

/// Produce the signature for `message` under the key identified by
/// `public_key`.
///
/// Exposed so that fault injectors can mint signatures for *any* key when
/// constructing deliberately inconsistent zones; regular code paths should go
/// through [`KeyPair::sign`].
pub fn sign_with_public(public_key: &[u8], message: &[u8]) -> Vec<u8> {
    Hmac::<Sha256>::mac(public_key, message)
}

/// Verify `signature` over `message` under `public_key`.
pub fn verify(public_key: &[u8], message: &[u8], signature: &[u8]) -> bool {
    if public_key.len() != PUBLIC_KEY_LEN || signature.len() != SIGNATURE_LEN {
        return false;
    }
    Hmac::<Sha256>::verify(public_key, message, signature)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = KeyPair::from_seed(b"zone: example.");
        let b = KeyPair::from_seed(b"zone: example.");
        let c = KeyPair::from_seed(b"zone: example.com.");
        assert_eq!(a, b);
        assert_ne!(a.public_key(), c.public_key());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"k1");
        let sig = kp.sign(b"message");
        assert!(verify(kp.public_key(), b"message", &sig));
        assert!(!verify(kp.public_key(), b"messagf", &sig));
        let other = KeyPair::from_seed(b"k2");
        assert!(!verify(other.public_key(), b"message", &sig));
    }

    #[test]
    fn corrupted_signature_rejected() {
        let kp = KeyPair::from_seed(b"k1");
        let mut sig = kp.sign(b"message");
        sig[0] ^= 0x01;
        assert!(!verify(kp.public_key(), b"message", &sig));
    }

    #[test]
    fn wrong_length_inputs_rejected() {
        let kp = KeyPair::from_seed(b"k1");
        let sig = kp.sign(b"m");
        assert!(!verify(&kp.public_key()[..31], b"m", &sig));
        assert!(!verify(kp.public_key(), b"m", &sig[..31]));
    }

    #[test]
    fn signature_len_is_declared() {
        let kp = KeyPair::from_seed(b"k1");
        assert_eq!(kp.sign(b"x").len(), SIGNATURE_LEN);
        assert_eq!(kp.public_key().len(), PUBLIC_KEY_LEN);
    }
}
