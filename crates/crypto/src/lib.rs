//! From-scratch cryptographic primitives for the `heroes` DNSSEC substrate.
//!
//! This crate deliberately implements everything it needs rather than pulling
//! in external cryptography dependencies:
//!
//! * [`sha1`] — SHA-1 (FIPS 180-4), the only hash algorithm defined for NSEC3
//!   (RFC 5155 §11 assigns algorithm number 1 to SHA-1).
//! * [`sha256`] — SHA-256 (FIPS 180-4), used for DS digests and the simulated
//!   signature scheme.
//! * [`hmac`] — HMAC (RFC 2104) over any [`Digest`] implementation.
//! * [`simsig`] — *SimSig*, a deterministic stand-in for RSA/ECDSA DNSSEC
//!   signatures. See the module docs for the exact substitution argument.
//! * [`keytag`] — the RFC 4034 Appendix B key-tag computation.
//!
//! # Cost accounting
//!
//! CVE-2023-50868 is an algorithmic-complexity attack whose cost is the
//! number of hash *compression-function* invocations a validating resolver
//! performs while checking NSEC3 closest-encloser proofs. Both hash
//! implementations therefore count the compression invocations they perform
//! ([`Digest::compressions`]), and the resolver's cost model aggregates them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hmac;
pub mod keytag;
pub mod sha1;
pub mod sha256;
pub mod simsig;

/// A streaming cryptographic hash function.
///
/// Modeled after the conventional `update`/`finalize` digest interface, plus
/// a compression-invocation counter used by the CVE-2023-50868 cost model.
pub trait Digest: Default + Clone {
    /// Digest output length in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block length in bytes (64 for SHA-1/SHA-256).
    const BLOCK_LEN: usize;

    /// Absorb `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consume the hasher and return the digest.
    fn finalize(self) -> Vec<u8>;

    /// Consume the hasher and write the digest into `out`, which must be
    /// exactly [`Digest::OUTPUT_LEN`] bytes. Implementations override this
    /// to skip the `Vec` allocation of [`Digest::finalize`].
    fn finalize_into(self, out: &mut [u8]) {
        out.copy_from_slice(&self.finalize());
    }

    /// Number of compression-function invocations performed so far,
    /// including those implied by padding when [`Digest::finalize`] runs.
    fn compressions(&self) -> u64;

    /// One-shot convenience: digest of `data`.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::default();
        h.update(data);
        h.finalize()
    }
}

/// Constant-time byte-slice equality.
///
/// Not security-critical in a simulation, but signature and MAC comparisons
/// use it anyway so the code reads like production code.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Render bytes as lowercase hex (test helpers and presentation formats).
pub fn hex_lower(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Parse lowercase/uppercase hex into bytes. Returns `None` on odd length or
/// non-hex characters.
pub fn hex_parse(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = [0x00, 0x01, 0xab, 0xff, 0x7f];
        let s = hex_lower(&bytes);
        assert_eq!(s, "0001abff7f");
        assert_eq!(hex_parse(&s).unwrap(), bytes);
    }

    #[test]
    fn hex_parse_rejects_bad_input() {
        assert!(hex_parse("abc").is_none());
        assert!(hex_parse("zz").is_none());
        assert_eq!(hex_parse("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn hex_parse_accepts_uppercase() {
        assert_eq!(hex_parse("AABB").unwrap(), vec![0xaa, 0xbb]);
    }
}
