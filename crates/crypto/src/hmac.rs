//! HMAC (RFC 2104) over any [`Digest`] implementation.

use crate::{ct_eq, Digest};

/// A precomputed HMAC key: the inner and outer hashers with their pad
/// blocks already absorbed. One key authenticating many messages (the
/// zone signer: one ZSK, thousands of RRsets) pays the key schedule and
/// the two pad compressions once instead of per message.
#[derive(Clone)]
pub struct HmacKey<D: Digest> {
    inner: D,
    outer: D,
}

impl<D: Digest> HmacKey<D> {
    /// Derive the pad states for `key` (any length; keys longer than the
    /// digest block length are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let mut h = D::default();
            h.update(key);
            h.finalize_into(&mut key_block[..D::OUTPUT_LEN]);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = D::default();
        inner.update(&ipad);
        let mut outer = D::default();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Start a streaming MAC under this key.
    pub fn begin(&self) -> Hmac<D> {
        Hmac {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// MAC `data` into `out` (exactly `D::OUTPUT_LEN` bytes) without
    /// allocating.
    pub fn mac_into(&self, data: &[u8], out: &mut [u8]) {
        let mut h = self.begin();
        h.update(data);
        h.finalize_into(out);
    }

    /// MAC `data`, returning the tag.
    pub fn mac(&self, data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; D::OUTPUT_LEN];
        self.mac_into(data, &mut out);
        out
    }
}

impl HmacKey<crate::sha256::Sha256> {
    /// MAC a batch of messages under this key, interleaving the SHA-256
    /// compressions across lanes (see `sha256::finish_midstate_batch`).
    /// `out[i]` is byte-identical to [`HmacKey::mac`]`(msgs[i])`.
    ///
    /// Both HMAC passes batch: the inner pass finishes every message from
    /// the shared key-XOR-ipad midstate, and the outer pass is a uniform
    /// single-tail-block batch over the 32-byte inner digests.
    pub fn mac_batch_into(&self, msgs: &[&[u8]], out: &mut [[u8; 32]]) {
        assert_eq!(msgs.len(), out.len());
        let (istate, ilen) = self.inner.midstate_aligned();
        crate::sha256::finish_midstate_batch(istate, ilen, msgs, out);
        let inner_digests = out.to_vec();
        let refs: Vec<&[u8]> = inner_digests.iter().map(|d| d.as_slice()).collect();
        let (ostate, olen) = self.outer.midstate_aligned();
        crate::sha256::finish_midstate_batch(ostate, olen, &refs, out);
    }
}

/// Streaming HMAC computation.
///
/// ```
/// use dns_crypto::{hmac::Hmac, sha256::Sha256, Digest};
/// let mut mac = Hmac::<Sha256>::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), Sha256::OUTPUT_LEN);
/// ```
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    /// The outer hasher with key XOR opad absorbed, kept for the outer pass.
    outer: D,
}

impl<D: Digest> Hmac<D> {
    /// Create an HMAC instance keyed with `key` (any length; keys longer than
    /// the digest block length are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the authentication tag.
    pub fn finalize(self) -> Vec<u8> {
        self.finalize_outer().finalize()
    }

    /// Produce the tag into `out` (exactly `D::OUTPUT_LEN` bytes) without
    /// allocating.
    pub fn finalize_into(self, out: &mut [u8]) {
        self.finalize_outer().finalize_into(out);
    }

    /// The outer hasher with the inner digest absorbed; the inner digest
    /// passes through a stack buffer, never a `Vec`.
    fn finalize_outer(self) -> D {
        debug_assert!(D::OUTPUT_LEN <= 64, "stack scratch sized for SHA-2");
        let mut inner_digest = [0u8; 64];
        self.inner.finalize_into(&mut inner_digest[..D::OUTPUT_LEN]);
        let mut outer = self.outer;
        outer.update(&inner_digest[..D::OUTPUT_LEN]);
        outer
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verify `tag` against the MAC of `data` in constant time.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        ct_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;
    use crate::{hex_lower, hex_parse};

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1_sha256() {
        let key = [0x0b; 20];
        let tag = Hmac::<Sha256>::mac(&key, b"Hi There");
        assert_eq!(
            hex_lower(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2_sha256() {
        let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_lower(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let tag = Hmac::<Sha256>::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex_lower(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 2202 test case 1 for HMAC-SHA1.
    #[test]
    fn rfc2202_case1_sha1() {
        let key = [0x0b; 20];
        let tag = Hmac::<Sha1>::mac(&key, b"Hi There");
        assert_eq!(hex_lower(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    // RFC 2202 test case 2 for HMAC-SHA1.
    #[test]
    fn rfc2202_case2_sha1() {
        let tag = Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex_lower(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = Hmac::<Sha256>::mac(b"k", b"data");
        assert!(Hmac::<Sha256>::verify(b"k", b"data", &tag));
        assert!(!Hmac::<Sha256>::verify(b"k", b"datb", &tag));
        assert!(!Hmac::<Sha256>::verify(b"j", b"data", &tag));
        let _ = hex_parse("00"); // keep import used in all cfgs
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut mac = Hmac::<Sha256>::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), Hmac::<Sha256>::mac(b"key", b"hello world"));
    }

    #[test]
    fn mac_batch_matches_scalar() {
        let key = HmacKey::<Sha256>::new(b"batch-key");
        let msgs: Vec<Vec<u8>> = (0..13u8).map(|i| vec![i; i as usize * 17]).collect();
        for n in [0usize, 1, 2, 4, 7, 8, 9, 13] {
            let refs: Vec<&[u8]> = msgs[..n].iter().map(|m| m.as_slice()).collect();
            let mut out = vec![[0u8; 32]; n];
            key.mac_batch_into(&refs, &mut out);
            for (msg, got) in refs.iter().zip(&out) {
                assert_eq!(got.to_vec(), key.mac(msg), "len {}", msg.len());
            }
        }
    }
}
