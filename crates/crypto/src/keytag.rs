//! DNSKEY key-tag computation (RFC 4034 Appendix B).
//!
//! The key tag is a 16-bit checksum over the DNSKEY RDATA that lets RRSIG and
//! DS records hint which key they refer to. It is *not* a unique identifier;
//! resolvers must still try every key with a matching tag.

/// Compute the key tag over a DNSKEY RDATA in wire format
/// (flags | protocol | algorithm | public key).
///
/// This is the RFC 4034 Appendix B algorithm for all modern algorithms
/// (i.e. everything except the obsolete algorithm 1).
pub fn key_tag(dnskey_rdata: &[u8]) -> u16 {
    let mut ac: u32 = 0;
    for (i, &b) in dnskey_rdata.iter().enumerate() {
        if i & 1 == 1 {
            ac += u32::from(b);
        } else {
            ac += u32::from(b) << 8;
        }
    }
    ac += (ac >> 16) & 0xFFFF;
    (ac & 0xFFFF) as u16
}

/// Find a two-byte tail such that `key_tag(prefix ++ tail)` equals `target`.
///
/// The RFC 4034 checksum is a 16-bit additive fold, so colliding tags are
/// trivially constructible: with the accumulator over `prefix` fixed, the two
/// appended bytes contribute one 16-bit word (byte order depending on the
/// parity of `prefix.len()`), and scanning all 65 536 words finds a preimage
/// for essentially every target. This is the KeyTrap ingredient (arXiv
/// 2406.03133): publish many DNSKEYs sharing one tag and a validator must
/// attempt a signature verification against *each* of them.
///
/// Returns `None` in the rare case the fold skips `target` for this prefix
/// (the fold over a contiguous 2^16 range can miss at most one residue);
/// callers perturb an earlier byte and retry.
pub fn colliding_tail(prefix: &[u8], target: u16) -> Option<[u8; 2]> {
    let mut ac: u32 = 0;
    for (i, &b) in prefix.iter().enumerate() {
        if i & 1 == 1 {
            ac += u32::from(b);
        } else {
            ac += u32::from(b) << 8;
        }
    }
    for hi in 0..=0xFFu32 {
        for lo in 0..=0xFFu32 {
            // Tail byte positions continue the prefix parity.
            let add = if prefix.len() & 1 == 0 {
                (hi << 8) + lo
            } else {
                hi + (lo << 8)
            };
            let mut sum = ac + add;
            sum += (sum >> 16) & 0xFFFF;
            if (sum & 0xFFFF) as u16 == target {
                return Some([hi as u8, lo as u8]);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rdata_is_zero() {
        assert_eq!(key_tag(&[]), 0);
    }

    #[test]
    fn colliding_tail_hits_target() {
        // Even- and odd-length prefixes, a spread of targets.
        for prefix in [&b""[..], b"\x01\x00\x03\x05", b"abc", b"0123456789abcdef0"] {
            for target in [1u16, 0x1234, 0x9276, 0xFFFE] {
                if let Some(tail) = colliding_tail(prefix, target) {
                    let mut rdata = prefix.to_vec();
                    rdata.extend_from_slice(&tail);
                    assert_eq!(key_tag(&rdata), target, "prefix {prefix:?} target {target}");
                } else {
                    panic!("no tail found for prefix {prefix:?} target {target}");
                }
            }
        }
        // Target 0 is the one residue a small accumulator cannot reach
        // (the fold only lands on 0 from sums 0 or 0x1FFFF): the miss case
        // callers handle by perturbing the prefix.
        assert_eq!(colliding_tail(b"\x01\x00\x03\x05", 0), None);
    }

    #[test]
    fn colliding_tail_is_deterministic() {
        let a = colliding_tail(b"deterministic-prefix", 0x50EB);
        let b = colliding_tail(b"deterministic-prefix", 0x50EB);
        assert_eq!(a, b);
    }

    #[test]
    fn known_small_values() {
        // Hand-computed: [0x01, 0x02] -> 0x0102.
        assert_eq!(key_tag(&[0x01, 0x02]), 0x0102);
        // [0x01, 0x02, 0x03] -> 0x0102 + 0x0300 = 0x0402.
        assert_eq!(key_tag(&[0x01, 0x02, 0x03]), 0x0402);
    }

    #[test]
    fn carry_folding() {
        // 0xFF bytes accumulate past 16 bits and must fold back in.
        let rdata = vec![0xFFu8; 1024];
        let tag = key_tag(&rdata);
        // Hand-check: per pair, 0xFF00 + 0xFF = 0xFFFF; 512 pairs -> ac =
        // 512 * 0xFFFF = 0x1FFFE00; fold: ac += (ac>>16)&0xFFFF = 0x1FF ->
        // 0x1FFFFFF... compute directly instead:
        let mut ac: u32 = 512 * 0xFFFF;
        ac += (ac >> 16) & 0xFFFF;
        assert_eq!(tag, (ac & 0xFFFF) as u16);
    }

    #[test]
    fn order_sensitivity() {
        assert_ne!(key_tag(&[1, 2, 3, 4]), key_tag(&[4, 3, 2, 1]));
    }
}
