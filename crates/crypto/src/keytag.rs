//! DNSKEY key-tag computation (RFC 4034 Appendix B).
//!
//! The key tag is a 16-bit checksum over the DNSKEY RDATA that lets RRSIG and
//! DS records hint which key they refer to. It is *not* a unique identifier;
//! resolvers must still try every key with a matching tag.

/// Compute the key tag over a DNSKEY RDATA in wire format
/// (flags | protocol | algorithm | public key).
///
/// This is the RFC 4034 Appendix B algorithm for all modern algorithms
/// (i.e. everything except the obsolete algorithm 1).
pub fn key_tag(dnskey_rdata: &[u8]) -> u16 {
    let mut ac: u32 = 0;
    for (i, &b) in dnskey_rdata.iter().enumerate() {
        if i & 1 == 1 {
            ac += u32::from(b);
        } else {
            ac += u32::from(b) << 8;
        }
    }
    ac += (ac >> 16) & 0xFFFF;
    (ac & 0xFFFF) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rdata_is_zero() {
        assert_eq!(key_tag(&[]), 0);
    }

    #[test]
    fn known_small_values() {
        // Hand-computed: [0x01, 0x02] -> 0x0102.
        assert_eq!(key_tag(&[0x01, 0x02]), 0x0102);
        // [0x01, 0x02, 0x03] -> 0x0102 + 0x0300 = 0x0402.
        assert_eq!(key_tag(&[0x01, 0x02, 0x03]), 0x0402);
    }

    #[test]
    fn carry_folding() {
        // 0xFF bytes accumulate past 16 bits and must fold back in.
        let rdata = vec![0xFFu8; 1024];
        let tag = key_tag(&rdata);
        // Hand-check: per pair, 0xFF00 + 0xFF = 0xFFFF; 512 pairs -> ac =
        // 512 * 0xFFFF = 0x1FFFE00; fold: ac += (ac>>16)&0xFFFF = 0x1FF ->
        // 0x1FFFFFF... compute directly instead:
        let mut ac: u32 = 512 * 0xFFFF;
        ac += (ac >> 16) & 0xFFFF;
        assert_eq!(tag, (ac & 0xFFFF) as u16);
    }

    #[test]
    fn order_sensitivity() {
        assert_ne!(key_tag(&[1, 2, 3, 4]), key_tag(&[4, 3, 2, 1]));
    }
}
