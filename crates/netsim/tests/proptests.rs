//! Property-based tests for the simulated network: determinism, loss
//! statistics, and clock monotonicity under arbitrary fault configs.

use std::net::{IpAddr, Ipv4Addr};
use std::rc::Rc;

use netsim::{FaultConfig, Network, Node, Outcome};
use sim_check::{gens, props};

struct Echo;
impl Node for Echo {
    fn handle(
        &self,
        _net: &Network,
        _src: IpAddr,
        payload: &[u8],
        reply: &mut Vec<u8>,
    ) -> Option<()> {
        reply.extend_from_slice(payload);
        Some(())
    }
}

fn addr(last: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
}

props! {
    /// Identical seeds and fault configs produce identical outcome
    /// sequences; the virtual clock never goes backwards.
    fn deterministic_and_monotone(
        seed in gens::u64s(..),
        drop in gens::f64s(0.0..0.9),
        corrupt in gens::f64s(0.0..0.9),
        n in gens::usizes(1..40),
    ) {
        let run = || {
            let net = Network::new(seed);
            net.register(addr(2), Rc::new(Echo));
            net.set_faults(FaultConfig { drop_chance: drop, corrupt_chance: corrupt, ..Default::default() });
            let mut outcomes = Vec::new();
            let mut last_clock = 0;
            for _ in 0..n {
                let o = matches!(net.send_query(addr(1), addr(2), b"payload"), Outcome::Response { .. });
                assert!(net.now_micros() >= last_clock);
                last_clock = net.now_micros();
                outcomes.push(o);
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    /// With zero faults every exchange succeeds; with certain loss nothing
    /// does.
    fn loss_extremes(seed in gens::u64s(..), n in gens::usizes(1..20)) {
        let net = Network::new(seed);
        net.register(addr(2), Rc::new(Echo));
        for _ in 0..n {
            let ok = matches!(net.send_query(addr(1), addr(2), b"x"), Outcome::Response { .. });
            assert!(ok);
        }
        net.set_faults(FaultConfig { drop_chance: 1.0, ..Default::default() });
        for _ in 0..n {
            assert_eq!(net.send_query(addr(1), addr(2), b"x"), Outcome::Timeout);
        }
    }

    /// Observed loss rate over many samples lands near the configured
    /// probability (per-exchange success = both legs survive).
    fn loss_rate_statistics(seed in gens::u64s(..)) {
        let net = Network::new(seed);
        net.register(addr(2), Rc::new(Echo));
        let p = 0.2f64;
        net.set_faults(FaultConfig { drop_chance: p, ..Default::default() });
        let trials = 600;
        let mut ok = 0;
        for _ in 0..trials {
            if matches!(net.send_query(addr(1), addr(2), b"x"), Outcome::Response { .. }) {
                ok += 1;
            }
        }
        let expected = (1.0 - p) * (1.0 - p);
        let observed = ok as f64 / trials as f64;
        assert!((observed - expected).abs() < 0.08, "observed {observed}, expected {expected}");
    }

    /// Corruption preserves length and flips at most one bit per leg.
    fn corruption_is_single_bit_per_leg(seed in gens::u64s(..), len in gens::usizes(1..64)) {
        let net = Network::new(seed);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig { corrupt_chance: 1.0, ..Default::default() });
        let payload = vec![0u8; len];
        if let Outcome::Response { payload: got, .. } = net.send_query(addr(1), addr(2), &payload) {
            assert_eq!(got.len(), len);
            let flipped: u32 = got.iter().map(|b| b.count_ones()).sum();
            // Each leg flips exactly one bit; the two flips may cancel.
            assert!(flipped <= 2, "at most one bit per leg: {flipped}");
        }
    }
}
