//! The discrete-event core: a batch timer wheel plus a bounded-window
//! flow driver (DESIGN.md §8).
//!
//! The blocking scan pipeline walks one probe at a time, so a shard's
//! wall clock is the *sum* of its probes' virtual waits. The event core
//! instead advances many per-flow state machines from a single event
//! queue: each flow runs one step (one probe phase, one wire attempt),
//! parks until its next virtual due time, and yields the thread to
//! whichever flow is due next. A bounded in-flight window caps how many
//! flows are admitted at once, so memory stays flat no matter how many
//! items stream through.
//!
//! # Determinism
//!
//! Events are totally ordered by `(due_micros, seq)` where `seq` is a
//! monotone admission/park counter — never by heap-insertion accidents
//! or wall-clock time. Two runs over the same flows therefore pop
//! events, and thus interleave steps, identically. With `window = 1`
//! the driver degenerates to the exact sequential schedule of the
//! blocking pipeline: admit one flow, step it to completion, admit the
//! next.

use std::collections::BinaryHeap;

/// What a flow's step tells the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowStep {
    /// The flow parked: wake it no earlier than virtual `at_micros`.
    Park {
        /// Virtual due time in µs (clamped up to the event's own time if
        /// it lies in the past).
        at_micros: u64,
    },
    /// The flow finished; its window slot frees up.
    Done,
}

/// Counters the driver reports after draining every flow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Flows admitted and completed.
    pub completed: u64,
    /// Total steps executed across all flows.
    pub steps: u64,
    /// Maximum number of flows simultaneously in flight.
    pub in_flight_high_water: usize,
}

/// One scheduled wake-up. Orders by `(due_micros, seq)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TimerEntry {
    due_micros: u64,
    seq: u64,
    token: usize,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_micros, self.seq).cmp(&(other.due_micros, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A batch timer wheel: near-term wake-ups hash into a ring of slots
/// (one per `granularity_micros` of virtual time), far-future ones park
/// in an overflow heap and migrate into the ring as its horizon sweeps
/// forward. Pops are globally ordered by `(due_micros, seq)`; the wheel
/// only changes *where* an entry waits, never *when* it fires.
#[derive(Debug)]
pub struct TimerWheel {
    granularity_micros: u64,
    slots: Vec<Vec<TimerEntry>>,
    overflow: BinaryHeap<std::cmp::Reverse<TimerEntry>>,
    /// Slot index the cursor granule hashes to.
    cursor_slot: usize,
    /// Start of the cursor granule (µs, granularity-aligned). Entries due
    /// at or before this clamp into the cursor slot.
    cursor_micros: u64,
    len: usize,
}

impl TimerWheel {
    /// A wheel of `slots` granules, `granularity_micros` each. The
    /// horizon (how far ahead the ring reaches before entries spill to
    /// the overflow heap) is their product.
    pub fn new(slots: usize, granularity_micros: u64) -> Self {
        let slots = slots.max(1);
        TimerWheel {
            granularity_micros: granularity_micros.max(1),
            slots: vec![Vec::new(); slots],
            overflow: BinaryHeap::new(),
            cursor_slot: 0,
            cursor_micros: 0,
            len: 0,
        }
    }

    /// A wheel sized for scan traffic: 4096 slots of 1024 µs ≈ a 4.2 s
    /// horizon, past the default timeout and the early retry backoffs;
    /// only long adaptive backoffs overflow.
    pub fn for_scans() -> Self {
        TimerWheel::new(4096, 1024)
    }

    /// Entries currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn horizon_micros(&self) -> u64 {
        self.cursor_micros
            .saturating_add(self.granularity_micros * self.slots.len() as u64)
    }

    /// Schedule `token` to fire at `(due_micros, seq)`.
    pub fn schedule(&mut self, due_micros: u64, seq: u64, token: usize) {
        let entry = TimerEntry {
            due_micros,
            seq,
            token,
        };
        self.len += 1;
        if due_micros >= self.horizon_micros() {
            self.overflow.push(std::cmp::Reverse(entry));
        } else if due_micros <= self.cursor_micros {
            // Past-due (the virtual clock outran the wheel): the cursor
            // slot keeps it eligible immediately, and `(due, seq)`
            // ordering inside the slot still ranks it fairly.
            self.slots[self.cursor_slot].push(entry);
        } else {
            let slot = (due_micros / self.granularity_micros) as usize % self.slots.len();
            self.slots[slot].push(entry);
        }
    }

    /// Remove and return the globally earliest entry as
    /// `(due_micros, seq, token)`, or `None` when empty.
    pub fn pop_next(&mut self) -> Option<(u64, u64, usize)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Everything in the cursor slot is due within the cursor
            // granule (or clamped past-due), so its minimum is the
            // global minimum.
            let slot = &mut self.slots[self.cursor_slot];
            if !slot.is_empty() {
                let mut best = 0;
                for i in 1..slot.len() {
                    if slot[i] < slot[best] {
                        best = i;
                    }
                }
                let entry = slot.swap_remove(best);
                self.len -= 1;
                return Some((entry.due_micros, entry.seq, entry.token));
            }
            // Empty granule: sweep the cursor forward one slot and pull
            // overflow entries that just came inside the horizon.
            self.cursor_slot = (self.cursor_slot + 1) % self.slots.len();
            self.cursor_micros += self.granularity_micros;
            let horizon = self.horizon_micros();
            while let Some(std::cmp::Reverse(entry)) = self.overflow.peek().copied() {
                if entry.due_micros >= horizon {
                    break;
                }
                self.overflow.pop();
                let slot = (entry.due_micros / self.granularity_micros) as usize % self.slots.len();
                self.slots[slot].push(entry);
            }
        }
    }
}

/// Drive a stream of flows through the event queue with at most `window`
/// in flight.
///
/// * `admit` yields the next flow, or `None` when the stream is dry; it
///   is called lazily, only when a window slot is free, so the caller
///   never materializes more than `window` flows.
/// * `step` advances one flow; `due_micros` is the event time the flow
///   was scheduled for (the driver's virtual notion of *now* — a flow
///   whose lab clock lags behind should advance it to `due_micros`
///   before acting, which is exactly the blocking path's backoff
///   `advance`).
///
/// Flows admitted earlier get earlier seq numbers, so at equal due times
/// the queue is FIFO. With `window = 1` the schedule is exactly the
/// sequential one.
pub fn drive<F>(
    window: usize,
    mut admit: impl FnMut() -> Option<F>,
    mut step: impl FnMut(&mut F, u64) -> FlowStep,
) -> DriveStats {
    let window = window.max(1);
    let mut wheel = TimerWheel::for_scans();
    let mut slots: Vec<Option<F>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut seq = 0u64;
    let mut vnow = 0u64;
    let mut live = 0usize;
    let mut dry = false;
    let mut stats = DriveStats::default();

    let mut fill = |wheel: &mut TimerWheel,
                    slots: &mut Vec<Option<F>>,
                    free: &mut Vec<usize>,
                    seq: &mut u64,
                    live: &mut usize,
                    dry: &mut bool,
                    vnow: u64,
                    stats: &mut DriveStats| {
        while !*dry && *live < window {
            match admit() {
                Some(flow) => {
                    let token = match free.pop() {
                        Some(t) => {
                            slots[t] = Some(flow);
                            t
                        }
                        None => {
                            slots.push(Some(flow));
                            slots.len() - 1
                        }
                    };
                    wheel.schedule(vnow, *seq, token);
                    *seq += 1;
                    *live += 1;
                    stats.in_flight_high_water = stats.in_flight_high_water.max(*live);
                }
                None => *dry = true,
            }
        }
    };

    fill(
        &mut wheel, &mut slots, &mut free, &mut seq, &mut live, &mut dry, vnow, &mut stats,
    );
    while let Some((due, _, token)) = wheel.pop_next() {
        vnow = vnow.max(due);
        let flow = slots[token].as_mut().expect("scheduled token is live");
        stats.steps += 1;
        match step(flow, due) {
            FlowStep::Park { at_micros } => {
                wheel.schedule(at_micros.max(vnow), seq, token);
                seq += 1;
            }
            FlowStep::Done => {
                slots[token] = None;
                free.push(token);
                live -= 1;
                stats.completed += 1;
                fill(
                    &mut wheel, &mut slots, &mut free, &mut seq, &mut live, &mut dry, vnow,
                    &mut stats,
                );
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_rng::SplitMix64;

    /// The wheel must pop in exactly `(due, seq)` order for schedules
    /// that span past-due, near, and far-future times.
    #[test]
    fn wheel_pops_in_due_seq_order() {
        let mut wheel = TimerWheel::new(8, 100);
        let mut reference: Vec<(u64, u64, usize)> = Vec::new();
        let mut mix = SplitMix64::new(0x7ee1);
        for seq in 0..500u64 {
            // Mix of immediate, near, and far-beyond-horizon dues.
            let due = match mix.next_u64() % 4 {
                0 => 0,
                1 => mix.next_u64() % 800,
                2 => 800 + mix.next_u64() % 10_000,
                _ => 100_000 + mix.next_u64() % 1_000_000,
            };
            wheel.schedule(due, seq, seq as usize);
            reference.push((due, seq, seq as usize));
        }
        reference.sort_unstable();
        let mut popped = Vec::new();
        while let Some(e) = wheel.pop_next() {
            popped.push(e);
        }
        assert_eq!(popped, reference);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_accepts_past_due_entries_immediately() {
        let mut wheel = TimerWheel::new(4, 100);
        wheel.schedule(5_000, 0, 0);
        assert_eq!(wheel.pop_next(), Some((5_000, 0, 0)));
        // The cursor granule has swept past 0; a past-due entry must
        // still fire, and before anything later.
        wheel.schedule(0, 1, 1);
        wheel.schedule(9_000, 2, 2);
        assert_eq!(wheel.pop_next(), Some((0, 1, 1)));
        assert_eq!(wheel.pop_next(), Some((9_000, 2, 2)));
        assert_eq!(wheel.pop_next(), None);
    }

    #[test]
    fn drive_window_one_is_sequential() {
        // Each flow records the global step order; with window = 1 the
        // flows must run strictly one after another.
        let mut order: Vec<(usize, u32)> = Vec::new();
        let mut next_id = 0usize;
        let stats = drive(
            1,
            || {
                if next_id < 3 {
                    next_id += 1;
                    Some((next_id - 1, 0u32))
                } else {
                    None
                }
            },
            |flow, _now| {
                order.push((flow.0, flow.1));
                flow.1 += 1;
                if flow.1 == 4 {
                    FlowStep::Done
                } else {
                    FlowStep::Park { at_micros: 0 }
                }
            },
        );
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.steps, 12);
        assert_eq!(stats.in_flight_high_water, 1);
        let expected: Vec<(usize, u32)> =
            (0..3).flat_map(|id| (0..4).map(move |s| (id, s))).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn drive_interleaves_and_caps_window() {
        // 8 flows, window 3: flows interleave round-robin (same-due FIFO)
        // and never more than 3 are live.
        let mut admitted = 0usize;
        let mut order: Vec<usize> = Vec::new();
        let stats = drive(
            3,
            || {
                if admitted < 8 {
                    admitted += 1;
                    Some((admitted - 1, 0u32))
                } else {
                    None
                }
            },
            |flow, now| {
                order.push(flow.0);
                flow.1 += 1;
                if flow.1 == 2 {
                    FlowStep::Done
                } else {
                    FlowStep::Park { at_micros: now }
                }
            },
        );
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.steps, 16);
        assert_eq!(stats.in_flight_high_water, 3);
        // First three steps belong to the first three flows, FIFO.
        assert_eq!(&order[..3], &[0, 1, 2]);
    }

    #[test]
    fn drive_is_deterministic_across_runs() {
        let run = || {
            let mut admitted = 0usize;
            let mut order: Vec<(usize, u64)> = Vec::new();
            drive(
                4,
                || {
                    if admitted < 12 {
                        admitted += 1;
                        Some((admitted - 1, 0u64))
                    } else {
                        None
                    }
                },
                |flow, now| {
                    order.push((flow.0, now));
                    flow.1 += 1;
                    // Deterministic, flow-dependent backoffs exercise the
                    // wheel's ordering (some beyond the horizon).
                    if flow.1 == 3 {
                        FlowStep::Done
                    } else {
                        FlowStep::Park {
                            at_micros: now + 1_000 * (flow.0 as u64 + 1) * flow.1,
                        }
                    }
                },
            );
            order
        };
        assert_eq!(run(), run());
    }
}
