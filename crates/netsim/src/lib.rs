//! A deterministic, event-driven simulated Internet.
//!
//! This crate substitutes for the live network in the *Zeros Are Heroes*
//! reproduction (DESIGN.md §2). It follows the smoltcp school of design:
//! synchronous, explicit, no hidden concurrency, with first-class fault
//! injection (`--drop-chance` / `--corrupt-chance` style knobs) and a
//! packet trace for observability.
//!
//! # Model
//!
//! * Every host is a [`Node`] registered under one or more [`std::net::IpAddr`]s.
//! * Communication is datagram request/response, like DNS over UDP: the
//!   sender calls [`Network::send_query`], the receiving node's
//!   [`Node::handle`] optionally returns a reply payload.
//! * A node handling a datagram may itself send queries through the same
//!   network (that is how the recursive resolver reaches authoritative
//!   servers). Cycles (a node querying itself) are detected and dropped.
//! * Time is virtual: a monotonic microsecond clock advanced by configured
//!   per-node latencies. Runs are exactly reproducible for a given seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::rc::Rc;

use sim_rng::{Rng, Xoshiro256pp};

/// A host on the simulated network.
///
/// Implementations take `&self`; use interior mutability for state (query
/// logs, caches). This keeps the network re-entrant: a node may send
/// queries from inside `handle`.
pub trait Node {
    /// Handle a datagram sent to this node. Returning `None` means no
    /// response (a timeout from the sender's perspective).
    fn handle(&self, net: &Network, src: IpAddr, payload: &[u8]) -> Option<Vec<u8>>;
}

/// Fault-injection configuration, in the style of smoltcp's example knobs.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that any datagram (either direction) is
    /// silently dropped.
    pub drop_chance: f64,
    /// Probability in `[0, 1]` that one octet of a datagram is corrupted.
    pub corrupt_chance: f64,
    /// Probability in `[0, 1]` that a *request* is delivered twice (UDP
    /// duplication); the receiver's handler runs for each copy, so side
    /// effects (query logs, counters) double, while the sender keeps the
    /// first reply — exactly the failure mode that makes cache-busting
    /// probe names necessary.
    pub duplicate_chance: f64,
    /// Datagrams larger than this are dropped (MTU-ish limit).
    pub size_limit: Option<usize>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            size_limit: None,
        }
    }
}

/// Outcome of one query exchange.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// A response arrived.
    Response {
        /// The reply payload.
        payload: Vec<u8>,
        /// Round-trip time in virtual microseconds.
        rtt_micros: u64,
    },
    /// The query or the response was lost, or the responder stayed silent;
    /// the sender sees a timeout.
    Timeout,
    /// No node is registered at the destination address.
    NoRoute,
}

impl Outcome {
    /// The response payload, if any.
    pub fn payload(&self) -> Option<&[u8]> {
        match self {
            Outcome::Response { payload, .. } => Some(payload),
            _ => None,
        }
    }
}

/// One line of the packet trace.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Virtual timestamp (µs) when the datagram entered the network.
    pub at_micros: u64,
    /// Sender address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Payload length.
    pub len: usize,
    /// What happened to it.
    pub verdict: TraceVerdict,
}

/// Per-datagram fate recorded in the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceVerdict {
    /// Delivered to the destination node.
    Delivered,
    /// Dropped by fault injection.
    Dropped,
    /// Corrupted in flight (still delivered).
    Corrupted,
    /// Dropped: larger than the size limit.
    OverSize,
    /// Dropped: no such destination.
    NoRoute,
    /// Dropped: delivery would re-enter a node already on the call stack.
    Loop,
}

/// The simulated Internet.
pub struct Network {
    nodes: RefCell<HashMap<IpAddr, Rc<dyn Node>>>,
    latency: RefCell<HashMap<IpAddr, u64>>,
    /// Default one-way latency in µs when a node has none configured.
    default_latency: u64,
    faults: RefCell<FaultConfig>,
    rng: RefCell<Xoshiro256pp>,
    clock: Cell<u64>,
    trace: RefCell<Vec<TraceEntry>>,
    trace_cap: Cell<usize>,
    in_flight: RefCell<Vec<IpAddr>>,
    delivered: Cell<u64>,
    lost: Cell<u64>,
}

impl Network {
    /// A fault-free network with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: RefCell::new(HashMap::new()),
            latency: RefCell::new(HashMap::new()),
            default_latency: 5_000, // 5 ms one-way
            faults: RefCell::new(FaultConfig::default()),
            rng: RefCell::new(Xoshiro256pp::seed_from_u64(seed)),
            clock: Cell::new(0),
            trace: RefCell::new(Vec::new()),
            trace_cap: Cell::new(0),
            in_flight: RefCell::new(Vec::new()),
            delivered: Cell::new(0),
            lost: Cell::new(0),
        }
    }

    /// Replace the fault configuration.
    pub fn set_faults(&self, faults: FaultConfig) {
        *self.faults.borrow_mut() = faults;
    }

    /// Keep at most `cap` trace entries (0 disables tracing).
    pub fn set_trace_capacity(&self, cap: usize) {
        self.trace_cap.set(cap);
        self.trace.borrow_mut().truncate(cap);
    }

    /// Register `node` at `addr`. A node may hold many addresses
    /// (dual-stack hosts register twice). Returns `false` if the address
    /// was already taken.
    pub fn register(&self, addr: IpAddr, node: Rc<dyn Node>) -> bool {
        use std::collections::hash_map::Entry;
        match self.nodes.borrow_mut().entry(addr) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(node);
                true
            }
        }
    }

    /// Remove the node at `addr`.
    pub fn unregister(&self, addr: IpAddr) {
        self.nodes.borrow_mut().remove(&addr);
    }

    /// Is anything registered at `addr`?
    pub fn is_registered(&self, addr: IpAddr) -> bool {
        self.nodes.borrow().contains_key(&addr)
    }

    /// Set the one-way latency for `addr` in microseconds.
    pub fn set_latency(&self, addr: IpAddr, micros: u64) {
        self.latency.borrow_mut().insert(addr, micros);
    }

    /// Current virtual time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.clock.get()
    }

    /// Advance the virtual clock (rate limiters and schedulers use this to
    /// model pacing without wall-clock sleeps).
    pub fn advance(&self, micros: u64) {
        self.clock.set(self.clock.get() + micros);
    }

    /// Datagrams delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered.get()
    }

    /// Datagrams lost (all causes) so far.
    pub fn lost_count(&self) -> u64 {
        self.lost.get()
    }

    /// A copy of the trace.
    pub fn trace(&self) -> Vec<TraceEntry> {
        self.trace.borrow().clone()
    }

    /// Send `payload` from `src` to `dst` and wait (virtually) for the
    /// response.
    pub fn send_query(&self, src: IpAddr, dst: IpAddr, payload: &[u8]) -> Outcome {
        let start = self.clock.get();
        // Request leg.
        match self.transmit(src, dst, payload, true) {
            Leg::Lost => {
                self.advance_timeout();
                Outcome::Timeout
            }
            Leg::NoRoute => Outcome::NoRoute,
            Leg::LoopDrop => {
                self.advance_timeout();
                Outcome::Timeout
            }
            Leg::Delivered(delivered_payload) => {
                let node = self.nodes.borrow().get(&dst).cloned();
                let node = match node {
                    Some(n) => n,
                    None => return Outcome::NoRoute,
                };
                let duplicate = {
                    let faults = self.faults.borrow();
                    faults.duplicate_chance > 0.0
                        && self
                            .rng
                            .borrow_mut()
                            .gen_bool(faults.duplicate_chance.clamp(0.0, 1.0))
                };
                self.in_flight.borrow_mut().push(dst);
                let reply = node.handle(self, src, &delivered_payload);
                if duplicate {
                    // The duplicate's reply is dropped; its side effects
                    // (logs, counters) are not.
                    let _ = node.handle(self, src, &delivered_payload);
                }
                self.in_flight.borrow_mut().pop();
                match reply {
                    None => {
                        self.advance_timeout();
                        Outcome::Timeout
                    }
                    // The response leg flows back to a waiting socket, not a
                    // registered node: no routing check.
                    Some(reply) => match self.transmit(dst, src, &reply, false) {
                        Leg::Delivered(reply_payload) => {
                            let rtt = self.clock.get() - start;
                            Outcome::Response {
                                payload: reply_payload,
                                rtt_micros: rtt,
                            }
                        }
                        _ => {
                            self.advance_timeout();
                            Outcome::Timeout
                        }
                    },
                }
            }
        }
    }

    /// A sender-side retry loop: up to `attempts` tries, returning the
    /// first response.
    pub fn send_query_with_retries(
        &self,
        src: IpAddr,
        dst: IpAddr,
        payload: &[u8],
        attempts: u32,
    ) -> Outcome {
        let mut last = Outcome::Timeout;
        for _ in 0..attempts.max(1) {
            last = self.send_query(src, dst, payload);
            if matches!(last, Outcome::Response { .. } | Outcome::NoRoute) {
                return last;
            }
        }
        last
    }

    fn advance_timeout(&self) {
        // A lost exchange costs the sender a timeout (2 s of virtual time —
        // a typical stub retry interval).
        self.clock.set(self.clock.get() + 2_000_000);
    }

    fn one_way_latency(&self, a: IpAddr, b: IpAddr) -> u64 {
        let lat = self.latency.borrow();
        let la = lat.get(&a).copied().unwrap_or(self.default_latency);
        let lb = lat.get(&b).copied().unwrap_or(self.default_latency);
        la + lb
    }

    fn record(&self, entry: TraceEntry) {
        let cap = self.trace_cap.get();
        if cap == 0 {
            return;
        }
        let mut trace = self.trace.borrow_mut();
        if trace.len() < cap {
            trace.push(entry);
        }
    }

    fn transmit(&self, src: IpAddr, dst: IpAddr, payload: &[u8], require_route: bool) -> Leg {
        let at = self.clock.get();
        let faults = self.faults.borrow().clone();
        if let Some(limit) = faults.size_limit {
            if payload.len() > limit {
                self.lost.set(self.lost.get() + 1);
                self.record(TraceEntry {
                    at_micros: at,
                    src,
                    dst,
                    len: payload.len(),
                    verdict: TraceVerdict::OverSize,
                });
                return Leg::Lost;
            }
        }
        if require_route && !self.nodes.borrow().contains_key(&dst) {
            self.record(TraceEntry {
                at_micros: at,
                src,
                dst,
                len: payload.len(),
                verdict: TraceVerdict::NoRoute,
            });
            return Leg::NoRoute;
        }
        // Re-entry protection only matters when we are about to invoke the
        // destination's handler (request legs); responses flow back to a
        // node that is legitimately on the stack awaiting them.
        if require_route && self.in_flight.borrow().contains(&dst) {
            self.lost.set(self.lost.get() + 1);
            self.record(TraceEntry {
                at_micros: at,
                src,
                dst,
                len: payload.len(),
                verdict: TraceVerdict::Loop,
            });
            return Leg::LoopDrop;
        }
        let mut rng = self.rng.borrow_mut();
        if faults.drop_chance > 0.0 && rng.gen_bool(faults.drop_chance.clamp(0.0, 1.0)) {
            self.lost.set(self.lost.get() + 1);
            self.record(TraceEntry {
                at_micros: at,
                src,
                dst,
                len: payload.len(),
                verdict: TraceVerdict::Dropped,
            });
            return Leg::Lost;
        }
        let mut delivered = payload.to_vec();
        let mut verdict = TraceVerdict::Delivered;
        if faults.corrupt_chance > 0.0
            && !delivered.is_empty()
            && rng.gen_bool(faults.corrupt_chance.clamp(0.0, 1.0))
        {
            let idx = rng.gen_range(0..delivered.len());
            delivered[idx] ^= 1 << rng.gen_range(0u32..8);
            verdict = TraceVerdict::Corrupted;
        }
        drop(rng);
        self.clock.set(at + self.one_way_latency(src, dst));
        self.delivered.set(self.delivered.get() + 1);
        self.record(TraceEntry {
            at_micros: at,
            src,
            dst,
            len: payload.len(),
            verdict,
        });
        Leg::Delivered(delivered)
    }
}

enum Leg {
    Delivered(Vec<u8>),
    Lost,
    NoRoute,
    LoopDrop,
}

/// Sequential allocator for unique simulation addresses.
#[derive(Debug)]
pub struct AddrAlloc {
    next_v4: u32,
    next_v6: u128,
}

impl Default for AddrAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrAlloc {
    /// Allocate from `10.0.0.0/8` and `fd00::/8`.
    pub fn new() -> Self {
        AddrAlloc {
            next_v4: u32::from(Ipv4Addr::new(10, 0, 0, 1)),
            next_v6: u128::from_be_bytes([0xfd, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]),
        }
    }

    /// Next unique IPv4 address.
    pub fn v4(&mut self) -> IpAddr {
        let addr = Ipv4Addr::from(self.next_v4);
        self.next_v4 += 1;
        IpAddr::V4(addr)
    }

    /// Next unique IPv6 address.
    pub fn v6(&mut self) -> IpAddr {
        let addr = Ipv6Addr::from(self.next_v6);
        self.next_v6 += 1;
        IpAddr::V6(addr)
    }

    /// Advance the IPv4 sequence by `n` without handing out addresses.
    /// Parallel shards use this to pre-skip the allocations earlier
    /// shards perform, so every consumer receives the same address no
    /// matter how the work list is sharded.
    pub fn skip_v4(&mut self, n: u32) {
        self.next_v4 += n;
    }

    /// Advance the IPv6 sequence by `n` without handing out addresses.
    pub fn skip_v6(&mut self, n: u128) {
        self.next_v6 += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that echoes the payload reversed.
    struct Echo;
    impl Node for Echo {
        fn handle(&self, _net: &Network, _src: IpAddr, payload: &[u8]) -> Option<Vec<u8>> {
            let mut v = payload.to_vec();
            v.reverse();
            Some(v)
        }
    }

    /// A node that forwards to another address and relays the reply.
    struct Relay {
        target: IpAddr,
        own: IpAddr,
    }
    impl Node for Relay {
        fn handle(&self, net: &Network, _src: IpAddr, payload: &[u8]) -> Option<Vec<u8>> {
            match net.send_query(self.own, self.target, payload) {
                Outcome::Response { payload, .. } => Some(payload),
                _ => None,
            }
        }
    }

    /// A node that never answers.
    struct Silent;
    impl Node for Silent {
        fn handle(&self, _net: &Network, _src: IpAddr, _payload: &[u8]) -> Option<Vec<u8>> {
            None
        }
    }

    fn addr(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn echo_roundtrip_advances_clock() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        let out = net.send_query(addr(1), addr(2), b"hello");
        match out {
            Outcome::Response {
                payload,
                rtt_micros,
            } => {
                assert_eq!(payload, b"olleh");
                assert_eq!(rtt_micros, 2 * 2 * 5_000); // two legs, 5ms+5ms each
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(net.delivered_count(), 2);
    }

    #[test]
    fn no_route() {
        let net = Network::new(1);
        assert_eq!(net.send_query(addr(1), addr(9), b"x"), Outcome::NoRoute);
    }

    #[test]
    fn silent_node_times_out() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Silent));
        let before = net.now_micros();
        assert_eq!(net.send_query(addr(1), addr(2), b"x"), Outcome::Timeout);
        assert!(net.now_micros() > before);
    }

    #[test]
    fn relay_reaches_target_through_intermediate() {
        let net = Network::new(1);
        net.register(addr(3), Rc::new(Echo));
        net.register(
            addr(2),
            Rc::new(Relay {
                target: addr(3),
                own: addr(2),
            }),
        );
        let out = net.send_query(addr(1), addr(2), b"ab");
        assert_eq!(out.payload().unwrap(), b"ba");
    }

    #[test]
    fn loop_is_dropped_not_stack_overflowed() {
        let net = Network::new(1);
        // A relay that forwards to itself.
        net.register(
            addr(2),
            Rc::new(Relay {
                target: addr(2),
                own: addr(2),
            }),
        );
        assert_eq!(net.send_query(addr(1), addr(2), b"x"), Outcome::Timeout);
    }

    #[test]
    fn full_drop_rate_loses_everything() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig {
            drop_chance: 1.0,
            ..Default::default()
        });
        assert_eq!(net.send_query(addr(1), addr(2), b"x"), Outcome::Timeout);
        assert_eq!(net.lost_count(), 1);
    }

    #[test]
    fn retries_can_survive_partial_loss() {
        let net = Network::new(42);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig {
            drop_chance: 0.5,
            ..Default::default()
        });
        let mut got = 0;
        for _ in 0..50 {
            if let Outcome::Response { .. } =
                net.send_query_with_retries(addr(1), addr(2), b"x", 10)
            {
                got += 1;
            }
        }
        assert!(got >= 45, "retries should mask most loss, got {got}/50");
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let net = Network::new(7);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig {
            corrupt_chance: 1.0,
            ..Default::default()
        });
        let out = net.send_query(addr(1), addr(2), b"aaaa");
        // Both legs corrupt one bit each; the reversed reply differs from
        // clean "aaaa" in at most 2 bits.
        let payload = out.payload().unwrap().to_vec();
        let diff: u32 = payload
            .iter()
            .zip(b"aaaa".iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!((1..=2).contains(&diff), "diff {diff}");
    }

    #[test]
    fn size_limit_drops_large_datagrams() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig {
            size_limit: Some(4),
            ..Default::default()
        });
        assert_eq!(net.send_query(addr(1), addr(2), b"small"), Outcome::Timeout);
        assert!(matches!(
            net.send_query(addr(1), addr(2), b"ok"),
            Outcome::Response { .. }
        ));
    }

    #[test]
    fn trace_records_when_enabled() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_trace_capacity(10);
        let _ = net.send_query(addr(1), addr(2), b"x");
        let trace = net.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].verdict, TraceVerdict::Delivered);
        assert_eq!(trace[0].src, addr(1));
        assert_eq!(trace[1].src, addr(2));
    }

    #[test]
    fn trace_capacity_bounds_memory() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_trace_capacity(3);
        for _ in 0..10 {
            let _ = net.send_query(addr(1), addr(2), b"x");
        }
        assert_eq!(net.trace().len(), 3);
    }

    /// A node that counts how many datagrams it handled.
    struct Counter(std::cell::Cell<u64>);
    impl Node for Counter {
        fn handle(&self, _net: &Network, _src: IpAddr, payload: &[u8]) -> Option<Vec<u8>> {
            self.0.set(self.0.get() + 1);
            Some(payload.to_vec())
        }
    }

    #[test]
    fn duplication_reruns_the_handler_once_per_copy() {
        let net = Network::new(3);
        let counter = Rc::new(Counter(std::cell::Cell::new(0)));
        net.register(addr(2), counter.clone());
        net.set_faults(FaultConfig {
            duplicate_chance: 1.0,
            ..Default::default()
        });
        let out = net.send_query(addr(1), addr(2), b"q");
        assert!(
            matches!(out, Outcome::Response { .. }),
            "sender still gets one reply"
        );
        assert_eq!(counter.0.get(), 2, "handler ran for both copies");
        net.set_faults(FaultConfig::default());
        let _ = net.send_query(addr(1), addr(2), b"q");
        assert_eq!(counter.0.get(), 3);
    }

    #[test]
    fn determinism_same_seed_same_outcomes() {
        let run = |seed| {
            let net = Network::new(seed);
            net.register(addr(2), Rc::new(Echo));
            net.set_faults(FaultConfig {
                drop_chance: 0.3,
                ..Default::default()
            });
            (0..30)
                .map(|_| {
                    matches!(
                        net.send_query(addr(1), addr(2), b"x"),
                        Outcome::Response { .. }
                    )
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100)); // overwhelmingly likely
    }

    #[test]
    fn addr_alloc_unique() {
        let mut alloc = AddrAlloc::new();
        let a = alloc.v4();
        let b = alloc.v4();
        let c = alloc.v6();
        let d = alloc.v6();
        assert_ne!(a, b);
        assert_ne!(c, d);
        assert!(matches!(c, IpAddr::V6(_)));
    }

    #[test]
    fn addr_alloc_skip_equals_discarded_allocs() {
        let mut skipped = AddrAlloc::new();
        skipped.skip_v4(5);
        skipped.skip_v6(3);
        let mut walked = AddrAlloc::new();
        for _ in 0..5 {
            walked.v4();
        }
        for _ in 0..3 {
            walked.v6();
        }
        assert_eq!(skipped.v4(), walked.v4());
        assert_eq!(skipped.v6(), walked.v6());
    }

    #[test]
    fn register_rejects_duplicates() {
        let net = Network::new(1);
        assert!(net.register(addr(2), Rc::new(Echo)));
        assert!(!net.register(addr(2), Rc::new(Echo)));
        net.unregister(addr(2));
        assert!(net.register(addr(2), Rc::new(Echo)));
    }

    #[test]
    fn per_node_latency_respected() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_latency(addr(1), 1_000);
        net.set_latency(addr(2), 2_000);
        match net.send_query(addr(1), addr(2), b"x") {
            Outcome::Response { rtt_micros, .. } => assert_eq!(rtt_micros, 2 * 3_000),
            other => panic!("{other:?}"),
        }
    }
}
