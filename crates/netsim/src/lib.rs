//! A deterministic, event-driven simulated Internet.
//!
//! This crate substitutes for the live network in the *Zeros Are Heroes*
//! reproduction (DESIGN.md §2). It follows the smoltcp school of design:
//! synchronous, explicit, no hidden concurrency, with first-class fault
//! injection (`--drop-chance` / `--corrupt-chance` style knobs) and a
//! packet trace for observability.
//!
//! # Model
//!
//! * Every host is a [`Node`] registered under one or more [`std::net::IpAddr`]s.
//! * Communication is datagram request/response, like DNS over UDP: the
//!   sender calls [`Network::send_query`], the receiving node's
//!   [`Node::handle`] optionally returns a reply payload.
//! * A node handling a datagram may itself send queries through the same
//!   network (that is how the recursive resolver reaches authoritative
//!   servers). Cycles (a node querying itself) are detected and dropped.
//! * Time is virtual: a monotonic microsecond clock advanced by configured
//!   per-node latencies. Runs are exactly reproducible for a given seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::rc::Rc;

use sim_rng::{Rng, SplitMix64, Xoshiro256pp};

pub mod event;

/// A host on the simulated network.
///
/// Implementations take `&self`; use interior mutability for state (query
/// logs, caches). This keeps the network re-entrant: a node may send
/// queries from inside `handle`.
pub trait Node {
    /// Handle a datagram sent to this node, appending any response to
    /// `reply` (which arrives empty — typically a recycled buffer the
    /// network provides, so handlers encode straight into it with no
    /// intermediate allocation). Return `Some(())` to send `reply`'s
    /// contents back; `None` means no response (a timeout from the
    /// sender's perspective), and whatever was appended is discarded.
    fn handle(&self, net: &Network, src: IpAddr, payload: &[u8], reply: &mut Vec<u8>)
        -> Option<()>;
}

/// Fault-injection configuration, in the style of smoltcp's example knobs.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that any datagram (either direction) is
    /// silently dropped.
    pub drop_chance: f64,
    /// Probability in `[0, 1]` that one octet of a datagram is corrupted.
    pub corrupt_chance: f64,
    /// Probability in `[0, 1]` that a *request* is delivered twice (UDP
    /// duplication); the receiver's handler runs for each copy, so side
    /// effects (query logs, counters) double, while the sender keeps the
    /// first reply — exactly the failure mode that makes cache-busting
    /// probe names necessary.
    pub duplicate_chance: f64,
    /// Datagrams larger than this are dropped (MTU-ish limit).
    pub size_limit: Option<usize>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            size_limit: None,
        }
    }
}

/// Which destinations a fault episode applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Every address.
    All,
    /// Exactly one address.
    Addr(IpAddr),
    /// An IPv4 prefix, `bits` leading bits.
    V4Prefix(Ipv4Addr, u8),
    /// An IPv6 prefix, `bits` leading bits.
    V6Prefix(Ipv6Addr, u8),
}

impl Scope {
    /// Does `ip` fall inside this scope?
    pub fn matches(&self, ip: IpAddr) -> bool {
        match (self, ip) {
            (Scope::All, _) => true,
            (Scope::Addr(a), ip) => *a == ip,
            (Scope::V4Prefix(p, bits), IpAddr::V4(v)) => {
                let bits = (*bits).min(32) as u32;
                if bits == 0 {
                    return true;
                }
                let mask = u32::MAX << (32 - bits);
                (u32::from(*p) & mask) == (u32::from(v) & mask)
            }
            (Scope::V6Prefix(p, bits), IpAddr::V6(v)) => {
                let bits = (*bits).min(128) as u32;
                if bits == 0 {
                    return true;
                }
                let mask = u128::MAX << (128 - bits);
                (u128::from(*p) & mask) == (u128::from(v) & mask)
            }
            _ => false,
        }
    }
}

/// What a fault episode does to traffic it matches.
#[derive(Clone, Debug)]
pub enum EpisodeKind {
    /// Destinations in `scope` are completely unreachable: every datagram
    /// toward them is silently dropped.
    Outage {
        /// Affected destinations.
        scope: Scope,
    },
    /// Destinations in `scope` lose each datagram with `drop_chance`
    /// probability, decided by a seeded hash of the flow (never the
    /// network RNG, so observations elsewhere are unaffected).
    Flap {
        /// Affected destinations.
        scope: Scope,
        /// Per-datagram loss probability in `[0, 1]`.
        drop_chance: f64,
    },
    /// Deliveries toward `scope` take `extra_micros` longer, plus a
    /// seeded jitter in `[0, jitter_micros]`.
    LatencySpike {
        /// Affected destinations.
        scope: Scope,
        /// Fixed extra one-way delay in µs.
        extra_micros: u64,
        /// Upper bound on additional hash-derived jitter in µs.
        jitter_micros: u64,
    },
    /// Per-destination response-rate limiting: a token bucket holding
    /// `capacity` tokens, one regained every `refill_interval_micros`.
    /// A request toward a limited destination with an empty bucket is
    /// answered with silence (the datagram vanishes). Response legs are
    /// never limited — the model is an authoritative answering only so
    /// many queries per second.
    RateLimit {
        /// Affected destinations.
        scope: Scope,
        /// Bucket size (burst allowance).
        capacity: u64,
        /// Virtual µs to regain one token.
        refill_interval_micros: u64,
    },
    /// Traffic between `a` and `b` (either direction) is dropped; traffic
    /// inside each side is unaffected.
    Partition {
        /// One side of the cut.
        a: Scope,
        /// The other side.
        b: Scope,
    },
}

/// One virtual-time window during which an [`EpisodeKind`] is active.
#[derive(Clone, Debug)]
pub struct Episode {
    /// Virtual timestamp (µs) at which the episode starts (inclusive).
    pub from_micros: u64,
    /// Virtual timestamp (µs) at which it ends (exclusive).
    pub until_micros: u64,
    /// The fault applied while active.
    pub kind: EpisodeKind,
}

impl Episode {
    /// An episode active for the whole run.
    pub fn always(kind: EpisodeKind) -> Self {
        Episode {
            from_micros: 0,
            until_micros: u64::MAX,
            kind,
        }
    }

    /// An episode active in `[from_micros, until_micros)`.
    pub fn window(from_micros: u64, until_micros: u64, kind: EpisodeKind) -> Self {
        Episode {
            from_micros,
            until_micros,
            kind,
        }
    }

    fn active_at(&self, at: u64) -> bool {
        at >= self.from_micros && at < self.until_micros
    }
}

/// A full fault plan: the global [`FaultConfig`] knobs layered under a
/// list of time-scheduled [`Episode`]s, all reproducible from `seed`.
///
/// Episode decisions (flap losses, latency jitter) are derived by hashing
/// `seed` with the episode index and the flow — **not** drawn from the
/// network's RNG stream — so adding or removing an episode never perturbs
/// fault decisions made elsewhere, and a schedule replays identically
/// wherever the same flows occur.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    /// The always-on global knobs (drop / corrupt / duplicate / MTU).
    pub base: FaultConfig,
    /// Seed for hash-derived episode decisions.
    pub seed: u64,
    /// Time-scheduled fault episodes, evaluated in order.
    pub episodes: Vec<Episode>,
}

impl FaultSchedule {
    /// True when this schedule can never touch a datagram: no base-knob
    /// probabilities, no size limit, no episodes. An inert schedule
    /// consumes no network RNG and makes no flow-keyed decisions, so
    /// probe flows sharing a lab may interleave in any order without
    /// perturbing each other — the condition the event driver checks
    /// before opening its in-flight window past 1 (DESIGN.md §8).
    pub fn is_inert(&self) -> bool {
        self.base.drop_chance == 0.0
            && self.base.corrupt_chance == 0.0
            && self.base.duplicate_chance == 0.0
            && self.base.size_limit.is_none()
            && self.episodes.is_empty()
    }
}

/// Deterministic retry schedule for one query exchange: exponential
/// backoff with seeded jitter, bounded by an attempt count and an
/// optional virtual-time budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual µs. Doubles per retry.
    pub base_backoff_micros: u64,
    /// Upper bound on a single backoff interval.
    pub max_backoff_micros: u64,
    /// Upper bound on hash-derived jitter added to each backoff.
    pub jitter_micros: u64,
    /// Total virtual-time budget for the exchange (0 = unlimited): once
    /// this much virtual time has elapsed, no further attempts are made.
    pub budget_micros: u64,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy that reproduces the legacy fixed-retry loop exactly:
    /// `attempts` tries, no backoff, no budget.
    pub fn fixed(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_backoff_micros: 0,
            max_backoff_micros: 0,
            jitter_micros: 0,
            budget_micros: 0,
            seed: 0,
        }
    }

    /// The default adaptive policy used by the fault-aware scanners:
    /// 5 attempts, 250 ms base backoff doubling to a 4 s cap, 50 ms
    /// jitter, 30 s total budget.
    pub fn adaptive(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_micros: 250_000,
            max_backoff_micros: 4_000_000,
            jitter_micros: 50_000,
            budget_micros: 30_000_000,
            seed,
        }
    }

    /// Backoff before retry number `retry` (1-based), jitter included.
    pub fn backoff_micros(&self, dst: IpAddr, retry: u32) -> u64 {
        let exp = retry.saturating_sub(1).min(32);
        let base = self
            .base_backoff_micros
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_micros.max(self.base_backoff_micros));
        let jitter = if self.jitter_micros == 0 {
            0
        } else {
            hash_mix(&[self.seed, addr_key(dst), retry as u64]) % (self.jitter_micros + 1)
        };
        base + jitter
    }
}

/// What one policy-driven exchange did, beyond its [`Outcome`]: how many
/// attempts were actually sent on the wire.
#[derive(Clone, Debug)]
pub struct ExchangeReport {
    /// Final outcome (first response, or the last failure).
    pub outcome: Outcome,
    /// Attempts actually made (≥ 1 unless the budget was already spent).
    pub attempts: u32,
}

/// What one [`ExchangeMachine::step`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeStep {
    /// The attempt failed and the policy allows another: resume (send the
    /// next attempt) once the virtual clock reaches `resume_at_micros`.
    Backoff {
        /// Virtual due time of the next attempt, in µs.
        resume_at_micros: u64,
    },
    /// The exchange is over; collect the [`ExchangeReport`].
    Finished,
}

/// One policy-driven query exchange as an explicit state machine: each
/// [`ExchangeMachine::step`] sends exactly one wire attempt and reports
/// either [`ExchangeStep::Finished`] or the backoff due time before the
/// next attempt.
///
/// This is the *only* implementation of the retry semantics. The
/// blocking path ([`Network::send_query_with_policy`]) drives the
/// machine in a tight loop, advancing the clock across each backoff; the
/// event driver ([`event::drive`]) parks the flow on its timer wheel
/// instead and resumes the machine when the backoff is due. Both replay
/// the same `RetryPolicy` decisions — attempt counts, budget checks at
/// the same clock readings, identical jittered backoffs — so outcomes
/// are byte-identical by construction.
#[derive(Debug)]
pub struct ExchangeMachine {
    src: IpAddr,
    dst: IpAddr,
    policy: RetryPolicy,
    start_micros: Option<u64>,
    attempts: u32,
    outcome: Option<Outcome>,
}

impl ExchangeMachine {
    /// A fresh exchange from `src` to `dst` under `policy`. The payload
    /// travels per step (the caller owns it across parks).
    pub fn new(src: IpAddr, dst: IpAddr, policy: RetryPolicy) -> Self {
        ExchangeMachine {
            src,
            dst,
            policy,
            start_micros: None,
            attempts: 0,
            outcome: None,
        }
    }

    /// Attempts sent on the wire so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Send one attempt of `payload` on `net` and decide what happens
    /// next. The first call pins the exchange's budget epoch to the
    /// current clock, exactly where the blocking loop read it.
    pub fn step(&mut self, net: &Network, payload: &[u8]) -> ExchangeStep {
        let start = *self.start_micros.get_or_insert_with(|| net.now_micros());
        self.attempts += 1;
        let outcome = net.send_query(self.src, self.dst, payload);
        let max_attempts = self.policy.max_attempts.max(1);
        let finished = matches!(outcome, Outcome::Response { .. } | Outcome::NoRoute)
            || self.attempts >= max_attempts
            || (self.policy.budget_micros > 0
                && net.now_micros().saturating_sub(start) >= self.policy.budget_micros);
        self.outcome = Some(outcome);
        if finished {
            ExchangeStep::Finished
        } else {
            ExchangeStep::Backoff {
                resume_at_micros: net
                    .now_micros()
                    .saturating_add(self.policy.backoff_micros(self.dst, self.attempts)),
            }
        }
    }

    /// Consume the machine after [`ExchangeStep::Finished`].
    ///
    /// # Panics
    ///
    /// Panics if no step ran.
    pub fn into_report(self) -> ExchangeReport {
        ExchangeReport {
            outcome: self.outcome.expect("exchange stepped at least once"),
            attempts: self.attempts,
        }
    }
}

/// Fold an address into a hashable word.
fn addr_key(ip: IpAddr) -> u64 {
    match ip {
        IpAddr::V4(v) => u64::from(u32::from(v)),
        IpAddr::V6(v) => {
            let x = u128::from(v);
            (x as u64) ^ ((x >> 64) as u64) ^ 0x6c62_272e_07bb_0142
        }
    }
}

/// Deterministic mixing of several words into one, via chained SplitMix64
/// steps. Used for every hash-derived fault decision.
fn hash_mix(parts: &[u64]) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for &p in parts {
        acc = SplitMix64::new(acc ^ p).next_u64();
    }
    acc
}

/// Map a hash word onto `[0, 1)` for probability decisions.
fn hash_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Outcome of one query exchange.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// A response arrived.
    Response {
        /// The reply payload.
        payload: Vec<u8>,
        /// Round-trip time in virtual microseconds.
        rtt_micros: u64,
    },
    /// The query or the response was lost, or the responder stayed silent;
    /// the sender sees a timeout.
    Timeout,
    /// No node is registered at the destination address.
    NoRoute,
}

impl Outcome {
    /// The response payload, if any.
    pub fn payload(&self) -> Option<&[u8]> {
        match self {
            Outcome::Response { payload, .. } => Some(payload),
            _ => None,
        }
    }
}

/// One line of the packet trace.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Virtual timestamp (µs) when the datagram entered the network.
    pub at_micros: u64,
    /// Sender address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Payload length.
    pub len: usize,
    /// What happened to it.
    pub verdict: TraceVerdict,
}

/// Per-datagram fate recorded in the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceVerdict {
    /// Delivered to the destination node.
    Delivered,
    /// Dropped by fault injection.
    Dropped,
    /// Corrupted in flight (still delivered).
    Corrupted,
    /// Dropped: larger than the size limit.
    OverSize,
    /// Dropped: no such destination.
    NoRoute,
    /// Dropped: delivery would re-enter a node already on the call stack.
    Loop,
    /// Dropped by an [`EpisodeKind::Outage`] episode.
    Outage,
    /// Dropped by an [`EpisodeKind::RateLimit`] episode (bucket empty).
    RateLimited,
    /// Dropped by an [`EpisodeKind::Partition`] episode.
    Partitioned,
}

/// The simulated Internet.
pub struct Network {
    nodes: RefCell<HashMap<IpAddr, Rc<dyn Node>>>,
    latency: RefCell<HashMap<IpAddr, u64>>,
    /// Default one-way latency in µs when a node has none configured.
    default_latency: u64,
    faults: RefCell<FaultConfig>,
    episodes: RefCell<Vec<Episode>>,
    episode_seed: Cell<u64>,
    /// Per-(src, dst) datagram counter; feeds the hash that decides flap
    /// losses and latency jitter, so decisions replay identically for a
    /// given flow regardless of what other flows exist.
    flow_seq: RefCell<HashMap<(IpAddr, IpAddr), u64>>,
    /// Token buckets for `RateLimit` episodes, keyed by (episode index,
    /// destination).
    buckets: RefCell<HashMap<(usize, IpAddr), Bucket>>,
    rng: RefCell<Xoshiro256pp>,
    clock: Cell<u64>,
    trace: RefCell<Vec<TraceEntry>>,
    trace_cap: Cell<usize>,
    /// Ring-buffer write head: index of the oldest entry once the trace
    /// is full (entries are chronological starting there).
    trace_head: Cell<usize>,
    in_flight: RefCell<Vec<IpAddr>>,
    /// Recycled reply buffers for [`Network::send_query`]: a stack, so
    /// re-entrant exchanges (a resolver answering while querying
    /// authoritatives) each get their own buffer without allocating.
    reply_pool: RefCell<Vec<Vec<u8>>>,
    delivered: Cell<u64>,
    lost: Cell<u64>,
}

/// Token-bucket state for one rate-limited destination.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: u64,
    last_refill_micros: u64,
}

impl Network {
    /// A fault-free network with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: RefCell::new(HashMap::new()),
            latency: RefCell::new(HashMap::new()),
            default_latency: 5_000, // 5 ms one-way
            faults: RefCell::new(FaultConfig::default()),
            episodes: RefCell::new(Vec::new()),
            episode_seed: Cell::new(0),
            flow_seq: RefCell::new(HashMap::new()),
            buckets: RefCell::new(HashMap::new()),
            rng: RefCell::new(Xoshiro256pp::seed_from_u64(seed)),
            clock: Cell::new(0),
            trace: RefCell::new(Vec::new()),
            trace_cap: Cell::new(0),
            trace_head: Cell::new(0),
            in_flight: RefCell::new(Vec::new()),
            reply_pool: RefCell::new(Vec::new()),
            delivered: Cell::new(0),
            lost: Cell::new(0),
        }
    }

    /// Replace the fault configuration.
    pub fn set_faults(&self, faults: FaultConfig) {
        *self.faults.borrow_mut() = faults;
    }

    /// Install a full [`FaultSchedule`]: the base knobs replace the
    /// current [`FaultConfig`], the episodes replace any previous ones,
    /// and flow counters / token buckets start fresh.
    pub fn set_schedule(&self, schedule: FaultSchedule) {
        *self.faults.borrow_mut() = schedule.base;
        *self.episodes.borrow_mut() = schedule.episodes;
        self.episode_seed.set(schedule.seed);
        self.flow_seq.borrow_mut().clear();
        self.buckets.borrow_mut().clear();
    }

    /// Keep at most `cap` most-recent trace entries (0 disables tracing).
    pub fn set_trace_capacity(&self, cap: usize) {
        // Normalize whatever is buffered to chronological order, keep the
        // newest `cap` entries, and restart the ring from a zero head.
        let mut chronological = self.trace_chronological();
        if chronological.len() > cap {
            chronological.drain(..chronological.len() - cap);
        }
        *self.trace.borrow_mut() = chronological;
        self.trace_head.set(0);
        self.trace_cap.set(cap);
    }

    /// Register `node` at `addr`. A node may hold many addresses
    /// (dual-stack hosts register twice). Returns `false` if the address
    /// was already taken.
    pub fn register(&self, addr: IpAddr, node: Rc<dyn Node>) -> bool {
        use std::collections::hash_map::Entry;
        match self.nodes.borrow_mut().entry(addr) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(node);
                true
            }
        }
    }

    /// Remove the node at `addr`.
    pub fn unregister(&self, addr: IpAddr) {
        self.nodes.borrow_mut().remove(&addr);
    }

    /// Is anything registered at `addr`?
    pub fn is_registered(&self, addr: IpAddr) -> bool {
        self.nodes.borrow().contains_key(&addr)
    }

    /// Set the one-way latency for `addr` in microseconds.
    pub fn set_latency(&self, addr: IpAddr, micros: u64) {
        self.latency.borrow_mut().insert(addr, micros);
    }

    /// Current virtual time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.clock.get()
    }

    /// Advance the virtual clock (rate limiters and schedulers use this to
    /// model pacing without wall-clock sleeps).
    pub fn advance(&self, micros: u64) {
        self.clock.set(self.clock.get() + micros);
    }

    /// Datagrams delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered.get()
    }

    /// Datagrams lost (all causes) so far.
    pub fn lost_count(&self) -> u64 {
        self.lost.get()
    }

    /// A copy of the trace, oldest entry first. At most the configured
    /// capacity of **most recent** entries is retained: once full, each
    /// new datagram evicts the oldest record (true ring buffer).
    pub fn trace(&self) -> Vec<TraceEntry> {
        self.trace_chronological()
    }

    fn trace_chronological(&self) -> Vec<TraceEntry> {
        let trace = self.trace.borrow();
        let head = self.trace_head.get();
        let mut out = Vec::with_capacity(trace.len());
        out.extend_from_slice(&trace[head..]);
        out.extend_from_slice(&trace[..head]);
        out
    }

    /// Send `payload` from `src` to `dst` and wait (virtually) for the
    /// response.
    pub fn send_query(&self, src: IpAddr, dst: IpAddr, payload: &[u8]) -> Outcome {
        let start = self.clock.get();
        // Request leg.
        match self.transmit(src, dst, payload, true) {
            Leg::Lost => {
                self.advance_timeout();
                Outcome::Timeout
            }
            Leg::NoRoute => Outcome::NoRoute,
            Leg::LoopDrop => {
                self.advance_timeout();
                Outcome::Timeout
            }
            Leg::Delivered { corrupt } => {
                let node = self.nodes.borrow().get(&dst).cloned();
                let node = match node {
                    Some(n) => n,
                    None => return Outcome::NoRoute,
                };
                let duplicate = {
                    let faults = self.faults.borrow();
                    faults.duplicate_chance > 0.0
                        && self
                            .rng
                            .borrow_mut()
                            .gen_bool(faults.duplicate_chance.clamp(0.0, 1.0))
                };
                // The handler borrows the sender's payload directly; only
                // the (rare) corrupted delivery needs its own copy.
                let corrupted;
                let datagram: &[u8] = match corrupt {
                    Some((idx, mask)) => {
                        let mut v = payload.to_vec();
                        v[idx] ^= mask;
                        corrupted = v;
                        &corrupted
                    }
                    None => payload,
                };
                self.in_flight.borrow_mut().push(dst);
                let mut reply_buf = self.take_reply_buf();
                let reply = node.handle(self, src, datagram, &mut reply_buf);
                if duplicate {
                    // The duplicate's reply is dropped; its side effects
                    // (logs, counters) are not.
                    let mut scratch = self.take_reply_buf();
                    let _ = node.handle(self, src, datagram, &mut scratch);
                    self.recycle_reply_buf(scratch);
                }
                self.in_flight.borrow_mut().pop();
                match reply {
                    None => {
                        self.recycle_reply_buf(reply_buf);
                        self.advance_timeout();
                        Outcome::Timeout
                    }
                    // The response leg flows back to a waiting socket, not a
                    // registered node: no routing check.
                    Some(()) => match self.transmit(dst, src, &reply_buf, false) {
                        Leg::Delivered { corrupt } => {
                            if let Some((idx, mask)) = corrupt {
                                reply_buf[idx] ^= mask;
                            }
                            let rtt = self.clock.get() - start;
                            // The reply buffer moves to the caller whole:
                            // the handler's bytes are never copied per hop.
                            Outcome::Response {
                                payload: reply_buf,
                                rtt_micros: rtt,
                            }
                        }
                        _ => {
                            self.recycle_reply_buf(reply_buf);
                            self.advance_timeout();
                            Outcome::Timeout
                        }
                    },
                }
            }
        }
    }

    /// A sender-side retry loop: up to `attempts` tries, returning the
    /// first response. Equivalent to [`Network::send_query_with_policy`]
    /// with [`RetryPolicy::fixed`].
    pub fn send_query_with_retries(
        &self,
        src: IpAddr,
        dst: IpAddr,
        payload: &[u8],
        attempts: u32,
    ) -> Outcome {
        self.send_query_with_policy(src, dst, payload, &RetryPolicy::fixed(attempts))
            .outcome
    }

    /// Policy-driven exchange: up to `policy.max_attempts` tries with
    /// exponential, deterministically-jittered backoff between failed
    /// attempts (backoff advances the virtual clock), stopping early on
    /// a response, a missing route, or an exhausted time budget.
    pub fn send_query_with_policy(
        &self,
        src: IpAddr,
        dst: IpAddr,
        payload: &[u8],
        policy: &RetryPolicy,
    ) -> ExchangeReport {
        let mut machine = ExchangeMachine::new(src, dst, *policy);
        loop {
            match machine.step(self, payload) {
                ExchangeStep::Finished => return machine.into_report(),
                ExchangeStep::Backoff { resume_at_micros } => {
                    let now = self.clock.get();
                    if resume_at_micros > now {
                        self.advance(resume_at_micros - now);
                    }
                }
            }
        }
    }

    fn advance_timeout(&self) {
        // A lost exchange costs the sender a timeout (2 s of virtual time —
        // a typical stub retry interval).
        self.clock.set(self.clock.get() + 2_000_000);
    }

    fn one_way_latency(&self, a: IpAddr, b: IpAddr) -> u64 {
        let lat = self.latency.borrow();
        let la = lat.get(&a).copied().unwrap_or(self.default_latency);
        let lb = lat.get(&b).copied().unwrap_or(self.default_latency);
        la + lb
    }

    fn record(&self, entry: TraceEntry) {
        let cap = self.trace_cap.get();
        if cap == 0 {
            return;
        }
        let mut trace = self.trace.borrow_mut();
        if trace.len() < cap {
            trace.push(entry);
        } else {
            // Full: overwrite the oldest entry and advance the head, so
            // the buffer always holds the `cap` most recent datagrams.
            let head = self.trace_head.get();
            trace[head] = entry;
            self.trace_head.set((head + 1) % cap);
        }
    }

    fn transmit(&self, src: IpAddr, dst: IpAddr, payload: &[u8], require_route: bool) -> Leg {
        let at = self.clock.get();
        let faults = self.faults.borrow().clone();
        if let Some(limit) = faults.size_limit {
            if payload.len() > limit {
                self.lost.set(self.lost.get() + 1);
                self.record(TraceEntry {
                    at_micros: at,
                    src,
                    dst,
                    len: payload.len(),
                    verdict: TraceVerdict::OverSize,
                });
                return Leg::Lost;
            }
        }
        if require_route && !self.nodes.borrow().contains_key(&dst) {
            self.record(TraceEntry {
                at_micros: at,
                src,
                dst,
                len: payload.len(),
                verdict: TraceVerdict::NoRoute,
            });
            return Leg::NoRoute;
        }
        // Re-entry protection only matters when we are about to invoke the
        // destination's handler (request legs); responses flow back to a
        // node that is legitimately on the stack awaiting them.
        if require_route && self.in_flight.borrow().contains(&dst) {
            self.lost.set(self.lost.get() + 1);
            self.record(TraceEntry {
                at_micros: at,
                src,
                dst,
                len: payload.len(),
                verdict: TraceVerdict::Loop,
            });
            return Leg::LoopDrop;
        }
        let episode_extra = match self.evaluate_episodes(src, dst, at, require_route) {
            Ok(extra_latency) => extra_latency,
            Err(verdict) => {
                self.lost.set(self.lost.get() + 1);
                self.record(TraceEntry {
                    at_micros: at,
                    src,
                    dst,
                    len: payload.len(),
                    verdict,
                });
                return Leg::Lost;
            }
        };
        let mut rng = self.rng.borrow_mut();
        if faults.drop_chance > 0.0 && rng.gen_bool(faults.drop_chance.clamp(0.0, 1.0)) {
            self.lost.set(self.lost.get() + 1);
            self.record(TraceEntry {
                at_micros: at,
                src,
                dst,
                len: payload.len(),
                verdict: TraceVerdict::Dropped,
            });
            return Leg::Lost;
        }
        // The datagram itself is not copied: corruption is decided here
        // (preserving the historical RNG draw order exactly — one
        // `gen_bool`, then byte index, then bit) but applied by the
        // caller, which can flip the bit in place or borrow the payload
        // untouched.
        let mut corrupt = None;
        let mut verdict = TraceVerdict::Delivered;
        if faults.corrupt_chance > 0.0
            && !payload.is_empty()
            && rng.gen_bool(faults.corrupt_chance.clamp(0.0, 1.0))
        {
            let idx = rng.gen_range(0..payload.len());
            corrupt = Some((idx, 1u8 << rng.gen_range(0u32..8)));
            verdict = TraceVerdict::Corrupted;
        }
        drop(rng);
        self.clock
            .set(at + self.one_way_latency(src, dst) + episode_extra);
        self.delivered.set(self.delivered.get() + 1);
        self.record(TraceEntry {
            at_micros: at,
            src,
            dst,
            len: payload.len(),
            verdict,
        });
        Leg::Delivered { corrupt }
    }

    /// Grab a cleared reply buffer, reusing a recycled allocation when
    /// one is available. Purely an allocation cache — never observable.
    fn take_reply_buf(&self) -> Vec<u8> {
        match self.reply_pool.borrow_mut().pop() {
            Some(buf) => buf,
            None => Vec::with_capacity(512),
        }
    }

    /// Return a reply buffer to the pool for the next exchange.
    fn recycle_reply_buf(&self, mut buf: Vec<u8>) {
        let mut pool = self.reply_pool.borrow_mut();
        if pool.len() < 8 {
            buf.clear();
            pool.push(buf);
        }
    }

    /// Evaluate the active fault episodes for one datagram. Returns the
    /// extra one-way latency to apply (`Ok`) or the verdict that kills
    /// the datagram (`Err`). Decisions hash the schedule seed with the
    /// episode index and the per-(src, dst) flow counter — the network
    /// RNG is never consulted, so episode evaluation cannot perturb the
    /// base fault stream or any observation made elsewhere.
    fn evaluate_episodes(
        &self,
        src: IpAddr,
        dst: IpAddr,
        at: u64,
        request_leg: bool,
    ) -> Result<u64, TraceVerdict> {
        let episodes = self.episodes.borrow();
        if episodes.is_empty() {
            return Ok(0);
        }
        let seq = {
            let mut flows = self.flow_seq.borrow_mut();
            let counter = flows.entry((src, dst)).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        let seed = self.episode_seed.get();
        let mut extra_latency = 0u64;
        for (idx, episode) in episodes.iter().enumerate() {
            if !episode.active_at(at) {
                continue;
            }
            match &episode.kind {
                EpisodeKind::Outage { scope } => {
                    if scope.matches(dst) {
                        return Err(TraceVerdict::Outage);
                    }
                }
                EpisodeKind::Flap { scope, drop_chance } => {
                    if scope.matches(dst) {
                        let h = hash_mix(&[seed, idx as u64, addr_key(src), addr_key(dst), seq]);
                        if hash_unit(h) < drop_chance.clamp(0.0, 1.0) {
                            return Err(TraceVerdict::Dropped);
                        }
                    }
                }
                EpisodeKind::LatencySpike {
                    scope,
                    extra_micros,
                    jitter_micros,
                } => {
                    if scope.matches(dst) {
                        let jitter = if *jitter_micros == 0 {
                            0
                        } else {
                            hash_mix(&[
                                seed ^ 0x1a7e,
                                idx as u64,
                                addr_key(src),
                                addr_key(dst),
                                seq,
                            ]) % (*jitter_micros + 1)
                        };
                        extra_latency = extra_latency.saturating_add(extra_micros + jitter);
                    }
                }
                EpisodeKind::RateLimit {
                    scope,
                    capacity,
                    refill_interval_micros,
                } => {
                    // Responses flow back to a waiting socket; only
                    // requests consume the destination's answer budget.
                    if request_leg && scope.matches(dst) {
                        let interval = (*refill_interval_micros).max(1);
                        let mut buckets = self.buckets.borrow_mut();
                        let bucket = buckets.entry((idx, dst)).or_insert(Bucket {
                            tokens: *capacity,
                            last_refill_micros: at,
                        });
                        let refills = at.saturating_sub(bucket.last_refill_micros) / interval;
                        if refills > 0 {
                            bucket.tokens = bucket.tokens.saturating_add(refills).min(*capacity);
                            bucket.last_refill_micros += refills * interval;
                        }
                        if bucket.tokens == 0 {
                            return Err(TraceVerdict::RateLimited);
                        }
                        bucket.tokens -= 1;
                    }
                }
                EpisodeKind::Partition { a, b } => {
                    if (a.matches(src) && b.matches(dst)) || (b.matches(src) && a.matches(dst)) {
                        return Err(TraceVerdict::Partitioned);
                    }
                }
            }
        }
        Ok(extra_latency)
    }
}

enum Leg {
    /// Delivered; if `corrupt` is set the receiver must XOR `mask` into
    /// byte `idx` of the payload (decided centrally so the RNG stream
    /// matches the historical copy-then-corrupt implementation).
    Delivered {
        corrupt: Option<(usize, u8)>,
    },
    Lost,
    NoRoute,
    LoopDrop,
}

/// Sequential allocator for unique simulation addresses.
#[derive(Debug)]
pub struct AddrAlloc {
    next_v4: u32,
    next_v6: u128,
}

impl Default for AddrAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrAlloc {
    /// Allocate from `10.0.0.0/8` and `fd00::/8`.
    pub fn new() -> Self {
        AddrAlloc {
            next_v4: u32::from(Ipv4Addr::new(10, 0, 0, 1)),
            next_v6: u128::from_be_bytes([0xfd, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]),
        }
    }

    /// Next unique IPv4 address.
    pub fn v4(&mut self) -> IpAddr {
        let addr = Ipv4Addr::from(self.next_v4);
        self.next_v4 += 1;
        IpAddr::V4(addr)
    }

    /// Next unique IPv6 address.
    pub fn v6(&mut self) -> IpAddr {
        let addr = Ipv6Addr::from(self.next_v6);
        self.next_v6 += 1;
        IpAddr::V6(addr)
    }

    /// Advance the IPv4 sequence by `n` without handing out addresses.
    /// Parallel shards use this to pre-skip the allocations earlier
    /// shards perform, so every consumer receives the same address no
    /// matter how the work list is sharded.
    pub fn skip_v4(&mut self, n: u32) {
        self.next_v4 += n;
    }

    /// Advance the IPv6 sequence by `n` without handing out addresses.
    pub fn skip_v6(&mut self, n: u128) {
        self.next_v6 += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that echoes the payload reversed.
    struct Echo;
    impl Node for Echo {
        fn handle(
            &self,
            _net: &Network,
            _src: IpAddr,
            payload: &[u8],
            reply: &mut Vec<u8>,
        ) -> Option<()> {
            reply.extend(payload.iter().rev());
            Some(())
        }
    }

    /// A node that forwards to another address and relays the reply.
    struct Relay {
        target: IpAddr,
        own: IpAddr,
    }
    impl Node for Relay {
        fn handle(
            &self,
            net: &Network,
            _src: IpAddr,
            payload: &[u8],
            reply: &mut Vec<u8>,
        ) -> Option<()> {
            match net.send_query(self.own, self.target, payload) {
                Outcome::Response { payload, .. } => {
                    reply.extend_from_slice(&payload);
                    Some(())
                }
                _ => None,
            }
        }
    }

    /// A node that never answers.
    struct Silent;
    impl Node for Silent {
        fn handle(
            &self,
            _net: &Network,
            _src: IpAddr,
            _payload: &[u8],
            _reply: &mut Vec<u8>,
        ) -> Option<()> {
            None
        }
    }

    fn addr(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn echo_roundtrip_advances_clock() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        let out = net.send_query(addr(1), addr(2), b"hello");
        match out {
            Outcome::Response {
                payload,
                rtt_micros,
            } => {
                assert_eq!(payload, b"olleh");
                assert_eq!(rtt_micros, 2 * 2 * 5_000); // two legs, 5ms+5ms each
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(net.delivered_count(), 2);
    }

    #[test]
    fn no_route() {
        let net = Network::new(1);
        assert_eq!(net.send_query(addr(1), addr(9), b"x"), Outcome::NoRoute);
    }

    #[test]
    fn silent_node_times_out() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Silent));
        let before = net.now_micros();
        assert_eq!(net.send_query(addr(1), addr(2), b"x"), Outcome::Timeout);
        assert!(net.now_micros() > before);
    }

    #[test]
    fn relay_reaches_target_through_intermediate() {
        let net = Network::new(1);
        net.register(addr(3), Rc::new(Echo));
        net.register(
            addr(2),
            Rc::new(Relay {
                target: addr(3),
                own: addr(2),
            }),
        );
        let out = net.send_query(addr(1), addr(2), b"ab");
        assert_eq!(out.payload().unwrap(), b"ba");
    }

    #[test]
    fn loop_is_dropped_not_stack_overflowed() {
        let net = Network::new(1);
        // A relay that forwards to itself.
        net.register(
            addr(2),
            Rc::new(Relay {
                target: addr(2),
                own: addr(2),
            }),
        );
        assert_eq!(net.send_query(addr(1), addr(2), b"x"), Outcome::Timeout);
    }

    #[test]
    fn full_drop_rate_loses_everything() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig {
            drop_chance: 1.0,
            ..Default::default()
        });
        assert_eq!(net.send_query(addr(1), addr(2), b"x"), Outcome::Timeout);
        assert_eq!(net.lost_count(), 1);
    }

    #[test]
    fn retries_can_survive_partial_loss() {
        let net = Network::new(42);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig {
            drop_chance: 0.5,
            ..Default::default()
        });
        let mut got = 0;
        for _ in 0..50 {
            if let Outcome::Response { .. } =
                net.send_query_with_retries(addr(1), addr(2), b"x", 10)
            {
                got += 1;
            }
        }
        assert!(got >= 45, "retries should mask most loss, got {got}/50");
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let net = Network::new(7);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig {
            corrupt_chance: 1.0,
            ..Default::default()
        });
        let out = net.send_query(addr(1), addr(2), b"aaaa");
        // Both legs corrupt one bit each; the reversed reply differs from
        // clean "aaaa" in at most 2 bits.
        let payload = out.payload().unwrap().to_vec();
        let diff: u32 = payload
            .iter()
            .zip(b"aaaa".iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!((1..=2).contains(&diff), "diff {diff}");
    }

    #[test]
    fn size_limit_drops_large_datagrams() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_faults(FaultConfig {
            size_limit: Some(4),
            ..Default::default()
        });
        assert_eq!(net.send_query(addr(1), addr(2), b"small"), Outcome::Timeout);
        assert!(matches!(
            net.send_query(addr(1), addr(2), b"ok"),
            Outcome::Response { .. }
        ));
    }

    #[test]
    fn trace_records_when_enabled() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_trace_capacity(10);
        let _ = net.send_query(addr(1), addr(2), b"x");
        let trace = net.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].verdict, TraceVerdict::Delivered);
        assert_eq!(trace[0].src, addr(1));
        assert_eq!(trace[1].src, addr(2));
    }

    #[test]
    fn trace_capacity_bounds_memory() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_trace_capacity(3);
        for _ in 0..10 {
            let _ = net.send_query(addr(1), addr(2), b"x");
        }
        assert_eq!(net.trace().len(), 3);
    }

    #[test]
    fn trace_ring_buffer_keeps_newest_entries() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_trace_capacity(4);
        // 6 exchanges x 2 legs = 12 datagrams with distinct lengths.
        for i in 1..=6usize {
            let _ = net.send_query(addr(1), addr(2), &vec![0u8; i]);
        }
        let trace = net.trace();
        assert_eq!(trace.len(), 4);
        // The survivors are the 4 most recent legs (exchanges 5 and 6),
        // in chronological order.
        assert_eq!(
            trace.iter().map(|e| e.len).collect::<Vec<_>>(),
            vec![5, 5, 6, 6]
        );
        assert!(trace.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
        // Late drops survive too: a NoRoute verdict lands in the buffer.
        let _ = net.send_query(addr(1), addr(9), b"zzzzzzz");
        let trace = net.trace();
        assert_eq!(trace.last().unwrap().verdict, TraceVerdict::NoRoute);
        // Shrinking keeps the newest entries.
        net.set_trace_capacity(2);
        let trace = net.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.last().unwrap().verdict, TraceVerdict::NoRoute);
        assert_eq!(trace[0].len, 6);
    }

    #[test]
    fn outage_episode_window_controls_reachability() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_schedule(FaultSchedule {
            episodes: vec![Episode::window(
                1_000_000,
                50_000_000,
                EpisodeKind::Outage {
                    scope: Scope::Addr(addr(2)),
                },
            )],
            ..Default::default()
        });
        // Before the window: reachable.
        assert!(matches!(
            net.send_query(addr(1), addr(2), b"x"),
            Outcome::Response { .. }
        ));
        net.advance(2_000_000);
        // Inside the window: silence.
        assert_eq!(net.send_query(addr(1), addr(2), b"x"), Outcome::Timeout);
        let trace_free = net.send_query(addr(1), addr(3), b"x");
        assert_eq!(trace_free, Outcome::NoRoute, "other dsts unaffected");
        // After the window: recovered.
        while net.now_micros() < 50_000_000 {
            net.advance(10_000_000);
        }
        assert!(matches!(
            net.send_query(addr(1), addr(2), b"x"),
            Outcome::Response { .. }
        ));
    }

    #[test]
    fn flap_decisions_replay_per_flow_not_per_network_history() {
        let schedule = || FaultSchedule {
            seed: 77,
            episodes: vec![Episode::always(EpisodeKind::Flap {
                scope: Scope::Addr(addr(2)),
                drop_chance: 0.5,
            })],
            ..Default::default()
        };
        let run = |extra_traffic: bool| {
            let net = Network::new(9);
            net.register(addr(2), Rc::new(Echo));
            net.register(addr(3), Rc::new(Echo));
            net.set_schedule(schedule());
            (0..40)
                .map(|i| {
                    if extra_traffic && i % 3 == 0 {
                        // Unrelated flow: must not shift addr(2) decisions.
                        let _ = net.send_query(addr(1), addr(3), b"noise");
                    }
                    matches!(
                        net.send_query(addr(1), addr(2), b"x"),
                        Outcome::Response { .. }
                    )
                })
                .collect::<Vec<bool>>()
        };
        let quiet = run(false);
        assert_eq!(quiet, run(true), "flap decisions are flow-keyed");
        assert!(quiet.iter().any(|ok| *ok) && quiet.iter().any(|ok| !*ok));
        // A different schedule seed flips some decisions.
        let net = Network::new(9);
        net.register(addr(2), Rc::new(Echo));
        net.set_schedule(FaultSchedule {
            seed: 78,
            ..schedule()
        });
        let other: Vec<bool> = (0..40)
            .map(|_| {
                matches!(
                    net.send_query(addr(1), addr(2), b"x"),
                    Outcome::Response { .. }
                )
            })
            .collect();
        assert_ne!(quiet, other);
    }

    #[test]
    fn latency_spike_slows_matching_destinations() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.register(addr(3), Rc::new(Echo));
        net.set_schedule(FaultSchedule {
            episodes: vec![Episode::always(EpisodeKind::LatencySpike {
                scope: Scope::Addr(addr(2)),
                extra_micros: 100_000,
                jitter_micros: 0,
            })],
            ..Default::default()
        });
        // Only the request leg matches dst = addr(2).
        match net.send_query(addr(1), addr(2), b"x") {
            Outcome::Response { rtt_micros, .. } => assert_eq!(rtt_micros, 20_000 + 100_000),
            other => panic!("{other:?}"),
        }
        match net.send_query(addr(1), addr(3), b"x") {
            Outcome::Response { rtt_micros, .. } => assert_eq!(rtt_micros, 20_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rate_limit_answers_burst_then_goes_silent_then_refills() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_schedule(FaultSchedule {
            episodes: vec![Episode::always(EpisodeKind::RateLimit {
                scope: Scope::Addr(addr(2)),
                capacity: 3,
                refill_interval_micros: 60_000_000,
            })],
            ..Default::default()
        });
        let mut answered = 0;
        for _ in 0..5 {
            if matches!(
                net.send_query(addr(1), addr(2), b"x"),
                Outcome::Response { .. }
            ) {
                answered += 1;
            }
        }
        assert_eq!(answered, 3, "burst capacity, then silence");
        net.advance(120_000_000); // two refill intervals
        let mut recovered = 0;
        for _ in 0..3 {
            if matches!(
                net.send_query(addr(1), addr(2), b"x"),
                Outcome::Response { .. }
            ) {
                recovered += 1;
            }
        }
        assert_eq!(recovered, 2, "tokens regained at the refill rate");
    }

    #[test]
    fn partition_cuts_both_directions_but_not_inside() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.register(addr(12), Rc::new(Echo));
        let left = Scope::V4Prefix(Ipv4Addr::new(10, 0, 0, 0), 29); // .0-.7
        let right = Scope::V4Prefix(Ipv4Addr::new(10, 0, 0, 8), 29); // .8-.15
        net.set_schedule(FaultSchedule {
            episodes: vec![Episode::always(EpisodeKind::Partition {
                a: left,
                b: right,
            })],
            ..Default::default()
        });
        assert_eq!(
            net.send_query(addr(1), addr(12), b"x"),
            Outcome::Timeout,
            "across the cut"
        );
        assert_eq!(
            net.send_query(addr(9), addr(2), b"x"),
            Outcome::Timeout,
            "reverse direction"
        );
        assert!(
            matches!(
                net.send_query(addr(1), addr(2), b"x"),
                Outcome::Response { .. }
            ),
            "same side unaffected"
        );
    }

    #[test]
    fn scope_prefix_matching() {
        let v4 = |a, b, c, d| IpAddr::V4(Ipv4Addr::new(a, b, c, d));
        let p = Scope::V4Prefix(Ipv4Addr::new(10, 1, 0, 0), 16);
        assert!(p.matches(v4(10, 1, 200, 7)));
        assert!(!p.matches(v4(10, 2, 0, 1)));
        assert!(!p.matches("fd00::1".parse().unwrap()));
        let p6 = Scope::V6Prefix("fd00::".parse().unwrap(), 8);
        assert!(p6.matches("fd00::42".parse().unwrap()));
        assert!(!p6.matches(v4(10, 0, 0, 1)));
        assert!(Scope::All.matches(v4(1, 2, 3, 4)));
        assert!(Scope::V4Prefix(Ipv4Addr::new(0, 0, 0, 0), 0).matches(v4(9, 9, 9, 9)));
    }

    #[test]
    fn fixed_policy_reproduces_legacy_retry_loop() {
        let run_legacy = || {
            let net = Network::new(42);
            net.register(addr(2), Rc::new(Echo));
            net.set_faults(FaultConfig {
                drop_chance: 0.5,
                ..Default::default()
            });
            (0..30)
                .map(|_| {
                    let out = net.send_query_with_retries(addr(1), addr(2), b"x", 4);
                    (matches!(out, Outcome::Response { .. }), net.now_micros())
                })
                .collect::<Vec<_>>()
        };
        let run_policy = || {
            let net = Network::new(42);
            net.register(addr(2), Rc::new(Echo));
            net.set_faults(FaultConfig {
                drop_chance: 0.5,
                ..Default::default()
            });
            let policy = RetryPolicy::fixed(4);
            (0..30)
                .map(|_| {
                    let report = net.send_query_with_policy(addr(1), addr(2), b"x", &policy);
                    (
                        matches!(report.outcome, Outcome::Response { .. }),
                        net.now_micros(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run_legacy(), run_policy());
    }

    #[test]
    fn adaptive_policy_backs_off_and_respects_budget() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Silent));
        let policy = RetryPolicy::adaptive(7);
        let before = net.now_micros();
        let report = net.send_query_with_policy(addr(1), addr(2), b"x", &policy);
        assert!(matches!(report.outcome, Outcome::Timeout));
        assert!(report.attempts >= 2, "silent target is retried");
        let elapsed = net.now_micros() - before;
        // Budget bounds total virtual time: attempts stop once 30 s elapse,
        // so the whole exchange stays under budget + one timeout + max backoff.
        assert!(
            elapsed
                <= policy.budget_micros
                    + 2_000_000
                    + policy.max_backoff_micros
                    + policy.jitter_micros,
            "elapsed {elapsed}"
        );
        // Backoff grows: the same dst/attempt pair always jitters identically.
        assert_eq!(
            policy.backoff_micros(addr(2), 1),
            policy.backoff_micros(addr(2), 1)
        );
        assert!(policy.backoff_micros(addr(2), 3) >= policy.backoff_micros(addr(2), 1));
    }

    #[test]
    fn no_route_short_circuits_policy_retries() {
        let net = Network::new(1);
        let report = net.send_query_with_policy(addr(1), addr(9), b"x", &RetryPolicy::adaptive(1));
        assert!(matches!(report.outcome, Outcome::NoRoute));
        assert_eq!(report.attempts, 1, "dead routes are not retried");
    }

    #[test]
    fn schedule_replays_identically_for_same_seed() {
        let run = |seed: u64| {
            let net = Network::new(5);
            net.register(addr(2), Rc::new(Echo));
            net.set_schedule(FaultSchedule {
                seed,
                episodes: vec![
                    Episode::always(EpisodeKind::Flap {
                        scope: Scope::All,
                        drop_chance: 0.3,
                    }),
                    Episode::window(
                        3_000_000,
                        9_000_000,
                        EpisodeKind::Outage {
                            scope: Scope::Addr(addr(2)),
                        },
                    ),
                ],
                ..Default::default()
            });
            (0..60)
                .map(|_| {
                    matches!(
                        net.send_query(addr(1), addr(2), b"x"),
                        Outcome::Response { .. }
                    )
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    /// A node that counts how many datagrams it handled.
    struct Counter(std::cell::Cell<u64>);
    impl Node for Counter {
        fn handle(
            &self,
            _net: &Network,
            _src: IpAddr,
            payload: &[u8],
            reply: &mut Vec<u8>,
        ) -> Option<()> {
            self.0.set(self.0.get() + 1);
            reply.extend_from_slice(payload);
            Some(())
        }
    }

    #[test]
    fn duplication_reruns_the_handler_once_per_copy() {
        let net = Network::new(3);
        let counter = Rc::new(Counter(std::cell::Cell::new(0)));
        net.register(addr(2), counter.clone());
        net.set_faults(FaultConfig {
            duplicate_chance: 1.0,
            ..Default::default()
        });
        let out = net.send_query(addr(1), addr(2), b"q");
        assert!(
            matches!(out, Outcome::Response { .. }),
            "sender still gets one reply"
        );
        assert_eq!(counter.0.get(), 2, "handler ran for both copies");
        net.set_faults(FaultConfig::default());
        let _ = net.send_query(addr(1), addr(2), b"q");
        assert_eq!(counter.0.get(), 3);
    }

    #[test]
    fn determinism_same_seed_same_outcomes() {
        let run = |seed| {
            let net = Network::new(seed);
            net.register(addr(2), Rc::new(Echo));
            net.set_faults(FaultConfig {
                drop_chance: 0.3,
                ..Default::default()
            });
            (0..30)
                .map(|_| {
                    matches!(
                        net.send_query(addr(1), addr(2), b"x"),
                        Outcome::Response { .. }
                    )
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100)); // overwhelmingly likely
    }

    #[test]
    fn addr_alloc_unique() {
        let mut alloc = AddrAlloc::new();
        let a = alloc.v4();
        let b = alloc.v4();
        let c = alloc.v6();
        let d = alloc.v6();
        assert_ne!(a, b);
        assert_ne!(c, d);
        assert!(matches!(c, IpAddr::V6(_)));
    }

    #[test]
    fn addr_alloc_skip_equals_discarded_allocs() {
        let mut skipped = AddrAlloc::new();
        skipped.skip_v4(5);
        skipped.skip_v6(3);
        let mut walked = AddrAlloc::new();
        for _ in 0..5 {
            walked.v4();
        }
        for _ in 0..3 {
            walked.v6();
        }
        assert_eq!(skipped.v4(), walked.v4());
        assert_eq!(skipped.v6(), walked.v6());
    }

    #[test]
    fn register_rejects_duplicates() {
        let net = Network::new(1);
        assert!(net.register(addr(2), Rc::new(Echo)));
        assert!(!net.register(addr(2), Rc::new(Echo)));
        net.unregister(addr(2));
        assert!(net.register(addr(2), Rc::new(Echo)));
    }

    #[test]
    fn per_node_latency_respected() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_latency(addr(1), 1_000);
        net.set_latency(addr(2), 2_000);
        match net.send_query(addr(1), addr(2), b"x") {
            Outcome::Response { rtt_micros, .. } => assert_eq!(rtt_micros, 2 * 3_000),
            other => panic!("{other:?}"),
        }
    }
}
