//! `sim-par` — deterministic fixed-shard parallelism, the workspace's
//! zero-dependency substitute for a rayon-style thread pool.
//!
//! The experiment drivers split their work list into **contiguous index
//! ranges** (shards), one per worker thread, instead of feeding a
//! work-stealing queue. Fixed sharding costs a little load balance but
//! buys the property the whole repository is built around: with results
//! merged strictly in shard order (= spec-index order), `threads = 1`
//! and `threads = N` produce **byte-identical output**. Completion order
//! never influences the result.
//!
//! Each shard carries its own seed, derived with [`sim_rng::SplitMix64`]
//! from the experiment seed and the shard index, so a worker can build
//! private randomized state (a lab network, an RNG stream) without
//! coordinating with its siblings. Consumers must keep per-item results
//! independent of shard composition for the byte-identity contract to
//! hold; `tests/determinism.rs` at the workspace root pins it end to end.
//!
//! Threads come from [`std::thread::scope`], so `work` may borrow from
//! the caller's stack and nothing outlives the call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use sim_rng::SplitMix64;

/// Environment variable holding the default worker-thread count used by
/// [`default_threads`] (and therefore by every experiment driver whose
/// caller does not pass `--threads`).
pub const THREADS_ENV: &str = "HEROES_THREADS";

/// Upper bound on worker threads accepted from the environment or CLI.
pub const MAX_THREADS: usize = 64;

/// One contiguous slice of a work list, with its derived seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Shard position, 0-based. Also the merge position: shard 0's
    /// results come first in the merged output.
    pub index: usize,
    /// Total number of shards in this run.
    pub count: usize,
    /// First item index covered by this shard (inclusive).
    pub start: usize,
    /// One past the last item index covered by this shard.
    pub end: usize,
    /// Per-shard seed derived via [`shard_seed`].
    pub seed: u64,
}

impl Shard {
    /// Number of items in this shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the shard covers no items.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Derive the seed for shard `index` from the experiment seed: one
/// SplitMix64 step mixes the experiment seed, a second mixes in the
/// shard index. Distinct indices yield decorrelated streams even for
/// adjacent experiment seeds.
pub fn shard_seed(experiment_seed: u64, index: usize) -> u64 {
    let mixed = SplitMix64::new(experiment_seed).next_u64();
    SplitMix64::new(mixed.wrapping_add(index as u64)).next_u64()
}

/// Split `0..len` into at most `threads` balanced contiguous ranges.
/// Every range is non-empty; the first `len % shards` ranges hold one
/// extra item. Returns fewer ranges than `threads` when there are fewer
/// items than workers, and none at all for an empty list.
pub fn shard_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = threads.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// The full shard plan for `len` items over `threads` workers, seeds
/// included.
pub fn shards(len: usize, threads: usize, experiment_seed: u64) -> Vec<Shard> {
    let ranges = shard_ranges(len, threads);
    let count = ranges.len();
    ranges
        .into_iter()
        .enumerate()
        .map(|(index, r)| Shard {
            index,
            count,
            start: r.start,
            end: r.end,
            seed: shard_seed(experiment_seed, index),
        })
        .collect()
}

/// One contiguous **index range** of a virtual work list, with its
/// derived seed — the streaming counterpart of [`Shard`] for work lists
/// that are generated on the fly (a Feistel-indexed population) rather
/// than materialised as a slice. Ranges are `u64` so a single shard plan
/// can span populations far larger than memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeShard {
    /// Shard position, 0-based. Also the merge position.
    pub index: usize,
    /// Total number of shards in this run.
    pub count: usize,
    /// First item index covered by this shard (inclusive).
    pub start: u64,
    /// One past the last item index covered by this shard.
    pub end: u64,
    /// Per-shard seed derived via [`shard_seed`].
    pub seed: u64,
}

impl RangeShard {
    /// Number of items in this shard.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the shard covers no items.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The full shard plan for a virtual work list of `len` items over
/// `threads` workers. Same balancing rule as [`shard_ranges`] (first
/// `len % shards` ranges get one extra item) and the same seed
/// derivation as [`shards`], so a [`RangeShard`] plan over `0..len` maps
/// one-to-one onto the [`Shard`] plan for a materialised list of the
/// same length.
pub fn range_shards(len: u64, threads: usize, experiment_seed: u64) -> Vec<RangeShard> {
    if len == 0 {
        return Vec::new();
    }
    let count = (threads as u64).clamp(1, len) as usize;
    let base = len / count as u64;
    let extra = len % count as u64;
    let mut out = Vec::with_capacity(count);
    let mut start = 0u64;
    for index in 0..count {
        let size = base + u64::from((index as u64) < extra);
        out.push(RangeShard {
            index,
            count,
            start,
            end: start + size,
            seed: shard_seed(experiment_seed, index),
        });
        start += size;
    }
    out
}

/// Run `work` over the virtual range `0..len` split into at most
/// `threads` contiguous [`RangeShard`]s, merging per-shard outputs **in
/// shard order** — the streaming counterpart of [`run_sharded`] for
/// populations that are never materialised. With one shard the closure
/// runs inline; a panic in any worker is re-raised after the scope
/// unwinds.
pub fn run_sharded_range<R, F>(len: u64, threads: usize, experiment_seed: u64, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(&RangeShard) -> R + Sync,
{
    let plan = range_shards(len, threads, experiment_seed);
    match plan.len() {
        0 => Vec::new(),
        1 => vec![work(&plan[0])],
        _ => {
            let mut merged = Vec::with_capacity(plan.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .iter()
                    .map(|shard| {
                        let work = &work;
                        scope.spawn(move || work(shard))
                    })
                    .collect();
                // Joining in spawn order IS the merge contract, exactly
                // as in `run_sharded`.
                for handle in handles {
                    match handle.join() {
                        Ok(part) => merged.push(part),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
            });
            merged
        }
    }
}

/// Worker-thread count from the `HEROES_THREADS` environment variable,
/// clamped to `1..=`[`MAX_THREADS`]. Defaults to 1 (fully sequential)
/// when unset or unparsable — parallelism is strictly opt-in so plain
/// `cargo test` runs stay single-threaded and comparable.
pub fn default_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_THREADS))
        .unwrap_or(1)
}

/// Run `work` over `items` split into at most `threads` contiguous
/// shards, merging the per-shard outputs **in shard order** (never in
/// completion order). With one shard the closure runs inline on the
/// caller's thread; otherwise each shard gets its own scoped thread.
///
/// `work` receives the [`Shard`] descriptor (seed, index range) plus the
/// shard's slice of `items`, and returns that shard's results in item
/// order. A panic in any worker is re-raised on the calling thread after
/// the scope unwinds.
pub fn run_sharded<T, R, F>(items: &[T], threads: usize, experiment_seed: u64, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&Shard, &[T]) -> Vec<R> + Sync,
{
    let plan = shards(items.len(), threads, experiment_seed);
    match plan.len() {
        0 => Vec::new(),
        1 => work(&plan[0], items),
        _ => {
            let mut merged = Vec::with_capacity(items.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .iter()
                    .map(|shard| {
                        let slice = &items[shard.start..shard.end];
                        let work = &work;
                        scope.spawn(move || work(shard, slice))
                    })
                    .collect();
                // Joining in spawn order IS the merge contract: shard
                // outputs concatenate into item order because ranges are
                // contiguous and ascending.
                for handle in handles {
                    match handle.join() {
                        Ok(part) => merged.extend(part),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
            });
            merged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_contiguously_and_balanced() {
        for len in [0usize, 1, 2, 5, 17, 64, 1000] {
            for threads in [0usize, 1, 2, 3, 8, 13] {
                let ranges = shard_ranges(len, threads);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), threads.clamp(1, len));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                    assert!(w[0].len() >= w[1].len(), "front-loaded balance");
                }
                let min = ranges.iter().map(Range::len).min().unwrap();
                let max = ranges.iter().map(Range::len).max().unwrap();
                assert!(max - min <= 1, "len {len} threads {threads}: {ranges:?}");
                assert!(min >= 1, "no empty shards");
            }
        }
    }

    #[test]
    fn fewer_items_than_threads_yields_one_item_shards() {
        let plan = shards(3, 8, 42);
        assert_eq!(plan.len(), 3);
        for (i, s) in plan.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.count, 3);
            assert_eq!(s.len(), 1);
            assert!(!s.is_empty());
        }
        // And the degenerate empty list.
        assert!(shards(0, 8, 42).is_empty());
        assert_eq!(run_sharded(&[] as &[u8], 8, 42, |_, _| vec![0u8]), vec![]);
    }

    #[test]
    fn shard_seeds_are_distinct_and_deterministic() {
        let plan = shards(100, 8, 7);
        let mut seeds: Vec<u64> = plan.iter().map(|s| s.seed).collect();
        assert_eq!(
            seeds,
            shards(100, 8, 7).iter().map(|s| s.seed).collect::<Vec<_>>()
        );
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "8 distinct per-shard seeds");
        // A different experiment seed moves every shard seed.
        let other = shards(100, 8, 8);
        assert!(plan.iter().zip(&other).all(|(a, b)| a.seed != b.seed));
        // And the shard seed matches the documented derivation.
        assert_eq!(plan[3].seed, shard_seed(7, 3));
    }

    #[test]
    fn merge_is_in_item_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in 1..=9 {
            let merged = run_sharded(&items, threads, 42, |shard, slice| {
                assert_eq!(slice.len(), shard.len());
                slice.iter().map(|x| x * 3 + 1).collect()
            });
            assert_eq!(merged, expected, "threads = {threads}");
        }
    }

    #[test]
    fn range_shards_match_slice_shards() {
        for len in [1u64, 2, 5, 17, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 13] {
                let slice_plan = shards(len as usize, threads, 42);
                let range_plan = range_shards(len, threads, 42);
                assert_eq!(range_plan.len(), slice_plan.len());
                for (r, s) in range_plan.iter().zip(&slice_plan) {
                    assert_eq!(r.index, s.index);
                    assert_eq!(r.count, s.count);
                    assert_eq!(r.start, s.start as u64);
                    assert_eq!(r.end, s.end as u64);
                    assert_eq!(r.seed, s.seed);
                    assert!(!r.is_empty());
                }
            }
        }
        assert!(range_shards(0, 8, 42).is_empty());
    }

    #[test]
    fn range_merge_is_in_shard_order_for_any_thread_count() {
        let expected: u64 = (0..1000u64).map(|x| x * 3 + 1).sum();
        for threads in 1..=9 {
            let parts = run_sharded_range(1000, threads, 42, |shard| {
                (shard.start..shard.end).map(|x| x * 3 + 1).sum::<u64>()
            });
            assert_eq!(parts.len(), threads.clamp(1, 9).min(1000));
            assert_eq!(parts.iter().sum::<u64>(), expected, "threads = {threads}");
        }
        // Shard order, not completion order: tag parts by index.
        let tags = run_sharded_range(64, 8, 42, |shard| shard.index);
        assert_eq!(tags, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u64> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            run_sharded(&items, 4, 42, |shard, slice| {
                if shard.index == 2 {
                    panic!("shard 2 exploded");
                }
                slice.to_vec()
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_reads_env() {
        // Serial by construction: this is the only test touching the var.
        std::env::remove_var(THREADS_ENV);
        assert_eq!(default_threads(), 1);
        std::env::set_var(THREADS_ENV, "4");
        assert_eq!(default_threads(), 4);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(default_threads(), 1, "clamped up");
        std::env::set_var(THREADS_ENV, "9999");
        assert_eq!(default_threads(), MAX_THREADS, "clamped down");
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(default_threads(), 1);
        std::env::remove_var(THREADS_ENV);
    }
}
