//! Property tests for the fixed-shard scheduler: for arbitrary work
//! lists and thread counts, the sharded merge must equal the sequential
//! result element for element — the contract the experiment drivers'
//! byte-identity guarantee rests on.

use sim_check::{gens, props};
use sim_par::{run_sharded, shard_ranges, shards};

props! {
    #![cases = 64]

    /// Sharded map + merge equals the sequential map, in order, for any
    /// item list and 1–8 threads. The per-item function also depends on
    /// the global item index (via `shard.start`) to prove shards see
    /// their true positions, not slice-local ones.
    fn sharded_merge_matches_sequential(
        items in gens::vec_of(gens::u64s(..), 0..120),
        threads in gens::u64s(1..9),
    ) {
        let sequential: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x.wrapping_mul(31).wrapping_add(i as u64))
            .collect();
        let sharded = run_sharded(&items, threads as usize, 42, |shard, slice| {
            slice
                .iter()
                .enumerate()
                .map(|(k, x)| x.wrapping_mul(31).wrapping_add((shard.start + k) as u64))
                .collect()
        });
        assert_eq!(sharded, sequential, "threads = {threads}");
    }

    /// Shard ranges partition `0..len` exactly for any len and thread
    /// count, with sizes differing by at most one.
    fn ranges_partition_exactly(
        len in gens::u64s(0..2_000),
        threads in gens::u64s(0..40),
    ) {
        let len = len as usize;
        let ranges = shard_ranges(len, threads as usize);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, len);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next, "contiguous ascending");
            assert!(!r.is_empty(), "no empty shards");
            next = r.end;
        }
        if let (Some(min), Some(max)) = (
            ranges.iter().map(|r| r.len()).min(),
            ranges.iter().map(|r| r.len()).max(),
        ) {
            assert!(max - min <= 1, "balanced: {ranges:?}");
        }
    }

    /// The shard plan is a pure function of (len, threads, seed), and
    /// per-shard seeds never collide within a plan.
    fn plan_is_deterministic_with_distinct_seeds(
        len in gens::u64s(1..500),
        threads in gens::u64s(1..9),
        seed in gens::u64s(..),
    ) {
        let a = shards(len as usize, threads as usize, seed);
        let b = shards(len as usize, threads as usize, seed);
        assert_eq!(a, b);
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        let count = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), count, "distinct per-shard seeds");
    }
}
