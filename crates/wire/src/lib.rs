//! DNS wire format, from scratch: names, records, messages, EDNS.
//!
//! This crate is the substrate everything else in the `heroes` workspace
//! builds on. It implements the subset of the DNS protocol the IMC 2024
//! *Zeros Are Heroes* reproduction needs, faithfully:
//!
//! * [`name`] — domain names with RFC 4034 canonical form and ordering.
//! * [`base32`] / [`base64`] — the encodings NSEC3 and DNSSEC presentation
//!   formats require (RFC 4648).
//! * [`rrtype`] — RR types, classes, opcodes, RCODEs.
//! * [`rdata`] — typed RDATA for A/AAAA/NS/CNAME/SOA/MX/TXT/PTR and the
//!   DNSSEC family (DNSKEY, RRSIG, DS, NSEC, NSEC3, NSEC3PARAM).
//! * [`typebitmap`] — NSEC/NSEC3 type bitmaps.
//! * [`record`] — resource records and canonical RRset ordering.
//! * [`message`] — full messages with name compression, encoded through
//!   pooled reusable buffers ([`buf::WireBuf`], [`buf::with_pooled`]).
//! * [`view`] — lazy borrowed message views ([`MessageView`]): the
//!   zero-copy read path for hot loops.
//! * [`edns`] — EDNS(0) and Extended DNS Errors, including INFO-CODE 27.
//!
//! Everything round-trips: `decode(encode(x)) == x` is property-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base32;
pub mod base64;
pub mod buf;
pub mod edns;
pub mod message;
pub mod name;
pub mod rdata;
pub mod record;
pub mod rrtype;
pub mod typebitmap;
pub mod view;

pub use buf::{with_pooled, WireBuf};
pub use edns::{EdeCode, Edns, EdnsOption};
pub use message::{Flags, Message, Question};
pub use name::Name;
pub use rdata::{RData, NSEC3_FLAG_OPT_OUT, NSEC3_HASH_SHA1};
pub use record::Record;
pub use rrtype::{Class, Opcode, Rcode, RrType};
pub use typebitmap::TypeBitmap;
pub use view::{MessageView, QuestionView, RecordView, Section};

/// Errors arising from parsing or constructing wire-format data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Ran out of bytes.
    Truncated,
    /// A malformed domain name; the payload describes how.
    BadName(&'static str),
    /// Malformed RDATA; the payload describes how.
    BadRdata(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("message truncated"),
            WireError::BadName(why) => write!(f, "bad name: {why}"),
            WireError::BadRdata(why) => write!(f, "bad rdata: {why}"),
        }
    }
}

impl std::error::Error for WireError {}
