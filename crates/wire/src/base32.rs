//! Base 32 encoding with extended hex alphabet, RFC 4648 §7
//! ("base32hex"), as used by NSEC3 owner names (RFC 5155 §1.3).
//!
//! NSEC3 hashes are always 20 bytes (SHA-1), which encodes to exactly
//! 32 characters with no padding, and DNS uses the lowercase form.

/// The base32hex alphabet (RFC 4648 §7), lowercase as used in DNS.
const ALPHABET: &[u8; 32] = b"0123456789abcdefghijklmnopqrstuv";

/// Encode bytes as unpadded lowercase base32hex.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity((data.len() * 8).div_ceil(5));
    let mut buffer: u64 = 0;
    let mut bits: u32 = 0;
    for &b in data {
        buffer = (buffer << 8) | u64::from(b);
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(ALPHABET[((buffer >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(ALPHABET[((buffer << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decode unpadded base32hex (case-insensitive). Returns `None` on invalid
/// characters or an impossible length.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    // Lengths congruent to 1, 3 or 6 mod 8 cannot occur.
    if matches!(s.len() % 8, 1 | 3 | 6) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    let mut buffer: u64 = 0;
    let mut bits: u32 = 0;
    for c in s.bytes() {
        let v = match c {
            b'0'..=b'9' => c - b'0',
            b'a'..=b'v' => c - b'a' + 10,
            b'A'..=b'V' => c - b'A' + 10,
            _ => return None,
        };
        buffer = (buffer << 5) | u64::from(v);
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((buffer >> bits) & 0xff) as u8);
        }
    }
    // Remaining bits must be zero padding.
    if bits > 0 && (buffer & ((1 << bits) - 1)) != 0 {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 test vectors (given uppercase + padded there; we are
    // lowercase + unpadded).
    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "co");
        assert_eq!(encode(b"fo"), "cpng");
        assert_eq!(encode(b"foo"), "cpnmu");
        assert_eq!(encode(b"foob"), "cpnmuog");
        assert_eq!(encode(b"fooba"), "cpnmuoj1");
        assert_eq!(encode(b"foobar"), "cpnmuoj1e8");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), b"");
        assert_eq!(decode("cpnmuoj1e8").unwrap(), b"foobar");
        assert_eq!(decode("CPNMUOJ1E8").unwrap(), b"foobar");
    }

    #[test]
    fn twenty_bytes_is_32_chars() {
        let h = [0u8; 20];
        assert_eq!(encode(&h).len(), 32);
        let h = [0xffu8; 20];
        assert_eq!(encode(&h).len(), 32);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("w").is_none()); // 'w' not in alphabet
        assert!(decode("0").is_none()); // impossible length
        assert!(decode("0!").is_none());
    }

    #[test]
    fn roundtrip_all_lengths() {
        for len in 0..40 {
            let data: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37)).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }
}
