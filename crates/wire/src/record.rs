//! Resource records and RRset helpers.

use std::fmt;

use crate::buf::{Reader, Writer};
use crate::name::Name;
use crate::rdata::RData;
use crate::rrtype::{Class, RrType};
use crate::WireError;

/// A resource record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (IN everywhere in this system).
    pub class: Class,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for class IN.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            class: Class::IN,
            ttl,
            rdata,
        }
    }

    /// The record type.
    pub fn rrtype(&self) -> RrType {
        self.rdata.rrtype()
    }

    /// Encode into `w` (whose compression setting governs the owner name).
    pub fn encode(&self, w: &mut Writer) {
        w.name(&self.name);
        w.u16(self.rrtype().0);
        w.u16(self.class.0);
        w.u32(self.ttl);
        let len_at = w.len();
        w.u16(0);
        let start = w.len();
        self.rdata.encode(w, false);
        let rdlen = w.len() - start;
        w.patch_u16(len_at, rdlen as u16);
    }

    /// Decode one record.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = r.name()?;
        let rtype = RrType(r.u16()?);
        let class = Class(r.u16()?);
        let ttl = r.u32()?;
        let rdlength = r.u16()? as usize;
        let rdata = RData::decode(r, rtype, rdlength)?;
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

impl fmt::Display for Record {
    /// Zone-file-like presentation (sufficient for logs and zone printing).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.name,
            self.ttl,
            self.class,
            self.rrtype()
        )?;
        match &self.rdata {
            RData::A(a) => write!(f, " {a}"),
            RData::Aaaa(a) => write!(f, " {a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, " {n}"),
            RData::Mx { preference, exchange } => write!(f, " {preference} {exchange}"),
            RData::Txt(strings) => {
                for s in strings {
                    write!(f, " \"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::Soa { mname, rname, serial, refresh, retry, expire, minimum } => write!(
                f,
                " {mname} {rname} {serial} {refresh} {retry} {expire} {minimum}"
            ),
            RData::Dnskey { flags, protocol, algorithm, public_key } => write!(
                f,
                " {flags} {protocol} {algorithm} {}",
                crate::base64::encode(public_key)
            ),
            RData::Rrsig {
                type_covered,
                algorithm,
                labels,
                original_ttl,
                expiration,
                inception,
                key_tag,
                signer_name,
                signature,
            } => write!(
                f,
                " {type_covered} {algorithm} {labels} {original_ttl} {expiration} {inception} {key_tag} {signer_name} {}",
                crate::base64::encode(signature)
            ),
            RData::Ds { key_tag, algorithm, digest_type, digest } => {
                write!(f, " {key_tag} {algorithm} {digest_type} ")?;
                for b in digest {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
            RData::Nsec { next, types } => write!(f, " {next} {types}"),
            RData::Nsec3 { hash_alg, flags, iterations, salt, next_hashed, types } => {
                write!(f, " {hash_alg} {flags} {iterations} ")?;
                if salt.is_empty() {
                    write!(f, "-")?;
                } else {
                    for b in salt {
                        write!(f, "{b:02x}")?;
                    }
                }
                write!(f, " {} {types}", crate::base32::encode(next_hashed).to_uppercase())
            }
            RData::Nsec3Param { hash_alg, flags, iterations, salt } => {
                write!(f, " {hash_alg} {flags} {iterations} ")?;
                if salt.is_empty() {
                    write!(f, "-")
                } else {
                    for b in salt {
                        write!(f, "{b:02x}")?;
                    }
                    Ok(())
                }
            }
            RData::Unknown { data, .. } => {
                write!(f, " \\# {}", data.len())?;
                for b in data {
                    write!(f, " {b:02x}")?;
                }
                Ok(())
            }
        }
    }
}

/// Sort records of one RRset into RFC 4034 §6.3 canonical order
/// (ascending canonical RDATA, duplicates removed), as required before
/// signing or verifying.
pub fn canonical_rrset_order(records: &mut Vec<Record>) {
    records.sort_by_key(|a| a.rdata.canonical_bytes());
    records.dedup_by(|a, b| a.rdata.canonical_bytes() == b.rdata.canonical_bytes());
}

/// Group records into RRsets keyed by (owner, type), preserving first-seen
/// key order.
pub fn group_rrsets(records: &[Record]) -> Vec<Vec<Record>> {
    let mut order: Vec<(Name, RrType)> = Vec::new();
    let mut sets: std::collections::HashMap<(Name, RrType), Vec<Record>> =
        std::collections::HashMap::new();
    for rec in records {
        let key = (rec.name.clone(), rec.rrtype());
        if !sets.contains_key(&key) {
            order.push(key.clone());
        }
        sets.entry(key).or_default().push(rec.clone());
    }
    order
        .into_iter()
        .map(|k| sets.remove(&k).unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use std::net::Ipv4Addr;

    fn a(n: &str, ip: [u8; 4]) -> Record {
        Record::new(name(n), 300, RData::A(Ipv4Addr::from(ip)))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rec = a("www.example.com", [192, 0, 2, 7]);
        let mut buf = Vec::new();
        rec.encode(&mut Writer::plain(&mut buf));
        let mut r = Reader::new(&buf);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
    }

    #[test]
    fn canonical_order_sorts_by_rdata() {
        let mut set = vec![
            a("x.example.", [10, 0, 0, 2]),
            a("x.example.", [10, 0, 0, 1]),
            a("x.example.", [10, 0, 0, 2]), // duplicate
        ];
        canonical_rrset_order(&mut set);
        assert_eq!(set.len(), 2);
        assert_eq!(set[0].rdata, RData::A(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn group_rrsets_by_owner_and_type() {
        let recs = vec![
            a("x.example.", [1, 1, 1, 1]),
            Record::new(name("x.example."), 300, RData::Ns(name("ns.example."))),
            a("x.example.", [2, 2, 2, 2]),
            a("y.example.", [3, 3, 3, 3]),
        ];
        let sets = group_rrsets(&recs);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].len(), 2); // the two A records at x
        assert_eq!(sets[1][0].rrtype(), RrType::NS);
    }

    #[test]
    fn display_formats() {
        let rec = Record::new(
            name("example."),
            3600,
            RData::Nsec3Param {
                hash_alg: 1,
                flags: 0,
                iterations: 5,
                salt: vec![0xab, 0xcd],
            },
        );
        assert_eq!(rec.to_string(), "example. 3600 IN NSEC3PARAM 1 0 5 abcd");
        let rec2 = Record::new(
            name("example."),
            3600,
            RData::Nsec3Param {
                hash_alg: 1,
                flags: 0,
                iterations: 0,
                salt: vec![],
            },
        );
        assert!(rec2.to_string().ends_with("1 0 0 -"));
    }
}
