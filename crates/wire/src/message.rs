//! Full DNS messages: header, question, sections, EDNS pseudo-section.

use crate::buf::{with_pooled, Reader, WireBuf, Writer};
use crate::edns::Edns;
use crate::name::Name;
use crate::rdata::RData;
use crate::record::Record;
use crate::rrtype::{Class, Opcode, Rcode, RrType};
use crate::WireError;

/// Header flag state (the 16-bit flags word, decomposed).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Flags {
    /// Response (vs query).
    pub qr: bool,
    /// Opcode.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Authenticated data — the bit the paper's resolver classification
    /// watches to distinguish secure from insecure NXDOMAINs.
    pub ad: bool,
    /// Checking disabled.
    pub cd: bool,
}

/// A question section entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Question {
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RrType,
    /// Queried class.
    pub qclass: Class,
}

impl Question {
    /// Convenience constructor for class IN.
    pub fn new(qname: Name, qtype: RrType) -> Self {
        Question {
            qname,
            qtype,
            qclass: Class::IN,
        }
    }
}

/// A DNS message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// Header flags.
    pub flags: Flags,
    /// Response code (full 12-bit value; the high bits travel in EDNS).
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (excluding the OPT pseudo-record).
    pub additionals: Vec<Record>,
    /// EDNS state, if an OPT record is present.
    pub edns: Option<Edns>,
}

impl Message {
    /// A recursive query for `qname`/`qtype` with the DO bit set.
    pub fn query(id: u16, qname: Name, qtype: RrType) -> Self {
        Message {
            id,
            flags: Flags {
                rd: true,
                ..Default::default()
            },
            rcode: Rcode::NoError,
            questions: vec![Question::new(qname, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: Some(Edns::with_do()),
        }
    }

    /// Start a response to `query`, echoing id and question.
    pub fn response_to(query: &Message) -> Self {
        Message {
            id: query.id,
            flags: Flags {
                qr: true,
                opcode: query.flags.opcode,
                rd: query.flags.rd,
                ..Default::default()
            },
            rcode: Rcode::NoError,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: query.edns.as_ref().map(|_| Edns::default()),
        }
    }

    /// The first question (all our traffic is single-question).
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Did the querier set the DO bit?
    pub fn dnssec_ok(&self) -> bool {
        self.edns.as_ref().map(|e| e.dnssec_ok).unwrap_or(false)
    }

    /// All records in answer+authority matching a type, lazily.
    pub fn records_of_type(&self, t: RrType) -> impl Iterator<Item = &Record> + '_ {
        self.answers
            .iter()
            .chain(self.authorities.iter())
            .filter(move |r| r.rrtype() == t)
    }

    /// Serialize to wire format with name compression, into an owned
    /// buffer. Thin wrapper over [`Message::encode_append`] — hot paths
    /// should encode into a reused buffer instead.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(512);
        self.encode_append(&mut out);
        out
    }

    /// Serialize into a reusable [`WireBuf`], replacing its contents.
    pub fn encode_into(&self, buf: &mut WireBuf) {
        buf.clear();
        let mut w = buf.writer();
        self.encode_body(&mut w);
    }

    /// Serialize to wire format, appending to `out`. Compression state
    /// comes from a pooled thread-local scratch buffer, so this
    /// allocates nothing beyond what `out` needs to grow.
    pub fn encode_append(&self, out: &mut Vec<u8>) {
        with_pooled(|scratch| {
            let mut w = Writer::compressing(out, scratch);
            self.encode_body(&mut w);
        });
    }

    /// Serialize with the RFC 7766 stream framing in one pass: the
    /// 2-byte length prefix is reserved up front and patched, so —
    /// unlike [`frame_tcp`] — the message bytes are written exactly
    /// once. The frame is appended to `out`; `&out[start + 2..]` is the
    /// bare datagram.
    pub fn encode_framed_append(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0, 0]);
        self.encode_append(out);
        let len = out.len() - start - 2;
        out[start..start + 2].copy_from_slice(&(len as u16).to_be_bytes());
    }

    fn encode_body(&self, w: &mut Writer<'_>) {
        w.u16(self.id);
        let rcode = self.rcode.to_u16();
        let mut flags: u16 = 0;
        if self.flags.qr {
            flags |= 0x8000;
        }
        flags |= (self.flags.opcode.to_u8() as u16) << 11;
        if self.flags.aa {
            flags |= 0x0400;
        }
        if self.flags.tc {
            flags |= 0x0200;
        }
        if self.flags.rd {
            flags |= 0x0100;
        }
        if self.flags.ra {
            flags |= 0x0080;
        }
        if self.flags.ad {
            flags |= 0x0020;
        }
        if self.flags.cd {
            flags |= 0x0010;
        }
        flags |= rcode & 0x000f;
        w.u16(flags);
        w.u16(self.questions.len() as u16);
        w.u16(self.answers.len() as u16);
        w.u16(self.authorities.len() as u16);
        let arcount = self.additionals.len() + usize::from(self.edns.is_some());
        w.u16(arcount as u16);
        for q in &self.questions {
            w.name(&q.qname);
            w.u16(q.qtype.0);
            w.u16(q.qclass.0);
        }
        for rec in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rec.encode(w);
        }
        if let Some(edns) = &self.edns {
            let mut e = edns.clone();
            e.extended_rcode_hi = (rcode >> 4) as u8;
            e.encode(w);
        }
    }

    /// Parse from wire format.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let id = r.u16()?;
        let flags_word = r.u16()?;
        let qdcount = r.u16()? as usize;
        let ancount = r.u16()? as usize;
        let nscount = r.u16()? as usize;
        let arcount = r.u16()? as usize;
        let flags = Flags {
            qr: flags_word & 0x8000 != 0,
            opcode: Opcode::from_u8(((flags_word >> 11) & 0x0f) as u8),
            aa: flags_word & 0x0400 != 0,
            tc: flags_word & 0x0200 != 0,
            rd: flags_word & 0x0100 != 0,
            ra: flags_word & 0x0080 != 0,
            ad: flags_word & 0x0020 != 0,
            cd: flags_word & 0x0010 != 0,
        };
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            questions.push(Question {
                qname: r.name()?,
                qtype: RrType(r.u16()?),
                qclass: Class(r.u16()?),
            });
        }
        let read_section = |r: &mut Reader<'_>,
                            count: usize,
                            edns: &mut Option<Edns>|
         -> Result<Vec<Record>, WireError> {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                // Peek for OPT: owner + type.
                let name = r.name()?;
                let rtype = RrType(r.u16()?);
                if rtype == RrType::OPT {
                    if !name.is_root() {
                        return Err(WireError::BadRdata("OPT owner must be root"));
                    }
                    if edns.is_some() {
                        return Err(WireError::BadRdata("duplicate OPT record"));
                    }
                    let class = r.u16()?;
                    let ttl = r.u32()?;
                    *edns = Some(Edns::decode_body(r, class, ttl)?);
                } else {
                    let class = Class(r.u16()?);
                    let ttl = r.u32()?;
                    let rdlength = r.u16()? as usize;
                    let rdata = RData::decode(r, rtype, rdlength)?;
                    out.push(Record {
                        name,
                        class,
                        ttl,
                        rdata,
                    });
                }
            }
            Ok(out)
        };
        let mut edns = None;
        let answers = read_section(&mut r, ancount, &mut edns)?;
        let authorities = read_section(&mut r, nscount, &mut edns)?;
        let additionals = read_section(&mut r, arcount, &mut edns)?;
        let rcode_lo = flags_word & 0x000f;
        let rcode_hi = edns.as_ref().map(|e| e.extended_rcode_hi).unwrap_or(0) as u16;
        let rcode = Rcode::from_u16((rcode_hi << 4) | rcode_lo);
        Ok(Message {
            id,
            flags,
            rcode,
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }
}

/// Frame a message for stream transport (RFC 7766 §8): a two-octet
/// big-endian length prefix. The simulated network carries datagrams
/// either way; the framing is how endpoints distinguish "TCP" exchanges
/// (no size limit) from UDP ones.
pub fn frame_tcp(message: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.len() + 2);
    out.extend_from_slice(&(message.len() as u16).to_be_bytes());
    out.extend_from_slice(message);
    out
}

/// Strip a stream-transport frame, returning the message when the length
/// prefix is exact. DNS headers put a 16-bit id first, so a UDP datagram
/// is only misparsed as a frame if its id happens to equal its length-2;
/// the question-echo check catches that residue.
pub fn unframe_tcp(payload: &[u8]) -> Option<&[u8]> {
    if payload.len() < 2 {
        return None;
    }
    let len = u16::from_be_bytes([payload[0], payload[1]]) as usize;
    if payload.len() == len + 2 {
        Some(&payload[2..])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edns::EdeCode;
    use crate::name::name;
    use std::net::Ipv4Addr;

    fn roundtrip(m: &Message) -> Message {
        Message::decode(&m.encode()).unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, name("www.example.com"), RrType::A);
        let rt = roundtrip(&q);
        assert_eq!(rt.id, 0x1234);
        assert!(rt.flags.rd);
        assert!(!rt.flags.qr);
        assert!(rt.dnssec_ok());
        assert_eq!(rt.question().unwrap().qname, name("www.example.com"));
    }

    #[test]
    fn response_roundtrip_with_all_sections() {
        let q = Message::query(7, name("x.example."), RrType::A);
        let mut resp = Message::response_to(&q);
        resp.flags.aa = true;
        resp.flags.ad = true;
        resp.answers.push(Record::new(
            name("x.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        resp.authorities.push(Record::new(
            name("example."),
            3600,
            RData::Ns(name("ns1.example.")),
        ));
        resp.additionals.push(Record::new(
            name("ns1.example."),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        let rt = roundtrip(&resp);
        assert_eq!(rt, resp);
        assert!(rt.flags.ad);
        assert!(rt.flags.aa);
    }

    #[test]
    fn servfail_with_ede_roundtrip() {
        let q = Message::query(9, name("it-151.test."), RrType::A);
        let mut resp = Message::response_to(&q);
        resp.rcode = Rcode::ServFail;
        let mut edns = Edns::default();
        edns.push_ede(EdeCode::UNSUPPORTED_NSEC3_ITERATIONS, "");
        resp.edns = Some(edns);
        let rt = roundtrip(&resp);
        assert_eq!(rt.rcode, Rcode::ServFail);
        assert_eq!(
            rt.edns.unwrap().ede().unwrap().0,
            &EdeCode::UNSUPPORTED_NSEC3_ITERATIONS
        );
    }

    #[test]
    fn extended_rcode_via_edns() {
        let q = Message::query(1, name("x."), RrType::A);
        let mut resp = Message::response_to(&q);
        resp.rcode = Rcode::Other(23); // BADCOOKIE, needs extended bits
        let rt = roundtrip(&resp);
        assert_eq!(rt.rcode, Rcode::Other(23));
    }

    #[test]
    fn compression_reduces_size() {
        let q = Message::query(7, name("aaaa.example."), RrType::NS);
        let mut resp = Message::response_to(&q);
        for i in 0..5 {
            resp.answers.push(Record::new(
                name("aaaa.example."),
                300,
                RData::Ns(name(&format!("ns{i}.aaaa.example."))),
            ));
        }
        let encoded = resp.encode();
        // Owner names compress to 2-byte pointers (RDATA names stay
        // uncompressed for RFC 3597 safety): 5 owners save 12 bytes each.
        // A pointer-free encoding of the same message is 60 bytes larger.
        assert!(encoded.len() < 200, "compressed len {}", encoded.len());
        assert_eq!(Message::decode(&encoded).unwrap(), resp);
    }

    #[test]
    fn rejects_duplicate_opt() {
        let q = Message::query(1, name("x."), RrType::A);
        let mut buf = q.encode();
        // Append a second OPT record: root, OPT, class 1232, ttl 0, rdlen 0.
        buf.extend_from_slice(&[0x00, 0x00, 41, 0x04, 0xD0, 0, 0, 0, 0, 0, 0]);
        // Bump ARCOUNT.
        let arcount = u16::from_be_bytes([buf[10], buf[11]]) + 1;
        buf[10..12].copy_from_slice(&arcount.to_be_bytes());
        assert!(Message::decode(&buf).is_err());
    }

    #[test]
    fn tcp_framing_roundtrip() {
        let msg = Message::query(5, name("x.example."), RrType::A).encode();
        let framed = frame_tcp(&msg);
        assert_eq!(unframe_tcp(&framed).unwrap(), msg.as_slice());
        // A plain datagram is (almost) never a valid frame.
        assert!(unframe_tcp(&msg).is_none() || msg[0] == 0);
        assert!(unframe_tcp(&[]).is_none());
        assert!(unframe_tcp(&[0, 5, 1]).is_none());
    }

    #[test]
    fn truncated_message_rejected() {
        let q = Message::query(1, name("example.com."), RrType::A).encode();
        for cut in [0, 5, 11, q.len() - 1] {
            assert!(Message::decode(&q[..cut]).is_err(), "cut {cut}");
        }
    }
}
