//! Domain names: presentation format, wire format, canonical form and
//! canonical ordering (RFC 1035 §3.1, RFC 4034 §6.1).
//!
//! `Name` stores labels in their original case but compares, hashes, and
//! orders case-insensitively, as DNS requires. The *canonical form* used for
//! DNSSEC signing and NSEC3 hashing is the lowercased, uncompressed wire
//! form (RFC 4034 §6.2).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use crate::WireError;

/// Maximum length of a single label, in bytes.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name in wire format, in bytes (including the root
/// zero octet).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified domain name.
///
/// Internally the uncompressed wire form *without* the trailing root
/// octet: length-prefixed labels in original case, the root name being
/// the empty buffer. Labels are arbitrary bytes (DNS is 8-bit clean),
/// though in practice they are ASCII hostnames. One buffer means clone
/// and drop are a single allocation each — names are the most-copied
/// value in the workspace, and per-label boxes dominated the signing and
/// census profiles.
///
/// The byte stream is a self-delimiting prefix code (each length octet
/// positions the next), so equality and hashing work directly on the
/// buffer: length octets are ≤ 63 and therefore never case-fold or
/// collide with an ASCII letter.
#[derive(Clone, Eq)]
pub struct Name {
    wire: Box<[u8]>,
}

/// Label start offsets of a wire buffer, on the stack. Every label takes
/// at least two bytes and the buffer is at most 254 long, so 128 slots
/// always fit and every offset fits in a `u8`.
fn label_offsets(wire: &[u8]) -> ([u8; 128], usize) {
    let mut offsets = [0u8; 128];
    let mut count = 0;
    let mut pos = 0usize;
    while pos < wire.len() {
        offsets[count] = pos as u8;
        count += 1;
        pos += 1 + wire[pos] as usize;
    }
    (offsets, count)
}

fn label_at(wire: &[u8], offset: u8) -> &[u8] {
    let pos = offset as usize;
    &wire[pos + 1..pos + 1 + wire[pos] as usize]
}

struct LabelIter<'a> {
    wire: &'a [u8],
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        if self.wire.is_empty() {
            return None;
        }
        let len = self.wire[0] as usize;
        let (head, tail) = self.wire[1..].split_at(len);
        self.wire = tail;
        Some(head)
    }
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name {
            wire: Box::default(),
        }
    }

    /// Build a name from raw labels. Fails if any label is empty or too
    /// long, or the total wire length exceeds [`MAX_NAME_LEN`].
    pub fn from_labels<I, L>(labels: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut wire = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(WireError::BadName("empty label"));
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(WireError::BadName("label longer than 63 octets"));
            }
            wire.push(l.len() as u8);
            wire.extend_from_slice(l);
        }
        if wire.len() + 1 > MAX_NAME_LEN {
            return Err(WireError::BadName("name longer than 255 octets"));
        }
        Ok(Name {
            wire: wire.into_boxed_slice(),
        })
    }

    /// Parse presentation format (`www.example.com`, trailing dot optional;
    /// `\.` and `\DDD` escapes supported).
    pub fn parse(s: &str) -> Result<Self, WireError> {
        if s == "." || s.is_empty() {
            return Ok(Name::root());
        }
        let bytes = s.as_bytes();
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    i += 1;
                    if i >= bytes.len() {
                        return Err(WireError::BadName("dangling escape"));
                    }
                    if bytes[i].is_ascii_digit() {
                        if i + 2 >= bytes.len()
                            || !bytes[i + 1].is_ascii_digit()
                            || !bytes[i + 2].is_ascii_digit()
                        {
                            return Err(WireError::BadName("bad \\DDD escape"));
                        }
                        let v = (bytes[i] - b'0') as u32 * 100
                            + (bytes[i + 1] - b'0') as u32 * 10
                            + (bytes[i + 2] - b'0') as u32;
                        if v > 255 {
                            return Err(WireError::BadName("\\DDD escape out of range"));
                        }
                        cur.push(v as u8);
                        i += 3;
                    } else {
                        cur.push(bytes[i]);
                        i += 1;
                    }
                }
                b'.' => {
                    if cur.is_empty() {
                        return Err(WireError::BadName("empty label"));
                    }
                    labels.push(std::mem::take(&mut cur));
                    i += 1;
                }
                b => {
                    cur.push(b);
                    i += 1;
                }
            }
        }
        if !cur.is_empty() {
            labels.push(cur);
        }
        Name::from_labels(labels)
    }

    /// Number of labels (the root has 0, `example.com` has 2).
    pub fn label_count(&self) -> usize {
        label_offsets(&self.wire).1
    }

    /// The labels, leftmost (least significant) first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        LabelIter { wire: &self.wire }
    }

    /// Is this the root name?
    pub fn is_root(&self) -> bool {
        self.wire.is_empty()
    }

    /// Is the leftmost label `*` (a wildcard owner name)?
    pub fn is_wildcard(&self) -> bool {
        self.wire.starts_with(&[1, b'*'])
    }

    /// Length of this name in (uncompressed) wire format.
    pub fn wire_len(&self) -> usize {
        self.wire.len() + 1
    }

    /// The parent name (one label removed from the left); `None` for the
    /// root.
    pub fn parent(&self) -> Option<Name> {
        if self.wire.is_empty() {
            return None;
        }
        let skip = 1 + self.wire[0] as usize;
        Some(Name {
            wire: self.wire[skip..].to_vec().into_boxed_slice(),
        })
    }

    /// `true` if `self` is `other` or a descendant of `other`.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.wire.len() > self.wire.len() {
            return false;
        }
        let split = self.wire.len() - other.wire.len();
        if !self.wire[split..]
            .iter()
            .zip(other.wire.iter())
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
        {
            return false;
        }
        // The suffix must start on a label boundary of `self`.
        let mut pos = 0;
        while pos < split {
            pos += 1 + self.wire[pos] as usize;
        }
        pos == split
    }

    /// Prepend a single label, returning the child name.
    pub fn prepend(&self, label: &[u8]) -> Result<Name, WireError> {
        if label.is_empty() {
            return Err(WireError::BadName("empty label"));
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(WireError::BadName("label longer than 63 octets"));
        }
        let mut wire = Vec::with_capacity(1 + label.len() + self.wire.len());
        wire.push(label.len() as u8);
        wire.extend_from_slice(label);
        wire.extend_from_slice(&self.wire);
        if wire.len() + 1 > MAX_NAME_LEN {
            return Err(WireError::BadName("name longer than 255 octets"));
        }
        Ok(Name {
            wire: wire.into_boxed_slice(),
        })
    }

    /// Concatenate: `self` becomes a prefix of `suffix`
    /// (`a.b` + `example.com` = `a.b.example.com`).
    pub fn concat(&self, suffix: &Name) -> Result<Name, WireError> {
        let mut wire = Vec::with_capacity(self.wire.len() + suffix.wire.len());
        wire.extend_from_slice(&self.wire);
        wire.extend_from_slice(&suffix.wire);
        if wire.len() + 1 > MAX_NAME_LEN {
            return Err(WireError::BadName("name longer than 255 octets"));
        }
        Ok(Name {
            wire: wire.into_boxed_slice(),
        })
    }

    /// Replace the leftmost label with `*` — the *wildcard at* this name's
    /// parent, used in denial-of-existence proofs.
    pub fn to_wildcard_of_parent(&self) -> Option<Name> {
        let parent = self.parent()?;
        parent.prepend(b"*").ok()
    }

    /// Strip `suffix` from the right, returning the relative labels.
    /// Returns `None` if `self` is not a subdomain of `suffix`.
    pub fn strip_suffix(&self, suffix: &Name) -> Option<Vec<Vec<u8>>> {
        if !self.is_subdomain_of(suffix) {
            return None;
        }
        let split = self.wire.len() - suffix.wire.len();
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < split {
            let len = self.wire[pos] as usize;
            out.push(self.wire[pos + 1..pos + 1 + len].to_vec());
            pos += 1 + len;
        }
        Some(out)
    }

    /// The internal wire buffer in original case, *without* the trailing
    /// root octet (length-prefixed labels; empty for the root). This is
    /// the borrow hot paths write from; [`Name::to_wire`] is the owned
    /// equivalent with the terminator appended.
    pub fn wire_bytes(&self) -> &[u8] {
        &self.wire
    }

    /// Uncompressed wire format in original case.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire.len() + 1);
        out.extend_from_slice(&self.wire);
        out.push(0);
        out
    }

    /// Canonical wire format (RFC 4034 §6.2): lowercase, uncompressed.
    /// This is the exact input to NSEC3 hashing and RRSIG signing.
    /// (Length octets are ≤ 63, so lowercasing the whole buffer is exact.)
    pub fn to_canonical_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire.len() + 1);
        out.extend(self.wire.iter().map(|b| b.to_ascii_lowercase()));
        out.push(0);
        out
    }

    /// Write the canonical wire format into `out`, returning the number of
    /// bytes written (= [`Name::wire_len`]). Lets hot paths hash names from
    /// a stack buffer instead of allocating with [`Name::to_canonical_wire`];
    /// a `[u8; MAX_NAME_LEN]` buffer always fits.
    ///
    /// # Panics
    /// Panics if `out` is shorter than the wire length.
    pub fn write_canonical_wire(&self, out: &mut [u8]) -> usize {
        for (dst, b) in out[..self.wire.len()].iter_mut().zip(self.wire.iter()) {
            *dst = b.to_ascii_lowercase();
        }
        out[self.wire.len()] = 0;
        self.wire.len() + 1
    }

    /// A lowercased copy (for canonical display and map keys).
    pub fn to_lowercase(&self) -> Name {
        Name {
            wire: self
                .wire
                .iter()
                .map(|b| b.to_ascii_lowercase())
                .collect::<Vec<u8>>()
                .into_boxed_slice(),
        }
    }

    /// RFC 4034 §6.1 canonical ordering.
    ///
    /// Names are ordered by comparing labels right-to-left; the absence of a
    /// label sorts before any label; labels compare as case-folded byte
    /// strings.
    pub fn canonical_cmp(&self, other: &Name) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let (a_offs, a_n) = label_offsets(&self.wire);
        let (b_offs, b_n) = label_offsets(&other.wire);
        for i in 1..=a_n.min(b_n) {
            let x = label_at(&self.wire, a_offs[a_n - i]);
            let y = label_at(&other.wire, b_offs[b_n - i]);
            let ord = cmp_label(x, y);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a_n.cmp(&b_n)
    }

    /// All ancestor names from `self` up to and including the root, starting
    /// with `self`. (`a.b.example.` yields `a.b.example.`, `b.example.`,
    /// `example.`, `.`.)
    pub fn self_and_ancestors(&self) -> Vec<Name> {
        let mut out = Vec::with_capacity(self.label_count() + 1);
        let mut cur = Some(self.clone());
        while let Some(n) = cur {
            cur = n.parent();
            out.push(n);
        }
        out
    }
}

fn cmp_label(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    let la = a.iter().map(|c| c.to_ascii_lowercase());
    let lb = b.iter().map(|c| c.to_ascii_lowercase());
    la.cmp(lb)
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Length octets are ≤ 63, so a case-insensitive whole-buffer
        // compare can never confuse a length with a letter.
        self.wire.len() == other.wire.len()
            && self
                .wire
                .iter()
                .zip(other.wire.iter())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for &b in self.wire.iter() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Total order = RFC 4034 canonical order (so `BTreeMap<Name, _>` is a
    /// canonically-ordered zone).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.canonical_cmp(other)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.write_str(".");
        }
        for l in self.labels() {
            for &b in l.iter() {
                match b {
                    b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                    0x21..=0x7e => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\{b:03}")?,
                }
            }
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// Shorthand used pervasively in tests and examples: parse a name, panicking
/// on invalid input.
pub fn name(s: &str) -> Name {
    Name::parse(s).unwrap_or_else(|e| panic!("bad name {s:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["example.", "www.example.com.", "a.b.c.d.e."] {
            assert_eq!(name(s).to_string(), s);
        }
        assert_eq!(name("example.com").to_string(), "example.com.");
        assert_eq!(name(".").to_string(), ".");
    }

    #[test]
    fn escapes() {
        let n = name(r"ex\.ample.com");
        assert_eq!(n.label_count(), 2);
        assert_eq!(n.labels().next().unwrap(), b"ex.ample");
        assert_eq!(n.to_string(), r"ex\.ample.com.");
        let d = name(r"\065bc.com"); // \065 = 'A'
        assert_eq!(d.labels().next().unwrap(), b"Abc");
    }

    #[test]
    fn rejects_invalid() {
        assert!(Name::parse("a..b").is_err());
        assert!(Name::parse(&"a".repeat(64)).is_err());
        let long = vec!["a".repeat(63); 4].join(".") + "." + &"b".repeat(10);
        assert!(Name::parse(&long).is_err());
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::HashSet;
        let a = name("WWW.Example.COM");
        let b = name("www.example.com");
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn wire_and_canonical_wire() {
        let n = name("Ab.cD");
        assert_eq!(n.to_wire(), b"\x02Ab\x02cD\x00");
        assert_eq!(n.to_canonical_wire(), b"\x02ab\x02cd\x00");
        assert_eq!(Name::root().to_wire(), b"\x00");
        assert_eq!(n.wire_len(), 7);
    }

    #[test]
    fn rfc4034_canonical_order_example() {
        // The exact ordering example from RFC 4034 §6.1.
        let ordered = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "Z.a.example.",
            "zABC.a.EXAMPLE.",
            "z.example.",
            r"\001.z.example.",
            "*.z.example.",
            r"\200.z.example.",
        ];
        let names: Vec<Name> = ordered.iter().map(|s| name(s)).collect();
        for w in names.windows(2) {
            assert_eq!(
                w[0].canonical_cmp(&w[1]),
                Ordering::Less,
                "{} should sort before {}",
                w[0],
                w[1]
            );
        }
        let mut shuffled = names.clone();
        shuffled.reverse();
        shuffled.sort();
        assert_eq!(shuffled, names);
    }

    #[test]
    fn subdomain_relationships() {
        let apex = name("example.com");
        assert!(name("www.example.com").is_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&Name::root()));
        assert!(!name("example.org").is_subdomain_of(&apex));
        assert!(!name("badexample.com").is_subdomain_of(&apex));
        assert!(name("WWW.EXAMPLE.COM").is_subdomain_of(&apex));
    }

    #[test]
    fn parent_and_prepend() {
        let n = name("a.b.c");
        assert_eq!(n.parent().unwrap(), name("b.c"));
        assert_eq!(Name::root().parent(), None);
        assert_eq!(name("b.c").prepend(b"a").unwrap(), n);
    }

    #[test]
    fn wildcard_handling() {
        assert!(name("*.example.com").is_wildcard());
        assert!(!name("x.example.com").is_wildcard());
        assert_eq!(
            name("foo.example.com").to_wildcard_of_parent().unwrap(),
            name("*.example.com")
        );
    }

    #[test]
    fn strip_suffix_works() {
        let n = name("a.b.example.com");
        let rel = n.strip_suffix(&name("example.com")).unwrap();
        assert_eq!(rel, vec![b"a".to_vec(), b"b".to_vec()]);
        assert!(n.strip_suffix(&name("example.org")).is_none());
        assert_eq!(n.strip_suffix(&n).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn self_and_ancestors_order() {
        let chain = name("a.b.example.").self_and_ancestors();
        let expect = ["a.b.example.", "b.example.", "example.", "."];
        assert_eq!(chain.len(), expect.len());
        for (c, e) in chain.iter().zip(expect.iter()) {
            assert_eq!(&c.to_string(), e);
        }
    }

    #[test]
    fn concat_names() {
        assert_eq!(
            name("www").concat(&name("example.com")).unwrap(),
            name("www.example.com")
        );
    }
}
