//! EDNS(0) (RFC 6891) and Extended DNS Errors (RFC 8914).
//!
//! The paper's resolver measurements hinge on two EDNS features: the DO bit
//! (signalling DNSSEC support) and the EDE option — in particular
//! INFO-CODE 27 *Unsupported NSEC3 Iterations Value*, which RFC 9276
//! items 10–11 govern.

use crate::buf::{Reader, Writer};
use crate::name::Name;
use crate::rrtype::RrType;
use crate::WireError;

/// Extended DNS Error codes (RFC 8914) observed in the study.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EdeCode(pub u16);

#[allow(missing_docs)]
impl EdeCode {
    pub const OTHER: EdeCode = EdeCode(0);
    pub const DNSSEC_INDETERMINATE: EdeCode = EdeCode(5);
    pub const DNSSEC_BOGUS: EdeCode = EdeCode(6);
    pub const SIGNATURE_EXPIRED: EdeCode = EdeCode(7);
    pub const DNSKEY_MISSING: EdeCode = EdeCode(9);
    pub const NSEC_MISSING: EdeCode = EdeCode(12);
    /// The code RFC 9276 items 10–11 are about.
    pub const UNSUPPORTED_NSEC3_ITERATIONS: EdeCode = EdeCode(27);

    /// Registry name, for reports.
    pub fn name(self) -> &'static str {
        match self.0 {
            0 => "Other",
            5 => "DNSSEC Indeterminate",
            6 => "DNSSEC Bogus",
            7 => "Signature Expired",
            9 => "DNSKEY Missing",
            12 => "NSEC Missing",
            27 => "Unsupported NSEC3 Iterations Value",
            _ => "Unassigned",
        }
    }
}

/// A single EDNS option.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EdnsOption {
    /// Extended DNS Error (option code 15).
    Ede {
        /// The INFO-CODE.
        code: EdeCode,
        /// UTF-8 EXTRA-TEXT (optional, possibly empty).
        extra_text: String,
    },
    /// Any other option, kept verbatim.
    Unknown {
        /// Option code.
        code: u16,
        /// Option data.
        data: Vec<u8>,
    },
}

/// EDNS option code for Extended DNS Errors.
const OPTION_EDE: u16 = 15;

/// Decoded OPT pseudo-record state carried on a message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Edns {
    /// Requestor's/responder's UDP payload size.
    pub udp_payload_size: u16,
    /// Upper 8 bits of the extended RCODE.
    pub extended_rcode_hi: u8,
    /// EDNS version (0).
    pub version: u8,
    /// DNSSEC OK bit.
    pub dnssec_ok: bool,
    /// Options, in order.
    pub options: Vec<EdnsOption>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: 1232,
            extended_rcode_hi: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// An EDNS block with the DO bit set — what a validating resolver sends.
    pub fn with_do() -> Self {
        Edns {
            dnssec_ok: true,
            ..Default::default()
        }
    }

    /// Append an EDE option.
    pub fn push_ede(&mut self, code: EdeCode, extra_text: impl Into<String>) {
        self.options.push(EdnsOption::Ede {
            code,
            extra_text: extra_text.into(),
        });
    }

    /// First EDE option, if any.
    pub fn ede(&self) -> Option<(&EdeCode, &str)> {
        self.options.iter().find_map(|o| match o {
            EdnsOption::Ede { code, extra_text } => Some((code, extra_text.as_str())),
            _ => None,
        })
    }

    /// Encode as an OPT pseudo-record appended to the additional section.
    pub fn encode(&self, w: &mut Writer) {
        w.name(&Name::root());
        w.u16(RrType::OPT.0);
        w.u16(self.udp_payload_size);
        w.u8(self.extended_rcode_hi);
        w.u8(self.version);
        w.u16(if self.dnssec_ok { 0x8000 } else { 0 });
        let len_at = w.len();
        w.u16(0);
        let start = w.len();
        for opt in &self.options {
            match opt {
                EdnsOption::Ede { code, extra_text } => {
                    w.u16(OPTION_EDE);
                    w.u16((2 + extra_text.len()) as u16);
                    w.u16(code.0);
                    w.bytes(extra_text.as_bytes());
                }
                EdnsOption::Unknown { code, data } => {
                    w.u16(*code);
                    w.u16(data.len() as u16);
                    w.bytes(data);
                }
            }
        }
        let rdlen = w.len() - start;
        w.patch_u16(len_at, rdlen as u16);
    }

    /// Decode the body of an OPT record whose owner/type have already been
    /// consumed. `class`/`ttl` are the raw fields that OPT repurposes.
    pub fn decode_body(r: &mut Reader<'_>, class: u16, ttl: u32) -> Result<Self, WireError> {
        let udp_payload_size = class;
        let extended_rcode_hi = (ttl >> 24) as u8;
        let version = (ttl >> 16) as u8;
        let dnssec_ok = ttl & 0x8000 != 0;
        let rdlength = r.u16()? as usize;
        let end = r.pos() + rdlength;
        let mut options = Vec::new();
        while r.pos() < end {
            let code = r.u16()?;
            let olen = r.u16()? as usize;
            if r.pos() + olen > end {
                return Err(WireError::Truncated);
            }
            if code == OPTION_EDE {
                if olen < 2 {
                    return Err(WireError::BadRdata("EDE option too short"));
                }
                let info = r.u16()?;
                let text = r.bytes(olen - 2)?;
                options.push(EdnsOption::Ede {
                    code: EdeCode(info),
                    extra_text: String::from_utf8_lossy(text).into_owned(),
                });
            } else {
                options.push(EdnsOption::Unknown {
                    code,
                    data: r.bytes(olen)?.to_vec(),
                });
            }
        }
        if r.pos() != end {
            return Err(WireError::BadRdata("OPT rdata overrun"));
        }
        Ok(Edns {
            udp_payload_size,
            extended_rcode_hi,
            version,
            dnssec_ok,
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_with_ede() {
        let mut edns = Edns::with_do();
        edns.push_ede(EdeCode::UNSUPPORTED_NSEC3_ITERATIONS, "too many iterations");
        let mut buf = Vec::new();
        edns.encode(&mut Writer::plain(&mut buf));
        let mut r = Reader::new(&buf);
        // Skip owner (root) + type.
        assert!(r.name().unwrap().is_root());
        assert_eq!(r.u16().unwrap(), RrType::OPT.0);
        let class = r.u16().unwrap();
        let ttl = r.u32().unwrap();
        let decoded = Edns::decode_body(&mut r, class, ttl).unwrap();
        assert_eq!(decoded, edns);
        let (code, text) = decoded.ede().unwrap();
        assert_eq!(*code, EdeCode::UNSUPPORTED_NSEC3_ITERATIONS);
        assert_eq!(text, "too many iterations");
    }

    #[test]
    fn do_bit_roundtrips() {
        for do_bit in [false, true] {
            let edns = Edns {
                dnssec_ok: do_bit,
                ..Default::default()
            };
            let mut buf = Vec::new();
            edns.encode(&mut Writer::plain(&mut buf));
            let mut r = Reader::new(&buf);
            let _ = r.name().unwrap();
            let _ = r.u16().unwrap();
            let class = r.u16().unwrap();
            let ttl = r.u32().unwrap();
            let decoded = Edns::decode_body(&mut r, class, ttl).unwrap();
            assert_eq!(decoded.dnssec_ok, do_bit);
        }
    }

    #[test]
    fn ede_names() {
        assert_eq!(
            EdeCode::UNSUPPORTED_NSEC3_ITERATIONS.name(),
            "Unsupported NSEC3 Iterations Value"
        );
        assert_eq!(EdeCode(999).name(), "Unassigned");
    }

    #[test]
    fn unknown_options_preserved() {
        let edns = Edns {
            options: vec![EdnsOption::Unknown {
                code: 10,
                data: vec![1, 2, 3],
            }],
            ..Default::default()
        };
        let mut buf = Vec::new();
        edns.encode(&mut Writer::plain(&mut buf));
        let mut r = Reader::new(&buf);
        let _ = r.name().unwrap();
        let _ = r.u16().unwrap();
        let class = r.u16().unwrap();
        let ttl = r.u32().unwrap();
        assert_eq!(Edns::decode_body(&mut r, class, ttl).unwrap(), edns);
    }
}
