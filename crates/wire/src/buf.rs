//! Wire-format reader/writer with DNS name compression support
//! (RFC 1035 §4.1.4), plus the reusable encode buffer ([`WireBuf`]) and
//! thread-local buffer pool that back the zero-copy message path.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::name::{Name, MAX_NAME_LEN};
use crate::WireError;

/// Cursor over a received message buffer.
///
/// Name decompression needs random access to the whole message, so the
/// reader keeps the full slice and a position rather than consuming a slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a message buffer.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Wrap a message buffer with the cursor at `pos`, so lazy views can
    /// decode a name or RDATA in place while compression pointers still
    /// resolve against the whole packet.
    pub fn at(data: &'a [u8], pos: usize) -> Self {
        Reader { data, pos }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Read one octet.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes([self.u8()?, self.u8()?]))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a possibly-compressed domain name.
    ///
    /// Compression pointers must point strictly backwards, which also bounds
    /// the number of jumps and defeats pointer loops.
    pub fn name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut jumps = 0usize;
        let mut pos = self.pos;
        let mut end_of_name: Option<usize> = None; // position after first pointer
        let mut total_len = 1usize;
        loop {
            let len = *self.data.get(pos).ok_or(WireError::Truncated)?;
            match len {
                0 => {
                    pos += 1;
                    break;
                }
                1..=63 => {
                    let len = len as usize;
                    let start = pos + 1;
                    let label = self
                        .data
                        .get(start..start + len)
                        .ok_or(WireError::Truncated)?;
                    total_len += 1 + len;
                    if total_len > MAX_NAME_LEN {
                        return Err(WireError::BadName("compressed name too long"));
                    }
                    labels.push(label.to_vec());
                    pos = start + len;
                }
                0xC0..=0xFF => {
                    let lo = *self.data.get(pos + 1).ok_or(WireError::Truncated)?;
                    let target = ((len as usize & 0x3f) << 8) | lo as usize;
                    if target >= pos {
                        return Err(WireError::BadName("forward compression pointer"));
                    }
                    if end_of_name.is_none() {
                        end_of_name = Some(pos + 2);
                    }
                    jumps += 1;
                    if jumps > 127 {
                        return Err(WireError::BadName("too many compression pointers"));
                    }
                    pos = target;
                }
                _ => return Err(WireError::BadName("reserved label type")),
            }
        }
        self.pos = end_of_name.unwrap_or(pos);
        Name::from_labels(labels)
    }
}

/// A reusable encode buffer: output bytes plus the name-compression map,
/// both of which keep their capacity across messages. One `WireBuf` per
/// encode replaces the fresh 512-byte `Vec` and fresh `HashMap` the old
/// owning writer allocated per call.
///
/// `WireBuf`s are plain values; [`with_pooled`] hands out thread-local
/// pooled instances for the common encode-then-forget pattern.
#[derive(Default)]
pub struct WireBuf {
    bytes: Vec<u8>,
    map: HashMap<Vec<u8>, u16>,
}

impl WireBuf {
    /// An empty buffer with a datagram-sized initial capacity.
    pub fn new() -> Self {
        WireBuf {
            bytes: Vec::with_capacity(512),
            map: HashMap::new(),
        }
    }

    /// Drop contents, keep capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.map.clear();
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Steal the encoded bytes as an owned `Vec`, leaving the buffer
    /// empty (the compression map keeps its capacity for reuse).
    pub fn take(&mut self) -> Vec<u8> {
        self.map.clear();
        std::mem::take(&mut self.bytes)
    }

    /// A compressing writer that appends to this buffer.
    pub fn writer(&mut self) -> Writer<'_> {
        self.map.clear();
        let base = self.bytes.len();
        Writer {
            out: &mut self.bytes,
            compress: Some(&mut self.map),
            base,
        }
    }
}

thread_local! {
    /// Per-thread stack of spare encode buffers. A stack (rather than a
    /// single slot) keeps re-entrant encodes — a handler encoding a reply
    /// while a caller's encode is still borrowed — allocation-free too.
    static ENCODE_POOL: RefCell<Vec<WireBuf>> = const { RefCell::new(Vec::new()) };
}

/// How many spare buffers a thread keeps. Deep re-entrancy beyond this
/// falls back to plain allocation.
const ENCODE_POOL_CAP: usize = 8;

/// Run `f` with a pooled thread-local [`WireBuf`], returning the buffer to
/// the pool afterwards. The pool only recycles allocations — it carries no
/// data between calls (`f` always sees a cleared buffer) — so pooled
/// encodes are byte-identical to fresh ones at any thread count, the same
/// argument as the thread-local NSEC3 hash cache.
pub fn with_pooled<R>(f: impl FnOnce(&mut WireBuf) -> R) -> R {
    let mut buf = ENCODE_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    buf.clear();
    let out = f(&mut buf);
    ENCODE_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < ENCODE_POOL_CAP {
            p.push(buf);
        }
    });
    out
}

/// Message writer with optional name compression.
///
/// The writer borrows its output buffer (and, when compressing, the
/// suffix map) so callers control allocation: stack `Vec`s, pooled
/// [`WireBuf`]s, or a caller-provided reply buffer all encode through the
/// same code. Compression offsets are relative to the buffer position at
/// construction (`base`), so a message can be appended after existing
/// bytes — e.g. a reserved 2-byte TCP length prefix — and still emit
/// message-relative pointers.
pub struct Writer<'a> {
    out: &'a mut Vec<u8>,
    /// Map from lowercased wire-suffix to message-relative offset, when
    /// compression is on.
    compress: Option<&'a mut HashMap<Vec<u8>, u16>>,
    base: usize,
}

impl<'a> Writer<'a> {
    /// A writer that never compresses (canonical forms, digests, signing
    /// buffers), appending to `out`.
    pub fn plain(out: &'a mut Vec<u8>) -> Self {
        let base = out.len();
        Writer {
            out,
            compress: None,
            base,
        }
    }

    /// A writer that compresses names (normal responses), appending to
    /// `out` and using `scratch`'s map for suffix tracking. The map is
    /// cleared: compression never spans messages.
    pub fn compressing(out: &'a mut Vec<u8>, scratch: &'a mut WireBuf) -> Self {
        scratch.map.clear();
        let base = out.len();
        Writer {
            out,
            compress: Some(&mut scratch.map),
            base,
        }
    }

    /// Current length relative to this writer's base (== next write
    /// offset, and == the final message length once done).
    pub fn len(&self) -> usize {
        self.out.len() - self.base
    }

    /// True if nothing has been written through this writer.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one octet.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.out.extend_from_slice(v);
    }

    /// Overwrite a previously-written big-endian u16 at a base-relative
    /// offset (e.g. RDLENGTH back-patching).
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        let at = self.base + at;
        self.out[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Append a domain name, compressing against earlier names when this
    /// writer was created with [`Writer::compressing`].
    pub fn name(&mut self, name: &Name) {
        let wire = name.wire_bytes();
        let Some(map) = self.compress.as_deref_mut() else {
            self.out.extend_from_slice(wire);
            self.out.push(0);
            return;
        };
        // One lowercased copy of the whole name on the stack; every
        // suffix of it is a map key, looked up by slice (no per-suffix
        // allocation — the old writer built an owned key per suffix).
        let mut key = [0u8; MAX_NAME_LEN];
        let key = &mut key[..wire.len()];
        for (dst, src) in key.iter_mut().zip(wire.iter()) {
            *dst = src.to_ascii_lowercase();
        }
        // Find the leftmost suffix already written (if any): everything
        // before it is emitted literally, the rest becomes a pointer.
        let mut pointer: Option<u16> = None;
        let mut literal_len = wire.len();
        let mut pos = 0usize;
        while pos < wire.len() {
            if let Some(&off) = map.get(&key[pos..]) {
                pointer = Some(off);
                literal_len = pos;
                break;
            }
            pos += 1 + wire[pos] as usize;
        }
        // Record the freshly-written suffixes for future compression, if
        // they fit in a 14-bit pointer. Labels land contiguously, so a
        // label at name-offset `p` sits at message-offset `here + p`.
        let here = self.out.len() - self.base;
        let mut pos = 0usize;
        while pos < literal_len {
            if here + pos < 0x4000 {
                map.insert(key[pos..].to_vec(), (here + pos) as u16);
            }
            pos += 1 + wire[pos] as usize;
        }
        self.out.extend_from_slice(&wire[..literal_len]);
        match pointer {
            Some(off) => self.u16(0xC000 | off),
            None => self.u8(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        let mut w = Writer::plain(&mut buf);
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdeadbeef);
        w.bytes(b"xyz");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.bytes(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err());
    }

    #[test]
    fn name_roundtrip_uncompressed() {
        let mut buf = Vec::new();
        let mut w = Writer::plain(&mut buf);
        w.name(&name("www.example.com"));
        assert_eq!(buf, b"\x03www\x07example\x03com\x00");
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), name("www.example.com"));
    }

    #[test]
    fn compression_shares_suffixes() {
        let mut buf = WireBuf::new();
        let mut w = buf.writer();
        w.name(&name("www.example.com"));
        let first_len = w.len();
        w.name(&name("mail.example.com"));
        let buf = buf.take();
        // Second name: 1+4 for "mail" + 2-byte pointer = 7 bytes.
        assert_eq!(buf.len(), first_len + 7);
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), name("www.example.com"));
        assert_eq!(r.name().unwrap(), name("mail.example.com"));
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut buf = WireBuf::new();
        let mut w = buf.writer();
        w.name(&name("EXAMPLE.com"));
        let first_len = w.len();
        w.name(&name("example.COM"));
        let buf = buf.take();
        assert_eq!(buf.len(), first_len + 2, "full name should be a pointer");
        let mut r = Reader::new(&buf);
        let _ = r.name().unwrap();
        // Decompressed second name takes the case of the *first* occurrence,
        // which is fine: names compare case-insensitively.
        assert_eq!(r.name().unwrap(), name("example.com"));
    }

    #[test]
    fn whole_name_pointer() {
        let mut buf = WireBuf::new();
        let mut w = buf.writer();
        w.name(&name("example.com"));
        w.name(&name("example.com"));
        let buf = buf.take();
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), name("example.com"));
        assert_eq!(r.name().unwrap(), name("example.com"));
    }

    #[test]
    fn compression_offsets_are_base_relative() {
        // Appending after existing bytes (a 2-byte frame prefix, say) must
        // emit pointers relative to the message start, not the buffer start.
        let mut plainbuf = Vec::new();
        let mut w = Writer::plain(&mut plainbuf);
        w.name(&name("a.example.com"));
        w.name(&name("b.example.com"));

        let mut out = vec![0u8, 0u8]; // reserved prefix
        let mut scratch = WireBuf::new();
        let mut w = Writer::compressing(&mut out, &mut scratch);
        w.name(&name("a.example.com"));
        w.name(&name("b.example.com"));
        assert!(w.len() < plainbuf.len(), "second name should compress");
        // Pointers resolve against the *message*, i.e. after the prefix.
        let mut r = Reader::at(&out[2..], 0);
        assert_eq!(r.name().unwrap(), name("a.example.com"));
        assert_eq!(r.name().unwrap(), name("b.example.com"));
    }

    #[test]
    fn pooled_buffers_are_cleared_between_uses() {
        let first = with_pooled(|b| {
            b.writer().name(&name("example.com"));
            b.take()
        });
        let second = with_pooled(|b| {
            assert!(b.is_empty(), "pooled buffer must arrive empty");
            b.writer().name(&name("example.com"));
            b.take()
        });
        assert_eq!(first, second);
    }

    #[test]
    fn rejects_forward_pointer_loop() {
        // A name that points at itself.
        let buf = [0xC0u8, 0x00];
        let mut r = Reader::new(&buf);
        assert!(r.name().is_err());
    }

    #[test]
    fn rejects_reserved_label_type() {
        let buf = [0x80u8, 0x00];
        let mut r = Reader::new(&buf);
        assert!(r.name().is_err());
    }

    #[test]
    fn root_name_roundtrip() {
        let mut buf = Vec::new();
        let mut w = Writer::plain(&mut buf);
        w.name(&Name::root());
        assert_eq!(buf, b"\x00");
        let mut r = Reader::new(&buf);
        assert!(r.name().unwrap().is_root());
    }

    #[test]
    fn patch_u16_works() {
        let mut buf = Vec::new();
        let mut w = Writer::plain(&mut buf);
        w.u16(0);
        w.bytes(b"abc");
        w.patch_u16(0, 3);
        assert_eq!(buf, b"\x00\x03abc");
    }
}
