//! Wire-format reader/writer with DNS name compression support
//! (RFC 1035 §4.1.4).

use std::collections::HashMap;

use crate::name::{Name, MAX_NAME_LEN};
use crate::WireError;

/// Cursor over a received message buffer.
///
/// Name decompression needs random access to the whole message, so the
/// reader keeps the full slice and a position rather than consuming a slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a message buffer.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Read one octet.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes([self.u8()?, self.u8()?]))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a possibly-compressed domain name.
    ///
    /// Compression pointers must point strictly backwards, which also bounds
    /// the number of jumps and defeats pointer loops.
    pub fn name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut jumps = 0usize;
        let mut pos = self.pos;
        let mut end_of_name: Option<usize> = None; // position after first pointer
        let mut total_len = 1usize;
        loop {
            let len = *self.data.get(pos).ok_or(WireError::Truncated)?;
            match len {
                0 => {
                    pos += 1;
                    break;
                }
                1..=63 => {
                    let len = len as usize;
                    let start = pos + 1;
                    let label = self
                        .data
                        .get(start..start + len)
                        .ok_or(WireError::Truncated)?;
                    total_len += 1 + len;
                    if total_len > MAX_NAME_LEN {
                        return Err(WireError::BadName("compressed name too long"));
                    }
                    labels.push(label.to_vec());
                    pos = start + len;
                }
                0xC0..=0xFF => {
                    let lo = *self.data.get(pos + 1).ok_or(WireError::Truncated)?;
                    let target = ((len as usize & 0x3f) << 8) | lo as usize;
                    if target >= pos {
                        return Err(WireError::BadName("forward compression pointer"));
                    }
                    if end_of_name.is_none() {
                        end_of_name = Some(pos + 2);
                    }
                    jumps += 1;
                    if jumps > 127 {
                        return Err(WireError::BadName("too many compression pointers"));
                    }
                    pos = target;
                }
                _ => return Err(WireError::BadName("reserved label type")),
            }
        }
        self.pos = end_of_name.unwrap_or(pos);
        Name::from_labels(labels)
    }
}

/// Message writer with optional name compression.
pub struct Writer {
    buf: Vec<u8>,
    /// Map from lowercased wire-suffix to offset, when compression is on.
    compress: Option<HashMap<Vec<u8>, u16>>,
}

impl Writer {
    /// A writer that compresses names (normal responses).
    pub fn compressing() -> Self {
        Writer {
            buf: Vec::with_capacity(512),
            compress: Some(HashMap::new()),
        }
    }

    /// A writer that never compresses (canonical forms, digests, signing
    /// buffers).
    pub fn plain() -> Self {
        Writer {
            buf: Vec::with_capacity(512),
            compress: None,
        }
    }

    /// Current length (== next write offset).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one octet.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrite a previously-written big-endian u16 (e.g. RDLENGTH
    /// back-patching).
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Append a domain name, compressing against earlier names when this
    /// writer was created with [`Writer::compressing`].
    pub fn name(&mut self, name: &Name) {
        let labels: Vec<&[u8]> = name.labels().collect();
        for i in 0..labels.len() {
            if let Some(map) = &self.compress {
                let suffix_key = suffix_key(&labels[i..]);
                if let Some(&off) = map.get(&suffix_key) {
                    self.u16(0xC000 | off);
                    return;
                }
            }
            // Record this suffix for future compression, if it fits in a
            // 14-bit pointer.
            let here = self.buf.len();
            if let Some(map) = &mut self.compress {
                if here < 0x4000 {
                    map.insert(suffix_key(&labels[i..]), here as u16);
                }
            }
            self.u8(labels[i].len() as u8);
            self.bytes(labels[i]);
        }
        self.u8(0);
    }

    /// Finish and take the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Case-folded key identifying a label-suffix for the compression map.
fn suffix_key(labels: &[&[u8]]) -> Vec<u8> {
    let mut key = Vec::new();
    for l in labels {
        key.push(l.len() as u8);
        key.extend(l.iter().map(|b| b.to_ascii_lowercase()));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::plain();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdeadbeef);
        w.bytes(b"xyz");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.bytes(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err());
    }

    #[test]
    fn name_roundtrip_uncompressed() {
        let mut w = Writer::plain();
        w.name(&name("www.example.com"));
        let buf = w.finish();
        assert_eq!(buf, b"\x03www\x07example\x03com\x00");
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), name("www.example.com"));
    }

    #[test]
    fn compression_shares_suffixes() {
        let mut w = Writer::compressing();
        w.name(&name("www.example.com"));
        let first_len = w.len();
        w.name(&name("mail.example.com"));
        let buf = w.finish();
        // Second name: 1+4 for "mail" + 2-byte pointer = 7 bytes.
        assert_eq!(buf.len(), first_len + 7);
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), name("www.example.com"));
        assert_eq!(r.name().unwrap(), name("mail.example.com"));
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut w = Writer::compressing();
        w.name(&name("EXAMPLE.com"));
        let first_len = w.len();
        w.name(&name("example.COM"));
        let buf = w.finish();
        assert_eq!(buf.len(), first_len + 2, "full name should be a pointer");
        let mut r = Reader::new(&buf);
        let _ = r.name().unwrap();
        // Decompressed second name takes the case of the *first* occurrence,
        // which is fine: names compare case-insensitively.
        assert_eq!(r.name().unwrap(), name("example.com"));
    }

    #[test]
    fn whole_name_pointer() {
        let mut w = Writer::compressing();
        w.name(&name("example.com"));
        w.name(&name("example.com"));
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), name("example.com"));
        assert_eq!(r.name().unwrap(), name("example.com"));
    }

    #[test]
    fn rejects_forward_pointer_loop() {
        // A name that points at itself.
        let buf = [0xC0u8, 0x00];
        let mut r = Reader::new(&buf);
        assert!(r.name().is_err());
    }

    #[test]
    fn rejects_reserved_label_type() {
        let buf = [0x80u8, 0x00];
        let mut r = Reader::new(&buf);
        assert!(r.name().is_err());
    }

    #[test]
    fn root_name_roundtrip() {
        let mut w = Writer::plain();
        w.name(&Name::root());
        let buf = w.finish();
        assert_eq!(buf, b"\x00");
        let mut r = Reader::new(&buf);
        assert!(r.name().unwrap().is_root());
    }

    #[test]
    fn patch_u16_works() {
        let mut w = Writer::plain();
        w.u16(0);
        w.bytes(b"abc");
        w.patch_u16(0, 3);
        let buf = w.finish();
        assert_eq!(buf, b"\x00\x03abc");
    }
}
