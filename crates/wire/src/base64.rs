//! Base 64 (RFC 4648 §4), used for the presentation format of DNSKEY public
//! keys and RRSIG signatures in zone files.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as padded base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

fn val(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a') as u32 + 26),
        b'0'..=b'9' => Some((c - b'0') as u32 + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode padded or unpadded base64, ignoring ASCII whitespace (zone files
/// wrap long keys across lines).
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(s.len() * 3 / 4);
    let mut buffer: u32 = 0;
    let mut bits: u32 = 0;
    let mut padding = 0usize;
    for c in s.bytes() {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == b'=' {
            padding += 1;
            continue;
        }
        if padding > 0 {
            return None; // data after padding
        }
        let v = val(c)?;
        buffer = (buffer << 6) | v;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push(((buffer >> bits) & 0xff) as u8);
        }
    }
    if padding > 2 {
        return None;
    }
    // Leftover bits must be zero.
    if bits > 0 && (buffer & ((1 << bits) - 1)) != 0 {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("Zg").unwrap(), b"f"); // unpadded accepted
        assert_eq!(decode("Zm9v\n  YmFy").unwrap(), b"foobar"); // whitespace
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("Z!").is_none());
        assert!(decode("====").is_none());
        assert!(decode("Zg==Zg").is_none());
    }

    #[test]
    fn roundtrip_all_lengths() {
        for len in 0..100 {
            let data: Vec<u8> = (0..len as u8)
                .map(|i| i.wrapping_mul(73).wrapping_add(5))
                .collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }
}
