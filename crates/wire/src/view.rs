//! Lazy, borrowed message views: parse the header and question eagerly,
//! walk the record sections on demand without allocating.
//!
//! [`Message::decode`](crate::Message::decode) materializes every record
//! — owner `Name`s, typed `RData`, `Vec`s per section — even when the
//! caller only wants the header bits or one record type. A
//! [`MessageView`] borrows the packet instead: records come back as
//! [`RecordView`]s (offsets into the packet, fields read in place,
//! compression resolved against the packet on demand), and nothing is
//! allocated until the caller asks for an owned value.
//!
//! Two strictness levels matter:
//!
//! * [`MessageView::parse`] validates the header and question section
//!   only. Record iteration validates structure (name well-formedness,
//!   RDATA bounds) as it goes. This is the cheap path for peeking at
//!   flags, counts, or a single section.
//! * [`MessageView::validate`] additionally decodes every RDATA and the
//!   OPT record with exactly the checks `Message::decode` applies, so
//!   accept/reject decisions made on a view are *identical* to decisions
//!   made on a full decode — load-bearing for the authoritative server,
//!   whose drop-or-answer behaviour under corrupted input is pinned by
//!   the driver-equivalence tests.

use crate::buf::Reader;
use crate::edns::Edns;
use crate::message::{Flags, Message, Question};
use crate::name::{Name, MAX_NAME_LEN};
use crate::rdata::RData;
use crate::record::Record;
use crate::rrtype::{Class, Opcode, Rcode, RrType};
use crate::WireError;

/// Outcome of skipping over one (possibly compressed) name in place.
struct NameSpan {
    /// Offset just past the name as it appears here (after the first
    /// pointer, or after the root octet).
    end: usize,
    /// Whether the name was stored inline with no compression pointers.
    pointer_free: bool,
}

/// Walk a name starting at `pos` without materializing labels, applying
/// exactly the validity rules of [`Reader::name`]: truncation, reserved
/// label types, strictly-backward pointers, the 127-jump bound, and the
/// 255-octet length cap (the same cap `Name::from_labels` re-checks on
/// the decode path — so a name this walk accepts is a name `Reader::name`
/// accepts, and vice versa).
fn skip_name(packet: &[u8], start: usize) -> Result<NameSpan, WireError> {
    let mut jumps = 0usize;
    let mut pos = start;
    let mut end_of_name: Option<usize> = None;
    let mut total_len = 1usize;
    loop {
        let len = *packet.get(pos).ok_or(WireError::Truncated)?;
        match len {
            0 => {
                pos += 1;
                break;
            }
            1..=63 => {
                let len = len as usize;
                let start = pos + 1;
                if packet.get(start..start + len).is_none() {
                    return Err(WireError::Truncated);
                }
                total_len += 1 + len;
                if total_len > MAX_NAME_LEN {
                    return Err(WireError::BadName("compressed name too long"));
                }
                pos = start + len;
            }
            0xC0..=0xFF => {
                let lo = *packet.get(pos + 1).ok_or(WireError::Truncated)?;
                let target = ((len as usize & 0x3f) << 8) | lo as usize;
                if target >= pos {
                    return Err(WireError::BadName("forward compression pointer"));
                }
                if end_of_name.is_none() {
                    end_of_name = Some(pos + 2);
                }
                jumps += 1;
                if jumps > 127 {
                    return Err(WireError::BadName("too many compression pointers"));
                }
                pos = target;
            }
            _ => return Err(WireError::BadName("reserved label type")),
        }
    }
    Ok(NameSpan {
        end: end_of_name.unwrap_or(pos),
        pointer_free: jumps == 0,
    })
}

/// The first question of a message, borrowed from the packet.
#[derive(Clone, Copy)]
pub struct QuestionView<'a> {
    packet: &'a [u8],
    name_off: usize,
    /// Offset just past qclass.
    end: usize,
    pointer_free: bool,
    qtype: RrType,
    qclass: Class,
}

impl<'a> QuestionView<'a> {
    /// Queried type.
    pub fn qtype(&self) -> RrType {
        self.qtype
    }

    /// Queried class.
    pub fn qclass(&self) -> Class {
        self.qclass
    }

    /// Decode the queried name (allocates the owned `Name`).
    pub fn qname(&self) -> Result<Name, WireError> {
        Reader::at(self.packet, self.name_off).name()
    }

    /// The literal wire bytes of this question entry — name, qtype and
    /// qclass exactly as the querier spelled them — when the name is
    /// stored inline without compression pointers (always, for queries
    /// our encoder produced). This is what lets an answer template echo
    /// the querier's 0x20-randomized casing with a plain copy.
    pub fn raw_entry(&self) -> Option<&'a [u8]> {
        self.pointer_free
            .then(|| &self.packet[self.name_off..self.end])
    }
}

/// Which message section a record came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Section {
    /// Answer section.
    Answer,
    /// Authority section.
    Authority,
    /// Additional section.
    Additional,
}

/// One resource record, borrowed from the packet: fixed fields read
/// eagerly, owner name and RDATA left in place until asked for.
#[derive(Clone, Copy)]
pub struct RecordView<'a> {
    packet: &'a [u8],
    name_off: usize,
    rtype: RrType,
    /// Raw class field (the UDP payload size, for OPT).
    class: u16,
    /// Raw TTL field (extended RCODE/flags, for OPT).
    ttl: u32,
    rdata_off: usize,
    rdata_len: usize,
}

impl<'a> RecordView<'a> {
    /// Record type.
    pub fn rrtype(&self) -> RrType {
        self.rtype
    }

    /// Raw class field (OPT repurposes this as the UDP payload size).
    pub fn class(&self) -> Class {
        Class(self.class)
    }

    /// Raw TTL field (OPT repurposes this as extended RCODE + flags).
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// Decode the owner name (allocates the owned `Name`).
    pub fn name(&self) -> Result<Name, WireError> {
        Reader::at(self.packet, self.name_off).name()
    }

    /// The raw RDATA bytes in place. Names inside may be compressed;
    /// use [`RecordView::to_record`] for typed access.
    pub fn rdata_bytes(&self) -> &'a [u8] {
        &self.packet[self.rdata_off..self.rdata_off + self.rdata_len]
    }

    /// Materialize an owned [`Record`], decoding the RDATA with the same
    /// rules as `Message::decode`. Not meaningful for OPT pseudo-records
    /// (those decode via [`MessageView::edns`]).
    pub fn to_record(&self) -> Result<Record, WireError> {
        let name = self.name()?;
        let mut r = Reader::at(self.packet, self.rdata_off);
        let rdata = RData::decode(&mut r, self.rtype, self.rdata_len)?;
        Ok(Record {
            name,
            class: Class(self.class),
            ttl: self.ttl,
            rdata,
        })
    }
}

/// Iterator over the record sections of a [`MessageView`], walking the
/// packet in place. Yields `Err` once and then stops if the packet's
/// record structure is malformed.
pub struct RecordIter<'a> {
    packet: &'a [u8],
    pos: usize,
    /// Records left in [answer, authority, additional].
    remaining: [u16; 3],
    section: usize,
    failed: bool,
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = Result<(Section, RecordView<'a>), WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        while self.section < 3 && self.remaining[self.section] == 0 {
            self.section += 1;
        }
        if self.section == 3 {
            return None;
        }
        self.remaining[self.section] -= 1;
        let section = match self.section {
            0 => Section::Answer,
            1 => Section::Authority,
            _ => Section::Additional,
        };
        match parse_record(self.packet, self.pos) {
            Ok((view, end)) => {
                self.pos = end;
                Some(Ok((section, view)))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Parse one record's envelope at `pos`: validated owner name, fixed
/// fields, bounds-checked RDATA span. Returns the view and the offset
/// just past the record.
fn parse_record(packet: &[u8], pos: usize) -> Result<(RecordView<'_>, usize), WireError> {
    let span = skip_name(packet, pos)?;
    let mut r = Reader::at(packet, span.end);
    let rtype = RrType(r.u16()?);
    let class = r.u16()?;
    let ttl = r.u32()?;
    let rdata_len = r.u16()? as usize;
    let rdata_off = r.pos();
    if packet.len() < rdata_off + rdata_len {
        return Err(WireError::Truncated);
    }
    Ok((
        RecordView {
            packet,
            name_off: pos,
            rtype,
            class,
            ttl,
            rdata_off,
            rdata_len,
        },
        rdata_off + rdata_len,
    ))
}

/// A lazily-parsed DNS message borrowed from its packet.
pub struct MessageView<'a> {
    packet: &'a [u8],
    id: u16,
    flags_word: u16,
    qdcount: u16,
    ancount: u16,
    nscount: u16,
    arcount: u16,
    question: Option<QuestionView<'a>>,
    /// Offset where the answer section starts.
    body_off: usize,
}

impl<'a> MessageView<'a> {
    /// Parse the header and question section; record sections are only
    /// structure-checked when iterated. Fails exactly when
    /// `Message::decode` would fail on the header or questions.
    pub fn parse(packet: &'a [u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(packet);
        let id = r.u16()?;
        let flags_word = r.u16()?;
        let qdcount = r.u16()?;
        let ancount = r.u16()?;
        let nscount = r.u16()?;
        let arcount = r.u16()?;
        let mut question = None;
        let mut pos = r.pos();
        for i in 0..qdcount {
            let span = skip_name(packet, pos)?;
            let mut f = Reader::at(packet, span.end);
            let qtype = RrType(f.u16()?);
            let qclass = Class(f.u16()?);
            if i == 0 {
                question = Some(QuestionView {
                    packet,
                    name_off: pos,
                    end: f.pos(),
                    pointer_free: span.pointer_free,
                    qtype,
                    qclass,
                });
            }
            pos = f.pos();
        }
        Ok(MessageView {
            packet,
            id,
            flags_word,
            qdcount,
            ancount,
            nscount,
            arcount,
            question,
            body_off: pos,
        })
    }

    /// Transaction id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Decomposed header flags.
    pub fn flags(&self) -> Flags {
        let w = self.flags_word;
        Flags {
            qr: w & 0x8000 != 0,
            opcode: Opcode::from_u8(((w >> 11) & 0x0f) as u8),
            aa: w & 0x0400 != 0,
            tc: w & 0x0200 != 0,
            rd: w & 0x0100 != 0,
            ra: w & 0x0080 != 0,
            ad: w & 0x0020 != 0,
            cd: w & 0x0010 != 0,
        }
    }

    /// Number of questions.
    pub fn qdcount(&self) -> u16 {
        self.qdcount
    }

    /// Number of answer records.
    pub fn ancount(&self) -> u16 {
        self.ancount
    }

    /// Number of authority records.
    pub fn nscount(&self) -> u16 {
        self.nscount
    }

    /// Number of additional records (including any OPT).
    pub fn arcount(&self) -> u16 {
        self.arcount
    }

    /// The first question, if present.
    pub fn question(&self) -> Option<&QuestionView<'a>> {
        self.question.as_ref()
    }

    /// Iterate all records across answer/authority/additional, lazily.
    pub fn records(&self) -> RecordIter<'a> {
        RecordIter {
            packet: self.packet,
            pos: self.body_off,
            remaining: [self.ancount, self.nscount, self.arcount],
            section: 0,
            failed: false,
        }
    }

    /// Walk the additional section for an OPT record and decode it.
    /// Returns `Ok(None)` for a message without EDNS; structural errors
    /// on the walk surface as `Err`.
    pub fn edns(&self) -> Result<Option<Edns>, WireError> {
        for item in self.records() {
            let (section, rec) = item?;
            if section == Section::Additional && rec.rrtype() == RrType::OPT {
                let mut r = Reader::at(self.packet, rec.rdata_off - 2);
                return Ok(Some(Edns::decode_body(&mut r, rec.class, rec.ttl)?));
            }
        }
        Ok(None)
    }

    /// The full 12-bit response code; the high bits require finding the
    /// OPT record, so this walks the sections.
    pub fn rcode(&self) -> Result<Rcode, WireError> {
        let hi = self.edns()?.map(|e| e.extended_rcode_hi).unwrap_or(0) as u16;
        Ok(Rcode::from_u16((hi << 4) | (self.flags_word & 0x000f)))
    }

    /// Fully validate the message with exactly the rules of
    /// `Message::decode` — every owner name, every RDATA, OPT placement
    /// (root owner, no duplicate) — without materializing records.
    /// Returns the decoded EDNS state, the only owned piece. A packet
    /// passes `validate` if and only if `Message::decode` accepts it.
    pub fn validate(&self) -> Result<Option<Edns>, WireError> {
        let mut edns: Option<Edns> = None;
        for item in self.records() {
            let (_, rec) = item?;
            if rec.rrtype() == RrType::OPT {
                if !rec.name()?.is_root() {
                    return Err(WireError::BadRdata("OPT owner must be root"));
                }
                if edns.is_some() {
                    return Err(WireError::BadRdata("duplicate OPT record"));
                }
                let mut r = Reader::at(self.packet, rec.rdata_off - 2);
                edns = Some(Edns::decode_body(&mut r, rec.class, rec.ttl)?);
            } else {
                rec.name()?;
                let mut r = Reader::at(self.packet, rec.rdata_off);
                RData::decode(&mut r, rec.rrtype(), rec.rdata_len)?;
            }
        }
        Ok(edns)
    }

    /// Materialize the whole message. Produces exactly what
    /// `Message::decode` on the same packet produces (the CI parity gate
    /// asserts this over a generated corpus).
    pub fn to_message(&self) -> Result<Message, WireError> {
        let mut questions = Vec::with_capacity(self.qdcount as usize);
        let mut pos = 12;
        for _ in 0..self.qdcount {
            let mut r = Reader::at(self.packet, pos);
            let qname = r.name()?;
            let qtype = RrType(r.u16()?);
            let qclass = Class(r.u16()?);
            questions.push(Question {
                qname,
                qtype,
                qclass,
            });
            pos = r.pos();
        }
        let mut edns: Option<Edns> = None;
        let mut answers = Vec::with_capacity(self.ancount as usize);
        let mut authorities = Vec::with_capacity(self.nscount as usize);
        let mut additionals = Vec::new();
        for item in self.records() {
            let (section, rec) = item?;
            if rec.rrtype() == RrType::OPT {
                if !rec.name()?.is_root() {
                    return Err(WireError::BadRdata("OPT owner must be root"));
                }
                if edns.is_some() {
                    return Err(WireError::BadRdata("duplicate OPT record"));
                }
                let mut r = Reader::at(self.packet, rec.rdata_off - 2);
                edns = Some(Edns::decode_body(&mut r, rec.class, rec.ttl)?);
            } else {
                let out = match section {
                    Section::Answer => &mut answers,
                    Section::Authority => &mut authorities,
                    Section::Additional => &mut additionals,
                };
                out.push(rec.to_record()?);
            }
        }
        let rcode_lo = self.flags_word & 0x000f;
        let rcode_hi = edns.as_ref().map(|e| e.extended_rcode_hi).unwrap_or(0) as u16;
        Ok(Message {
            id: self.id,
            flags: self.flags(),
            rcode: Rcode::from_u16((rcode_hi << 4) | rcode_lo),
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use std::net::Ipv4Addr;

    fn sample_response() -> Message {
        let q = Message::query(0x77aa, name("Host.Example.COM"), RrType::A);
        let mut resp = Message::response_to(&q);
        resp.flags.aa = true;
        resp.rcode = Rcode::NoError;
        resp.answers.push(Record::new(
            name("host.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        resp.authorities.push(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ));
        resp.additionals.push(Record::new(
            name("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        resp
    }

    #[test]
    fn view_matches_decode_on_sample() {
        let wire = sample_response().encode();
        let view = MessageView::parse(&wire).unwrap();
        let full = Message::decode(&wire).unwrap();
        assert_eq!(view.id(), full.id);
        assert_eq!(view.flags(), full.flags);
        assert_eq!(
            view.question().unwrap().qname().unwrap(),
            full.question().unwrap().qname
        );
        assert_eq!(view.rcode().unwrap(), full.rcode);
        assert_eq!(view.edns().unwrap(), full.edns);
        assert_eq!(view.to_message().unwrap(), full);
        assert_eq!(
            view.records().count(),
            full.answers.len()
                + full.authorities.len()
                + full.additionals.len()
                + usize::from(full.edns.is_some())
        );
    }

    #[test]
    fn lazy_iteration_resolves_compressed_owners() {
        let wire = sample_response().encode();
        let view = MessageView::parse(&wire).unwrap();
        let owners: Vec<Name> = view
            .records()
            .map(|r| r.unwrap().1.name().unwrap())
            .collect();
        assert_eq!(owners[0], name("host.example.com"));
        assert_eq!(owners[1], name("example.com"));
        assert_eq!(owners[2], name("ns1.example.com"));
    }

    #[test]
    fn question_raw_entry_preserves_case() {
        let q = Message::query(9, name("WwW.ExAmPlE.cOm"), RrType::A);
        let wire = q.encode();
        let view = MessageView::parse(&wire).unwrap();
        let raw = view.question().unwrap().raw_entry().unwrap();
        assert_eq!(&raw[..17], b"\x03WwW\x07ExAmPlE\x03cOm\x00");
        assert_eq!(raw.len(), 17 + 4, "name + qtype + qclass");
    }

    #[test]
    fn validate_agrees_with_decode_on_truncations() {
        let wire = sample_response().encode();
        for cut in 0..wire.len() {
            let decode_ok = Message::decode(&wire[..cut]).is_ok();
            let view_ok = MessageView::parse(&wire[..cut])
                .and_then(|v| v.validate())
                .is_ok();
            assert_eq!(decode_ok, view_ok, "cut {cut}");
        }
    }

    #[test]
    fn validate_rejects_duplicate_opt() {
        let q = Message::query(1, name("x."), RrType::A);
        let mut buf = q.encode();
        buf.extend_from_slice(&[0x00, 0x00, 41, 0x04, 0xD0, 0, 0, 0, 0, 0, 0]);
        let arcount = u16::from_be_bytes([buf[10], buf[11]]) + 1;
        buf[10..12].copy_from_slice(&arcount.to_be_bytes());
        assert!(Message::decode(&buf).is_err());
        let view = MessageView::parse(&buf).unwrap();
        assert!(view.validate().is_err());
        assert!(view.to_message().is_err());
    }
}
