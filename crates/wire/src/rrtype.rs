//! RR types, classes, opcodes, and response codes.

use std::fmt;

/// A resource-record type (RFC 1035 §3.2.2 and successors).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RrType(pub u16);

#[allow(missing_docs)]
impl RrType {
    pub const A: RrType = RrType(1);
    pub const NS: RrType = RrType(2);
    pub const CNAME: RrType = RrType(5);
    pub const SOA: RrType = RrType(6);
    pub const PTR: RrType = RrType(12);
    pub const MX: RrType = RrType(15);
    pub const TXT: RrType = RrType(16);
    pub const AAAA: RrType = RrType(28);
    pub const OPT: RrType = RrType(41);
    pub const DS: RrType = RrType(43);
    pub const RRSIG: RrType = RrType(46);
    pub const NSEC: RrType = RrType(47);
    pub const DNSKEY: RrType = RrType(48);
    pub const NSEC3: RrType = RrType(50);
    pub const NSEC3PARAM: RrType = RrType(51);
    /// Pseudo-type requesting a full zone transfer.
    pub const AXFR: RrType = RrType(252);
    /// Pseudo-type for queries requesting any type.
    pub const ANY: RrType = RrType(255);

    /// Mnemonic if known, else `TYPE{n}` (RFC 3597 presentation).
    pub fn mnemonic(self) -> String {
        match self {
            RrType::A => "A".into(),
            RrType::NS => "NS".into(),
            RrType::CNAME => "CNAME".into(),
            RrType::SOA => "SOA".into(),
            RrType::PTR => "PTR".into(),
            RrType::MX => "MX".into(),
            RrType::TXT => "TXT".into(),
            RrType::AAAA => "AAAA".into(),
            RrType::OPT => "OPT".into(),
            RrType::AXFR => "AXFR".into(),
            RrType::DS => "DS".into(),
            RrType::RRSIG => "RRSIG".into(),
            RrType::NSEC => "NSEC".into(),
            RrType::DNSKEY => "DNSKEY".into(),
            RrType::NSEC3 => "NSEC3".into(),
            RrType::NSEC3PARAM => "NSEC3PARAM".into(),
            RrType::ANY => "ANY".into(),
            RrType(n) => format!("TYPE{n}"),
        }
    }

    /// Parse a mnemonic or `TYPE{n}` string.
    pub fn from_mnemonic(s: &str) -> Option<RrType> {
        let t = match s.to_ascii_uppercase().as_str() {
            "A" => RrType::A,
            "NS" => RrType::NS,
            "CNAME" => RrType::CNAME,
            "SOA" => RrType::SOA,
            "PTR" => RrType::PTR,
            "MX" => RrType::MX,
            "TXT" => RrType::TXT,
            "AAAA" => RrType::AAAA,
            "OPT" => RrType::OPT,
            "AXFR" => RrType::AXFR,
            "DS" => RrType::DS,
            "RRSIG" => RrType::RRSIG,
            "NSEC" => RrType::NSEC,
            "DNSKEY" => RrType::DNSKEY,
            "NSEC3" => RrType::NSEC3,
            "NSEC3PARAM" => RrType::NSEC3PARAM,
            "ANY" => RrType::ANY,
            other => {
                let n = other.strip_prefix("TYPE")?.parse().ok()?;
                RrType(n)
            }
        };
        Some(t)
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// DNS class. Only IN is used in practice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Class(pub u16);

#[allow(missing_docs)]
impl Class {
    pub const IN: Class = Class(1);
    pub const CH: Class = Class(3);
    pub const ANY: Class = Class(255);
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Class::IN => f.write_str("IN"),
            Class::CH => f.write_str("CH"),
            Class::ANY => f.write_str("ANY"),
            Class(n) => write!(f, "CLASS{n}"),
        }
    }
}

/// Message opcode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Other/unsupported opcode, kept verbatim.
    Other(u8),
}

impl Opcode {
    /// 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(n) => n & 0x0f,
        }
    }

    /// From the 4-bit wire value.
    pub fn from_u8(n: u8) -> Opcode {
        match n & 0x0f {
            0 => Opcode::Query,
            other => Opcode::Other(other),
        }
    }
}

/// Response code, including values only reachable via EDNS extended RCODE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Format error.
    FormErr,
    /// Server failure — the blanket failure code DNSSEC validation problems
    /// surface as, and the code RFC 9276 items 8/9 lead to.
    ServFail,
    /// Name does not exist (authoritative denial).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
    /// Any other value.
    Other(u16),
}

impl Rcode {
    /// Full 12-bit value (low 4 bits in the header, high 8 via EDNS).
    pub fn to_u16(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(n) => n,
        }
    }

    /// From the full 12-bit value.
    pub fn from_u16(n: u16) -> Rcode {
        match n {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => f.write_str("NOERROR"),
            Rcode::FormErr => f.write_str("FORMERR"),
            Rcode::ServFail => f.write_str("SERVFAIL"),
            Rcode::NxDomain => f.write_str("NXDOMAIN"),
            Rcode::NotImp => f.write_str("NOTIMP"),
            Rcode::Refused => f.write_str("REFUSED"),
            Rcode::Other(n) => write!(f, "RCODE{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for t in [
            RrType::A,
            RrType::NS,
            RrType::SOA,
            RrType::DNSKEY,
            RrType::NSEC3,
            RrType::NSEC3PARAM,
            RrType::RRSIG,
            RrType(4242),
        ] {
            assert_eq!(RrType::from_mnemonic(&t.mnemonic()).unwrap(), t);
        }
        assert_eq!(RrType::from_mnemonic("nsec3").unwrap(), RrType::NSEC3);
        assert!(RrType::from_mnemonic("BOGUS").is_none());
    }

    #[test]
    fn rcode_roundtrip() {
        for n in [0u16, 1, 2, 3, 4, 5, 16, 23, 4095] {
            assert_eq!(Rcode::from_u16(n).to_u16(), n);
        }
        assert_eq!(Rcode::ServFail.to_string(), "SERVFAIL");
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
    }

    #[test]
    fn opcode_roundtrip() {
        assert_eq!(Opcode::from_u8(0), Opcode::Query);
        assert_eq!(Opcode::from_u8(5), Opcode::Other(5));
        assert_eq!(Opcode::Other(5).to_u8(), 5);
    }
}
