//! NSEC/NSEC3 type bitmaps (RFC 4034 §4.1.2, RFC 5155 §3.2.1).
//!
//! A type bitmap encodes the set of RR types present at a name as a sequence
//! of `(window, length, bitmap)` blocks. Windows with no set bits are
//! omitted, and each window's bitmap is truncated to the last non-zero byte.

use crate::buf::{Reader, Writer};
use crate::rrtype::RrType;
use crate::WireError;

/// An ordered set of RR types as carried in NSEC/NSEC3 records.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TypeBitmap {
    /// Sorted, deduplicated type values.
    types: Vec<u16>,
}

impl TypeBitmap {
    /// Empty bitmap (legal in NSEC3 records for empty non-terminals and
    /// opt-out side effects).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from any iterator of types.
    pub fn from_types<I: IntoIterator<Item = RrType>>(iter: I) -> Self {
        let mut types: Vec<u16> = iter.into_iter().map(|t| t.0).collect();
        types.sort_unstable();
        types.dedup();
        TypeBitmap { types }
    }

    /// Insert a type.
    pub fn insert(&mut self, t: RrType) {
        if let Err(at) = self.types.binary_search(&t.0) {
            self.types.insert(at, t.0);
        }
    }

    /// Membership test.
    pub fn contains(&self, t: RrType) -> bool {
        self.types.binary_search(&t.0).is_ok()
    }

    /// Number of types present.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if no types are present.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The types, ascending.
    pub fn iter(&self) -> impl Iterator<Item = RrType> + '_ {
        self.types.iter().map(|&t| RrType(t))
    }

    /// Wire-encode into `w`.
    pub fn encode(&self, w: &mut Writer) {
        let mut i = 0;
        while i < self.types.len() {
            let window = (self.types[i] >> 8) as u8;
            let mut bitmap = [0u8; 32];
            let mut max_byte = 0usize;
            while i < self.types.len() && (self.types[i] >> 8) as u8 == window {
                let low = (self.types[i] & 0xff) as usize;
                bitmap[low / 8] |= 0x80 >> (low % 8);
                max_byte = low / 8;
                i += 1;
            }
            w.u8(window);
            w.u8((max_byte + 1) as u8);
            w.bytes(&bitmap[..=max_byte]);
        }
    }

    /// Decode from `r`, consuming exactly `len` bytes.
    pub fn decode(r: &mut Reader<'_>, len: usize) -> Result<Self, WireError> {
        let end = r.pos() + len;
        let mut types = Vec::new();
        let mut last_window: Option<u8> = None;
        while r.pos() < end {
            let window = r.u8()?;
            if let Some(lw) = last_window {
                if window <= lw {
                    return Err(WireError::BadRdata("type bitmap windows out of order"));
                }
            }
            last_window = Some(window);
            let blen = r.u8()? as usize;
            if blen == 0 || blen > 32 {
                return Err(WireError::BadRdata("type bitmap block length out of range"));
            }
            if r.pos() + blen > end {
                return Err(WireError::Truncated);
            }
            let block = r.bytes(blen)?;
            for (byte_idx, &byte) in block.iter().enumerate() {
                for bit in 0..8 {
                    if byte & (0x80 >> bit) != 0 {
                        types.push(((window as u16) << 8) | ((byte_idx * 8 + bit) as u16));
                    }
                }
            }
        }
        if r.pos() != end {
            return Err(WireError::BadRdata("type bitmap overrun"));
        }
        Ok(TypeBitmap { types })
    }
}

impl FromIterator<RrType> for TypeBitmap {
    fn from_iter<I: IntoIterator<Item = RrType>>(iter: I) -> Self {
        Self::from_types(iter)
    }
}

impl std::fmt::Display for TypeBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for t in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bm: &TypeBitmap) -> TypeBitmap {
        let mut buf = Vec::new();
        bm.encode(&mut Writer::plain(&mut buf));
        let mut r = Reader::new(&buf);
        TypeBitmap::decode(&mut r, buf.len()).unwrap()
    }

    #[test]
    fn basic_roundtrip() {
        let bm = TypeBitmap::from_types([RrType::A, RrType::NS, RrType::SOA, RrType::RRSIG]);
        assert_eq!(roundtrip(&bm), bm);
        assert!(bm.contains(RrType::A));
        assert!(!bm.contains(RrType::TXT));
    }

    #[test]
    fn known_wire_encoding() {
        // RFC 4034 §4.3 example: "A MX RRSIG NSEC TYPE1234" encodes to
        // 0x00 0x06 0x40 0x01 0x00 0x00 0x00 0x03  0x04 0x1b 0x00 0x00 0x00 0x00 0x00 0x00 ...
        let bm = TypeBitmap::from_types([
            RrType::A,
            RrType::MX,
            RrType::RRSIG,
            RrType::NSEC,
            RrType(1234),
        ]);
        let mut buf = Vec::new();
        bm.encode(&mut Writer::plain(&mut buf));
        let mut expected = vec![0x00u8, 0x06, 0x40, 0x01, 0x00, 0x00, 0x00, 0x03];
        // Window 4 (types 1024..1279): 1234 = 4*256 + 210; byte 26, bit 2.
        let mut win4 = vec![0x04u8, 27];
        win4.extend(std::iter::repeat_n(0u8, 26));
        win4.push(0x20);
        expected.extend(win4);
        assert_eq!(buf, expected);
    }

    #[test]
    fn empty_bitmap_is_empty_wire() {
        let bm = TypeBitmap::new();
        let mut buf = Vec::new();
        bm.encode(&mut Writer::plain(&mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn multiple_windows() {
        let bm = TypeBitmap::from_types([RrType::A, RrType(256), RrType(65280)]);
        assert_eq!(roundtrip(&bm), bm);
    }

    #[test]
    fn insert_maintains_order() {
        let mut bm = TypeBitmap::new();
        bm.insert(RrType::TXT);
        bm.insert(RrType::A);
        bm.insert(RrType::TXT);
        let types: Vec<_> = bm.iter().collect();
        assert_eq!(types, vec![RrType::A, RrType::TXT]);
    }

    #[test]
    fn decode_rejects_bad_blocks() {
        // Zero block length.
        let buf = [0x00u8, 0x00];
        assert!(TypeBitmap::decode(&mut Reader::new(&buf), 2).is_err());
        // Block length 33.
        let mut buf = vec![0x00u8, 33];
        buf.extend([0u8; 33]);
        assert!(TypeBitmap::decode(&mut Reader::new(&buf), buf.len()).is_err());
        // Out-of-order windows.
        let buf = [0x01u8, 0x01, 0x80, 0x00, 0x01, 0x80];
        assert!(TypeBitmap::decode(&mut Reader::new(&buf), buf.len()).is_err());
    }

    #[test]
    fn display_lists_mnemonics() {
        let bm = TypeBitmap::from_types([RrType::A, RrType::RRSIG]);
        assert_eq!(bm.to_string(), "A RRSIG");
    }
}
