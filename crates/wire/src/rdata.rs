//! Typed RDATA for every record type this system handles, with wire
//! encode/decode and RFC 4034 §6.2 canonical encoding.

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::buf::{Reader, Writer};
use crate::name::Name;
use crate::rrtype::RrType;
use crate::typebitmap::TypeBitmap;
use crate::WireError;

/// NSEC3 flags bit: opt-out (RFC 5155 §3.1.2.1).
pub const NSEC3_FLAG_OPT_OUT: u8 = 0x01;

/// NSEC3/NSEC3PARAM hash algorithm number for SHA-1 (the only one defined).
pub const NSEC3_HASH_SHA1: u8 = 1;

/// Typed record data.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // field meanings are the RFC field names
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Authoritative name server.
    Ns(Name),
    /// Canonical name alias.
    Cname(Name),
    /// Pointer.
    Ptr(Name),
    /// Mail exchange.
    Mx { preference: u16, exchange: Name },
    /// Text strings (each ≤ 255 bytes on the wire).
    Txt(Vec<Vec<u8>>),
    /// Start of authority.
    Soa {
        mname: Name,
        rname: Name,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    },
    /// DNSSEC public key (RFC 4034 §2).
    Dnskey {
        flags: u16,
        protocol: u8,
        algorithm: u8,
        public_key: Vec<u8>,
    },
    /// DNSSEC signature (RFC 4034 §3).
    Rrsig {
        type_covered: RrType,
        algorithm: u8,
        labels: u8,
        original_ttl: u32,
        expiration: u32,
        inception: u32,
        key_tag: u16,
        signer_name: Name,
        signature: Vec<u8>,
    },
    /// Delegation signer (RFC 4034 §5).
    Ds {
        key_tag: u16,
        algorithm: u8,
        digest_type: u8,
        digest: Vec<u8>,
    },
    /// Authenticated denial of existence (RFC 4034 §4).
    Nsec { next: Name, types: TypeBitmap },
    /// Hashed authenticated denial of existence (RFC 5155 §3).
    Nsec3 {
        hash_alg: u8,
        flags: u8,
        iterations: u16,
        salt: Vec<u8>,
        next_hashed: Vec<u8>,
        types: TypeBitmap,
    },
    /// NSEC3 parameters advertised at the zone apex (RFC 5155 §4).
    Nsec3Param {
        hash_alg: u8,
        flags: u8,
        iterations: u16,
        salt: Vec<u8>,
    },
    /// Anything else, kept verbatim (RFC 3597).
    Unknown { rtype: u16, data: Vec<u8> },
}

impl RData {
    /// The RR type of this data.
    pub fn rrtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::AAAA,
            RData::Ns(_) => RrType::NS,
            RData::Cname(_) => RrType::CNAME,
            RData::Ptr(_) => RrType::PTR,
            RData::Mx { .. } => RrType::MX,
            RData::Txt(_) => RrType::TXT,
            RData::Soa { .. } => RrType::SOA,
            RData::Dnskey { .. } => RrType::DNSKEY,
            RData::Rrsig { .. } => RrType::RRSIG,
            RData::Ds { .. } => RrType::DS,
            RData::Nsec { .. } => RrType::NSEC,
            RData::Nsec3 { .. } => RrType::NSEC3,
            RData::Nsec3Param { .. } => RrType::NSEC3PARAM,
            RData::Unknown { rtype, .. } => RrType(*rtype),
        }
    }

    /// Encode RDATA (without the RDLENGTH prefix) into `w`.
    ///
    /// `canonical` selects the RFC 4034 §6.2 canonical form: names inside
    /// the RDATA are lowercased and never compressed. Non-canonical encoding
    /// also never compresses RDATA names (permitted, and required for
    /// DNSSEC-aware processing per RFC 3597 §4).
    pub fn encode(&self, w: &mut Writer, canonical: bool) {
        let put_name = |w: &mut Writer, n: &Name| {
            if canonical {
                w.bytes(&n.to_canonical_wire());
            } else {
                w.bytes(&n.to_wire());
            }
        };
        match self {
            RData::A(addr) => w.bytes(&addr.octets()),
            RData::Aaaa(addr) => w.bytes(&addr.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => put_name(w, n),
            RData::Mx {
                preference,
                exchange,
            } => {
                w.u16(*preference);
                put_name(w, exchange);
            }
            RData::Txt(strings) => {
                for s in strings {
                    w.u8(s.len() as u8);
                    w.bytes(s);
                }
            }
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                put_name(w, mname);
                put_name(w, rname);
                w.u32(*serial);
                w.u32(*refresh);
                w.u32(*retry);
                w.u32(*expire);
                w.u32(*minimum);
            }
            RData::Dnskey {
                flags,
                protocol,
                algorithm,
                public_key,
            } => {
                w.u16(*flags);
                w.u8(*protocol);
                w.u8(*algorithm);
                w.bytes(public_key);
            }
            RData::Rrsig {
                type_covered,
                algorithm,
                labels,
                original_ttl,
                expiration,
                inception,
                key_tag,
                signer_name,
                signature,
            } => {
                w.u16(type_covered.0);
                w.u8(*algorithm);
                w.u8(*labels);
                w.u32(*original_ttl);
                w.u32(*expiration);
                w.u32(*inception);
                w.u16(*key_tag);
                put_name(w, signer_name);
                w.bytes(signature);
            }
            RData::Ds {
                key_tag,
                algorithm,
                digest_type,
                digest,
            } => {
                w.u16(*key_tag);
                w.u8(*algorithm);
                w.u8(*digest_type);
                w.bytes(digest);
            }
            RData::Nsec { next, types } => {
                put_name(w, next);
                types.encode(w);
            }
            RData::Nsec3 {
                hash_alg,
                flags,
                iterations,
                salt,
                next_hashed,
                types,
            } => {
                w.u8(*hash_alg);
                w.u8(*flags);
                w.u16(*iterations);
                w.u8(salt.len() as u8);
                w.bytes(salt);
                w.u8(next_hashed.len() as u8);
                w.bytes(next_hashed);
                types.encode(w);
            }
            RData::Nsec3Param {
                hash_alg,
                flags,
                iterations,
                salt,
            } => {
                w.u8(*hash_alg);
                w.u8(*flags);
                w.u16(*iterations);
                w.u8(salt.len() as u8);
                w.bytes(salt);
            }
            RData::Unknown { data, .. } => w.bytes(data),
        }
    }

    /// Canonical wire form of the RDATA, used for RRset ordering and the
    /// RRSIG signing buffer.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut Writer::plain(&mut out), true);
        out
    }

    /// Decode an RDATA of type `rtype` spanning exactly `rdlength` bytes.
    pub fn decode(r: &mut Reader<'_>, rtype: RrType, rdlength: usize) -> Result<Self, WireError> {
        let end = r.pos() + rdlength;
        let out = match rtype {
            RrType::A => {
                let o = r.bytes(4)?;
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RrType::AAAA => {
                let o = r.bytes(16)?;
                let mut a = [0u8; 16];
                a.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(a))
            }
            RrType::NS => RData::Ns(r.name()?),
            RrType::CNAME => RData::Cname(r.name()?),
            RrType::PTR => RData::Ptr(r.name()?),
            RrType::MX => RData::Mx {
                preference: r.u16()?,
                exchange: r.name()?,
            },
            RrType::TXT => {
                let mut strings = Vec::new();
                while r.pos() < end {
                    let len = r.u8()? as usize;
                    strings.push(r.bytes(len)?.to_vec());
                }
                RData::Txt(strings)
            }
            RrType::SOA => RData::Soa {
                mname: r.name()?,
                rname: r.name()?,
                serial: r.u32()?,
                refresh: r.u32()?,
                retry: r.u32()?,
                expire: r.u32()?,
                minimum: r.u32()?,
            },
            RrType::DNSKEY => {
                let flags = r.u16()?;
                let protocol = r.u8()?;
                let algorithm = r.u8()?;
                let key_len = end
                    .checked_sub(r.pos())
                    .ok_or(WireError::BadRdata("DNSKEY rdlength too small"))?;
                RData::Dnskey {
                    flags,
                    protocol,
                    algorithm,
                    public_key: r.bytes(key_len)?.to_vec(),
                }
            }
            RrType::RRSIG => {
                let type_covered = RrType(r.u16()?);
                let algorithm = r.u8()?;
                let labels = r.u8()?;
                let original_ttl = r.u32()?;
                let expiration = r.u32()?;
                let inception = r.u32()?;
                let key_tag = r.u16()?;
                let signer_name = r.name()?;
                let sig_len = end
                    .checked_sub(r.pos())
                    .ok_or(WireError::BadRdata("RRSIG rdlength too small"))?;
                RData::Rrsig {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer_name,
                    signature: r.bytes(sig_len)?.to_vec(),
                }
            }
            RrType::DS => {
                let key_tag = r.u16()?;
                let algorithm = r.u8()?;
                let digest_type = r.u8()?;
                let dig_len = end
                    .checked_sub(r.pos())
                    .ok_or(WireError::BadRdata("DS rdlength too small"))?;
                RData::Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest: r.bytes(dig_len)?.to_vec(),
                }
            }
            RrType::NSEC => {
                let next = r.name()?;
                let bm_len = end
                    .checked_sub(r.pos())
                    .ok_or(WireError::BadRdata("NSEC rdlength too small"))?;
                RData::Nsec {
                    next,
                    types: TypeBitmap::decode(r, bm_len)?,
                }
            }
            RrType::NSEC3 => {
                let hash_alg = r.u8()?;
                let flags = r.u8()?;
                let iterations = r.u16()?;
                let salt_len = r.u8()? as usize;
                let salt = r.bytes(salt_len)?.to_vec();
                let hash_len = r.u8()? as usize;
                let next_hashed = r.bytes(hash_len)?.to_vec();
                let bm_len = end
                    .checked_sub(r.pos())
                    .ok_or(WireError::BadRdata("NSEC3 rdlength too small"))?;
                RData::Nsec3 {
                    hash_alg,
                    flags,
                    iterations,
                    salt,
                    next_hashed,
                    types: TypeBitmap::decode(r, bm_len)?,
                }
            }
            RrType::NSEC3PARAM => {
                let hash_alg = r.u8()?;
                let flags = r.u8()?;
                let iterations = r.u16()?;
                let salt_len = r.u8()? as usize;
                let salt = r.bytes(salt_len)?.to_vec();
                RData::Nsec3Param {
                    hash_alg,
                    flags,
                    iterations,
                    salt,
                }
            }
            RrType(other) => RData::Unknown {
                rtype: other,
                data: r.bytes(rdlength)?.to_vec(),
            },
        };
        if r.pos() != end {
            return Err(WireError::BadRdata("rdata length mismatch"));
        }
        Ok(out)
    }

    /// For NSEC3 records: is the opt-out flag set?
    pub fn nsec3_opt_out(&self) -> Option<bool> {
        match self {
            RData::Nsec3 { flags, .. } => Some(flags & NSEC3_FLAG_OPT_OUT != 0),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    fn roundtrip(rd: &RData) -> RData {
        let mut buf = Vec::new();
        rd.encode(&mut Writer::plain(&mut buf), false);
        let mut r = Reader::new(&buf);
        RData::decode(&mut r, rd.rrtype(), buf.len()).unwrap()
    }

    #[test]
    fn a_roundtrip() {
        let rd = RData::A(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn aaaa_roundtrip() {
        let rd = RData::Aaaa("2001:db8::1".parse().unwrap());
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn soa_roundtrip() {
        let rd = RData::Soa {
            mname: name("ns1.example."),
            rname: name("hostmaster.example."),
            serial: 2024030501,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 3600,
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn dnskey_roundtrip() {
        let rd = RData::Dnskey {
            flags: 257,
            protocol: 3,
            algorithm: 253,
            public_key: vec![1, 2, 3, 4],
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn rrsig_roundtrip() {
        let rd = RData::Rrsig {
            type_covered: RrType::NSEC3,
            algorithm: 253,
            labels: 2,
            original_ttl: 3600,
            expiration: 1700000000,
            inception: 1690000000,
            key_tag: 12345,
            signer_name: name("example."),
            signature: vec![9; 32],
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn nsec3_roundtrip_and_optout() {
        let rd = RData::Nsec3 {
            hash_alg: NSEC3_HASH_SHA1,
            flags: NSEC3_FLAG_OPT_OUT,
            iterations: 100,
            salt: vec![0xaa, 0xbb, 0xcc, 0xdd],
            next_hashed: vec![0x11; 20],
            types: TypeBitmap::from_types([RrType::A, RrType::RRSIG]),
        };
        assert_eq!(roundtrip(&rd), rd);
        assert_eq!(rd.nsec3_opt_out(), Some(true));
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).nsec3_opt_out(), None);
    }

    #[test]
    fn nsec3param_roundtrip_zero_salt() {
        let rd = RData::Nsec3Param {
            hash_alg: NSEC3_HASH_SHA1,
            flags: 0,
            iterations: 0,
            salt: vec![],
        };
        assert_eq!(roundtrip(&rd), rd);
        // Wire: alg=1 flags=0 iter=0 saltlen=0.
        let mut buf = Vec::new();
        rd.encode(&mut Writer::plain(&mut buf), false);
        assert_eq!(buf, vec![1, 0, 0, 0, 0]);
    }

    #[test]
    fn nsec_roundtrip() {
        let rd = RData::Nsec {
            next: name("b.example."),
            types: TypeBitmap::from_types([RrType::A, RrType::NSEC, RrType::RRSIG]),
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn txt_roundtrip_multiple_strings() {
        let rd = RData::Txt(vec![b"hello".to_vec(), b"world".to_vec(), vec![]]);
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn mx_and_unknown_roundtrip() {
        let rd = RData::Mx {
            preference: 10,
            exchange: name("mx.example."),
        };
        assert_eq!(roundtrip(&rd), rd);
        let rd = RData::Unknown {
            rtype: 9999,
            data: vec![1, 2, 3],
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn canonical_lowercases_rdata_names() {
        let rd = RData::Ns(name("NS1.Example.COM"));
        let canon = rd.canonical_bytes();
        assert_eq!(canon, b"\x03ns1\x07example\x03com\x00");
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        // An A record with 5 bytes of rdata.
        let buf = [1u8, 2, 3, 4, 5];
        let mut r = Reader::new(&buf);
        assert!(RData::decode(&mut r, RrType::A, 5).is_err());
    }

    #[test]
    fn decode_rejects_truncated_nsec3() {
        let buf = [1u8, 0, 0, 10, 4]; // salt_len=4 but no salt bytes
        let mut r = Reader::new(&buf);
        assert!(RData::decode(&mut r, RrType::NSEC3, buf.len()).is_err());
    }
}
