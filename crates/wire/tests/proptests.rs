//! Property-based tests for the wire layer: every encode has a decode
//! that returns the original, orderings are lawful, codecs round-trip.

use sim_check::{gens, props, Gen};

use dns_wire::base32;
use dns_wire::base64;
use dns_wire::buf::{Reader, Writer};
use dns_wire::message::{Flags, Message, Question};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Class, Opcode, Rcode, RrType};
use dns_wire::typebitmap::TypeBitmap;

/// A DNS label: 1–63 bytes. Generation sticks to letters/digits/hyphens
/// plus a few oddballs to exercise escaping.
fn label() -> impl Gen<Vec<u8>> {
    gens::vec_of(
        gens::weighted(vec![
            (
                96.0,
                gens::boxed(gens::map(gens::char_range('a', 'z'), |c| c as u8)),
            ),
            (2.0, gens::boxed(gens::just(b'-'))),
            (1.0, gens::boxed(gens::just(b'.'))),
            (1.0, gens::boxed(gens::just(0xC3u8))),
        ]),
        1..=20,
    )
}

fn name() -> impl Gen<Name> {
    gens::filter_map(
        gens::vec_of(label(), 0..=6),
        |labels| Name::from_labels(labels).ok(),
        "name too long",
    )
}

fn rdata() -> impl Gen<RData> {
    gens::one_of(vec![
        gens::boxed(gens::map(gens::array_of::<u8, 4>(gens::u8s(..)), |o| {
            RData::A(o.into())
        })),
        gens::boxed(gens::map(gens::array_of::<u8, 16>(gens::u8s(..)), |o| {
            RData::Aaaa(o.into())
        })),
        gens::boxed(gens::map(name(), RData::Ns)),
        gens::boxed(gens::map(name(), RData::Cname)),
        gens::boxed(gens::map(
            (gens::u16s(..), name()),
            |(preference, exchange)| RData::Mx {
                preference,
                exchange,
            },
        )),
        gens::boxed(gens::map(
            gens::vec_of(gens::vec_of(gens::u8s(..), 0..40), 0..3),
            RData::Txt,
        )),
        gens::boxed(gens::map(
            (
                gens::u16s(..),
                gens::u8s(..),
                gens::vec_of(gens::u8s(..), 0..40),
            ),
            |(flags, algorithm, public_key)| RData::Dnskey {
                flags,
                protocol: 3,
                algorithm,
                public_key,
            },
        )),
        gens::boxed(gens::map(
            (
                gens::u8s(..),
                gens::u16s(..),
                gens::vec_of(gens::u8s(..), 0..16),
                gens::vec_of(gens::u8s(..), 20),
                gens::vec_of(gens::u16s(..), 0..6),
            ),
            |(flags, iterations, salt, next_hashed, types)| RData::Nsec3 {
                hash_alg: 1,
                flags,
                iterations,
                salt,
                next_hashed,
                types: types.into_iter().map(RrType).collect(),
            },
        )),
        gens::boxed(gens::map(
            (gens::u16s(..), gens::vec_of(gens::u8s(..), 0..16)),
            |(iterations, salt)| RData::Nsec3Param {
                hash_alg: 1,
                flags: 0,
                iterations,
                salt,
            },
        )),
    ])
}

props! {
    fn name_wire_roundtrip(n in name()) {
        let mut w = Writer::plain();
        w.name(&n);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), n);
    }

    fn name_display_parse_roundtrip(n in name()) {
        let shown = n.to_string();
        let parsed = Name::parse(&shown).unwrap();
        assert_eq!(parsed, n);
    }

    fn name_compressed_roundtrip(names in gens::vec_of(name(), 1..6)) {
        let mut w = Writer::compressing();
        for n in &names {
            w.name(n);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for n in &names {
            assert_eq!(&r.name().unwrap(), n);
        }
        assert_eq!(r.remaining(), 0);
    }

    fn canonical_order_is_total_and_consistent(names in gens::vec_of(name(), 2..8)) {
        let mut names = names;
        names.sort();
        // Sorted ⇒ pairwise ordered (antisymmetry + transitivity smoke).
        for w in names.windows(2) {
            assert_ne!(w[0].canonical_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
        // Equal names compare equal regardless of case.
        for n in &names {
            assert_eq!(n.canonical_cmp(&n.to_lowercase()), std::cmp::Ordering::Equal);
        }
    }

    fn subdomain_of_concat_holds(a in name(), b in name()) {
        if let Ok(joined) = a.concat(&b) {
            assert!(joined.is_subdomain_of(&b));
        }
    }

    fn record_roundtrip(n in name(), ttl in gens::u32s(..), rd in rdata()) {
        let rec = Record { name: n, class: Class::IN, ttl, rdata: rd };
        let mut w = Writer::plain();
        rec.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
    }

    fn message_roundtrip(
        id in gens::u16s(..),
        qname in name(),
        answers in gens::vec_of((name(), gens::u32s(..), rdata()), 0..5),
        rcode in gens::u16s(0..16),
        ad in gens::bools(),
    ) {
        let msg = Message {
            id,
            flags: Flags { qr: true, opcode: Opcode::Query, ad, rd: true, ra: true, ..Default::default() },
            rcode: Rcode::from_u16(rcode),
            questions: vec![Question::new(qname, RrType::A)],
            answers: answers
                .into_iter()
                .map(|(n, ttl, rd)| Record { name: n, class: Class::IN, ttl, rdata: rd })
                .collect(),
            authorities: vec![],
            additionals: vec![],
            edns: Some(Default::default()),
        };
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    fn base32_roundtrip(data in gens::vec_of(gens::u8s(..), 0..64)) {
        assert_eq!(base32::decode(&base32::encode(&data)).unwrap(), data);
    }

    fn base64_roundtrip(data in gens::vec_of(gens::u8s(..), 0..96)) {
        assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    fn base32_encoding_is_canonical(data in gens::vec_of(gens::u8s(..), 0..32)) {
        // Same bytes → same string; different bytes → different string.
        let a = base32::encode(&data);
        let mut data2 = data.clone();
        if let Some(first) = data2.first_mut() {
            *first ^= 1;
            assert_ne!(base32::encode(&data2), a);
        }
        assert_eq!(base32::encode(&data), a);
    }

    fn typebitmap_roundtrip(types in gens::vec_of(gens::u16s(..), 0..24)) {
        let bm: TypeBitmap = types.into_iter().map(RrType).collect();
        let mut w = Writer::plain();
        bm.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(TypeBitmap::decode(&mut r, buf.len()).unwrap(), bm);
    }

    fn decoder_never_panics_on_garbage(data in gens::vec_of(gens::u8s(..), 0..200)) {
        let _ = Message::decode(&data); // must not panic
        let mut r = Reader::new(&data);
        let _ = r.name();
    }

    fn truncations_never_panic(qname in name()) {
        let msg = Message::query(1, qname, RrType::A).encode();
        for cut in 0..msg.len() {
            let _ = Message::decode(&msg[..cut]); // must not panic
        }
    }
}
