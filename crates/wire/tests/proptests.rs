//! Property-based tests for the wire layer: every encode has a decode
//! that returns the original, orderings are lawful, codecs round-trip.

use sim_check::{gens, props, Gen};

use dns_wire::base32;
use dns_wire::base64;
use dns_wire::buf::{Reader, Writer};
use dns_wire::message::{Flags, Message, Question};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Class, Opcode, Rcode, RrType};
use dns_wire::typebitmap::TypeBitmap;

/// A DNS label: 1–63 bytes. Generation sticks to letters/digits/hyphens
/// plus a few oddballs to exercise escaping.
fn label() -> impl Gen<Vec<u8>> {
    gens::vec_of(
        gens::weighted(vec![
            (
                96.0,
                gens::boxed(gens::map(gens::char_range('a', 'z'), |c| c as u8)),
            ),
            (2.0, gens::boxed(gens::just(b'-'))),
            (1.0, gens::boxed(gens::just(b'.'))),
            (1.0, gens::boxed(gens::just(0xC3u8))),
        ]),
        1..=20,
    )
}

fn name() -> impl Gen<Name> {
    gens::filter_map(
        gens::vec_of(label(), 0..=6),
        |labels| Name::from_labels(labels).ok(),
        "name too long",
    )
}

fn rdata() -> impl Gen<RData> {
    gens::one_of(vec![
        gens::boxed(gens::map(gens::array_of::<u8, 4>(gens::u8s(..)), |o| {
            RData::A(o.into())
        })),
        gens::boxed(gens::map(gens::array_of::<u8, 16>(gens::u8s(..)), |o| {
            RData::Aaaa(o.into())
        })),
        gens::boxed(gens::map(name(), RData::Ns)),
        gens::boxed(gens::map(name(), RData::Cname)),
        gens::boxed(gens::map(
            (gens::u16s(..), name()),
            |(preference, exchange)| RData::Mx {
                preference,
                exchange,
            },
        )),
        gens::boxed(gens::map(
            gens::vec_of(gens::vec_of(gens::u8s(..), 0..40), 0..3),
            RData::Txt,
        )),
        gens::boxed(gens::map(
            (
                gens::u16s(..),
                gens::u8s(..),
                gens::vec_of(gens::u8s(..), 0..40),
            ),
            |(flags, algorithm, public_key)| RData::Dnskey {
                flags,
                protocol: 3,
                algorithm,
                public_key,
            },
        )),
        gens::boxed(gens::map(
            (
                gens::u8s(..),
                gens::u16s(..),
                gens::vec_of(gens::u8s(..), 0..16),
                gens::vec_of(gens::u8s(..), 20),
                gens::vec_of(gens::u16s(..), 0..6),
            ),
            |(flags, iterations, salt, next_hashed, types)| RData::Nsec3 {
                hash_alg: 1,
                flags,
                iterations,
                salt,
                next_hashed,
                types: types.into_iter().map(RrType).collect(),
            },
        )),
        gens::boxed(gens::map(
            (gens::u16s(..), gens::vec_of(gens::u8s(..), 0..16)),
            |(iterations, salt)| RData::Nsec3Param {
                hash_alg: 1,
                flags: 0,
                iterations,
                salt,
            },
        )),
    ])
}

props! {
    fn name_wire_roundtrip(n in name()) {
        let mut buf = Vec::new();
        Writer::plain(&mut buf).name(&n);
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), n);
    }

    fn name_display_parse_roundtrip(n in name()) {
        let shown = n.to_string();
        let parsed = Name::parse(&shown).unwrap();
        assert_eq!(parsed, n);
    }

    fn name_compressed_roundtrip(names in gens::vec_of(name(), 1..6)) {
        let mut wb = dns_wire::buf::WireBuf::new();
        let mut w = wb.writer();
        for n in &names {
            w.name(n);
        }
        let buf = wb.take();
        let mut r = Reader::new(&buf);
        for n in &names {
            assert_eq!(&r.name().unwrap(), n);
        }
        assert_eq!(r.remaining(), 0);
    }

    fn canonical_order_is_total_and_consistent(names in gens::vec_of(name(), 2..8)) {
        let mut names = names;
        names.sort();
        // Sorted ⇒ pairwise ordered (antisymmetry + transitivity smoke).
        for w in names.windows(2) {
            assert_ne!(w[0].canonical_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
        // Equal names compare equal regardless of case.
        for n in &names {
            assert_eq!(n.canonical_cmp(&n.to_lowercase()), std::cmp::Ordering::Equal);
        }
    }

    fn subdomain_of_concat_holds(a in name(), b in name()) {
        if let Ok(joined) = a.concat(&b) {
            assert!(joined.is_subdomain_of(&b));
        }
    }

    fn record_roundtrip(n in name(), ttl in gens::u32s(..), rd in rdata()) {
        let rec = Record { name: n, class: Class::IN, ttl, rdata: rd };
        let mut buf = Vec::new();
        rec.encode(&mut Writer::plain(&mut buf));
        let mut r = Reader::new(&buf);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
    }

    fn message_roundtrip(
        id in gens::u16s(..),
        qname in name(),
        answers in gens::vec_of((name(), gens::u32s(..), rdata()), 0..5),
        rcode in gens::u16s(0..16),
        ad in gens::bools(),
    ) {
        let msg = Message {
            id,
            flags: Flags { qr: true, opcode: Opcode::Query, ad, rd: true, ra: true, ..Default::default() },
            rcode: Rcode::from_u16(rcode),
            questions: vec![Question::new(qname, RrType::A)],
            answers: answers
                .into_iter()
                .map(|(n, ttl, rd)| Record { name: n, class: Class::IN, ttl, rdata: rd })
                .collect(),
            authorities: vec![],
            additionals: vec![],
            edns: Some(Default::default()),
        };
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    fn base32_roundtrip(data in gens::vec_of(gens::u8s(..), 0..64)) {
        assert_eq!(base32::decode(&base32::encode(&data)).unwrap(), data);
    }

    fn base64_roundtrip(data in gens::vec_of(gens::u8s(..), 0..96)) {
        assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    fn base32_encoding_is_canonical(data in gens::vec_of(gens::u8s(..), 0..32)) {
        // Same bytes → same string; different bytes → different string.
        let a = base32::encode(&data);
        let mut data2 = data.clone();
        if let Some(first) = data2.first_mut() {
            *first ^= 1;
            assert_ne!(base32::encode(&data2), a);
        }
        assert_eq!(base32::encode(&data), a);
    }

    fn typebitmap_roundtrip(types in gens::vec_of(gens::u16s(..), 0..24)) {
        let bm: TypeBitmap = types.into_iter().map(RrType).collect();
        let mut buf = Vec::new();
        bm.encode(&mut Writer::plain(&mut buf));
        let mut r = Reader::new(&buf);
        assert_eq!(TypeBitmap::decode(&mut r, buf.len()).unwrap(), bm);
    }

    fn decoder_never_panics_on_garbage(data in gens::vec_of(gens::u8s(..), 0..200)) {
        let _ = Message::decode(&data); // must not panic
        let mut r = Reader::new(&data);
        let _ = r.name();
    }

    fn truncations_never_panic(qname in name()) {
        let msg = Message::query(1, qname, RrType::A).encode();
        for cut in 0..msg.len() {
            let _ = Message::decode(&msg[..cut]); // must not panic
        }
    }

    // ---- Decode robustness: the lazy view and the owned decoder agree on
    // every hostile input, and anything either accepts is in normal form.

    /// Every truncation prefix of a real response: decode must reject or
    /// accept without panicking, and the view must make the same call.
    fn truncations_view_agrees_with_decode(
        qname in name(),
        answers in gens::vec_of((name(), gens::u32s(..), rdata()), 0..4),
    ) {
        let msg = response_with(qname, answers);
        let wire = msg.encode();
        for cut in 0..=wire.len() {
            assert_view_decode_agree(&wire[..cut]);
        }
    }

    /// Seeded bit flips anywhere in the packet — header, names, RDATA,
    /// EDNS — must never panic, and view/decode must stay in lockstep.
    fn bit_flips_view_agrees_with_decode(
        qname in name(),
        answers in gens::vec_of((name(), gens::u32s(..), rdata()), 0..4),
        flips in gens::vec_of((gens::u16s(..), gens::u8s(0..8)), 1..5),
    ) {
        let msg = response_with(qname, answers);
        let mut wire = msg.encode();
        for (pos, bit) in flips {
            let idx = pos as usize % wire.len();
            wire[idx] ^= 1u8 << bit;
        }
        assert_view_decode_agree(&wire);
    }

    /// Corrupting the header section counts (the length fields that drive
    /// the parse loop) must fail cleanly: overstated counts hit the end of
    /// the packet, understated ones leave trailing bytes — never a panic,
    /// never a view/decode split.
    fn count_field_corruptions_fail_cleanly(
        qname in name(),
        answers in gens::vec_of((name(), gens::u32s(..), rdata()), 0..4),
        field in gens::u16s(2..6),
        value in gens::u16s(..),
    ) {
        let msg = response_with(qname, answers);
        let mut wire = msg.encode();
        let off = 2 * field as usize; // qd/an/ns/ar count at offsets 4/6/8/10
        wire[off] = (value >> 8) as u8;
        wire[off + 1] = value as u8;
        assert_view_decode_agree(&wire);
    }

    /// Corrupting a record's RDLENGTH makes the RDATA reader over- or
    /// under-run its slice: both paths must reject identically. The flip
    /// lands on a seeded byte pair in the record region (past the header
    /// and question), which covers RDLENGTH fields among the other record
    /// bytes without needing offset bookkeeping here.
    fn rdlength_region_corruptions_fail_cleanly(
        qname in name(),
        answers in gens::vec_of((name(), gens::u32s(..), rdata()), 1..4),
        pos in gens::u16s(..),
        value in gens::u16s(..),
    ) {
        let msg = response_with(qname, answers);
        let mut wire = msg.encode();
        let records_start = 12 + msg.questions[0].qname.wire_len() + 4;
        if records_start + 2 <= wire.len() {
            let span = wire.len() - records_start - 1;
            let off = records_start + pos as usize % span;
            wire[off] = (value >> 8) as u8;
            wire[off + 1] = value as u8;
        }
        assert_view_decode_agree(&wire);
    }

    /// Anything decode accepts — even from a mutated packet — is in
    /// normal form: re-encoding and decoding again is the identity.
    fn accepted_messages_reencode_equal(
        qname in name(),
        answers in gens::vec_of((name(), gens::u32s(..), rdata()), 0..4),
        flips in gens::vec_of((gens::u16s(..), gens::u8s(0..8)), 0..3),
    ) {
        let msg = response_with(qname, answers);
        let mut wire = msg.encode();
        for (pos, bit) in flips {
            let idx = pos as usize % wire.len();
            wire[idx] ^= 1u8 << bit;
        }
        if let Ok(decoded) = Message::decode(&wire) {
            let reencoded = decoded.encode();
            assert_eq!(
                Message::decode(&reencoded).unwrap(),
                decoded,
                "decode ∘ encode must be the identity on decoded messages"
            );
        }
    }

    /// EDE options (RFC 8914) in the OPT record survive the owned
    /// round-trip, and the zero-copy view reads them identically —
    /// arbitrary codes, extra-text payloads, and stacked options.
    fn ede_roundtrips_and_view_agrees(
        qname in name(),
        codes in gens::vec_of(gens::u16s(..), 1..4),
        text in gens::vec_of(gens::map(gens::char_range('a', 'z'), |c| c as u8), 0..32),
    ) {
        use dns_wire::edns::{EdeCode, Edns};
        use dns_wire::view::MessageView;
        let mut msg = response_with(qname, vec![]);
        msg.rcode = Rcode::ServFail;
        let mut edns = Edns::with_do();
        let text = String::from_utf8(text).unwrap();
        for (i, code) in codes.iter().enumerate() {
            // First option carries the text, the rest are bare codes.
            edns.push_ede(EdeCode(*code), if i == 0 { text.as_str() } else { "" });
        }
        msg.edns = Some(edns.clone());
        let wire = msg.encode();
        assert_view_decode_agree(&wire);
        let decoded = Message::decode(&wire).unwrap();
        let owned = decoded.edns.as_ref().expect("EDNS survives");
        assert_eq!(owned.options, edns.options, "options survive verbatim");
        assert_eq!(owned.ede(), Some((&EdeCode(codes[0]), text.as_str())));
        let view = MessageView::parse(&wire).unwrap();
        let viewed = view.edns().unwrap().expect("view sees EDNS");
        assert_eq!(viewed.options, owned.options, "view and decode agree");
        let validated = view.validate().unwrap().expect("validate returns EDNS");
        assert_eq!(validated.options, owned.options);
    }
}

/// A realistic response for robustness inputs: one question, generated
/// answers, EDNS present.
fn response_with(qname: Name, answers: Vec<(Name, u32, RData)>) -> Message {
    let q = Message::query(0x1dea, qname, RrType::A);
    let mut resp = Message::response_to(&q);
    resp.flags.aa = true;
    resp.answers = answers
        .into_iter()
        .map(|(n, ttl, rd)| Record {
            name: n,
            class: Class::IN,
            ttl,
            rdata: rd,
        })
        .collect();
    resp
}

/// The acceptance contract of the zero-copy path: `MessageView` (parse +
/// validate + materialize) and `Message::decode` must make the same
/// accept/reject decision on `wire`, produce equal messages on accept,
/// and never panic either way.
fn assert_view_decode_agree(wire: &[u8]) {
    use dns_wire::view::MessageView;
    let via_decode = Message::decode(wire);
    let via_view = MessageView::parse(wire).and_then(|v| v.to_message());
    match (via_decode, via_view) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "view materialized a different message");
            let v = MessageView::parse(wire).expect("parse succeeded above");
            assert!(v.validate().is_ok(), "validate rejects a decodable packet");
        }
        (Err(_), Err(_)) => {
            if let Ok(v) = MessageView::parse(wire) {
                assert!(
                    v.validate().is_err(),
                    "validate accepts a packet decode rejects"
                );
            }
        }
        (d, v) => panic!(
            "acceptance mismatch on {} bytes: decode={} view={}",
            wire.len(),
            d.is_ok(),
            v.is_ok()
        ),
    }
}

/// The two EDE shapes the resolver actually emits, pinned end to end:
/// code 27 (Unsupported NSEC3 Iterations) for the RFC 9276 clamp and
/// code 0 (Other) with explanatory text for work-budget aborts. Owned
/// decode and zero-copy view must read both identically.
#[test]
fn resolver_facing_ede_codes_lockstep() {
    use dns_wire::edns::{EdeCode, Edns};
    use dns_wire::view::MessageView;
    for (code, text) in [
        (EdeCode::UNSUPPORTED_NSEC3_ITERATIONS, ""),
        (EdeCode::OTHER, "work budget exceeded"),
    ] {
        let mut msg = response_with(Name::parse("atk0.example.").unwrap(), vec![]);
        msg.rcode = Rcode::ServFail;
        let mut edns = Edns::with_do();
        edns.push_ede(code, text);
        msg.edns = Some(edns);
        let wire = msg.encode();
        assert_view_decode_agree(&wire);
        let decoded = Message::decode(&wire).unwrap();
        let owned = decoded
            .edns
            .as_ref()
            .unwrap()
            .ede()
            .map(|(c, t)| (*c, t.to_string()));
        let view = MessageView::parse(&wire).unwrap();
        let viewed = view
            .edns()
            .unwrap()
            .and_then(|e| e.ede().map(|(c, t)| (*c, t.to_string())));
        assert_eq!(owned, viewed, "code {}", code.0);
        assert_eq!(owned, Some((code, text.to_string())));
        assert!(!code.name().is_empty());
    }
}
