//! Property-based tests for the wire layer: every encode has a decode
//! that returns the original, orderings are lawful, codecs round-trip.

use proptest::prelude::*;

use dns_wire::base32;
use dns_wire::base64;
use dns_wire::buf::{Reader, Writer};
use dns_wire::message::{Flags, Message, Question};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Class, Opcode, Rcode, RrType};
use dns_wire::typebitmap::TypeBitmap;

/// A DNS label: 1–63 bytes. Generation sticks to letters/digits/hyphens
/// plus a few oddballs to exercise escaping.
fn label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            96 => proptest::char::range('a', 'z').prop_map(|c| c as u8),
            2 => Just(b'-'),
            1 => Just(b'.'),
            1 => Just(0xC3u8),
        ],
        1..=20,
    )
}

fn name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label(), 0..=6)
        .prop_filter_map("name too long", |labels| Name::from_labels(labels).ok())
}

fn rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        name().prop_map(RData::Ns),
        name().prop_map(RData::Cname),
        (any::<u16>(), name()).prop_map(|(preference, exchange)| RData::Mx { preference, exchange }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..3)
            .prop_map(RData::Txt),
        (any::<u16>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..40)).prop_map(
            |(flags, algorithm, public_key)| RData::Dnskey {
                flags,
                protocol: 3,
                algorithm,
                public_key,
            }
        ),
        (
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16),
            proptest::collection::vec(any::<u8>(), 20),
            proptest::collection::vec(any::<u16>(), 0..6),
        )
            .prop_map(|(flags, iterations, salt, next_hashed, types)| RData::Nsec3 {
                hash_alg: 1,
                flags,
                iterations,
                salt,
                next_hashed,
                types: types.into_iter().map(RrType).collect(),
            }),
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..16)).prop_map(
            |(iterations, salt)| RData::Nsec3Param { hash_alg: 1, flags: 0, iterations, salt }
        ),
    ]
}

proptest! {
    #[test]
    fn name_wire_roundtrip(n in name()) {
        let mut w = Writer::plain();
        w.name(&n);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.name().unwrap(), n);
    }

    #[test]
    fn name_display_parse_roundtrip(n in name()) {
        let shown = n.to_string();
        let parsed = Name::parse(&shown).unwrap();
        prop_assert_eq!(parsed, n);
    }

    #[test]
    fn name_compressed_roundtrip(names in proptest::collection::vec(name(), 1..6)) {
        let mut w = Writer::compressing();
        for n in &names {
            w.name(n);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for n in &names {
            prop_assert_eq!(&r.name().unwrap(), n);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn canonical_order_is_total_and_consistent(mut names in proptest::collection::vec(name(), 2..8)) {
        names.sort();
        // Sorted ⇒ pairwise ordered (antisymmetry + transitivity smoke).
        for w in names.windows(2) {
            prop_assert_ne!(w[0].canonical_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
        // Equal names compare equal regardless of case.
        for n in &names {
            prop_assert_eq!(n.canonical_cmp(&n.to_lowercase()), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn subdomain_of_concat_holds(a in name(), b in name()) {
        if let Ok(joined) = a.concat(&b) {
            prop_assert!(joined.is_subdomain_of(&b));
        }
    }

    #[test]
    fn record_roundtrip(n in name(), ttl in any::<u32>(), rd in rdata()) {
        let rec = Record { name: n, class: Class::IN, ttl, rdata: rd };
        let mut w = Writer::plain();
        rec.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(Record::decode(&mut r).unwrap(), rec);
    }

    #[test]
    fn message_roundtrip(
        id in any::<u16>(),
        qname in name(),
        answers in proptest::collection::vec((name(), any::<u32>(), rdata()), 0..5),
        rcode in 0u16..16,
        ad in any::<bool>(),
    ) {
        let msg = Message {
            id,
            flags: Flags { qr: true, opcode: Opcode::Query, ad, rd: true, ra: true, ..Default::default() },
            rcode: Rcode::from_u16(rcode),
            questions: vec![Question::new(qname, RrType::A)],
            answers: answers
                .into_iter()
                .map(|(n, ttl, rd)| Record { name: n, class: Class::IN, ttl, rdata: rd })
                .collect(),
            authorities: vec![],
            additionals: vec![],
            edns: Some(Default::default()),
        };
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn base32_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(base32::decode(&base32::encode(&data)).unwrap(), data);
    }

    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..96)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    #[test]
    fn base32_encoding_is_canonical(data in proptest::collection::vec(any::<u8>(), 0..32)) {
        // Same bytes → same string; different bytes → different string.
        let a = base32::encode(&data);
        let mut data2 = data.clone();
        if let Some(first) = data2.first_mut() {
            *first ^= 1;
            prop_assert_ne!(base32::encode(&data2), a.clone());
        }
        prop_assert_eq!(base32::encode(&data), a);
    }

    #[test]
    fn typebitmap_roundtrip(types in proptest::collection::vec(any::<u16>(), 0..24)) {
        let bm: TypeBitmap = types.into_iter().map(RrType).collect();
        let mut w = Writer::plain();
        bm.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(TypeBitmap::decode(&mut r, buf.len()).unwrap(), bm);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Message::decode(&data); // must not panic
        let mut r = Reader::new(&data);
        let _ = r.name();
    }

    #[test]
    fn truncations_never_panic(qname in name()) {
        let msg = Message::query(1, qname, RrType::A).encode();
        for cut in 0..msg.len() {
            let _ = Message::decode(&msg[..cut]); // must not panic
        }
    }
}
