//! The registered-domain population, calibrated to §5.1 of the paper:
//!
//! * 302 M registered domains, 26.6 M (8.8 %) DNSSEC-enabled,
//!   15.5 M (58.3 % of DNSSEC) NSEC3-enabled;
//! * operator structure per Table 2 (the top-10 operators exclusively
//!   serve 77.7 % of NSEC3-enabled domains, each with its parameter mix);
//! * iteration/salt marginals per Figure 1 (12.2 % zero iterations,
//!   99.9 % ≤ 25, 8.6 % no salt, 97.2 % ≤ 10-byte salt);
//! * absolute long-tail outliers (43 domains > 150 iterations of which 12
//!   at 500; 170 salts > 45 bytes of which 9 at 160 bytes from a single
//!   operator).

use sim_rng::{Permutation, Rng, SplitMix64, Xoshiro256pp};

use crate::scale::{allocate, Scale};

/// Denial configuration of one registered domain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DnssecKind {
    /// No DNSKEY records.
    None,
    /// Signed with NSEC denial.
    Nsec,
    /// Signed with NSEC3 denial.
    Nsec3 {
        /// Additional iterations.
        iterations: u16,
        /// Salt length in bytes (contents are irrelevant to the analysis).
        salt_len: u8,
        /// Opt-out flag set on its NSEC3 records.
        opt_out: bool,
    },
}

/// One registered domain.
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Fully qualified name (e.g. `d123456.com.`).
    pub name: String,
    /// The exclusive NS operator's registered domain (e.g.
    /// `squarespacedns.example.`), or `None` for multi-operator setups.
    pub operator: Option<&'static str>,
    /// DNSSEC state.
    pub dnssec: DnssecKind,
}

impl DomainSpec {
    /// Is the domain NSEC3-enabled?
    pub fn nsec3(&self) -> Option<(u16, u8, bool)> {
        match self.dnssec {
            DnssecKind::Nsec3 {
                iterations,
                salt_len,
                opt_out,
            } => Some((iterations, salt_len, opt_out)),
            _ => None,
        }
    }
}

/// One operator's parameter mix: `(iterations, salt bytes, weight)`.
pub type ParamMix = &'static [(u16, u8, f64)];

/// Table 2: `(operator registered-domain, display name, share % of
/// NSEC3-enabled domains, parameter mix)`.
pub const TABLE2_OPERATORS: &[(&str, &str, f64, ParamMix)] = &[
    (
        "squarespacedns.example.",
        "Squarespace",
        39.4,
        &[(1, 8, 1.0)],
    ),
    (
        "onecom-dns.example.",
        "one.com",
        9.5,
        &[(5, 5, 0.40), (5, 4, 0.30), (1, 2, 0.15), (1, 4, 0.15)],
    ),
    ("ovhcloud-dns.example.", "OVHcloud", 8.4, &[(8, 8, 1.0)]),
    ("wix-dns.example.", "Wix.com", 5.0, &[(1, 8, 1.0)]),
    // TransIP: 0.3 % stragglers still on the pre-2021 value of 100.
    (
        "transip-dns.example.",
        "TransIP",
        4.2,
        &[(0, 8, 0.997), (100, 8, 0.003)],
    ),
    ("loopia-dns.example.", "Loopia", 3.6, &[(1, 1, 1.0)]),
    (
        "domainnameshop-dns.example.",
        "domainname.shop",
        2.7,
        &[(0, 0, 1.0)],
    ),
    ("timeweb-dns.example.", "TimeWeb", 2.1, &[(3, 0, 1.0)]),
    (
        "hostnet-dns.example.",
        "Hostnet",
        1.5,
        &[(1, 4, 0.5), (0, 0, 0.5)],
    ),
    ("hostpoint-dns.example.", "Hostpoint", 1.3, &[(1, 40, 1.0)]),
];

/// The non-top-10 remainder (22.3 % of NSEC3-enabled domains): a mix
/// calibrated so the *aggregate* marginals reproduce Figure 1
/// (12.2 % iterations = 0, 99.9 % ≤ 25; 8.6 % no salt, 97.2 % ≤ 10 B).
const OTHER_MIX: &[(u16, u8, f64)] = &[
    (0, 0, 0.13),
    (0, 8, 0.075),
    (1, 0, 0.007),
    (1, 8, 0.35),
    (1, 16, 0.05),
    (2, 8, 0.05),
    (5, 8, 0.08),
    (10, 4, 0.08),
    (12, 8, 0.06),
    (15, 2, 0.04),
    (20, 8, 0.03),
    (25, 10, 0.047),
    (50, 8, 0.0005),
    (100, 8, 0.0003),
    (150, 12, 0.0002),
];

/// Absolute long-tail outliers (injected unscaled; see DESIGN.md §5):
/// `(iterations, salt_len, count, operator)`.
const ITERATION_TAIL: &[(u16, u8, u64)] = &[
    (200, 8, 10),
    (300, 8, 10),
    (400, 8, 11),
    (500, 8, 12), // the twelve record holders
];

/// Salt long tail: 170 domains over 45 bytes, 9 of them at 160 bytes from
/// one operator.
const SALT_TAIL: &[(u16, u8, u64)] = &[
    (1, 46, 80),
    (1, 64, 50),
    (1, 100, 31),
    (1, 160, 9), // single-operator record holders
];

/// Operator name for the 160-byte-salt domains (one operator serves all 9).
pub const SALTY_OPERATOR: &str = "salty-dns.example.";
/// Operator for the >150-iteration stragglers.
pub const TAIL_OPERATOR: &str = "iteration-tail-dns.example.";

/// Paper §5.1 totals.
pub mod totals {
    /// Registered domains analyzed.
    pub const REGISTERED: u64 = 302_000_000;
    /// DNSSEC-enabled (8.8 %).
    pub const DNSSEC: u64 = 26_600_000;
    /// NSEC3-enabled.
    pub const NSEC3: u64 = 15_500_000;
    /// Share of NSEC3-enabled domains with the opt-out flag (6.4 %).
    pub const OPT_OUT_PCT: f64 = 6.4;
}

/// TLD labels domains are spread over (cosmetic).
const TLD_MIX: &[(&str, f64)] = &[
    ("com", 45.0),
    ("net", 10.0),
    ("org", 8.0),
    ("de", 7.0),
    ("nl", 5.0),
    ("se", 4.0),
    ("ch", 3.0),
    ("fr", 3.0),
    ("uk", 3.0),
    ("info", 2.0),
    ("xyz", 10.0),
];

/// Per-domain denial template shared by every member of a [`Block`].
#[derive(Clone, Copy, Debug)]
enum Template {
    Plain,
    Nsec,
    Nsec3 {
        iterations: u16,
        salt_len: u8,
        /// Mix-block domains draw the opt-out flag per domain at the
        /// paper's 6.4 % rate; tail-block domains never set it.
        random_opt_out: bool,
    },
}

/// A contiguous run of identically configured domains in canonical
/// (pre-permutation) index order.
#[derive(Clone, Copy, Debug)]
struct Block {
    count: u64,
    operator: Option<&'static str>,
    template: Template,
}

/// The population layout at one scale: every block with its canonical
/// start index. Marginals live entirely here — generation only reads it
/// — so the shard-stable path and the legacy full-list path cannot
/// disagree on counts.
struct Layout {
    blocks: Vec<Block>,
    /// `starts[i]` = canonical index of the first domain in `blocks[i]`.
    starts: Vec<u64>,
    total: u64,
}

impl Layout {
    fn new(scale: Scale) -> Self {
        let total = scale.apply(totals::REGISTERED);
        let dnssec = scale.apply(totals::DNSSEC).min(total);
        let nsec3_bulk = scale.apply(totals::NSEC3).min(dnssec);
        let nsec = dnssec - nsec3_bulk;
        let plain = total - dnssec;

        let mut blocks = Vec::new();
        blocks.push(Block {
            count: plain,
            operator: None,
            template: Template::Plain,
        });
        blocks.push(Block {
            count: nsec,
            operator: None,
            template: Template::Nsec,
        });

        // NSEC3-enabled: operator-structured per Table 2.
        let mut op_weights: Vec<f64> = TABLE2_OPERATORS.iter().map(|(_, _, w, _)| *w).collect();
        op_weights.push(22.3); // "other"
        let op_counts = allocate(nsec3_bulk, &op_weights);
        for (op_idx, &count) in op_counts.iter().enumerate() {
            let (operator, mix): (Option<&'static str>, &[(u16, u8, f64)]) =
                if op_idx < TABLE2_OPERATORS.len() {
                    let (domain, _, _, mix) = TABLE2_OPERATORS[op_idx];
                    (Some(domain), mix)
                } else {
                    (None, OTHER_MIX)
                };
            let mix_weights: Vec<f64> = mix.iter().map(|(_, _, w)| *w).collect();
            let mix_counts = allocate(count, &mix_weights);
            for (m_idx, &m_count) in mix_counts.iter().enumerate() {
                let (iterations, salt_len, _) = mix[m_idx];
                blocks.push(Block {
                    count: m_count,
                    operator,
                    template: Template::Nsec3 {
                        iterations,
                        salt_len,
                        random_opt_out: true,
                    },
                });
            }
        }

        // Absolute long tails (unscaled; see DESIGN.md §5).
        for &(iterations, salt_len, count) in ITERATION_TAIL {
            blocks.push(Block {
                count,
                operator: Some(TAIL_OPERATOR),
                template: Template::Nsec3 {
                    iterations,
                    salt_len,
                    random_opt_out: false,
                },
            });
        }
        for &(iterations, salt_len, count) in SALT_TAIL {
            blocks.push(Block {
                count,
                operator: if salt_len == 160 {
                    Some(SALTY_OPERATOR)
                } else {
                    None
                },
                template: Template::Nsec3 {
                    iterations,
                    salt_len,
                    random_opt_out: false,
                },
            });
        }

        // Zero-count blocks (tiny scales) would break `locate`'s
        // partition-point arithmetic: drop them.
        blocks.retain(|b| b.count > 0);
        let mut starts = Vec::with_capacity(blocks.len());
        let mut acc = 0u64;
        for b in &blocks {
            starts.push(acc);
            acc += b.count;
        }
        Layout {
            blocks,
            starts,
            total: acc,
        }
    }

    /// The block containing canonical index `j`. O(log blocks).
    fn locate(&self, j: u64) -> &Block {
        debug_assert!(j < self.total);
        let idx = self.starts.partition_point(|&s| s <= j) - 1;
        &self.blocks[idx]
    }
}

/// Total population size at `scale`, tails included — the `len` that
/// [`generate_domains_range`] ranges over.
pub fn domain_count(scale: Scale) -> u64 {
    Layout::new(scale).total
}

/// Random-access handle over the whole population at one `(scale, seed)`
/// — the streaming census's view of §5.1's 302 M domains. Construction
/// builds only the block [`Layout`] (a few hundred entries) and the
/// keyed [`Permutation`]; [`DomainGenerator::get`] then materialises any
/// output position in O(1) with no state spanning positions, so a
/// million-domain scan holds exactly one `DomainSpec` at a time.
///
/// `get(i)` equals `generate_domains(scale, seed)[i]` by construction:
/// both paths go through this type.
pub struct DomainGenerator {
    layout: Layout,
    perm: Permutation,
    /// Per-domain RNG base, mixed with the canonical index per `get`.
    base: u64,
}

impl DomainGenerator {
    /// The population at `scale`, ordered by the keyed permutation for
    /// `seed`.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let layout = Layout::new(scale);
        let perm = Permutation::new(layout.total, SplitMix64::new(seed ^ 0x7e57_ab1e).next_u64());
        let base = SplitMix64::new(seed ^ 0xd05a1e5u64).next_u64();
        DomainGenerator { layout, perm, base }
    }

    /// Population size, tails included.
    pub fn len(&self) -> u64 {
        self.layout.total
    }

    /// True only at scales so small the layout rounds to nothing.
    pub fn is_empty(&self) -> bool {
        self.layout.total == 0
    }

    /// The domain at output position `i` — `perm.apply(i)` picks the
    /// canonical index, the layout supplies the template, and a private
    /// RNG seeded from `(seed, canonical index)` draws the cosmetic TLD
    /// and the opt-out flag.
    pub fn get(&self, i: u64) -> DomainSpec {
        assert!(
            i < self.layout.total,
            "index {i} exceeds population {}",
            self.layout.total
        );
        let j = self.perm.apply(i);
        let block = self.layout.locate(j);
        let mut rng = Xoshiro256pp::seed_from_u64(
            self.base
                .wrapping_add(j.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let pick: f64 = rng.gen_range(0.0..100.0);
        let mut acc = 0.0;
        let mut tld = TLD_MIX[0].0;
        for (t, w) in TLD_MIX {
            acc += w;
            if pick < acc {
                tld = t;
                break;
            }
        }
        let dnssec = match block.template {
            Template::Plain => DnssecKind::None,
            Template::Nsec => DnssecKind::Nsec,
            Template::Nsec3 {
                iterations,
                salt_len,
                random_opt_out,
            } => DnssecKind::Nsec3 {
                iterations,
                salt_len,
                opt_out: random_opt_out && rng.gen_bool(totals::OPT_OUT_PCT / 100.0),
            },
        };
        DomainSpec {
            name: format!("d{}.{tld}.", j + 1),
            operator: block.operator,
            dnssec,
        }
    }
}

/// Generate output positions `range` of the population at `scale` —
/// exactly the slice `generate_domains(scale, seed)[range]`, computed in
/// O(|range|) regardless of where the range starts.
///
/// A convenience over [`DomainGenerator`]; no state spans positions, so
/// any sharding of `0..domain_count(scale)` concatenates to the full
/// list.
pub fn generate_domains_range(
    scale: Scale,
    seed: u64,
    range: std::ops::Range<u64>,
) -> Vec<DomainSpec> {
    let gen = DomainGenerator::new(scale, seed);
    assert!(
        range.end <= gen.len(),
        "range {range:?} exceeds population {}",
        gen.len()
    );
    range.map(|i| gen.get(i)).collect()
}

/// Generate the registered-domain population at `scale`.
///
/// Deterministic for a given `(scale, seed)`. The output order is a
/// keyed permutation of the block layout, so consumers can take prefixes
/// as unbiased samples — and any contiguous slice can be regenerated
/// independently with [`generate_domains_range`].
pub fn generate_domains(scale: Scale, seed: u64) -> Vec<DomainSpec> {
    let total = domain_count(scale);
    generate_domains_range(scale, seed, 0..total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Vec<DomainSpec> {
        // Bench scale: large enough that the absolute tail injections
        // (~213 domains) do not distort the percentage marginals.
        generate_domains(Scale(1.0 / 1_000.0), 7)
    }

    #[test]
    fn totals_scale() {
        let p = pop();
        // 302M / 1k = 302K bulk + ~213 tail outliers.
        assert!(
            (301_500..303_000).contains(&(p.len() as u64)),
            "{}",
            p.len()
        );
        let dnssec = p.iter().filter(|d| d.dnssec != DnssecKind::None).count() as f64;
        let pct = dnssec / p.len() as f64 * 100.0;
        assert!((8.0..10.5).contains(&pct), "DNSSEC share {pct}");
    }

    #[test]
    fn nsec3_share_of_dnssec() {
        let p = pop();
        let dnssec = p.iter().filter(|d| d.dnssec != DnssecKind::None).count() as f64;
        let nsec3 = p.iter().filter(|d| d.nsec3().is_some()).count() as f64;
        let pct = nsec3 / dnssec * 100.0;
        assert!((55.0..65.0).contains(&pct), "NSEC3 share of DNSSEC: {pct}");
    }

    #[test]
    fn zero_iteration_share_matches_figure1() {
        let p = pop();
        let nsec3: Vec<_> = p.iter().filter_map(|d| d.nsec3()).collect();
        let zero = nsec3.iter().filter(|(it, _, _)| *it == 0).count() as f64;
        let pct = zero / nsec3.len() as f64 * 100.0;
        assert!(
            (10.5..14.0).contains(&pct),
            "it=0 share {pct} (paper: 12.2)"
        );
    }

    #[test]
    fn no_salt_share_matches_figure1() {
        let p = pop();
        let nsec3: Vec<_> = p.iter().filter_map(|d| d.nsec3()).collect();
        let none = nsec3.iter().filter(|(_, s, _)| *s == 0).count() as f64;
        let pct = none / nsec3.len() as f64 * 100.0;
        assert!(
            (7.0..10.5).contains(&pct),
            "no-salt share {pct} (paper: 8.6)"
        );
    }

    #[test]
    fn tail_outliers_present_at_any_scale() {
        let p = generate_domains(Scale(1.0 / 100_000.0), 1);
        let at_500 = p
            .iter()
            .filter(|d| matches!(d.nsec3(), Some((500, _, _))))
            .count();
        assert_eq!(at_500, 12, "the twelve 500-iteration domains");
        let salt160 = p
            .iter()
            .filter(|d| matches!(d.nsec3(), Some((_, 160, _))))
            .collect::<Vec<_>>();
        assert_eq!(salt160.len(), 9);
        assert!(salt160.iter().all(|d| d.operator == Some(SALTY_OPERATOR)));
        let over_150 = p
            .iter()
            .filter(|d| matches!(d.nsec3(), Some((it, _, _)) if it > 150))
            .count();
        assert_eq!(over_150, 43, "43 domains above 150 iterations");
    }

    #[test]
    fn opt_out_rate() {
        let p = pop();
        let nsec3: Vec<_> = p.iter().filter_map(|d| d.nsec3()).collect();
        let oo = nsec3.iter().filter(|(_, _, o)| *o).count() as f64;
        let pct = oo / nsec3.len() as f64 * 100.0;
        assert!(
            (4.5..8.5).contains(&pct),
            "opt-out share {pct} (paper: 6.4)"
        );
    }

    #[test]
    fn squarespace_dominates() {
        let p = pop();
        let nsec3_total = p.iter().filter(|d| d.nsec3().is_some()).count() as f64;
        let sq = p
            .iter()
            .filter(|d| d.operator == Some("squarespacedns.example."))
            .count() as f64;
        let pct = sq / nsec3_total * 100.0;
        assert!(
            (37.0..41.0).contains(&pct),
            "Squarespace share {pct} (paper: 39.4)"
        );
        // Its parameters are 1/8.
        assert!(p
            .iter()
            .filter(|d| d.operator == Some("squarespacedns.example."))
            .all(|d| matches!(d.nsec3(), Some((1, 8, _)))));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_domains(Scale(1.0 / 100_000.0), 5);
        let b = generate_domains(Scale(1.0 / 100_000.0), 5);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x.name == y.name));
    }

    #[test]
    fn different_seed_different_order() {
        let a = generate_domains(Scale(1.0 / 100_000.0), 5);
        let b = generate_domains(Scale(1.0 / 100_000.0), 6);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).any(|(x, y)| x.name != y.name));
    }

    #[test]
    fn names_are_unique() {
        let p = generate_domains(Scale(1.0 / 10_000.0), 3);
        let mut names: Vec<&str> = p.iter().map(|d| d.name.as_str()).collect();
        let count = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), count);
    }

    #[test]
    fn range_generation_matches_full_list_slices() {
        let scale = Scale(1.0 / 100_000.0);
        let seed = 11;
        let total = domain_count(scale);
        let full = generate_domains(scale, seed);
        assert_eq!(full.len() as u64, total);
        // Arbitrary shard boundaries, including empty and whole-list.
        let cuts = [
            0..0,
            0..1,
            0..total / 3,
            total / 3..total / 2,
            total / 2..total,
            total - 1..total,
            0..total,
        ];
        for range in cuts {
            let part = generate_domains_range(scale, seed, range.clone());
            let expect = &full[range.start as usize..range.end as usize];
            assert_eq!(part.len(), expect.len(), "{range:?}");
            for (a, b) in part.iter().zip(expect) {
                assert_eq!(a.name, b.name, "{range:?}");
                assert_eq!(a.operator, b.operator, "{range:?}");
                assert_eq!(a.dnssec, b.dnssec, "{range:?}");
            }
        }
    }

    #[test]
    fn generator_random_access_matches_full_list() {
        let scale = Scale(1.0 / 100_000.0);
        let seed = 11;
        let full = generate_domains(scale, seed);
        let gen = DomainGenerator::new(scale, seed);
        assert_eq!(gen.len(), full.len() as u64);
        assert!(!gen.is_empty());
        // Arbitrary positions, including both ends — and out of order,
        // since random access must not depend on visit order.
        for i in [gen.len() - 1, 0, gen.len() / 2, 17, gen.len() / 3] {
            let d = gen.get(i);
            let e = &full[i as usize];
            assert_eq!(d.name, e.name, "position {i}");
            assert_eq!(d.operator, e.operator, "position {i}");
            assert_eq!(d.dnssec, e.dnssec, "position {i}");
        }
    }

    #[test]
    fn iterations_99_9_pct_at_most_25() {
        let p = pop();
        let nsec3: Vec<_> = p.iter().filter_map(|d| d.nsec3()).collect();
        let le25 = nsec3.iter().filter(|(it, _, _)| *it <= 25).count() as f64;
        let pct = le25 / nsec3.len() as f64 * 100.0;
        assert!(pct < 100.0);
        assert!(pct > 99.0, "≤25 iterations share {pct} (paper: 99.9)");
    }
}
