//! The paper's future-work item ii made executable: "monitor the maximum
//! additional iteration values enforced by recursive resolvers" over
//! time. Each era's validator mix is calibrated to the vendor release
//! history the paper cites (§4.2): the 2021 round of updates introduced
//! the 150 limit, the late-2023 CVE patches lowered it to 50, and the
//! paper's 2024 measurement sits in between.

use crate::resolvers::Behavior;

/// One snapshot of the resolver ecosystem.
#[derive(Clone, Debug)]
pub struct Era {
    /// Label for reports.
    pub label: &'static str,
    /// Nominal year.
    pub year: u16,
    /// Validator behaviour mix (weights in percent).
    pub mix: &'static [(Behavior, f64)],
}

/// Pre-2021: RFC 5155's generous key-size limits only; effectively no
/// resolver-side iteration limit in practice.
const MIX_2020: &[(Behavior, f64)] = &[
    (Behavior::ValidatorUnlimited, 97.0),
    (
        Behavior::ServfailFrom {
            first: 1,
            technitium: false,
        },
        0.4,
    ),
    (
        Behavior::InsecureAt {
            limit: 150,
            google_style: false,
        },
        2.6,
    ),
];

/// 2021–2022: BIND 9.16.16 / Unbound 1.13.2 / Knot 5.3.1 / PowerDNS 4.5
/// ship the 150 limit; Google moves to 100.
const MIX_2022: &[(Behavior, f64)] = &[
    (Behavior::ValidatorUnlimited, 45.0),
    (
        Behavior::InsecureAt {
            limit: 150,
            google_style: false,
        },
        25.0,
    ),
    (
        Behavior::InsecureAt {
            limit: 100,
            google_style: true,
        },
        20.0,
    ),
    (
        Behavior::ServfailFrom {
            first: 151,
            technitium: false,
        },
        9.3,
    ),
    (
        Behavior::ServfailFrom {
            first: 1,
            technitium: false,
        },
        0.4,
    ),
    (
        Behavior::FlakyGap {
            insecure: 100,
            servfail_from: 151,
        },
        0.3,
    ),
];

/// March–April 2024: the paper's measured mix (see `resolvers`).
const MIX_2024: &[(Behavior, f64)] = &[
    (
        Behavior::InsecureAt {
            limit: 100,
            google_style: true,
        },
        36.40,
    ),
    (
        Behavior::InsecureAt {
            limit: 150,
            google_style: false,
        },
        21.54,
    ),
    (
        Behavior::InsecureAt {
            limit: 50,
            google_style: false,
        },
        1.72,
    ),
    (Behavior::Item7Violator { limit: 150 }, 0.12),
    (
        Behavior::ServfailFrom {
            first: 151,
            technitium: false,
        },
        17.95,
    ),
    (
        Behavior::ServfailFrom {
            first: 1,
            technitium: false,
        },
        0.37,
    ),
    (
        Behavior::ServfailFrom {
            first: 101,
            technitium: true,
        },
        0.08,
    ),
    (
        Behavior::FlakyGap {
            insecure: 100,
            servfail_from: 151,
        },
        4.30,
    ),
    (Behavior::ValidatorUnlimited, 17.52),
];

/// Projection: the CVE-2023-50868 patches (limit 50) fully deployed.
const MIX_PATCHED: &[(Behavior, f64)] = &[
    (
        Behavior::InsecureAt {
            limit: 50,
            google_style: false,
        },
        55.0,
    ),
    (
        Behavior::InsecureAt {
            limit: 100,
            google_style: true,
        },
        30.0,
    ),
    (
        Behavior::ServfailFrom {
            first: 51,
            technitium: false,
        },
        12.0,
    ),
    (
        Behavior::ServfailFrom {
            first: 1,
            technitium: false,
        },
        0.4,
    ),
    (Behavior::ValidatorUnlimited, 2.6),
];

/// The monitored timeline.
pub fn eras() -> Vec<Era> {
    vec![
        Era {
            label: "pre-guidance",
            year: 2020,
            mix: MIX_2020,
        },
        Era {
            label: "post-2021 vendor updates",
            year: 2022,
            mix: MIX_2022,
        },
        Era {
            label: "paper measurement",
            year: 2024,
            mix: MIX_2024,
        },
        Era {
            label: "CVE patches fully deployed",
            year: 2026,
            mix: MIX_PATCHED,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolvers::generate_fleet_with_mix;
    use crate::Scale;

    #[test]
    fn mixes_sum_to_100() {
        for era in eras() {
            let sum: f64 = era.mix.iter().map(|(_, w)| *w).sum();
            assert!((sum - 100.0).abs() < 0.1, "{}: {sum}", era.label);
        }
    }

    #[test]
    fn eras_are_monotone_in_time_and_strictness() {
        let es = eras();
        assert!(es.windows(2).all(|w| w[0].year < w[1].year));
        // Unlimited validators shrink over time.
        let unlimited_share = |mix: &[(Behavior, f64)]| {
            mix.iter()
                .filter(|(b, _)| matches!(b, Behavior::ValidatorUnlimited))
                .map(|(_, w)| *w)
                .sum::<f64>()
        };
        for w in es.windows(2) {
            assert!(
                unlimited_share(w[0].mix) >= unlimited_share(w[1].mix),
                "{} → {}",
                w[0].label,
                w[1].label
            );
        }
    }

    #[test]
    fn fleets_generate_for_every_era() {
        for era in eras() {
            let fleet = generate_fleet_with_mix(Scale(1.0 / 2_000.0), 5, era.mix);
            assert!(!fleet.is_empty(), "{}", era.label);
            let validators = fleet.iter().filter(|r| r.behavior.validates()).count();
            assert!(validators > 10, "{}: {validators}", era.label);
        }
    }
}
