//! Adversarial denial-of-existence workloads.
//!
//! Three attack families drawn from the resource-exhaustion literature the
//! paper's §7 mitigation discussion anticipates, plus an RFC 9276 baseline
//! for ratio reporting:
//!
//! * **MaxIterations** — the protocol-maximum NSEC3 parameters (2,500
//!   additional iterations, 255-byte salt; RFC 5155 §10.3's largest cap).
//!   Every denial proof costs the validator thousands of SHA-1
//!   compressions (CVE-2023-50868 / arXiv 2403.15233 territory).
//! * **DeepChain** — parameters crafted to slip *under* an
//!   iteration-clamping resolver's SERVFAIL threshold (150 iterations,
//!   the RFC 5155 §10.3 cap for 1024-bit keys) while maximizing hash
//!   work per NXDOMAIN through deep closest-encloser walks: every query
//!   name carries many nonexistent labels, and RFC 5155 §8.3 makes the
//!   resolver hash each candidate encloser.
//! * **KeytagCollision** — RFC 9276-compliant NSEC3 parameters, but the
//!   zone publishes a sheaf of decoy DNSKEYs whose key tags all collide
//!   with the real ZSK's (the KeyTrap ingredient, arXiv 2406.03133).
//!   Tags are hints, not identifiers, so a validator must attempt a
//!   signature verification against every colliding key.
//!
//! This module is *plain data*: which zones exist, with which knobs.
//! Translating specs into signed zones (and decoy keys into DNSKEY
//! RDATAs) happens in `nsec3-core`, which owns the `dns-zone` dependency.

/// One adversarial workload family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackFamily {
    /// RFC 9276-compliant control zone (0 iterations, no salt).
    Baseline,
    /// Protocol-maximum iterations and salt (RFC 5155 §10.3 upper cap).
    MaxIterations,
    /// Clamp-evading iterations with deep closest-encloser chains.
    DeepChain,
    /// Compliant NSEC3 parameters plus colliding-keytag decoy DNSKEYs.
    KeytagCollision,
}

impl AttackFamily {
    /// All families, in reporting order (baseline first).
    pub const ALL: [AttackFamily; 4] = [
        AttackFamily::Baseline,
        AttackFamily::MaxIterations,
        AttackFamily::DeepChain,
        AttackFamily::KeytagCollision,
    ];

    /// Stable lowercase label for report keys and zone names.
    pub fn label(self) -> &'static str {
        match self {
            AttackFamily::Baseline => "baseline",
            AttackFamily::MaxIterations => "max-iterations",
            AttackFamily::DeepChain => "deep-chain",
            AttackFamily::KeytagCollision => "keytag-collision",
        }
    }

    /// NSEC3 additional iterations for this family.
    pub fn iterations(self) -> u16 {
        match self {
            AttackFamily::Baseline => 0,
            // RFC 5155 §10.3's largest cap (keys > 2048 bits).
            AttackFamily::MaxIterations => 2_500,
            // Exactly the §10.3 cap for 1024-bit keys: a clamp that
            // SERVFAILs only *above* 150 lets this through.
            AttackFamily::DeepChain => 150,
            AttackFamily::KeytagCollision => 0,
        }
    }

    /// NSEC3 salt length in bytes (255 is the wire-format maximum).
    pub fn salt_len(self) -> usize {
        match self {
            AttackFamily::Baseline => 0,
            AttackFamily::MaxIterations => 255,
            AttackFamily::DeepChain => 8,
            AttackFamily::KeytagCollision => 0,
        }
    }

    /// Nonexistent labels per attack query name. Each label below the
    /// zone apex is a closest-encloser candidate the validator must hash
    /// (RFC 5155 §8.3), so depth multiplies per-query iteration cost.
    pub fn label_depth(self) -> usize {
        match self {
            AttackFamily::DeepChain => 14,
            _ => 4,
        }
    }

    /// Decoy DNSKEYs published with key tags colliding with the ZSK's.
    pub fn decoy_keys(self) -> usize {
        match self {
            AttackFamily::KeytagCollision => 24,
            _ => 0,
        }
    }
}

/// One adversarial zone: an [`AttackFamily`] instantiated under a name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversarialZoneSpec {
    /// Fully-qualified zone name (e.g. `atk0-max-iterations.example.`).
    pub name: String,
    /// The workload family this zone implements.
    pub family: AttackFamily,
    /// NSEC3 additional iterations.
    pub iterations: u16,
    /// NSEC3 salt length in bytes.
    pub salt_len: usize,
    /// Labels per attack query (closest-encloser chain depth).
    pub label_depth: usize,
    /// Number of colliding-keytag decoy DNSKEYs to publish.
    pub decoy_keys: usize,
}

/// Generate `per_family` zones of every family under `parent`
/// (a fully-qualified suffix such as `example.`). Deterministic.
pub fn generate_attack_zones(parent: &str, per_family: usize) -> Vec<AdversarialZoneSpec> {
    let mut out = Vec::with_capacity(per_family * AttackFamily::ALL.len());
    for family in AttackFamily::ALL {
        for i in 0..per_family {
            out.push(AdversarialZoneSpec {
                name: format!("atk{i}-{}.{parent}", family.label()),
                family,
                iterations: family.iterations(),
                salt_len: family.salt_len(),
                label_depth: family.label_depth(),
                decoy_keys: family.decoy_keys(),
            });
        }
    }
    out
}

/// The `q`-th attack query name for `zone`: `depth` labels, every one
/// keyed to `q` so no closest-encloser hash is shared between queries
/// (a cache-busting NXDOMAIN workload).
pub fn attack_qname(zone: &str, depth: usize, q: u64) -> String {
    let mut name = String::new();
    for lvl in 0..depth {
        name.push_str(&format!("v{lvl}q{q}."));
    }
    name.push_str(zone);
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_match_their_knobs() {
        assert_eq!(AttackFamily::Baseline.iterations(), 0);
        assert_eq!(AttackFamily::MaxIterations.iterations(), 2_500);
        assert_eq!(AttackFamily::MaxIterations.salt_len(), 255);
        // DeepChain must evade a `servfail_above(150)` clamp: strictly
        // greater-than triggers, so 150 exactly slips through.
        assert_eq!(AttackFamily::DeepChain.iterations(), 150);
        assert!(AttackFamily::DeepChain.label_depth() > AttackFamily::Baseline.label_depth());
        assert_eq!(AttackFamily::KeytagCollision.decoy_keys(), 24);
        assert_eq!(AttackFamily::KeytagCollision.iterations(), 0);
    }

    #[test]
    fn zone_generation_is_deterministic_and_complete() {
        let a = generate_attack_zones("example.", 2);
        let b = generate_attack_zones("example.", 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        for family in AttackFamily::ALL {
            assert_eq!(a.iter().filter(|z| z.family == family).count(), 2);
        }
        let names: std::collections::BTreeSet<_> = a.iter().map(|z| z.name.clone()).collect();
        assert_eq!(names.len(), 8, "zone names unique");
        assert!(names.contains("atk0-keytag-collision.example."));
    }

    #[test]
    fn attack_qnames_are_unique_and_deep() {
        let zone = "atk0-deep-chain.example.";
        let q0 = attack_qname(zone, 14, 0);
        let q1 = attack_qname(zone, 14, 1);
        assert_ne!(q0, q1);
        assert!(q0.ends_with(zone));
        // depth labels + the zone's own labels.
        assert_eq!(q0.matches('.').count(), 14 + zone.matches('.').count());
        // No label shared between queries: every level carries q.
        assert!(q0.split('.').take(14).all(|l| l.ends_with("q0")));
        // Stays within DNS limits (255 octets, 63 per label).
        assert!(q0.len() < 255);
        assert!(q0.split('.').all(|l| l.len() < 64));
    }
}
