//! The TLD population — exact, not sampled (there are only 1,449).
//!
//! Calibration (§5.1): 1,449 delegated TLDs; 1,354 DNSSEC-enabled; 1,302
//! NSEC3-enabled (96.2 % of DNSSEC). Iterations: 688 at 0, 447 at 100
//! (all operated by one registry services provider, Identity Digital,
//! later reduced to 0), the remainder spread over small values.
//! Salt: 672 none, 558 eight bytes, 7 ten bytes (the maximum), the rest
//! assorted. Opt-out: 85.4 % of NSEC3-enabled TLDs. At least 1,105
//! publicly share zone data (CZDS/AXFR).

use crate::domains::DnssecKind;

/// One top-level domain.
#[derive(Clone, Debug)]
pub struct TldSpec {
    /// The TLD (e.g. `tld0042.`).
    pub name: String,
    /// DNSSEC state (TLDs use NSEC or NSEC3; 95 are unsigned).
    pub dnssec: DnssecKind,
    /// Managed by the "Identity Digital"-like registry services provider.
    pub registry_provider: Option<&'static str>,
    /// Publishes its zone file (CZDS or open AXFR).
    pub shares_zone: bool,
    /// Estimated registered domains under it (for the ≥12.6 M estimate of
    /// domains under the 447 TLDs).
    pub est_domains: u64,
}

/// The registry provider behind the 447 iteration-100 TLDs.
pub const IDENTITY_DIGITAL: &str = "Identity Digital";

/// Paper §5.1 TLD totals.
pub mod totals {
    /// Delegated TLDs analyzed.
    pub const TLDS: u64 = 1_449;
    /// DNSSEC-enabled TLDs.
    pub const DNSSEC: u64 = 1_354;
    /// NSEC3-enabled TLDs.
    pub const NSEC3: u64 = 1_302;
    /// NSEC3 TLDs with zero additional iterations.
    pub const ITER_ZERO: u64 = 688;
    /// NSEC3 TLDs with 100 additional iterations (Identity Digital).
    pub const ITER_100: u64 = 447;
    /// NSEC3 TLDs with no salt.
    pub const SALT_NONE: u64 = 672;
    /// NSEC3 TLDs with the common 8-byte salt.
    pub const SALT_8: u64 = 558;
    /// NSEC3 TLDs with the maximum observed 10-byte salt.
    pub const SALT_10: u64 = 7;
    /// Opt-out share among NSEC3 TLDs (%).
    pub const OPT_OUT_PCT: f64 = 85.4;
    /// NSEC3 TLDs sharing zone data.
    pub const SHARES_ZONE: u64 = 1_105;
    /// Lower-bound domain count under the 447 iteration-100 TLDs.
    pub const DOMAINS_UNDER_447: u64 = 12_600_000;
}

/// Generate the full (unscaled) TLD population, deterministic.
pub fn generate_tlds() -> Vec<TldSpec> {
    let mut out = Vec::with_capacity(totals::TLDS as usize);
    let nsec3 = totals::NSEC3;
    let nsec = totals::DNSSEC - nsec3; // 52
    let unsigned = totals::TLDS - totals::DNSSEC; // 95

    // Iteration assignment for NSEC3 TLDs: 688 × 0, 447 × 100, the
    // remaining 167 spread over 1/5/10 (values the CDF shows between).
    let mut iterations: Vec<u16> = Vec::with_capacity(nsec3 as usize);
    iterations.extend(std::iter::repeat_n(0, totals::ITER_ZERO as usize));
    iterations.extend(std::iter::repeat_n(100, totals::ITER_100 as usize));
    let remainder = (nsec3 - totals::ITER_ZERO - totals::ITER_100) as usize; // 167
    for i in 0..remainder {
        iterations.push(match i % 3 {
            0 => 1,
            1 => 5,
            _ => 10,
        });
    }

    // Salt assignment: 672 none, 558 × 8 B, 7 × 10 B, remaining 65
    // assorted small lengths.
    let mut salts: Vec<u8> = Vec::with_capacity(nsec3 as usize);
    salts.extend(std::iter::repeat_n(0, totals::SALT_NONE as usize));
    salts.extend(std::iter::repeat_n(8, totals::SALT_8 as usize));
    salts.extend(std::iter::repeat_n(10, totals::SALT_10 as usize));
    let rest = (nsec3 as usize) - salts.len(); // 65
    for i in 0..rest {
        salts.push(match i % 3 {
            0 => 4,
            1 => 2,
            _ => 6,
        });
    }
    // Pair iterations and salts such that the Identity Digital block is
    // contiguous and carries the common 8-byte salt: rotate the salt list
    // so index ranges line up plausibly. (Exact joint distribution is not
    // published; marginals are what we must reproduce.)
    let rot = totals::ITER_ZERO as usize % salts.len();
    salts.rotate_left(rot);

    let opt_out_count = (nsec3 as f64 * totals::OPT_OUT_PCT / 100.0).round() as usize;
    for i in 0..nsec3 as usize {
        let is_id = iterations[i] == 100;
        out.push(TldSpec {
            name: format!("tld{i:04}."),
            dnssec: DnssecKind::Nsec3 {
                iterations: iterations[i],
                salt_len: salts[i],
                opt_out: i < opt_out_count,
            },
            registry_provider: if is_id { Some(IDENTITY_DIGITAL) } else { None },
            shares_zone: i < totals::SHARES_ZONE as usize,
            est_domains: if is_id {
                // ≥ 12.6 M across 447 TLDs.
                totals::DOMAINS_UNDER_447 / totals::ITER_100 + 1
            } else {
                50_000
            },
        });
    }
    for i in 0..nsec as usize {
        out.push(TldSpec {
            name: format!("ntld{i:03}."),
            dnssec: DnssecKind::Nsec,
            registry_provider: None,
            shares_zone: true,
            est_domains: 100_000,
        });
    }
    for i in 0..unsigned as usize {
        out.push(TldSpec {
            name: format!("utld{i:03}."),
            dnssec: DnssecKind::None,
            registry_provider: None,
            shares_zone: false,
            est_domains: 10_000,
        });
    }
    out
}

/// The TLD population *after* the remediation the paper reports: "the
/// additional iterations for all 447 TLDs have been reduced from 100 to
/// 0, as required by RFC 9276" (§5.1). Everything else is unchanged.
pub fn generate_tlds_after_remediation() -> Vec<TldSpec> {
    let mut tlds = generate_tlds();
    for tld in &mut tlds {
        if tld.registry_provider == Some(IDENTITY_DIGITAL) {
            if let DnssecKind::Nsec3 { iterations, .. } = &mut tld.dnssec {
                *iterations = 0;
            }
        }
    }
    tlds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exact() {
        let tlds = generate_tlds();
        assert_eq!(tlds.len() as u64, totals::TLDS);
        let dnssec = tlds.iter().filter(|t| t.dnssec != DnssecKind::None).count() as u64;
        assert_eq!(dnssec, totals::DNSSEC);
        let nsec3 = tlds
            .iter()
            .filter(|t| matches!(t.dnssec, DnssecKind::Nsec3 { .. }))
            .count() as u64;
        assert_eq!(nsec3, totals::NSEC3);
    }

    #[test]
    fn iteration_marginals() {
        let tlds = generate_tlds();
        let zero = tlds
            .iter()
            .filter(|t| matches!(t.dnssec, DnssecKind::Nsec3 { iterations: 0, .. }))
            .count() as u64;
        assert_eq!(zero, totals::ITER_ZERO);
        let hundred: Vec<_> = tlds
            .iter()
            .filter(|t| {
                matches!(
                    t.dnssec,
                    DnssecKind::Nsec3 {
                        iterations: 100,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(hundred.len() as u64, totals::ITER_100);
        assert!(hundred
            .iter()
            .all(|t| t.registry_provider == Some(IDENTITY_DIGITAL)));
        // Max iterations observed at TLDs is 100.
        assert!(tlds.iter().all(|t| match t.dnssec {
            DnssecKind::Nsec3 { iterations, .. } => iterations <= 100,
            _ => true,
        }));
    }

    #[test]
    fn salt_marginals() {
        let tlds = generate_tlds();
        let salt = |len: u8| {
            tlds.iter()
                .filter(
                    |t| matches!(t.dnssec, DnssecKind::Nsec3 { salt_len, .. } if salt_len == len),
                )
                .count() as u64
        };
        assert_eq!(salt(0), totals::SALT_NONE);
        assert_eq!(salt(8), totals::SALT_8);
        assert_eq!(salt(10), totals::SALT_10);
        // 10 bytes is the max.
        assert!(tlds.iter().all(|t| match t.dnssec {
            DnssecKind::Nsec3 { salt_len, .. } => salt_len <= 10,
            _ => true,
        }));
    }

    #[test]
    fn opt_out_and_zone_sharing() {
        let tlds = generate_tlds();
        let nsec3: Vec<_> = tlds
            .iter()
            .filter(|t| matches!(t.dnssec, DnssecKind::Nsec3 { .. }))
            .collect();
        let oo = nsec3
            .iter()
            .filter(|t| matches!(t.dnssec, DnssecKind::Nsec3 { opt_out: true, .. }))
            .count() as f64;
        let pct = oo / nsec3.len() as f64 * 100.0;
        assert!((85.0..86.0).contains(&pct), "opt-out {pct}");
        let sharing = nsec3.iter().filter(|t| t.shares_zone).count() as u64;
        assert_eq!(sharing, totals::SHARES_ZONE);
    }

    #[test]
    fn remediation_zeroes_the_447() {
        let after = generate_tlds_after_remediation();
        let zero = after
            .iter()
            .filter(|t| matches!(t.dnssec, DnssecKind::Nsec3 { iterations: 0, .. }))
            .count() as u64;
        assert_eq!(zero, totals::ITER_ZERO + totals::ITER_100); // 688 + 447
        assert!(after.iter().all(|t| !matches!(
            t.dnssec,
            DnssecKind::Nsec3 {
                iterations: 100,
                ..
            }
        )));
        // Compliance after remediation: (688+447)/1302 = 87.2 %.
        let pct = zero as f64 / totals::NSEC3 as f64 * 100.0;
        assert!((87.0..88.0).contains(&pct), "{pct}");
    }

    #[test]
    fn identity_digital_domain_estimate() {
        let tlds = generate_tlds();
        let under: u64 = tlds
            .iter()
            .filter(|t| t.registry_provider == Some(IDENTITY_DIGITAL))
            .map(|t| t.est_domains)
            .sum();
        assert!(under >= totals::DOMAINS_UNDER_447, "{under}");
    }
}
