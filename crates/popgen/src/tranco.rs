//! The Tranco-style popularity list (§5.1, Figure 2).
//!
//! Calibration: the 1 M-rank list contains 66.6 K DNSSEC-enabled domains;
//! 27.2 K (40.8 %) of those are NSEC3-enabled. Among the NSEC3-enabled:
//! 22.8 % have zero additional iterations, 23.6 % no salt, and 12.7 %
//! both. Compliance is uniform across ranks (that uniformity is what
//! Figure 2 demonstrates).

use sim_rng::{Rng, Xoshiro256pp};

use crate::domains::DnssecKind;
use crate::scale::Scale;

/// One ranked entry.
#[derive(Clone, Debug)]
pub struct TrancoEntry {
    /// 1-based popularity rank.
    pub rank: u64,
    /// Domain name.
    pub name: String,
    /// DNSSEC state.
    pub dnssec: DnssecKind,
}

/// Paper §5.1 Tranco totals.
pub mod totals {
    /// List length.
    pub const RANKS: u64 = 1_000_000;
    /// DNSSEC-enabled entries.
    pub const DNSSEC: u64 = 66_600;
    /// NSEC3-enabled entries (40.8 % of DNSSEC).
    pub const NSEC3: u64 = 27_200;
    /// NSEC3 entries with zero iterations (%).
    pub const ITER_ZERO_PCT: f64 = 22.8;
    /// NSEC3 entries with no salt (%).
    pub const SALT_NONE_PCT: f64 = 23.6;
    /// NSEC3 entries compliant with both items 2 and 3 (%).
    pub const BOTH_PCT: f64 = 12.7;
}

/// Generate the list at `scale`, uniform compliance across ranks.
pub fn generate_tranco(scale: Scale, seed: u64) -> Vec<TrancoEntry> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x7a4c0);
    let ranks = scale.apply(totals::RANKS);
    let p_dnssec = totals::DNSSEC as f64 / totals::RANKS as f64;
    let p_nsec3_given_dnssec = totals::NSEC3 as f64 / totals::DNSSEC as f64;
    // Joint parameter distribution among NSEC3-enabled entries.
    let p_both = totals::BOTH_PCT / 100.0;
    let p_zero_only = totals::ITER_ZERO_PCT / 100.0 - p_both;
    let p_nosalt_only = totals::SALT_NONE_PCT / 100.0 - p_both;
    let mut out = Vec::with_capacity(ranks as usize);
    for rank in 1..=ranks {
        let name = format!("site{rank}.com.");
        let dnssec = if rng.gen_bool(p_dnssec) {
            if rng.gen_bool(p_nsec3_given_dnssec) {
                let roll: f64 = rng.next_f64();
                let (iterations, salt_len) = if roll < p_both {
                    (0, 0)
                } else if roll < p_both + p_zero_only {
                    (0, 8)
                } else if roll < p_both + p_zero_only + p_nosalt_only {
                    (1, 0)
                } else {
                    (1, 8)
                };
                DnssecKind::Nsec3 {
                    iterations,
                    salt_len,
                    opt_out: false,
                }
            } else {
                DnssecKind::Nsec
            }
        } else {
            DnssecKind::None
        };
        out.push(TrancoEntry { rank, name, dnssec });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> Vec<TrancoEntry> {
        generate_tranco(Scale(0.1), 3) // 100 K ranks
    }

    #[test]
    fn dnssec_and_nsec3_shares() {
        let l = list();
        let dnssec = l.iter().filter(|e| e.dnssec != DnssecKind::None).count() as f64;
        let nsec3 = l
            .iter()
            .filter(|e| matches!(e.dnssec, DnssecKind::Nsec3 { .. }))
            .count() as f64;
        let d_pct = dnssec / l.len() as f64 * 100.0;
        assert!((6.0..7.4).contains(&d_pct), "DNSSEC {d_pct} (paper: 6.66)");
        let n_pct = nsec3 / dnssec * 100.0;
        assert!(
            (38.0..44.0).contains(&n_pct),
            "NSEC3|DNSSEC {n_pct} (paper: 40.8)"
        );
    }

    #[test]
    fn compliance_shares() {
        let l = list();
        let nsec3: Vec<_> = l
            .iter()
            .filter_map(|e| match e.dnssec {
                DnssecKind::Nsec3 {
                    iterations,
                    salt_len,
                    ..
                } => Some((iterations, salt_len)),
                _ => None,
            })
            .collect();
        let total = nsec3.len() as f64;
        let zero = nsec3.iter().filter(|(it, _)| *it == 0).count() as f64 / total * 100.0;
        let nosalt = nsec3.iter().filter(|(_, s)| *s == 0).count() as f64 / total * 100.0;
        let both =
            nsec3.iter().filter(|(it, s)| *it == 0 && *s == 0).count() as f64 / total * 100.0;
        assert!((20.0..26.0).contains(&zero), "it=0: {zero} (paper: 22.8)");
        assert!(
            (21.0..27.0).contains(&nosalt),
            "no salt: {nosalt} (paper: 23.6)"
        );
        assert!((10.0..15.5).contains(&both), "both: {both} (paper: 12.7)");
    }

    #[test]
    fn uniform_across_ranks() {
        // Figure 2's point: the CDF of ranks of compliant entries is the
        // diagonal. Check the top half and bottom half have similar
        // compliance rates.
        let l = list();
        let half = l.len() / 2;
        let rate = |slice: &[TrancoEntry]| {
            let n3 = slice
                .iter()
                .filter(|e| matches!(e.dnssec, DnssecKind::Nsec3 { .. }))
                .count() as f64;
            let z = slice
                .iter()
                .filter(|e| matches!(e.dnssec, DnssecKind::Nsec3 { iterations: 0, .. }))
                .count() as f64;
            z / n3.max(1.0)
        };
        let top = rate(&l[..half]);
        let bottom = rate(&l[half..]);
        assert!((top - bottom).abs() < 0.05, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn ranks_ascending_and_deterministic() {
        let l = list();
        assert!(l.windows(2).all(|w| w[0].rank < w[1].rank));
        let l2 = generate_tranco(Scale(0.1), 3);
        assert_eq!(l.len(), l2.len());
        assert!(l.iter().zip(l2.iter()).all(|(a, b)| a.dnssec == b.dnssec));
    }
}
