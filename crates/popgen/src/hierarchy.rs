//! The signed root→TLD→leaf delegation graph the iterative recursor
//! walks — a deterministic, index-stable description of a miniature
//! Internet: which census TLDs are stood up, which chain-of-trust
//! scenario each delegation exercises, and which NSEC3 parameters every
//! leaf zone beneath them signs with.
//!
//! This module only *describes* the hierarchy (pure data, no network);
//! the `nsec3-core` testbed turns a [`HierarchyModel`] into live
//! authoritative nodes. Keeping description and stand-up separate is
//! what lets sharded drivers build per-TLD private labs from the same
//! model without coordination: `tld(i)` depends on nothing but the model
//! and `i`.

use sim_rng::SplitMix64;

use crate::domains::DnssecKind;
use crate::tlds::{generate_tlds, totals, TldSpec};

/// Chain-of-trust scenario applied to one TLD-level delegation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChainScenario {
    /// Chain intact: signed TLDs validate end-to-end, unsigned TLDs
    /// resolve insecurely through a proven-absent DS.
    Intact,
    /// The resolver carries a trust anchor for the TLD apex whose digest
    /// matches no served DNSKEY (anchor rot / hijacked-anchor study).
    MisAnchoredTld,
    /// The parent publishes a DS whose digest matches no child DNSKEY.
    BrokenDs,
    /// The parent publishes no DS although the child is signed (opt-out
    /// style insecure delegation).
    InsecureDelegation,
    /// NS and glue exist in the parent but no server answers at the glue
    /// addresses.
    LameDelegation,
}

impl ChainScenario {
    /// Every scenario, in report order.
    pub const ALL: [ChainScenario; 5] = [
        ChainScenario::Intact,
        ChainScenario::MisAnchoredTld,
        ChainScenario::BrokenDs,
        ChainScenario::InsecureDelegation,
        ChainScenario::LameDelegation,
    ];

    /// Stable report/bucket key.
    pub fn key(self) -> &'static str {
        match self {
            ChainScenario::Intact => "intact",
            ChainScenario::MisAnchoredTld => "mis_anchored_tld",
            ChainScenario::BrokenDs => "broken_ds",
            ChainScenario::InsecureDelegation => "insecure_delegation",
            ChainScenario::LameDelegation => "lame_delegation",
        }
    }
}

/// One leaf zone beneath a TLD.
#[derive(Clone, Debug)]
pub struct HierarchyLeaf {
    /// Fully qualified apex, e.g. `leaf00.tld0042.`.
    pub name: String,
    /// DNSSEC state drawn from the census-style leaf marginals.
    pub dnssec: DnssecKind,
}

/// One TLD-level delegation in the synthetic hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyTld {
    /// Index into the full 1,449-TLD census population this TLD was
    /// drawn from (strided, so small hierarchies mix NSEC3/NSEC/unsigned
    /// proportionally).
    pub census_index: usize,
    /// The census TLD at that index (name, denial parameters, opt-out).
    pub spec: TldSpec,
    /// The chain-of-trust scenario this delegation exercises.
    pub scenario: ChainScenario,
    /// Leaf zones delegated beneath the TLD.
    pub leaves: Vec<HierarchyLeaf>,
}

/// Model of the root→TLD→leaf graph: how many TLDs (strided out of the
/// 1,449), how many leaves under each, and how fault scenarios are
/// sprinkled over the signed delegations.
#[derive(Clone, Debug)]
pub struct HierarchyModel {
    /// TLD-level delegations to stand up (clamped to 1,449).
    pub tld_count: usize,
    /// Leaf zones under every TLD.
    pub leaves_per_tld: usize,
    /// Seed for the per-leaf parameter draws (never consulted for
    /// anything index-crossing, so generation shards freely).
    pub seed: u64,
    /// Every `fault_period`-th *signed* TLD cycles through the fault
    /// scenarios ([`ChainScenario::ALL`] minus `Intact`); `0` keeps every
    /// delegation intact. Unsigned TLDs always stay `Intact` — they are
    /// already the insecure arm by construction.
    pub fault_period: usize,
}

impl HierarchyModel {
    /// An all-intact hierarchy.
    pub fn intact(tld_count: usize, leaves_per_tld: usize, seed: u64) -> Self {
        HierarchyModel {
            tld_count,
            leaves_per_tld,
            seed,
            fault_period: 0,
        }
    }

    /// A hierarchy that cycles the fault scenarios over every
    /// `fault_period`-th signed TLD.
    pub fn with_faults(mut self, fault_period: usize) -> Self {
        self.fault_period = fault_period;
        self
    }
}

/// Deterministic generator over a [`HierarchyModel`]: `tld(i)` is a pure
/// function of the model, so shards can draw disjoint index ranges with
/// no shared state.
pub struct HierarchyGenerator {
    model: HierarchyModel,
    census: Vec<TldSpec>,
}

impl HierarchyGenerator {
    /// Build a generator (materializes the 1,449-entry census once).
    pub fn new(model: HierarchyModel) -> Self {
        HierarchyGenerator {
            model,
            census: generate_tlds(),
        }
    }

    /// Number of TLD-level delegations this hierarchy stands up.
    pub fn tld_count(&self) -> usize {
        self.model.tld_count.min(totals::TLDS as usize)
    }

    /// The census index the `i`-th hierarchy TLD is drawn from: a stride
    /// over the full population, so any `tld_count` keeps the census
    /// ordering (NSEC3 block, then NSEC, then unsigned) proportionally
    /// represented.
    pub fn census_index(&self, i: usize) -> usize {
        let count = self.tld_count().max(1);
        (i * totals::TLDS as usize) / count
    }

    /// The `i`-th TLD-level delegation (panics if `i >= tld_count()`).
    pub fn tld(&self, i: usize) -> HierarchyTld {
        assert!(i < self.tld_count(), "TLD index {i} out of range");
        let census_index = self.census_index(i);
        let spec = self.census[census_index].clone();
        let scenario = self.scenario_for(i, &spec);
        let leaves = (0..self.model.leaves_per_tld)
            .map(|leaf| self.leaf(census_index, &spec.name, leaf))
            .collect();
        HierarchyTld {
            census_index,
            spec,
            scenario,
            leaves,
        }
    }

    /// All TLDs, in index order (small hierarchies only; sharded drivers
    /// call [`HierarchyGenerator::tld`] per index instead).
    pub fn tlds(&self) -> Vec<HierarchyTld> {
        (0..self.tld_count()).map(|i| self.tld(i)).collect()
    }

    fn scenario_for(&self, i: usize, spec: &TldSpec) -> ChainScenario {
        let period = self.model.fault_period;
        if period == 0 || !i.is_multiple_of(period) || spec.dnssec == DnssecKind::None {
            return ChainScenario::Intact;
        }
        // Cycle through the four fault scenarios in ALL order.
        match (i / period) % 4 {
            0 => ChainScenario::MisAnchoredTld,
            1 => ChainScenario::BrokenDs,
            2 => ChainScenario::InsecureDelegation,
            _ => ChainScenario::LameDelegation,
        }
    }

    /// The `leaf`-th zone under the TLD at `census_index`. Parameters
    /// come from a census-style leaf marginal (dominated by low
    /// iteration counts and 0/8-byte salts, with the paper's 6.4 %
    /// opt-out rate), keyed by `(seed, census_index, leaf)` so the draw
    /// is index-stable regardless of how generation is sharded.
    fn leaf(&self, census_index: usize, tld_name: &str, leaf: usize) -> HierarchyLeaf {
        let mut rng = SplitMix64::new(
            self.model.seed
                ^ (census_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (leaf as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let name = format!("leaf{leaf:02}.{tld_name}");
        // 8.8 % of registered domains are DNSSEC-enabled in the census;
        // the hierarchy leans secure (50 %) because chain effects are
        // what it exists to measure — the census-faithful population
        // stays the business of `crate::domains`.
        let roll = rng.next_u64() % 100;
        let dnssec = if roll < 50 {
            let iterations = match rng.next_u64() % 100 {
                0..=59 => 0,
                60..=79 => 1,
                80..=89 => 5,
                90..=97 => 10,
                _ => 100,
            };
            let salt_len = match rng.next_u64() % 100 {
                0..=49 => 0,
                50..=89 => 8,
                _ => 4,
            };
            let opt_out = rng.next_u64() % 1000 < 64;
            DnssecKind::Nsec3 {
                iterations,
                salt_len,
                opt_out,
            }
        } else if roll < 60 {
            DnssecKind::Nsec
        } else {
            DnssecKind::None
        };
        HierarchyLeaf { name, dnssec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_census_is_covered_in_order() {
        let g = HierarchyGenerator::new(HierarchyModel::intact(1_449, 0, 7));
        assert_eq!(g.tld_count(), 1_449);
        for i in [0usize, 1, 700, 1_448] {
            assert_eq!(g.census_index(i), i, "identity stride at full scale");
        }
    }

    #[test]
    fn stride_mixes_census_blocks() {
        // 32 TLDs out of 1,449 must still include NSEC (index ≥ 1302)
        // and unsigned (index ≥ 1354) census entries.
        let g = HierarchyGenerator::new(HierarchyModel::intact(32, 1, 7));
        let tlds = g.tlds();
        assert!(tlds
            .iter()
            .any(|t| matches!(t.spec.dnssec, DnssecKind::Nsec3 { .. })));
        assert!(tlds.iter().any(|t| t.spec.dnssec == DnssecKind::Nsec));
        assert!(tlds.iter().any(|t| t.spec.dnssec == DnssecKind::None));
        // Strictly increasing census indices: no TLD stood up twice.
        for w in tlds.windows(2) {
            assert!(w[0].census_index < w[1].census_index);
        }
    }

    #[test]
    fn generation_is_index_stable() {
        let g = HierarchyGenerator::new(HierarchyModel::intact(32, 3, 7).with_faults(4));
        let all = g.tlds();
        // Drawing any single index reproduces the same TLD bit-for-bit.
        for (i, tld) in all.iter().enumerate() {
            let redraw = g.tld(i);
            assert_eq!(format!("{tld:?}"), format!("{redraw:?}"));
        }
    }

    #[test]
    fn faults_cycle_and_skip_unsigned() {
        let g = HierarchyGenerator::new(HierarchyModel::intact(64, 1, 7).with_faults(3));
        let tlds = g.tlds();
        let mut seen = std::collections::BTreeSet::new();
        for t in &tlds {
            if t.scenario != ChainScenario::Intact {
                assert_ne!(t.spec.dnssec, DnssecKind::None, "faults only on signed");
                seen.insert(t.scenario);
            }
        }
        assert_eq!(seen.len(), 4, "all four fault scenarios appear: {seen:?}");
    }

    #[test]
    fn leaves_have_census_flavored_params() {
        let g = HierarchyGenerator::new(HierarchyModel::intact(64, 4, 7));
        let leaves: Vec<_> = g.tlds().into_iter().flat_map(|t| t.leaves).collect();
        assert_eq!(leaves.len(), 256);
        let nsec3 = leaves
            .iter()
            .filter(|l| matches!(l.dnssec, DnssecKind::Nsec3 { .. }))
            .count();
        // ~50 % signed with NSEC3 by construction.
        assert!((64..192).contains(&nsec3), "{nsec3}");
        assert!(leaves.iter().all(|l| match l.dnssec {
            DnssecKind::Nsec3 { iterations, .. } => iterations <= 100,
            _ => true,
        }));
    }
}
