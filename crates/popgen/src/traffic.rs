//! Client-population traffic model for the production serving driver.
//!
//! The serving benchmark pushes millions of client queries through the
//! resolver fleet; this module decides *what those clients ask*. Three
//! design constraints, all inherited from the experiment pipelines:
//!
//! 1. **Index stability.** Like [`crate::DomainGenerator`], the stream
//!    is a pure function of `(model, index)`: [`TrafficGenerator::get`]
//!    materialises query `i` in O(1) with no state spanning positions,
//!    so any sharding of `0..len` concatenates to the full stream and
//!    every resolver in the fleet can regenerate its own slice.
//! 2. **O(1) sampling.** Popularity follows a Zipf law (the observed
//!    shape of resolver workloads — heavy head, long tail). The sampler
//!    is a Vose alias table ([`ZipfAlias`]): O(n) to build once, two
//!    uniform draws per sample, no per-query CDF walk.
//! 3. **Reusable burst machinery.** Diurnal load peaks are modelled as
//!    time-windowed [`netsim`] fault episodes ([`diurnal_schedule`]):
//!    the same `FaultSchedule` plumbing every driver already installs,
//!    so peak-hour congestion composes with loss and retry accounting.
//!
//! The per-client query mix separates three behaviours that stress
//! different cache layers: existing names (answer-cache hits), repeated
//! misses (negative answer-cache hits), and unique misses — the
//! water-torture shape that only RFC 8198 aggressive NSEC3 caching can
//! collapse (see `dns_resolver::aggressive`).

use netsim::{Episode, EpisodeKind, FaultSchedule, Scope};
use sim_rng::{Permutation, Rng, SplitMix64, Xoshiro256pp};

/// What one client query asks for, relative to its target domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// An existing name under the domain (`www.<domain>`): a positive
    /// answer, cacheable by qname.
    Existing,
    /// A unique nonexistent name (`nx<index>.<domain>`): cache-busting
    /// NXDOMAIN — only aggressive NSEC3 synthesis keeps it off the wire.
    NxUnique,
    /// The shared nonexistent name (`miss.<domain>`): a repeat NXDOMAIN
    /// that the plain negative answer cache absorbs.
    NxRepeat,
}

/// Per-client query mix, in percent. Must sum to 100.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryMix {
    /// Share of [`QueryKind::Existing`] queries.
    pub existing_pct: f64,
    /// Share of [`QueryKind::NxUnique`] queries.
    pub nx_unique_pct: f64,
    /// Share of [`QueryKind::NxRepeat`] queries.
    pub nx_repeat_pct: f64,
}

impl QueryMix {
    /// Ordinary browsing traffic: mostly existing names, a thin stream
    /// of typo misses.
    pub fn browsing() -> Self {
        QueryMix {
            existing_pct: 80.0,
            nx_unique_pct: 12.0,
            nx_repeat_pct: 8.0,
        }
    }

    /// NXDOMAIN-heavy traffic — the random-subdomain shape the RFC 8198
    /// fast path exists for.
    pub fn nxdomain_heavy() -> Self {
        QueryMix {
            existing_pct: 25.0,
            nx_unique_pct: 65.0,
            nx_repeat_pct: 10.0,
        }
    }

    fn assert_valid(&self) {
        let sum = self.existing_pct + self.nx_unique_pct + self.nx_repeat_pct;
        assert!(
            (sum - 100.0).abs() < 1e-6,
            "query mix must sum to 100, got {sum}"
        );
        assert!(self.existing_pct >= 0.0 && self.nx_unique_pct >= 0.0 && self.nx_repeat_pct >= 0.0);
    }
}

/// The client population: who queries, how often, with what skew.
#[derive(Clone, Debug)]
pub struct TrafficModel {
    /// Number of distinct clients.
    pub clients: u64,
    /// Queries each client issues.
    pub queries_per_client: u64,
    /// Zipf exponent over domain popularity ranks (1.0 = classic).
    pub zipf_skew: f64,
    /// Per-client query mix.
    pub mix: QueryMix,
    /// Seed for every sampling decision.
    pub seed: u64,
}

impl TrafficModel {
    /// `clients × queries_per_client` browsing-mix model at skew 1.0.
    pub fn new(clients: u64, queries_per_client: u64, seed: u64) -> Self {
        TrafficModel {
            clients,
            queries_per_client,
            zipf_skew: 1.0,
            mix: QueryMix::browsing(),
            seed,
        }
    }

    /// The same model under a different mix.
    pub fn with_mix(mut self, mix: QueryMix) -> Self {
        self.mix = mix;
        self
    }

    /// The same model under a different Zipf exponent.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.zipf_skew = skew;
        self
    }
}

/// One materialised client query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientQuery {
    /// Position in the stream (`0..generator.len()`).
    pub index: u64,
    /// Issuing client (`index / queries_per_client`).
    pub client: u64,
    /// Index into the domain population this query targets.
    pub domain: u64,
    /// What the query asks for.
    pub kind: QueryKind,
}

impl ClientQuery {
    /// The query name, given the target domain's name (absolute,
    /// dot-terminated — `DomainSpec::name` form).
    pub fn qname(&self, domain: &str) -> String {
        match self.kind {
            QueryKind::Existing => format!("www.{domain}"),
            QueryKind::NxUnique => format!("nx{}.{domain}", self.index),
            QueryKind::NxRepeat => format!("miss.{domain}"),
        }
    }
}

/// O(1) Zipf sampler over ranks `0..n` via the Vose alias method.
///
/// Build cost is O(n) once; each sample is one bounded-integer draw plus
/// one coin flip — no CDF binary search on the per-query hot path. The
/// table is a pure function of `(n, skew)`, so two instances built with
/// the same parameters sample identically from identical RNG streams.
#[derive(Clone, Debug)]
pub struct ZipfAlias {
    /// Acceptance probability per slot.
    prob: Vec<f64>,
    /// Overflow rank per slot.
    alias: Vec<u32>,
}

impl ZipfAlias {
    /// Alias table for Zipf(`skew`) over ranks `0..n`.
    pub fn new(n: u64, skew: f64) -> Self {
        assert!(n > 0, "empty rank universe");
        assert!(n <= u32::MAX as u64, "alias table is u32-indexed");
        let n = n as usize;
        // Weights scaled to mean 1: w_r = n · pmf(r).
        let mut w: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(skew)).collect();
        let total: f64 = w.iter().sum();
        let scale = n as f64 / total;
        for x in w.iter_mut() {
            *x *= scale;
        }
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &x) in w.iter().enumerate() {
            if x < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = w[s as usize];
            alias[s as usize] = l;
            w[l as usize] += w[s as usize] - 1.0;
            if w[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (float residue) keep acceptance probability 1.
        ZipfAlias { prob, alias }
    }

    /// Rank universe size.
    pub fn len(&self) -> u64 {
        self.prob.len() as u64
    }

    /// Never true: construction rejects `n = 0`.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one rank: uniform slot, then the alias coin.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let slot = rng.gen_range(0..self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[slot] {
            slot as u64
        } else {
            self.alias[slot] as u64
        }
    }

    /// The probability mass the table assigns to `rank` — reconstructed
    /// from the slots, for verifying the table against the analytic pmf.
    pub fn mass(&self, rank: u64) -> f64 {
        let mut m = self.prob[rank as usize];
        for (slot, &a) in self.alias.iter().enumerate() {
            if u64::from(a) == rank && slot != rank as usize {
                m += 1.0 - self.prob[slot];
            }
        }
        m / self.prob.len() as f64
    }

    /// Analytic Zipf(`skew`) pmf over `0..n`.
    pub fn pmf(n: u64, skew: f64, rank: u64) -> f64 {
        let total: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(skew)).sum();
        (1.0 / ((rank + 1) as f64).powf(skew)) / total
    }
}

/// The deterministic query stream: `get(i)` materialises query `i` in
/// O(1). Popularity ranks map onto domain indices through a keyed
/// [`Permutation`], so rank 0 (the hottest domain) is not systematically
/// the population's first index.
#[derive(Clone, Debug)]
pub struct TrafficGenerator {
    model: TrafficModel,
    zipf: ZipfAlias,
    rank_to_domain: Permutation,
    /// Per-query RNG base, mixed with the index per `get`.
    base: u64,
}

impl TrafficGenerator {
    /// A generator for `model` over a population of `domains` domains.
    pub fn new(model: TrafficModel, domains: u64) -> Self {
        assert!(domains > 0, "serving needs a nonempty domain population");
        model.mix.assert_valid();
        let zipf = ZipfAlias::new(domains, model.zipf_skew);
        let rank_to_domain = Permutation::new(
            domains,
            SplitMix64::new(model.seed ^ 0x7aff_1c5e).next_u64(),
        );
        let base = SplitMix64::new(model.seed ^ 0x00c1_1e47).next_u64();
        TrafficGenerator {
            model,
            zipf,
            rank_to_domain,
            base,
        }
    }

    /// Total stream length: `clients × queries_per_client`.
    pub fn len(&self) -> u64 {
        self.model.clients * self.model.queries_per_client
    }

    /// True when the model has no clients or no queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The model this generator samples.
    pub fn model(&self) -> &TrafficModel {
        &self.model
    }

    /// Query `i` of the stream — a pure function of `(model, i)`.
    pub fn get(&self, i: u64) -> ClientQuery {
        assert!(i < self.len(), "index {i} exceeds stream {}", self.len());
        let mut rng = Xoshiro256pp::seed_from_u64(
            self.base
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let rank = self.zipf.sample(&mut rng);
        let domain = self.rank_to_domain.apply(rank);
        let pick: f64 = rng.gen_range(0.0..100.0);
        let kind = if pick < self.model.mix.existing_pct {
            QueryKind::Existing
        } else if pick < self.model.mix.existing_pct + self.model.mix.nx_unique_pct {
            QueryKind::NxUnique
        } else {
            QueryKind::NxRepeat
        };
        ClientQuery {
            index: i,
            client: i / self.model.queries_per_client,
            domain,
            kind,
        }
    }
}

/// A diurnal load profile as time-windowed fault episodes: two rush-hour
/// congestion windows over a virtual day of `day_secs`, adding
/// `extra_micros` (morning) and `2 × extra_micros` (evening) of jittered
/// latency to every path. Install it like any other schedule
/// (`net.set_schedule`) — retries, breakers, and loss accounting apply
/// unchanged, which is the point of reusing the episode machinery.
pub fn diurnal_schedule(seed: u64, day_secs: u64, extra_micros: u64) -> FaultSchedule {
    let day = day_secs * 1_000_000;
    FaultSchedule {
        base: Default::default(),
        seed,
        episodes: vec![
            Episode::window(
                day * 35 / 100,
                day * 45 / 100,
                EpisodeKind::LatencySpike {
                    scope: Scope::All,
                    extra_micros,
                    jitter_micros: extra_micros / 4,
                },
            ),
            Episode::window(
                day * 75 / 100,
                day * 90 / 100,
                EpisodeKind::LatencySpike {
                    scope: Scope::All,
                    extra_micros: extra_micros * 2,
                    jitter_micros: extra_micros / 2,
                },
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inverse-CDF Zipf sampler — the reference the alias table must
    /// match in distribution.
    struct ZipfCdf {
        cdf: Vec<f64>,
    }

    impl ZipfCdf {
        fn new(n: u64, skew: f64) -> Self {
            let mut cdf = Vec::with_capacity(n as usize);
            let mut acc = 0.0;
            for r in 1..=n {
                acc += 1.0 / (r as f64).powf(skew);
                cdf.push(acc);
            }
            ZipfCdf { cdf }
        }

        fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
            let total = *self.cdf.last().unwrap();
            let u = rng.next_f64() * total;
            self.cdf.partition_point(|&c| c <= u) as u64
        }
    }

    #[test]
    fn alias_table_mass_matches_analytic_pmf() {
        for (n, skew) in [(1u64, 1.0), (7, 1.0), (500, 1.0), (500, 0.8), (64, 1.3)] {
            let alias = ZipfAlias::new(n, skew);
            for rank in 0..n {
                let mass = alias.mass(rank);
                let pmf = ZipfAlias::pmf(n, skew, rank);
                assert!(
                    (mass - pmf).abs() < 1e-12,
                    "n={n} skew={skew} rank={rank}: table mass {mass} vs pmf {pmf}"
                );
            }
        }
    }

    #[test]
    fn alias_sampling_matches_direct_cdf_sampling() {
        // Two independent streams, one per sampler; empirical frequencies
        // must agree with each other and with the pmf.
        let n = 200u64;
        let draws = 200_000u64;
        let alias = ZipfAlias::new(n, 1.0);
        let cdf = ZipfCdf::new(n, 1.0);
        let mut rng_a = Xoshiro256pp::seed_from_u64(11);
        let mut rng_c = Xoshiro256pp::seed_from_u64(22);
        let mut freq_a = vec![0u64; n as usize];
        let mut freq_c = vec![0u64; n as usize];
        for _ in 0..draws {
            freq_a[alias.sample(&mut rng_a) as usize] += 1;
            freq_c[cdf.sample(&mut rng_c) as usize] += 1;
        }
        // Total-variation distance between the two empirical laws.
        let tv: f64 = freq_a
            .iter()
            .zip(&freq_c)
            .map(|(&a, &c)| ((a as f64 - c as f64) / draws as f64).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.02, "total-variation distance {tv} too large");
        // Head ranks match the analytic pmf within 5 % relative error.
        for rank in 0..5 {
            let pmf = ZipfAlias::pmf(n, 1.0, rank);
            let emp = freq_a[rank as usize] as f64 / draws as f64;
            assert!(
                (emp - pmf).abs() / pmf < 0.05,
                "rank {rank}: empirical {emp} vs pmf {pmf}"
            );
        }
        // The head dominates: rank 0 beats rank 19 by about 20×.
        assert!(freq_a[0] > 10 * freq_a[19]);
    }

    #[test]
    fn generator_is_index_stable() {
        let model = TrafficModel::new(16, 25, 42);
        let g1 = TrafficGenerator::new(model.clone(), 64);
        let g2 = TrafficGenerator::new(model, 64);
        assert_eq!(g1.len(), 400);
        // get(i) is a pure function of (model, i): fresh construction,
        // repeated access, and out-of-order access all agree.
        for i in [0u64, 1, 17, 399, 200, 17] {
            assert_eq!(g1.get(i), g2.get(i));
            assert_eq!(g1.get(i), g1.get(i));
        }
        // Sharded regeneration concatenates to the sequential stream.
        let seq: Vec<ClientQuery> = (0..g1.len()).map(|i| g1.get(i)).collect();
        let mut sharded = Vec::new();
        for chunk in [(0u64, 133u64), (133, 266), (266, 400)] {
            sharded.extend((chunk.0..chunk.1).map(|i| g2.get(i)));
        }
        assert_eq!(seq, sharded);
    }

    #[test]
    fn generator_pins_first_queries() {
        // The index-stability pin: these exact values are what model
        // (16 clients × 25 queries, seed 42, browsing mix) over 64
        // domains produced when the generator was introduced. Any drift
        // in the sampling pipeline shows up here before it silently
        // reshuffles every serving benchmark.
        let g = TrafficGenerator::new(TrafficModel::new(16, 25, 42), 64);
        let rendered: Vec<String> = (0..3).map(|i| format!("{:?}", g.get(i))).collect();
        assert_eq!(
            rendered,
            [
                "ClientQuery { index: 0, client: 0, domain: 15, kind: Existing }",
                "ClientQuery { index: 1, client: 0, domain: 3, kind: Existing }",
                "ClientQuery { index: 2, client: 0, domain: 46, kind: Existing }"
            ]
        );
    }

    #[test]
    fn mix_fractions_converge() {
        let model = TrafficModel::new(100, 200, 7).with_mix(QueryMix::nxdomain_heavy());
        let g = TrafficGenerator::new(model, 32);
        let mut counts = [0u64; 3];
        for i in 0..g.len() {
            match g.get(i).kind {
                QueryKind::Existing => counts[0] += 1,
                QueryKind::NxUnique => counts[1] += 1,
                QueryKind::NxRepeat => counts[2] += 1,
            }
        }
        let total = g.len() as f64;
        for (got, want) in counts.iter().zip([25.0, 65.0, 10.0]) {
            let pct = *got as f64 / total * 100.0;
            assert!(
                (pct - want).abs() < 2.0,
                "mix share {pct:.1} % vs configured {want} %"
            );
        }
    }

    #[test]
    fn qnames_follow_kind() {
        let q = ClientQuery {
            index: 9,
            client: 0,
            domain: 3,
            kind: QueryKind::NxUnique,
        };
        assert_eq!(q.qname("d4.com."), "nx9.d4.com.");
        let q = ClientQuery {
            kind: QueryKind::Existing,
            ..q
        };
        assert_eq!(q.qname("d4.com."), "www.d4.com.");
        let q = ClientQuery {
            kind: QueryKind::NxRepeat,
            ..q
        };
        assert_eq!(q.qname("d4.com."), "miss.d4.com.");
    }

    #[test]
    fn diurnal_schedule_is_windowed_and_live() {
        let sched = diurnal_schedule(9, 86_400, 2_000);
        assert!(!sched.is_inert(), "rush-hour episodes must register");
        assert_eq!(sched.episodes.len(), 2);
    }
}
