//! Synthetic populations calibrated to the published marginals of
//! *Zeros Are Heroes* (IMC 2024) — the substitution for the paper's
//! proprietary data feeds (CZDS, AXFR, CT logs, SIE passive DNS, open
//! resolver scans, RIPE Atlas). See DESIGN.md §2 for the substitution
//! argument and §5 for the scaling model.
//!
//! * [`domains`] — 302 M registered domains (Table 2 operators, Figure 1
//!   marginals, absolute long tails).
//! * [`tlds`] — the 1,449 TLDs, exact.
//! * [`tranco`] — the popularity list of Figure 2.
//! * [`resolvers`] — the 1.9 M open + 2.5 K closed resolver fleet of §5.2.
//! * [`scale`] — the scaling model and exact allocation helpers.
//! * [`adversarial`] — crafted denial-of-existence attack workloads
//!   (max-parameter zones, deep encloser chains, keytag collisions).
//! * [`traffic`] — the client-population serving workload: O(1)
//!   alias-table Zipf sampling, per-client query mixes, diurnal bursts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod domains;
pub mod hierarchy;
pub mod resolvers;
pub mod scale;
pub mod timeline;
pub mod tlds;
pub mod traffic;
pub mod tranco;

pub use adversarial::{attack_qname, generate_attack_zones, AdversarialZoneSpec, AttackFamily};
pub use domains::{
    domain_count, generate_domains, generate_domains_range, DnssecKind, DomainGenerator, DomainSpec,
};
pub use hierarchy::{
    ChainScenario, HierarchyGenerator, HierarchyLeaf, HierarchyModel, HierarchyTld,
};
pub use resolvers::{
    generate_fleet, generate_fleet_with_mix, Access, Behavior, Family, ResolverSpec,
};
pub use scale::{allocate, Scale};
pub use timeline::{eras, Era};
pub use tlds::{generate_tlds, generate_tlds_after_remediation, TldSpec};
pub use traffic::{
    diurnal_schedule, ClientQuery, QueryKind, QueryMix, TrafficGenerator, TrafficModel, ZipfAlias,
};
pub use tranco::{generate_tranco, TrancoEntry};
