//! The resolver fleet, calibrated to §5.2:
//!
//! * pools: 1.4 M open IPv4 (105.2 K validators), 509 K open IPv6 (6.8 K
//!   validators), 2.5 K closed (1,236 IPv4 + 689 IPv6 validators);
//! * 59.9 % of validators implement item 6 (insecure above a limit), with
//!   thresholds 150 ≫ 100 (Google-style, 36.4 % of open IPv4 validators)
//!   ≫ 50 (12.5× fewer than 150);
//! * 18.4 % implement item 8 (SERVFAIL), mostly starting at 151, plus the
//!   418 query-copiers SERVFAILing from it-1 and the 92 Technitium-style
//!   resolvers from it-101;
//! * 0.2 % of insecure-responders violate item 7; 4.3 % are flaky
//!   two-threshold resolvers (item 12); < 18 % of limiting open resolvers
//!   expose EDE 27.

use sim_rng::{Rng, Xoshiro256pp};

use crate::scale::{allocate, Scale};

/// Address family of a resolver.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// IPv4.
    V4,
    /// IPv6.
    V6,
}

/// Openness of a resolver.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Access {
    /// Answers anyone (found by Internet-wide scanning).
    Open,
    /// Answers only its own network (reached via Atlas-style probes).
    Closed,
}

/// The behavioural archetype of one resolver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Behavior {
    /// Responds but does not validate.
    NonValidator,
    /// Validates with no iteration limit (pre-2021 software).
    ValidatorUnlimited,
    /// Item 6: insecure above `limit`. `google_style` selects Google's
    /// EDE codes (5/12) instead of 27 and the 100 threshold.
    InsecureAt {
        /// Iterations above this are treated insecure.
        limit: u16,
        /// Google Public DNS behaviour (EDE 5/12, not 27).
        google_style: bool,
    },
    /// Item 8: SERVFAIL from `first` iterations up. `technitium` adds
    /// EDE 27 with EXTRA-TEXT.
    ServfailFrom {
        /// First iteration count answered with SERVFAIL.
        first: u16,
        /// Technitium-style EDE 27 + EXTRA-TEXT.
        technitium: bool,
    },
    /// A query-copying middlebox: SERVFAIL from it-1, RA mirrors the query.
    QueryCopier,
    /// Item 12 violator: insecure band between `insecure` and
    /// `servfail_from`, flaky on re-query.
    FlakyGap {
        /// AD limit.
        insecure: u16,
        /// First SERVFAIL.
        servfail_from: u16,
    },
    /// Item 7 violator: downgrades on high iterations *without* verifying
    /// the NSEC3 RRSIG (returns NXDOMAIN even for `it-2501-expired`).
    Item7Violator {
        /// Iterations above this are treated insecure.
        limit: u16,
    },
}

impl Behavior {
    /// Is this a validator at all?
    pub fn validates(&self) -> bool {
        !matches!(self, Behavior::NonValidator)
    }
}

/// One resolver in the fleet.
#[derive(Clone, Debug)]
pub struct ResolverSpec {
    /// Stable index (address assignment follows it).
    pub idx: u64,
    /// Address family.
    pub family: Family,
    /// Open or closed.
    pub access: Access,
    /// Behavioural archetype.
    pub behavior: Behavior,
    /// Whether EDE options survive to the client (forwarding middleboxes
    /// strip them; this is what keeps measured EDE support under 18 %).
    pub ede_visible: bool,
}

/// Paper §5.2 pool sizes.
pub mod totals {
    /// Open IPv4 resolvers responding with NOERROR.
    pub const OPEN_V4: u64 = 1_400_000;
    /// Open IPv4 validators.
    pub const OPEN_V4_VALIDATORS: u64 = 105_200;
    /// Open IPv6 hosts with port 53.
    pub const OPEN_V6: u64 = 509_000;
    /// Open IPv6 validators.
    pub const OPEN_V6_VALIDATORS: u64 = 6_800;
    /// Closed resolvers tested via Atlas.
    pub const CLOSED: u64 = 2_500;
    /// Closed IPv4 validators.
    pub const CLOSED_V4_VALIDATORS: u64 = 1_236;
    /// Closed IPv6 validators.
    pub const CLOSED_V6_VALIDATORS: u64 = 689;
    /// Query copiers (SERVFAIL from it-1), absolute.
    pub const COPIERS: u64 = 418;
    /// Technitium-style (SERVFAIL from it-101), absolute.
    pub const TECHNITIUM: u64 = 92;
}

/// Validator behaviour mix, weights in percent of each validator pool.
/// Sums to 100. See the module docs for the §5.2 derivation.
const VALIDATOR_MIX: &[(Behavior, f64)] = &[
    (
        Behavior::InsecureAt {
            limit: 100,
            google_style: true,
        },
        36.40,
    ),
    (
        Behavior::InsecureAt {
            limit: 150,
            google_style: false,
        },
        21.54,
    ),
    (
        Behavior::InsecureAt {
            limit: 50,
            google_style: false,
        },
        1.72,
    ),
    (Behavior::Item7Violator { limit: 150 }, 0.12),
    (
        Behavior::ServfailFrom {
            first: 151,
            technitium: false,
        },
        17.95,
    ),
    (
        Behavior::ServfailFrom {
            first: 1,
            technitium: false,
        },
        0.37,
    ), // copiers, see below
    (
        Behavior::ServfailFrom {
            first: 101,
            technitium: true,
        },
        0.08,
    ),
    (
        Behavior::FlakyGap {
            insecure: 100,
            servfail_from: 151,
        },
        4.30,
    ),
    (Behavior::ValidatorUnlimited, 17.52),
];

/// Probability a limiting open resolver hides its EDE (forwarder in the
/// path); tuned so measured EDE-27 support lands under the paper's 18 %.
const EDE_STRIP_P: f64 = 0.78;

/// Generate the full fleet at `scale` with the paper's 2024 behaviour
/// mix. Deterministic per `(scale, seed)`.
pub fn generate_fleet(scale: Scale, seed: u64) -> Vec<ResolverSpec> {
    generate_fleet_with_mix(scale, seed, VALIDATOR_MIX)
}

/// Generate a fleet with an explicit validator behaviour mix — the
/// timeline experiments use this to model other eras (pre-2021
/// unlimited validators, post-CVE 50-limits).
pub fn generate_fleet_with_mix(
    scale: Scale,
    seed: u64,
    mix: &[(Behavior, f64)],
) -> Vec<ResolverSpec> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xf1ee7);
    let mut out: Vec<ResolverSpec> = Vec::new();
    let mut idx = 0u64;
    let pools: &[(Family, Access, u64, u64)] = &[
        (
            Family::V4,
            Access::Open,
            totals::OPEN_V4,
            totals::OPEN_V4_VALIDATORS,
        ),
        (
            Family::V6,
            Access::Open,
            totals::OPEN_V6,
            totals::OPEN_V6_VALIDATORS,
        ),
        (
            Family::V4,
            Access::Closed,
            totals::CLOSED * totals::CLOSED_V4_VALIDATORS
                / (totals::CLOSED_V4_VALIDATORS + totals::CLOSED_V6_VALIDATORS),
            totals::CLOSED_V4_VALIDATORS,
        ),
        (
            Family::V6,
            Access::Closed,
            totals::CLOSED
                - totals::CLOSED * totals::CLOSED_V4_VALIDATORS
                    / (totals::CLOSED_V4_VALIDATORS + totals::CLOSED_V6_VALIDATORS),
            totals::CLOSED_V6_VALIDATORS,
        ),
    ];
    for &(family, access, pool_total, pool_validators) in pools {
        let validators = scale.apply_min1(pool_validators);
        let total = scale.apply_min1(pool_total).max(validators);
        let non_validators = total - validators;
        let weights: Vec<f64> = mix.iter().map(|(_, w)| *w).collect();
        let mut counts = allocate(validators, &weights);
        // Small behavioural groups (copiers, Technitium, item-7 violators,
        // flaky) must survive scaling: steal one from the largest slice for
        // any zeroed nonzero-weight slice. This slightly inflates their
        // share at tiny scales, which EXPERIMENTS.md notes.
        if validators as usize >= counts.len() {
            for i in 0..counts.len() {
                if counts[i] == 0 && weights[i] > 0.0 {
                    let max_idx = (0..counts.len()).max_by_key(|&j| counts[j]).unwrap();
                    if counts[max_idx] > 1 {
                        counts[max_idx] -= 1;
                        counts[i] = 1;
                    }
                }
            }
        }
        let mut pool: Vec<ResolverSpec> = Vec::with_capacity(total as usize);
        for (mix_idx, &count) in counts.iter().enumerate() {
            let (behavior, _) = mix[mix_idx];
            // The copier slice becomes real QueryCopier behaviour, and the
            // paper puts copiers and Technitium almost entirely in the
            // open-IPv4 pool.
            let behavior = match behavior {
                Behavior::ServfailFrom { first: 1, .. } => Behavior::QueryCopier,
                b => b,
            };
            let misplaced = matches!(
                behavior,
                Behavior::QueryCopier
                    | Behavior::ServfailFrom {
                        technitium: true,
                        ..
                    }
            ) && !(family == Family::V4 && access == Access::Open);
            for _ in 0..count {
                let effective = if misplaced {
                    Behavior::ServfailFrom {
                        first: 151,
                        technitium: false,
                    }
                } else {
                    behavior
                };
                let ede_visible = match access {
                    Access::Closed => false, // Atlas never shows EDE anyway
                    Access::Open => !rng.gen_bool(EDE_STRIP_P),
                };
                pool.push(ResolverSpec {
                    idx,
                    family,
                    access,
                    behavior: effective,
                    ede_visible,
                });
                idx += 1;
            }
        }
        for _ in 0..non_validators {
            pool.push(ResolverSpec {
                idx,
                family,
                access,
                behavior: Behavior::NonValidator,
                ede_visible: true,
            });
            idx += 1;
        }
        rng.shuffle(&mut pool);
        out.extend(pool);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<ResolverSpec> {
        generate_fleet(Scale(1.0 / 1_000.0), 11)
    }

    #[test]
    fn pool_sizes_scale() {
        let f = fleet();
        let open_v4 = f
            .iter()
            .filter(|r| r.family == Family::V4 && r.access == Access::Open)
            .count() as u64;
        assert!((1_350..=1_450).contains(&open_v4), "{open_v4}");
        let v = f
            .iter()
            .filter(|r| {
                r.family == Family::V4 && r.access == Access::Open && r.behavior.validates()
            })
            .count() as u64;
        assert!(
            (100..=110).contains(&v),
            "validators {v} (paper: 105.2K/1000)"
        );
    }

    #[test]
    fn item6_item8_shares() {
        let f = fleet();
        let validators: Vec<_> = f.iter().filter(|r| r.behavior.validates()).collect();
        let total = validators.len() as f64;
        let item6 = validators
            .iter()
            .filter(|r| {
                matches!(
                    r.behavior,
                    Behavior::InsecureAt { .. } | Behavior::Item7Violator { .. }
                )
            })
            .count() as f64;
        let item8 = validators
            .iter()
            .filter(|r| {
                matches!(
                    r.behavior,
                    Behavior::ServfailFrom { .. } | Behavior::QueryCopier
                )
            })
            .count() as f64;
        let p6 = item6 / total * 100.0;
        let p8 = item8 / total * 100.0;
        assert!((57.0..63.0).contains(&p6), "item6 {p6} (paper: 59.9)");
        assert!((16.0..21.0).contains(&p8), "item8 {p8} (paper: 18.4)");
    }

    #[test]
    fn threshold_ordering_150_over_100_over_50() {
        let f = fleet();
        let at = |limit: u16| {
            f.iter()
                .filter(
                    |r| matches!(r.behavior, Behavior::InsecureAt { limit: l, .. } if l == limit),
                )
                .count() as f64
        };
        let at150 = at(150);
        let at100 = at(100);
        let at50 = at(50);
        assert!(at100 > at150, "Google-style dominates open pools");
        assert!(at150 > at50);
        let ratio = at150 / at50;
        assert!(
            (9.0..16.0).contains(&ratio),
            "150:50 ratio {ratio} (paper: 12.5)"
        );
    }

    #[test]
    fn copiers_and_technitium_only_open_v4() {
        let f = fleet();
        for r in &f {
            match r.behavior {
                Behavior::QueryCopier
                | Behavior::ServfailFrom {
                    technitium: true, ..
                } => {
                    assert_eq!(r.family, Family::V4);
                    assert_eq!(r.access, Access::Open);
                }
                _ => {}
            }
        }
        let copiers = f
            .iter()
            .filter(|r| r.behavior == Behavior::QueryCopier)
            .count();
        assert!(copiers >= 1, "copier slice survives scaling");
    }

    #[test]
    fn closed_pool_counts() {
        let f = fleet();
        let closed_v4_val = f
            .iter()
            .filter(|r| {
                r.access == Access::Closed && r.family == Family::V4 && r.behavior.validates()
            })
            .count() as u64;
        let closed_v6_val = f
            .iter()
            .filter(|r| {
                r.access == Access::Closed && r.family == Family::V6 && r.behavior.validates()
            })
            .count() as u64;
        assert!((1..=2).contains(&closed_v4_val), "{closed_v4_val}");
        assert!(closed_v6_val >= 1);
    }

    #[test]
    fn ede_visibility_is_minority_for_open_validators() {
        let f = generate_fleet(Scale(1.0 / 100.0), 2);
        let limiting_open: Vec<_> = f
            .iter()
            .filter(|r| {
                r.access == Access::Open
                    && r.behavior.validates()
                    && !matches!(r.behavior, Behavior::ValidatorUnlimited)
            })
            .collect();
        let visible = limiting_open.iter().filter(|r| r.ede_visible).count() as f64;
        let pct = visible / limiting_open.len() as f64 * 100.0;
        assert!(
            (17.0..28.0).contains(&pct),
            "visible EDE {pct}% (strip p = 0.78)"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate_fleet(Scale(1.0 / 1_000.0), 9);
        let b = generate_fleet(Scale(1.0 / 1_000.0), 9);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.behavior == y.behavior));
    }
}
