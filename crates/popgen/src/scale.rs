//! Population scaling (DESIGN.md §5).
//!
//! Bulk category counts scale linearly; published percentages survive by
//! construction. Named long-tail outliers (the twelve 500-iteration
//! domains, the nine 160-byte salts, …) are injected with *absolute*
//! counts at every scale, because the paper reports them as absolute
//! counts and they are invisible in percentage space anyway.

/// A population scale factor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Full paper scale (302 M domains — do not instantiate zones at this
    /// scale; parameter-level analysis only).
    pub const FULL: Scale = Scale(1.0);
    /// Default benchmark scale.
    pub const BENCH: Scale = Scale(1.0 / 1_000.0);
    /// Default example scale.
    pub const EXAMPLE: Scale = Scale(1.0 / 10_000.0);
    /// Default test scale.
    pub const TEST: Scale = Scale(1.0 / 100_000.0);

    /// Scale a bulk count.
    pub fn apply(&self, count: u64) -> u64 {
        (count as f64 * self.0).round() as u64
    }

    /// Scale a count but keep at least one representative if the original
    /// was nonzero (used for small behavioural groups like the 92
    /// Technitium-style resolvers).
    pub fn apply_min1(&self, count: u64) -> u64 {
        if count == 0 {
            0
        } else {
            self.apply(count).max(1)
        }
    }
}

/// Largest-remainder allocation: split `total` into parts proportional to
/// `weights`, summing exactly to `total`.
pub fn allocate(total: u64, weights: &[f64]) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || total == 0 {
        return vec![0; weights.len()];
    }
    let raw: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut out: Vec<u64> = raw.iter().map(|r| r.floor() as u64).collect();
    let mut rem: i64 = total as i64 - out.iter().sum::<u64>() as i64;
    // Distribute the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a] - raw[a].floor();
        let fb = raw[b] - raw[b].floor();
        fb.partial_cmp(&fa).unwrap()
    });
    let mut i = 0;
    while rem > 0 {
        out[order[i % order.len()]] += 1;
        rem -= 1;
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rounds() {
        let s = Scale(0.001);
        assert_eq!(s.apply(302_000_000), 302_000);
        assert_eq!(s.apply(1), 0);
        assert_eq!(s.apply_min1(1), 1);
        assert_eq!(s.apply_min1(0), 0);
    }

    #[test]
    fn allocation_sums_exactly() {
        let parts = allocate(100, &[39.4, 9.5, 8.4, 5.0, 4.2]);
        assert_eq!(parts.iter().sum::<u64>(), 100);
        assert!(parts[0] > parts[4]);
        let parts = allocate(7, &[1.0, 1.0, 1.0]);
        assert_eq!(parts.iter().sum::<u64>(), 7);
    }

    #[test]
    fn allocation_handles_edge_cases() {
        assert_eq!(allocate(0, &[1.0, 2.0]), vec![0, 0]);
        assert_eq!(allocate(10, &[0.0, 0.0]), vec![0, 0]);
        let one = allocate(1, &[0.5, 0.5]);
        assert_eq!(one.iter().sum::<u64>(), 1);
    }

    #[test]
    fn proportions_roughly_respected() {
        let parts = allocate(1000, &[77.7, 22.3]);
        assert_eq!(parts, vec![777, 223]);
    }
}
