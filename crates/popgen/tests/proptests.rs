//! Property-based tests for the population generators: calibration
//! invariants must hold for every seed and a wide range of scales.

use popgen::domains::{DnssecKind, TAIL_OPERATOR};
use popgen::{allocate, generate_domains, generate_fleet, generate_tranco, Scale};
use sim_check::{gens, props};

props! {
    #![cases = 24]

    /// allocate() is exact, non-negative, and order-respecting for any
    /// weights.
    fn allocate_invariants(
        total in gens::u64s(0..100_000),
        weights in gens::vec_of(gens::f64s(0.0..100.0), 1..12),
    ) {
        let parts = allocate(total, &weights);
        assert_eq!(parts.len(), weights.len());
        let sum: f64 = weights.iter().sum();
        if sum > 0.0 {
            assert_eq!(parts.iter().sum::<u64>(), total);
        } else {
            assert!(parts.iter().all(|&p| p == 0));
        }
        // A strictly larger weight never gets a smaller share by more than
        // the rounding unit.
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                if weights[i] > weights[j] {
                    assert!(parts[i] + 1 >= parts[j], "{:?} vs {:?}", weights, parts);
                }
            }
        }
    }

    /// Domain populations hold their calibration for any seed.
    fn domain_population_invariants(seed in gens::u64s(..)) {
        let specs = generate_domains(Scale(1.0 / 20_000.0), seed);
        let total = specs.len() as f64;
        let dnssec = specs.iter().filter(|d| d.dnssec != DnssecKind::None).count() as f64;
        let nsec3: Vec<_> = specs.iter().filter_map(|d| d.nsec3()).collect();
        // Marginals within generous tolerances at this scale.
        assert!((dnssec / total * 100.0 - 8.8).abs() < 2.5);
        let zero = nsec3.iter().filter(|(it, _, _)| *it == 0).count() as f64;
        assert!((zero / nsec3.len() as f64 * 100.0 - 12.2).abs() < 4.0);
        // Absolute tails always present and attributed.
        let at500: Vec<_> = specs
            .iter()
            .filter(|d| matches!(d.nsec3(), Some((500, _, _))))
            .collect();
        assert_eq!(at500.len(), 12);
        assert!(at500.iter().all(|d| d.operator == Some(TAIL_OPERATOR)));
        // Names are unique.
        let mut names: Vec<&str> = specs.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    /// Fleet pools and behaviour groups survive every seed.
    fn fleet_invariants(seed in gens::u64s(..)) {
        let fleet = generate_fleet(Scale(1.0 / 2_000.0), seed);
        let validators = fleet.iter().filter(|r| r.behavior.validates()).count() as f64;
        assert!(validators > 40.0);
        // Validator share of open v4 near the paper's 7.5 %.
        let open_v4: Vec<_> = fleet
            .iter()
            .filter(|r| {
                r.access == popgen::Access::Open && r.family == popgen::Family::V4
            })
            .collect();
        let v = open_v4.iter().filter(|r| r.behavior.validates()).count() as f64;
        let share = v / open_v4.len() as f64 * 100.0;
        assert!((share - 7.5).abs() < 2.0, "open v4 validator share {share}");
        // The copier class always survives.
        assert!(fleet.iter().any(|r| r.behavior == popgen::Behavior::QueryCopier));
    }

    /// Tranco entries keep ranks unique and ascending for any seed/scale.
    fn tranco_invariants(seed in gens::u64s(..), denom in gens::u32s(10..200)) {
        let list = generate_tranco(Scale(1.0 / denom as f64), seed);
        assert!(!list.is_empty());
        assert!(list.windows(2).all(|w| w[0].rank < w[1].rank));
        assert_eq!(list.first().unwrap().rank, 1);
    }
}
