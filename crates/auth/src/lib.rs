//! An authoritative DNS server engine over the simulated network.
//!
//! [`AuthServer`] serves any number of signed zones, implements the
//! RFC 4035/5155 answer algorithm (positive answers, referrals, NODATA,
//! NXDOMAIN with NSEC/NSEC3 proofs, wildcard synthesis), and keeps the
//! query log the paper's methodology uses to attribute forwarders
//! ("We enable server-side logging to track source IP addresses
//! interacting with our name server", §4.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::IpAddr;

use dns_wire::message::{unframe_tcp, Message, Question};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Class, Rcode, RrType};
use dns_wire::view::MessageView;
use dns_zone::denial::{self, DenialKind};
use dns_zone::signer::SignedZone;
use netsim::{Network, Node};

/// One logged query, as the paper's server-side logging captures it.
#[derive(Clone, Debug)]
pub struct QueryLogEntry {
    /// Source address the query arrived from (the forwarder's egress, not
    /// necessarily the original client).
    pub src: IpAddr,
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RrType,
    /// Whether the query had the DO bit.
    pub dnssec_ok: bool,
}

/// The EDNS facet of a query that can change the bytes of the answer.
/// Payload size is deliberately absent: it only bounds delivery (the
/// truncation check), never the answer itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum EdnsState {
    /// No OPT record at all: plain DNS, no DNSSEC records in the answer.
    Absent,
    /// EDNS present, DO clear.
    Plain,
    /// EDNS present, DO set: the answer carries RRSIGs and denial proofs.
    Do,
}

/// Key identifying one cacheable answer template: everything about a
/// query that the encoded response bytes depend on, except the ID, the
/// opcode/RD flag bits, and the literal (case-preserving) question bytes
/// — those three are patched into the template per query.
type TemplateKey = (Name, RrType, Class, EdnsState);

/// Bound on distinct templates kept per server. When full the whole map
/// is dropped (deterministic, unlike per-entry LRU under HashMap order).
const TEMPLATE_CACHE_CAP: usize = 1024;

/// An authoritative name server holding one or more signed zones.
pub struct AuthServer {
    zones: RefCell<HashMap<Name, SignedZone>>,
    log: RefCell<Vec<QueryLogEntry>>,
    log_cap: usize,
    /// Apexes whose zones may be transferred (the CZDS/open-AXFR TLDs the
    /// paper counts: 1,105 of the 1,302 NSEC3-enabled TLDs share zone
    /// data).
    axfr_allowed: RefCell<std::collections::HashSet<Name>>,
    /// Encoded full responses keyed by the answer-determining parts of a
    /// query; served with ID/flags/question patched in place. Invalidated
    /// whenever zone data or transfer policy changes.
    templates: RefCell<HashMap<TemplateKey, Vec<u8>>>,
}

impl AuthServer {
    /// An empty server; add zones with [`AuthServer::add_zone`].
    pub fn new() -> Self {
        AuthServer {
            zones: RefCell::new(HashMap::new()),
            log: RefCell::new(Vec::new()),
            log_cap: 100_000,
            axfr_allowed: RefCell::new(std::collections::HashSet::new()),
            templates: RefCell::new(HashMap::new()),
        }
    }

    /// Permit zone transfers (`AXFR`) for `apex`.
    pub fn allow_axfr(&self, apex: &Name) {
        self.axfr_allowed.borrow_mut().insert(apex.clone());
        self.templates.borrow_mut().clear();
    }

    /// Install (or replace) a zone.
    pub fn add_zone(&self, zone: SignedZone) {
        self.zones
            .borrow_mut()
            .insert(zone.zone.apex().clone(), zone);
        self.templates.borrow_mut().clear();
    }

    /// Remove a zone by apex.
    pub fn remove_zone(&self, apex: &Name) {
        self.zones.borrow_mut().remove(apex);
        self.templates.borrow_mut().clear();
    }

    fn store_template(&self, key: TemplateKey, wire: &[u8]) {
        let mut templates = self.templates.borrow_mut();
        if templates.len() >= TEMPLATE_CACHE_CAP && !templates.contains_key(&key) {
            templates.clear();
        }
        templates.insert(key, wire.to_vec());
    }

    /// Snapshot of the query log.
    pub fn query_log(&self) -> Vec<QueryLogEntry> {
        self.log.borrow().clone()
    }

    /// Drop all log entries (the paper discards unrelated logs promptly).
    pub fn clear_log(&self) {
        self.log.borrow_mut().clear();
    }

    /// Answer one question against the installed zones. This is the pure
    /// engine; [`Node::handle`] wraps it in wire encode/decode.
    pub fn answer(&self, query: &Message) -> Message {
        let mut resp = Message::response_to(query);
        let question = match query.question() {
            Some(q) => q.clone(),
            None => {
                resp.rcode = Rcode::FormErr;
                return resp;
            }
        };
        let zones = self.zones.borrow();
        let zone = match best_zone(&zones, &question.qname) {
            Some(z) => z,
            None => {
                resp.rcode = Rcode::Refused;
                return resp;
            }
        };
        let dnssec = query.dnssec_ok();
        resp.flags.aa = true;
        // Zone transfer: all records, SOA first and last (RFC 5936 §2.2),
        // if the zone's policy allows it.
        if question.qtype == RrType::AXFR {
            if question.qname == *zone.zone.apex()
                && self.axfr_allowed.borrow().contains(&question.qname)
            {
                let apex = zone.zone.apex().clone();
                let soa: Vec<Record> = zone
                    .zone
                    .rrset(&apex, RrType::SOA)
                    .map(|s| s.to_vec())
                    .unwrap_or_default();
                resp.answers.extend(soa.iter().cloned());
                resp.answers.extend(
                    zone.zone
                        .iter()
                        .filter(|r| r.rrtype() != RrType::SOA)
                        .cloned(),
                );
                resp.answers.extend(soa);
            } else {
                resp.rcode = Rcode::Refused;
            }
            return resp;
        }
        self.answer_in_zone(zone, &question, dnssec, &mut resp);
        resp
    }

    fn answer_in_zone(
        &self,
        zone: &SignedZone,
        question: &Question,
        dnssec: bool,
        resp: &mut Message,
    ) {
        let qname = &question.qname;
        let qtype = question.qtype;
        let z = &zone.zone;

        // 1. Referral if qname sits at or under a delegation (but a query
        //    *for* the DS of a delegation is answered authoritatively by
        //    the parent).
        if let Some(cut) = delegation_cut(zone, qname) {
            if !(cut == *qname && qtype == RrType::DS) {
                resp.flags.aa = false;
                push_rrset(resp, z, &cut, RrType::NS, dnssec, Section::Authority);
                if dnssec {
                    if z.rrset(&cut, RrType::DS).is_some() {
                        push_rrset(resp, z, &cut, RrType::DS, true, Section::Authority);
                    } else if let Ok(proof) = denial::nodata_proof(zone, &cut) {
                        // Opt-out/insecure delegation: prove DS absence.
                        resp.authorities.extend(proof.records);
                    }
                }
                // Glue.
                if let Some(ns_set) = z.rrset(&cut, RrType::NS) {
                    for ns in ns_set {
                        if let RData::Ns(target) = &ns.rdata {
                            for t in [RrType::A, RrType::AAAA] {
                                if let Some(glue) = z.rrset(target, t) {
                                    resp.additionals.extend(glue.iter().cloned());
                                }
                            }
                        }
                    }
                }
                return;
            }
        }

        // 2. Exact-name cases.
        if z.has_name(qname) && !z.is_occluded(qname) {
            if z.rrset(qname, qtype).is_some() {
                push_rrset(resp, z, qname, qtype, dnssec, Section::Answer);
                return;
            }
            if let Some(cname) = z.rrset(qname, RrType::CNAME) {
                let _ = cname;
                push_rrset(resp, z, qname, RrType::CNAME, dnssec, Section::Answer);
                return;
            }
            // NODATA.
            push_rrset(resp, z, z.apex(), RrType::SOA, dnssec, Section::Authority);
            if dnssec {
                if let Ok(proof) = denial::nodata_proof(zone, qname) {
                    resp.authorities.extend(proof.records);
                }
            }
            return;
        }

        // 3. Empty non-terminal => NODATA with empty bitmap proof.
        if z.name_exists(qname) {
            push_rrset(resp, z, z.apex(), RrType::SOA, dnssec, Section::Authority);
            if dnssec {
                if let Ok(proof) = denial::nodata_proof(zone, qname) {
                    resp.authorities.extend(proof.records);
                }
            }
            return;
        }

        // 4. Wildcard synthesis.
        let ce = z.closest_encloser(qname);
        if let Ok(wildcard) = ce.prepend(b"*") {
            if z.rrset(&wildcard, qtype).is_some() {
                // Expand: answers take the query name, signatures keep the
                // wildcard labels count (that is the expansion signal).
                let mut expanded: Vec<Record> = Vec::new();
                for rec in z.rrset(&wildcard, qtype).unwrap() {
                    expanded.push(Record::new(qname.clone(), rec.ttl, rec.rdata.clone()));
                }
                if dnssec {
                    if let Some(sigs) = z.rrset(&wildcard, RrType::RRSIG) {
                        for sig in sigs {
                            if matches!(&sig.rdata, RData::Rrsig { type_covered, .. } if *type_covered == qtype)
                            {
                                expanded.push(Record::new(
                                    qname.clone(),
                                    sig.ttl,
                                    sig.rdata.clone(),
                                ));
                            }
                        }
                    }
                }
                resp.answers.extend(expanded);
                if dnssec {
                    if let Ok(proof) = denial::wildcard_expansion_proof(zone, qname, &ce) {
                        debug_assert_eq!(proof.kind, DenialKind::WildcardExpansion);
                        resp.authorities.extend(proof.records);
                    }
                }
                return;
            }
            if z.has_name(&wildcard) {
                // Wildcard exists but lacks qtype: NODATA via the wildcard.
                push_rrset(resp, z, z.apex(), RrType::SOA, dnssec, Section::Authority);
                if dnssec {
                    if let Ok(proof) = denial::nodata_proof(zone, &wildcard) {
                        resp.authorities.extend(proof.records);
                    }
                    if let Ok(proof) = denial::wildcard_expansion_proof(zone, qname, &ce) {
                        resp.authorities.extend(proof.records);
                    }
                }
                return;
            }
        }

        // 5. NXDOMAIN.
        resp.rcode = Rcode::NxDomain;
        push_rrset(resp, z, z.apex(), RrType::SOA, dnssec, Section::Authority);
        if dnssec {
            if let Ok(proof) = denial::nxdomain_proof(zone, qname) {
                resp.authorities.extend(proof.records);
            }
        }
    }
}

impl Default for AuthServer {
    fn default() -> Self {
        Self::new()
    }
}

enum Section {
    Answer,
    Authority,
}

/// Append the RRset (and, with DNSSEC, its RRSIGs) to a response section.
fn push_rrset(
    resp: &mut Message,
    zone: &dns_zone::Zone,
    owner: &Name,
    rrtype: RrType,
    dnssec: bool,
    section: Section,
) {
    let mut records = Vec::new();
    if let Some(set) = zone.rrset(owner, rrtype) {
        records.extend(set.iter().cloned());
    }
    if dnssec {
        if let Some(sigs) = zone.rrset(owner, RrType::RRSIG) {
            records.extend(
                sigs.iter()
                    .filter(|s| {
                        matches!(&s.rdata, RData::Rrsig { type_covered, .. } if *type_covered == rrtype)
                    })
                    .cloned(),
            );
        }
    }
    match section {
        Section::Answer => resp.answers.extend(records),
        Section::Authority => resp.authorities.extend(records),
    }
}

/// Zone with the longest apex that is an ancestor-or-self of `qname`.
fn best_zone<'a>(zones: &'a HashMap<Name, SignedZone>, qname: &Name) -> Option<&'a SignedZone> {
    qname
        .self_and_ancestors()
        .into_iter()
        .find_map(|candidate| zones.get(&candidate))
}

/// The delegation cut at or above `qname` inside the zone, if any
/// (nearest to the apex wins — a resolver descends one cut at a time).
fn delegation_cut(zone: &SignedZone, qname: &Name) -> Option<Name> {
    let mut ancestors = qname.self_and_ancestors();
    ancestors.reverse(); // apex-first
    ancestors
        .into_iter()
        .filter(|n| n.is_subdomain_of(zone.zone.apex()) && *n != *zone.zone.apex())
        .find(|n| zone.zone.is_delegation(n))
}

impl Node for AuthServer {
    fn handle(
        &self,
        _net: &Network,
        src: IpAddr,
        payload: &[u8],
        reply: &mut Vec<u8>,
    ) -> Option<()> {
        // RFC 7766: a length-framed payload is a stream ("TCP") exchange —
        // no size limit and a framed response. The length prefix is the
        // only framing signal, and a UDP message whose ID bytes happen to
        // equal its length minus two looks framed as well — so fall back
        // to a raw parse when the framed interpretation does not hold,
        // instead of answering such queries with silence. `parse` +
        // `validate` accept exactly the packets `Message::decode` accepts,
        // without materializing any record.
        let (datagram, tcp) = match unframe_tcp(payload) {
            Some(inner) if MessageView::parse(inner).is_ok_and(|v| v.validate().is_ok()) => {
                (inner, true)
            }
            _ => (payload, false),
        };
        let view = MessageView::parse(datagram).ok()?;
        let edns = view.validate().ok()?;
        let flags = view.flags();
        if flags.qr {
            return None; // not a query
        }
        if let Some(q) = view.question() {
            if let Ok(qname) = q.qname() {
                let mut log = self.log.borrow_mut();
                if log.len() < self.log_cap {
                    log.push(QueryLogEntry {
                        src,
                        qname,
                        qtype: q.qtype(),
                        dnssec_ok: edns.as_ref().is_some_and(|e| e.dnssec_ok),
                    });
                }
            }
        }
        // A query is template-cacheable when the answer bytes are a pure
        // function of (qname, qtype, qclass, EDNS state): exactly one
        // question, written literally (no compression pointers — its raw
        // bytes get copied into the template verbatim to preserve 0x20
        // case echoing), and not a zone transfer.
        let template_key = view.question().and_then(|q| {
            if view.qdcount() != 1 || q.qtype() == RrType::AXFR {
                return None;
            }
            let raw = q.raw_entry()?;
            debug_assert!(raw.len() >= 5);
            let state = match &edns {
                None => EdnsState::Absent,
                Some(e) if e.dnssec_ok => EdnsState::Do,
                Some(_) => EdnsState::Plain,
            };
            Some((q.qname().ok()?, q.qtype(), q.qclass(), state))
        });
        // UDP truncation bound: the requester's EDNS payload size (512
        // without EDNS) bounds the response; over it, send TC with empty
        // sections. Payload size is per-query, so the check runs against
        // the template length on hits too.
        let limit = edns
            .as_ref()
            .map(|e| e.udp_payload_size as usize)
            .unwrap_or(512)
            .max(512);
        if let Some(key) = &template_key {
            let templates = self.templates.borrow();
            if let Some(wire) = templates.get(key) {
                if tcp || wire.len() <= limit {
                    if tcp {
                        reply.extend_from_slice(&(wire.len() as u16).to_be_bytes());
                    }
                    let off = reply.len();
                    reply.extend_from_slice(wire);
                    // Patch the query-specific bytes: ID, opcode + RD in
                    // the upper flags byte (QR/AA/TC stay as encoded), and
                    // the literal question (case echo). Everything else in
                    // the packet — counts, sections, OPT — is fixed by the
                    // key, and compression pointers into the question stay
                    // valid because the name's length is part of the key.
                    reply[off..off + 2].copy_from_slice(&view.id().to_be_bytes());
                    reply[off + 2] =
                        (reply[off + 2] & !0x79) | (flags.opcode.to_u8() << 3) | u8::from(flags.rd);
                    let raw = view
                        .question()
                        .and_then(|q| q.raw_entry())
                        .expect("template key implies a literal question");
                    reply[off + 12..off + 12 + raw.len()].copy_from_slice(raw);
                    return Some(());
                }
                // Over the requester's size limit: fall through and build
                // the truncated response fresh (it is tiny).
            }
        }
        let query = view.to_message().ok()?;
        let response = self.answer(&query);
        let start = reply.len();
        if tcp {
            response.encode_framed_append(reply);
            if let Some(key) = template_key {
                self.store_template(key, &reply[start + 2..]);
            }
            return Some(());
        }
        response.encode_append(reply);
        if let Some(key) = template_key {
            self.store_template(key, &reply[start..]);
        }
        if reply.len() - start > limit {
            let mut truncated = Message::response_to(&query);
            truncated.flags.aa = response.flags.aa;
            truncated.flags.tc = true;
            truncated.rcode = response.rcode;
            reply.truncate(start);
            truncated.encode_append(reply);
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::name::name;
    use dns_zone::signer::{sign_zone, SignerConfig};
    use dns_zone::Zone;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    const NOW: u32 = 1_710_000_000;

    fn build_server() -> AuthServer {
        let mut z = Zone::new(name("example."));
        z.add(Record::new(
            name("example."),
            3600,
            RData::Soa {
                mname: name("ns1.example."),
                rname: name("host.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("example."),
            3600,
            RData::Ns(name("ns1.example.")),
        ))
        .unwrap();
        z.add(Record::new(
            name("ns1.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ))
        .unwrap();
        z.add(Record::new(
            name("alias.example."),
            300,
            RData::Cname(name("www.example.")),
        ))
        .unwrap();
        z.add(Record::new(
            name("*.wild.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 9)),
        ))
        .unwrap();
        // Insecure delegation.
        z.add(Record::new(
            name("sub.example."),
            3600,
            RData::Ns(name("ns1.sub.example.")),
        ))
        .unwrap();
        z.add(Record::new(
            name("ns1.sub.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 60)),
        ))
        .unwrap();
        let signed = sign_zone(&z, &SignerConfig::standard(&name("example."), NOW)).unwrap();
        let server = AuthServer::new();
        server.add_zone(signed);
        server
    }

    fn ask(server: &AuthServer, qname: &str, qtype: RrType) -> Message {
        server.answer(&Message::query(1, name(qname), qtype))
    }

    #[test]
    fn positive_answer_with_rrsig() {
        let s = build_server();
        let resp = ask(&s, "www.example.", RrType::A);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.flags.aa);
        assert_eq!(resp.records_of_type(RrType::A).count(), 1);
        assert_eq!(resp.records_of_type(RrType::RRSIG).count(), 1);
    }

    #[test]
    fn plain_dns_omits_dnssec_records() {
        let s = build_server();
        let mut q = Message::query(1, name("www.example."), RrType::A);
        q.edns = None;
        let resp = s.answer(&q);
        assert_eq!(resp.records_of_type(RrType::A).count(), 1);
        assert!(resp.records_of_type(RrType::RRSIG).next().is_none());
    }

    #[test]
    fn nxdomain_carries_proof() {
        let s = build_server();
        let resp = ask(&s, "nx.example.", RrType::A);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.records_of_type(RrType::SOA).next().is_some());
        let nsec3 = resp.records_of_type(RrType::NSEC3).count();
        assert!((1..=3).contains(&nsec3), "{nsec3} NSEC3s");
    }

    #[test]
    fn nodata_carries_matching_nsec3() {
        let s = build_server();
        let resp = ask(&s, "www.example.", RrType::TXT);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert!(resp.records_of_type(RrType::SOA).next().is_some());
        assert_eq!(resp.records_of_type(RrType::NSEC3).count(), 1);
    }

    #[test]
    fn cname_returned_without_chasing() {
        let s = build_server();
        let resp = ask(&s, "alias.example.", RrType::A);
        assert_eq!(resp.records_of_type(RrType::CNAME).count(), 1);
        assert!(resp.records_of_type(RrType::A).next().is_none());
    }

    #[test]
    fn wildcard_expansion_synthesizes_qname() {
        let s = build_server();
        let resp = ask(&s, "anything.wild.example.", RrType::A);
        assert_eq!(resp.rcode, Rcode::NoError);
        let answers: Vec<_> = resp.records_of_type(RrType::A).collect();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].name, name("anything.wild.example."));
        // Expansion proof: NSEC3 covering the next closer.
        assert!(resp.records_of_type(RrType::NSEC3).next().is_some());
        // The RRSIG's labels field is smaller than the owner's label count.
        let sig = resp
            .answers
            .iter()
            .find(|r| r.rrtype() == RrType::RRSIG)
            .expect("expanded RRSIG");
        match &sig.rdata {
            RData::Rrsig { labels, .. } => {
                assert!((*labels as usize) < sig.name.label_count());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn referral_for_insecure_delegation() {
        let s = build_server();
        let resp = ask(&s, "deep.sub.example.", RrType::A);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(!resp.flags.aa);
        assert!(resp.answers.is_empty());
        assert!(resp.records_of_type(RrType::NS).next().is_some());
        // Glue present.
        assert!(resp.additionals.iter().any(|r| r.rrtype() == RrType::A));
        // DS-absence proof (NSEC3) present since query had DO.
        assert!(resp.records_of_type(RrType::NSEC3).next().is_some());
    }

    #[test]
    fn ds_query_at_cut_answered_by_parent() {
        let s = build_server();
        let resp = ask(&s, "sub.example.", RrType::DS);
        // Insecure delegation: NODATA with proof, authoritative.
        assert!(resp.flags.aa);
        assert!(resp.answers.is_empty());
        assert!(resp.records_of_type(RrType::SOA).next().is_some());
    }

    #[test]
    fn refused_outside_zones() {
        let s = build_server();
        let resp = ask(&s, "www.other.", RrType::A);
        assert_eq!(resp.rcode, Rcode::Refused);
    }

    #[test]
    fn query_log_records_sources() {
        let s = build_server();
        let net = Network::new(1);
        let server = Rc::new(s);
        let addr: IpAddr = "10.0.0.53".parse().unwrap();
        let client: IpAddr = "10.9.9.9".parse().unwrap();
        net.register(addr, server.clone());
        let q = Message::query(7, name("www.example."), RrType::A).encode();
        let out = net.send_query(client, addr, &q);
        assert!(out.payload().is_some());
        let log = server.query_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].src, client);
        assert_eq!(log[0].qname, name("www.example."));
        assert!(log[0].dnssec_ok);
    }

    #[test]
    fn dnskey_and_nsec3param_queries_answered() {
        let s = build_server();
        let dk = ask(&s, "example.", RrType::DNSKEY);
        assert_eq!(dk.records_of_type(RrType::DNSKEY).count(), 2);
        let np = ask(&s, "example.", RrType::NSEC3PARAM);
        assert_eq!(np.records_of_type(RrType::NSEC3PARAM).count(), 1);
    }

    #[test]
    fn formerr_on_empty_question() {
        let s = build_server();
        let mut q = Message::query(1, name("www.example."), RrType::A);
        q.questions.clear();
        assert_eq!(s.answer(&q).rcode, Rcode::FormErr);
    }

    #[test]
    fn queries_are_case_insensitive() {
        let s = build_server();
        let resp = ask(&s, "WWW.EXAMPLE.", RrType::A);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.records_of_type(RrType::A).count(), 1);
    }

    #[test]
    fn empty_non_terminal_gets_nodata_not_nxdomain() {
        let s = build_server();
        // a.b.c.example. exists in a fresh zone with an ENT at b.c.example..
        let mut z = Zone::new(name("ent.example."));
        z.add(Record::new(
            name("ent.example."),
            3600,
            RData::Soa {
                mname: name("ns1.ent.example."),
                rname: name("h.ent.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("a.b.ent.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ))
        .unwrap();
        s.add_zone(sign_zone(&z, &SignerConfig::standard(&name("ent.example."), NOW)).unwrap());
        let resp = ask(&s, "b.ent.example.", RrType::A);
        assert_eq!(
            resp.rcode,
            Rcode::NoError,
            "ENTs exist: NODATA, not NXDOMAIN"
        );
        assert!(resp.answers.is_empty());
        let resp = ask(&s, "zz.b.ent.example.", RrType::A);
        assert_eq!(resp.rcode, Rcode::NxDomain);
    }

    #[test]
    fn nsec_signed_zone_serves_nsec_proofs() {
        let s = AuthServer::new();
        let mut z = Zone::new(name("plain.example."));
        z.add(Record::new(
            name("plain.example."),
            3600,
            RData::Soa {
                mname: name("ns1.plain.example."),
                rname: name("h.plain.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("www.plain.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ))
        .unwrap();
        let cfg = SignerConfig {
            denial: dns_zone::signer::Denial::Nsec,
            ..SignerConfig::standard(&name("plain.example."), NOW)
        };
        s.add_zone(sign_zone(&z, &cfg).unwrap());
        let resp = s.answer(&Message::query(1, name("nope.plain.example."), RrType::A));
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.records_of_type(RrType::NSEC).next().is_some());
        assert!(resp.records_of_type(RrType::NSEC3).next().is_none());
    }

    #[test]
    fn responses_to_responses_are_dropped() {
        let s = build_server();
        let net = Network::new(1);
        let addr: IpAddr = "10.0.0.53".parse().unwrap();
        net.register(addr, Rc::new(s));
        let mut q = Message::query(5, name("www.example."), RrType::A);
        q.flags.qr = true; // a response, not a query
        let out = net.send_query("10.9.9.9".parse().unwrap(), addr, &q.encode());
        assert!(out.payload().is_none(), "servers must not answer responses");
    }

    #[test]
    fn axfr_refused_by_default_allowed_when_enabled() {
        let s = build_server();
        let refused = ask(&s, "example.", RrType::AXFR);
        assert_eq!(refused.rcode, Rcode::Refused);
        assert!(refused.answers.is_empty());

        s.allow_axfr(&name("example."));
        let xfer = ask(&s, "example.", RrType::AXFR);
        assert_eq!(xfer.rcode, Rcode::NoError);
        // SOA first and last.
        assert_eq!(xfer.answers.first().unwrap().rrtype(), RrType::SOA);
        assert_eq!(xfer.answers.last().unwrap().rrtype(), RrType::SOA);
        // The whole zone (every record + the duplicated SOA).
        let zone_len = {
            // Rebuild to count: the server holds one zone.
            xfer.answers.len() - 1
        };
        assert!(zone_len > 10, "{zone_len}");
        // AXFR for a non-apex name is refused even when enabled.
        let sub = ask(&s, "www.example.", RrType::AXFR);
        assert_eq!(sub.rcode, Rcode::Refused);
    }

    #[test]
    fn multiple_zones_longest_match() {
        let s = build_server();
        // Add a second, deeper zone: sub2.example. served here too.
        let mut z = Zone::new(name("sub2.example."));
        z.add(Record::new(
            name("sub2.example."),
            3600,
            RData::Soa {
                mname: name("ns1.sub2.example."),
                rname: name("host.sub2.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("x.sub2.example."),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 77)),
        ))
        .unwrap();
        s.add_zone(sign_zone(&z, &SignerConfig::standard(&name("sub2.example."), NOW)).unwrap());
        let resp = ask(&s, "x.sub2.example.", RrType::A);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.records_of_type(RrType::A).count(), 1);
    }

    /// Drive the wire-level entry point directly.
    fn handle_raw(s: &AuthServer, net: &Network, payload: &[u8]) -> Option<Vec<u8>> {
        let mut reply = Vec::new();
        let src: IpAddr = "10.9.9.9".parse().unwrap();
        s.handle(net, src, payload, &mut reply).map(|()| reply)
    }

    #[test]
    fn template_cache_serves_identical_bytes() {
        let s = build_server();
        let net = Network::new(1);
        let cold_q = Message::query(7, name("www.example."), RrType::A);
        let cold = handle_raw(&s, &net, &cold_q.encode()).unwrap();
        assert_eq!(s.templates.borrow().len(), 1);
        // Second query: different ID and 0x20-style mixed case. The warm
        // path must patch both and produce exactly what a fresh encode of
        // a fresh answer would.
        let warm_q = Message::query(991, name("WwW.eXaMpLe."), RrType::A);
        let warm = handle_raw(&s, &net, &warm_q.encode()).unwrap();
        assert_eq!(s.templates.borrow().len(), 1, "same key, one template");
        let fresh = s.answer(&warm_q).encode();
        assert_eq!(warm, fresh);
        assert_ne!(cold, warm, "ID and question case differ");
        assert_eq!(cold.len(), warm.len());
        // The cold (miss) response itself must equal a fresh encode too.
        assert_eq!(cold, s.answer(&cold_q).encode());
    }

    #[test]
    fn template_cache_tcp_framing_and_key_separation() {
        let s = build_server();
        let net = Network::new(1);
        let q = Message::query(3, name("www.example."), RrType::A);
        let udp = handle_raw(&s, &net, &q.encode()).unwrap();
        // Same key over "TCP": framed reply, same datagram bytes.
        let framed = handle_raw(&s, &net, &dns_wire::message::frame_tcp(&q.encode())).unwrap();
        assert_eq!(&framed[..2], (udp.len() as u16).to_be_bytes().as_slice());
        assert_eq!(&framed[2..], udp.as_slice());
        // DO off is a different EDNS state: separate template, no RRSIGs.
        let mut plain = Message::query(3, name("www.example."), RrType::A);
        plain.edns = None;
        let plain_resp = handle_raw(&s, &net, &plain.encode()).unwrap();
        assert_eq!(s.templates.borrow().len(), 2);
        let decoded = Message::decode(&plain_resp).unwrap();
        assert!(decoded.records_of_type(RrType::RRSIG).next().is_none());
    }

    #[test]
    fn template_cache_respects_truncation_limit() {
        let s = build_server();
        let net = Network::new(1);
        // Inflate www.example./TXT well past 512 bytes so the no-EDNS
        // limit forces truncation.
        let mut z = Zone::new(name("big.example."));
        z.add(Record::new(
            name("big.example."),
            3600,
            RData::Soa {
                mname: name("ns1.big.example."),
                rname: name("h.big.example."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        ))
        .unwrap();
        z.add(Record::new(
            name("www.big.example."),
            300,
            RData::Txt(vec![vec![b'x'; 200], vec![b'y'; 200], vec![b'z'; 200]]),
        ))
        .unwrap();
        s.add_zone(sign_zone(&z, &SignerConfig::standard(&name("big.example."), NOW)).unwrap());
        // Warm the template with a roomy EDNS payload size.
        let mut big = Message::query(1, name("www.big.example."), RrType::TXT);
        big.edns = Some(dns_wire::edns::Edns {
            udp_payload_size: 4096,
            ..dns_wire::edns::Edns::default()
        });
        let full = handle_raw(&s, &net, &big.encode()).unwrap();
        assert!(full.len() > 512, "test premise: {} bytes", full.len());
        // Same key again but via a 512-limit query: must truncate even
        // though the template is warm.
        let mut small = Message::query(2, name("www.big.example."), RrType::TXT);
        small.edns = Some(dns_wire::edns::Edns {
            udp_payload_size: 512,
            ..dns_wire::edns::Edns::default()
        });
        let tc = handle_raw(&s, &net, &small.encode()).unwrap();
        let decoded = Message::decode(&tc).unwrap();
        assert!(decoded.flags.tc);
        assert!(decoded.answers.is_empty());
        // Byte-for-byte what the pure path would have sent.
        let query = Message::decode(&small.encode()).unwrap();
        let response = s.answer(&query);
        let mut expect = Message::response_to(&query);
        expect.flags.aa = response.flags.aa;
        expect.flags.tc = true;
        expect.rcode = response.rcode;
        assert_eq!(tc, expect.encode());
    }

    #[test]
    fn template_cache_invalidated_on_zone_change() {
        let s = build_server();
        let net = Network::new(1);
        let q = Message::query(9, name("www.example."), RrType::A).encode();
        handle_raw(&s, &net, &q).unwrap();
        assert!(!s.templates.borrow().is_empty());
        s.remove_zone(&name("example."));
        assert!(s.templates.borrow().is_empty(), "zone change must flush");
        let refused = handle_raw(&s, &net, &q).unwrap();
        assert_eq!(Message::decode(&refused).unwrap().rcode, Rcode::Refused);
    }
}
