//! Property tests for the fault-episode engine seen through the
//! experiment drivers: a [`FaultSchedule`] is part of the experiment
//! input, so a faulty run must replay byte for byte regardless of how
//! the work is sharded across threads. Episode decisions are derived by
//! hashing the schedule seed with the flow, never from the network RNG —
//! these properties pin that contract for arbitrary seeds, not just the
//! one the unit tests happen to use.

use dns_scanner::retry::BreakerConfig;
use netsim::{Episode, EpisodeKind, FaultSchedule, RetryPolicy, Scope};
use nsec3_core::experiments::{
    run_domain_census_cfg, run_resolver_study_cfg, DriverConfig, ScanProfile, DEFAULT_LAB_SEED,
};
use popgen::{generate_domains, generate_fleet, Scale};
use sim_check::{gens, props};

const NOW: u32 = 1_710_000_000;

/// Shorthand: a clean config at `threads` carrying `profile`.
fn cfg_with(threads: usize, profile: &ScanProfile) -> DriverConfig {
    DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED).with_profile(profile.clone())
}

/// A deliberately nasty flow-keyed profile: random loss, jittered
/// latency, adaptive backoff, breaker armed — everything derived from
/// `seed`. Only flow-keyed episode kinds (no time windows, no rate
/// limits), so the schedule is shard-invariant for every driver.
fn flow_keyed_profile(seed: u64) -> ScanProfile {
    ScanProfile {
        schedule: FaultSchedule {
            base: Default::default(),
            seed,
            episodes: vec![
                Episode::always(EpisodeKind::Flap {
                    scope: Scope::All,
                    drop_chance: 0.15,
                }),
                Episode::always(EpisodeKind::LatencySpike {
                    scope: Scope::All,
                    extra_micros: 4_000,
                    jitter_micros: 2_500,
                }),
            ],
        },
        retry: RetryPolicy::adaptive(seed.rotate_left(17)),
        breaker: BreakerConfig::default(),
    }
}

props! {
    #![cases = 4]

    /// A faulty census replays identically across thread counts: the
    /// records and the loss accounting are a pure function of the
    /// population seed and the schedule seed. `batch_size = 1` gives
    /// every domain a fresh lab whose virtual clock starts at zero, so
    /// even time-sensitive fault state cannot leak across shards.
    fn faulty_census_replays_across_threads(seed in gens::u64s(..)) {
        let specs: Vec<_> = generate_domains(Scale(1.0 / 100_000.0), seed ^ 1)
            .into_iter()
            .take(24)
            .collect();
        let profile = flow_keyed_profile(seed);
        let (rec1, st1) =
            run_domain_census_cfg(&specs, 1, &cfg_with(1, &profile));
        let (rec4, st4) =
            run_domain_census_cfg(&specs, 1, &cfg_with(4, &profile));
        assert_eq!(
            format!("{rec1:?}"),
            format!("{rec4:?}"),
            "faulty census records must not depend on sharding"
        );
        assert_eq!(st1, st4, "probe accounting must not depend on sharding");
        assert!(st1.is_consistent(), "sent = answered + timed_out + skipped");
        assert_eq!(rec1.len(), specs.len(), "no record is ever silently dropped");
    }

    /// A faulty resolver study replays identically across thread counts
    /// under flow-keyed episodes, and unreachable resolvers stay in the
    /// output instead of vanishing.
    fn faulty_resolver_study_replays_across_threads(seed in gens::u64s(..)) {
        let fleet = generate_fleet(Scale(1.0 / 50_000.0), seed ^ 2);
        let profile = flow_keyed_profile(seed);
        let s1 = run_resolver_study_cfg(&fleet, &cfg_with(1, &profile));
        let s4 = run_resolver_study_cfg(&fleet, &cfg_with(4, &profile));
        assert_eq!(
            format!("{:?}", s1.all()),
            format!("{:?}", s4.all()),
            "faulty classifications must not depend on sharding"
        );
        assert_eq!(s1.stats, s4.stats, "probe accounting must not depend on sharding");
        assert!(s1.stats.is_consistent());
        assert_eq!(
            s1.all().len(),
            fleet.len(),
            "every resolver keeps a classification, reachable or not"
        );
    }
}
