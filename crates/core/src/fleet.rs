//! Deploying a `popgen` resolver fleet onto a lab network: every
//! behavioural archetype becomes a real resolver node (or wrapper) with
//! the corresponding RFC 9276 policy.

use std::net::IpAddr;
use std::rc::Rc;

use dns_resolver::broken::{FlakyResolver, QueryCopier};
use dns_resolver::lab::Lab;
use dns_resolver::policy::Rfc9276Policy;
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_scanner::atlas::{AtlasProbe, ClosedResolver};
use dns_wire::edns::EdeCode;
use popgen::resolvers::{Access, Behavior, Family, ResolverSpec};

/// One fleet member on the network.
#[derive(Clone, Debug)]
pub struct DeployedResolver {
    /// The generating spec.
    pub spec: ResolverSpec,
    /// Service address.
    pub addr: IpAddr,
    /// For closed resolvers: the Atlas-style probe that can reach it.
    pub probe: Option<AtlasProbe>,
}

/// The policy a behavioural archetype ships with. `ede_visible` models
/// forwarding middleboxes that strip EDE options.
pub fn policy_for(behavior: &Behavior, ede_visible: bool) -> Rfc9276Policy {
    let mut policy = match behavior {
        Behavior::NonValidator | Behavior::ValidatorUnlimited => Rfc9276Policy::unlimited(),
        Behavior::InsecureAt {
            limit,
            google_style,
        } => {
            let mut p = Rfc9276Policy::insecure_above(*limit);
            if *google_style {
                p.ede_code = EdeCode::DNSSEC_INDETERMINATE;
            }
            p
        }
        Behavior::ServfailFrom { first, technitium } => {
            let mut p = Rfc9276Policy::servfail_above(first.saturating_sub(1));
            if *technitium {
                p.ede_extra_text =
                    "NSEC3 iterations count is greater than the allowed maximum".into();
            }
            p
        }
        Behavior::QueryCopier => Rfc9276Policy::servfail_above(0),
        Behavior::FlakyGap { insecure, .. } => Rfc9276Policy::insecure_above(*insecure),
        Behavior::Item7Violator { limit } => {
            let mut p = Rfc9276Policy::insecure_above(*limit);
            p.verify_nsec3_rrsig = false;
            p
        }
    };
    if !ede_visible {
        policy.emit_ede = false;
    }
    policy
}

/// Instantiate `specs` on the lab network. Every resolver gets a unique
/// address in its family; closed resolvers additionally get an in-network
/// Atlas probe address.
pub fn deploy_fleet(lab: &mut Lab, specs: &[ResolverSpec]) -> Vec<DeployedResolver> {
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        let addr = match spec.family {
            Family::V4 => lab.alloc.v4(),
            Family::V6 => lab.alloc.v6(),
        };
        let mut cfg = ResolverConfig::validating(addr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.policy = policy_for(&spec.behavior, spec.ede_visible);
        if spec.behavior == Behavior::NonValidator {
            cfg.validate = false;
            cfg.trust_anchors.clear();
        }
        let node: Rc<dyn netsim::Node> = match spec.behavior {
            Behavior::QueryCopier => Rc::new(QueryCopier::new(Resolver::new(cfg))),
            Behavior::FlakyGap {
                insecure,
                servfail_from,
            } => Rc::new(FlakyResolver::with_gap(
                Resolver::new(cfg),
                insecure,
                servfail_from.saturating_sub(1),
            )),
            _ => Rc::new(Resolver::new(cfg)),
        };
        let probe = match spec.access {
            Access::Open => {
                lab.net.register(addr, node);
                None
            }
            Access::Closed => {
                let probe_addr = match spec.family {
                    Family::V4 => lab.alloc.v4(),
                    Family::V6 => lab.alloc.v6(),
                };
                let closed = ClosedResolver::new(node, [probe_addr]);
                lab.net.register(addr, Rc::new(closed));
                Some(AtlasProbe {
                    addr: probe_addr,
                    local_resolver: addr,
                })
            }
        };
        out.push(DeployedResolver {
            spec: spec.clone(),
            addr,
            probe,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_match_behaviors() {
        let p = policy_for(
            &Behavior::InsecureAt {
                limit: 150,
                google_style: false,
            },
            true,
        );
        assert_eq!(p.insecure_above, Some(150));
        assert!(p.emit_ede);

        let p = policy_for(
            &Behavior::InsecureAt {
                limit: 100,
                google_style: true,
            },
            true,
        );
        assert_eq!(p.ede_code, EdeCode::DNSSEC_INDETERMINATE);

        let p = policy_for(
            &Behavior::ServfailFrom {
                first: 151,
                technitium: false,
            },
            true,
        );
        assert_eq!(p.servfail_above, Some(150));

        let p = policy_for(
            &Behavior::ServfailFrom {
                first: 101,
                technitium: true,
            },
            true,
        );
        assert_eq!(p.servfail_above, Some(100));
        assert!(!p.ede_extra_text.is_empty());

        let p = policy_for(&Behavior::Item7Violator { limit: 150 }, true);
        assert!(!p.verify_nsec3_rrsig);

        let p = policy_for(
            &Behavior::InsecureAt {
                limit: 150,
                google_style: false,
            },
            false,
        );
        assert!(!p.emit_ede, "stripped EDE");
    }
}
