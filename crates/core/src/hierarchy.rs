//! The chain-of-trust study: iterative recursion over the signed
//! root→TLD→leaf delegation graph.
//!
//! [`popgen::hierarchy`] describes the graph; this driver stands it up
//! ([`build_hierarchy`] for one full lab, or per-TLD private labs when
//! sharding) and walks it with resolvers whose multi-hop recursion runs
//! as steppable [`dns_resolver::Recursion`] machines on the event core —
//! one delegation level per step, parked between levels under the
//! bounded in-flight window. Each [`popgen::ChainScenario`] lands in its
//! own report bucket:
//!
//! | scenario | observable |
//! |---|---|
//! | intact (signed) | answers authenticated end-to-end |
//! | intact (unsigned TLD) | proven-insecure, resolves without AD |
//! | mis-anchored TLD | SERVFAIL + EDE "trust anchor mismatch" |
//! | broken DS | SERVFAIL + DNSSEC-bogus EDE |
//! | insecure delegation | resolves without AD despite a signed child |
//! | lame delegation | SERVFAIL, key fetch dead-ends (`DNSKEY_MISSING`) |

use std::collections::BTreeMap;

use dns_resolver::lab::{ds_record, simple_zone_contents, Lab, LabBuilder, ZoneSpec};
use dns_resolver::resolver::{RecursionStep, Resolver, ResolverConfig, TrustAnchor};
use dns_scanner::retry::{ProbeStats, ScanSession};
use dns_wire::edns::EdeCode;
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::rrtype::{Rcode, RrType};
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::{Denial, SigningKey};
use dns_zone::Zone;
use netsim::event::{drive, FlowStep};
use popgen::hierarchy::{ChainScenario, HierarchyGenerator, HierarchyModel, HierarchyTld};
use popgen::DnssecKind;

use crate::experiments::DriverConfig;

/// The EDE text [`dns_resolver`] attaches to anchor-mismatch SERVFAILs —
/// the classification hook for the mis-anchored bucket.
const ANCHOR_MISMATCH_TEXT: &str = "trust anchor mismatch";

/// One chain study: which hierarchy, and how it is probed.
#[derive(Clone, Debug)]
pub struct ChainStudy {
    /// The delegation-graph model (TLD count, leaves, fault sprinkling).
    pub model: HierarchyModel,
    /// Also probe one non-existent name directly under every TLD, so
    /// the study exercises TLD-level denial (opt-out and all) alongside
    /// the leaf walks.
    pub probe_nxdomain: bool,
}

impl ChainStudy {
    /// A study over `model` probing every leaf plus a TLD-level miss.
    pub fn new(model: HierarchyModel) -> Self {
        ChainStudy {
            model,
            probe_nxdomain: true,
        }
    }
}

/// Per-scenario accounting. All counters are plain sums, so shard merges
/// are order-independent. The invariant
/// `queries == secure + insecure + bogus + bogus_anchor + lame + lost +
/// budget_exceeded` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainTally {
    /// Client queries issued.
    pub queries: u64,
    /// Authenticated verdicts (NOERROR or NXDOMAIN with AD).
    pub secure: u64,
    /// Unauthenticated verdicts (chain proven insecure somewhere).
    pub insecure: u64,
    /// Validation failures other than anchor mismatches (broken DS,
    /// bogus signatures, missing proofs).
    pub bogus: u64,
    /// Anchor-mismatch failures (the mis-anchored-TLD signal).
    pub bogus_anchor: u64,
    /// Walks that died at an unresponsive delegation without spending
    /// timeouts: no route to any glue address, so the child DNSKEY (or
    /// the answer itself) was never fetchable — the lame-delegation
    /// signature (SERVFAIL with `DNSKEY_MISSING` or no EDE at all).
    pub lame: u64,
    /// Queries lost to network faults (SERVFAIL that spent timeouts).
    pub lost: u64,
    /// Queries aborted by the per-query work budget.
    pub budget_exceeded: u64,
    /// Upstream messages the resolvers sent for these queries.
    pub upstream_messages: u64,
    /// Delegation-cache hits across the scenario's resolvers.
    pub delegation_hits: u64,
    /// Delegation-cache misses across the scenario's resolvers.
    pub delegation_misses: u64,
    /// Delegation-cache evictions across the scenario's resolvers.
    pub delegation_evictions: u64,
}

impl ChainTally {
    fn merge(&mut self, other: &ChainTally) {
        self.queries += other.queries;
        self.secure += other.secure;
        self.insecure += other.insecure;
        self.bogus += other.bogus;
        self.bogus_anchor += other.bogus_anchor;
        self.lame += other.lame;
        self.lost += other.lost;
        self.budget_exceeded += other.budget_exceeded;
        self.upstream_messages += other.upstream_messages;
        self.delegation_hits += other.delegation_hits;
        self.delegation_misses += other.delegation_misses;
        self.delegation_evictions += other.delegation_evictions;
    }
}

/// Result of a chain study: per-scenario tallies plus loss-accounted
/// probe traffic.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// Tallies keyed by [`ChainScenario::key`].
    pub per_scenario: BTreeMap<String, ChainTally>,
    /// Merged probe accounting across shards.
    pub probe_stats: ProbeStats,
}

impl ChainReport {
    /// The tally for `scenario` (zero tally if the hierarchy had none).
    pub fn scenario(&self, scenario: ChainScenario) -> ChainTally {
        self.per_scenario
            .get(scenario.key())
            .copied()
            .unwrap_or_default()
    }

    /// Sum over every scenario bucket.
    pub fn total(&self) -> ChainTally {
        let mut t = ChainTally::default();
        for tally in self.per_scenario.values() {
            t.merge(tally);
        }
        t
    }
}

/// Lab zone spec for a zone signed (or not) per `dnssec`.
fn zone_spec_for(zone: Zone, dnssec: &DnssecKind) -> ZoneSpec {
    match dnssec {
        DnssecKind::None => ZoneSpec::unsigned(zone),
        DnssecKind::Nsec => ZoneSpec::new(zone, Denial::Nsec),
        DnssecKind::Nsec3 {
            iterations,
            salt_len,
            opt_out,
        } => ZoneSpec::new(
            zone,
            Denial::Nsec3 {
                params: Nsec3Params::new(*iterations, vec![0xA5; *salt_len as usize]),
                opt_out: *opt_out,
            },
        ),
    }
}

/// Queue one TLD and its leaves onto a lab builder, applying the TLD's
/// chain scenario (the mis-anchor scenario is resolver-side; see
/// [`mis_anchor`]).
fn add_tld_to_lab(mut builder: LabBuilder, tld: &HierarchyTld) -> LabBuilder {
    let apex = Name::parse(&tld.spec.name).expect("TLD apex parses");
    let mut zs = zone_spec_for(Zone::new(apex), &tld.spec.dnssec);
    match tld.scenario {
        ChainScenario::BrokenDs => zs.broken_ds = true,
        ChainScenario::InsecureDelegation => zs.unsigned_delegation = true,
        ChainScenario::LameDelegation => zs.lame = true,
        ChainScenario::Intact | ChainScenario::MisAnchoredTld => {}
    }
    builder = builder.zone(zs);
    for leaf in &tld.leaves {
        let leaf_apex = Name::parse(&leaf.name).expect("leaf apex parses");
        builder = builder.zone(zone_spec_for(
            simple_zone_contents(&leaf_apex),
            &leaf.dnssec,
        ));
    }
    builder
}

/// A deliberately wrong trust anchor for `apex`: the real KSK's key tag
/// with a corrupted digest, so the served DNSKEY set can never match —
/// the resolver-side half of [`ChainScenario::MisAnchoredTld`].
pub fn mis_anchor(apex: &Name) -> TrustAnchor {
    let ksk = SigningKey::ksk(apex);
    let RData::Ds {
        key_tag,
        mut digest,
        ..
    } = ds_record(apex, &ksk).rdata
    else {
        unreachable!("ds_record yields DS rdata");
    };
    digest[0] ^= 0xFF;
    TrustAnchor {
        zone: apex.clone(),
        key_tag,
        digest,
    }
}

/// The built hierarchy: one lab holding the root, every TLD delegation
/// and every leaf as distinct authoritative nodes on the simulated
/// network, plus the model's TLD descriptions for probing.
pub struct Hierarchy {
    /// The live lab (root hints, trust anchor, address allocator).
    pub lab: Lab,
    /// The TLD-level delegations stood up, in index order.
    pub tlds: Vec<HierarchyTld>,
}

/// Stand the whole root→TLD→leaf graph up in one lab (bench and
/// full-scale use; the sharded study builds per-TLD private labs
/// instead, so observations never depend on shard composition).
pub fn build_hierarchy(model: &HierarchyModel, now: u32, lab_seed: u64) -> Hierarchy {
    let generator = HierarchyGenerator::new(model.clone());
    let tlds = generator.tlds();
    let mut builder = LabBuilder::new(now).seed(lab_seed);
    for tld in &tlds {
        builder = add_tld_to_lab(builder, tld);
    }
    Hierarchy {
        lab: builder.build(),
        tlds,
    }
}

/// The probe list for one TLD: every leaf's `www` name, then (optionally)
/// a name that cannot exist directly under the TLD.
fn probes_for(tld: &HierarchyTld, probe_nxdomain: bool) -> Vec<Name> {
    let mut probes: Vec<Name> = tld
        .leaves
        .iter()
        .filter_map(|l| Name::parse(&format!("www.{}", l.name)).ok())
        .collect();
    if probe_nxdomain {
        if let Ok(n) = Name::parse(&format!("does-not-exist.{}", tld.spec.name)) {
            probes.push(n);
        }
    }
    probes
}

/// Run `study` with environment-driven parallelism
/// (`HEROES_THREADS`/`HEROES_FAULTS`; see [`DriverConfig::from_env`]).
pub fn run_chain_study(study: &ChainStudy, now: u32) -> ChainReport {
    run_chain_study_cfg(study, &DriverConfig::from_env(now))
}

/// [`run_chain_study`] under an explicit [`DriverConfig`]. TLDs shard
/// like every other driver; each TLD gets its **own** private lab
/// (root plus TLD plus leaves) and its own resolver, so no observation
/// depends on which TLDs share a shard and every thread count produces
/// identical tallies. Within a TLD, the probes run as ONE multi-step
/// flow that steps the resolver's [`dns_resolver::Recursion`] machine
/// through the event core — one delegation level per event — so the
/// walk itself is scheduled by the bounded window, not hidden inside a
/// blocking call.
pub fn run_chain_study_cfg(study: &ChainStudy, cfg: &DriverConfig) -> ChainReport {
    let generator = HierarchyGenerator::new(study.model.clone());
    let tlds = generator.tlds();
    let window = cfg.effective_window();
    let partials = sim_par::run_sharded(&tlds, cfg.threads, cfg.lab_seed, |shard, slice| {
        vec![chain_shard(slice, study, cfg, shard.seed, window)]
    });
    let mut per_scenario: BTreeMap<String, ChainTally> = BTreeMap::new();
    let mut probe_stats = ProbeStats::default();
    for (shard_tallies, shard_stats) in partials {
        for (key, tally) in shard_tallies {
            per_scenario.entry(key).or_default().merge(&tally);
        }
        probe_stats.merge(&shard_stats);
    }
    ChainReport {
        per_scenario,
        probe_stats,
    }
}

/// One shard: every TLD in `slice`, each in a private lab with its own
/// recursing resolver.
fn chain_shard(
    slice: &[HierarchyTld],
    study: &ChainStudy,
    cfg: &DriverConfig,
    lab_seed: u64,
    window: usize,
) -> (BTreeMap<String, ChainTally>, ProbeStats) {
    let session = ScanSession::new(cfg.profile.breaker);
    let mut tallies: BTreeMap<String, ChainTally> = BTreeMap::new();
    for tld in slice {
        let builder = LabBuilder::new(cfg.now).seed(lab_seed);
        let mut lab = add_tld_to_lab(builder, tld).build();
        lab.net.set_schedule(cfg.profile.schedule.clone());
        let raddr = lab.alloc.v4();
        let mut rcfg =
            ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        rcfg.now = lab.now;
        rcfg.retry = cfg.profile.retry;
        rcfg.delegation_cache = true;
        if tld.scenario == ChainScenario::MisAnchoredTld {
            let apex = Name::parse(&tld.spec.name).expect("TLD apex parses");
            rcfg.trust_anchors.push(mis_anchor(&apex));
        }
        let resolver = Resolver::new(rcfg);
        let probes = probes_for(tld, study.probe_nxdomain);
        let tally = tallies.entry(tld.scenario.key().to_string()).or_default();
        let net = &lab.net;
        // One multi-step flow walks the whole probe list, one recursion
        // level per event-core step. A single flow per independent net
        // makes window-invariance trivial while still exercising the
        // park/resume machinery of the scheduler.
        let mut machine = None;
        let mut probe_idx = 0usize;
        let mut admitted = false;
        drive(
            window,
            || {
                if admitted || probes.is_empty() {
                    return None;
                }
                admitted = true;
                Some(())
            },
            |_flow: &mut (), due| {
                let vnow = net.now_micros();
                if due > vnow {
                    net.advance(due - vnow);
                }
                if machine.is_none() {
                    machine = Some(resolver.begin_recursion(net, &probes[probe_idx], RrType::A));
                }
                match machine.as_mut().expect("machine in place").step(net) {
                    RecursionStep::Pending => FlowStep::Park {
                        at_micros: net.now_micros(),
                    },
                    RecursionStep::Done(out) => {
                        machine = None;
                        tally.queries += 1;
                        tally.upstream_messages += out.cost.messages_sent;
                        if out.budget_exceeded {
                            session.note_answered(out.cost.retries);
                            tally.budget_exceeded += 1;
                        } else if out.rcode == Rcode::ServFail {
                            if out.cost.timeouts > 0 {
                                session.note_timed_out(out.cost.retries);
                                tally.lost += 1;
                            } else {
                                session.note_answered(out.cost.retries);
                                match &out.ede {
                                    Some((_, text)) if text.as_str() == ANCHOR_MISMATCH_TEXT => {
                                        tally.bogus_anchor += 1
                                    }
                                    Some((code, _)) if *code == EdeCode::DNSKEY_MISSING => {
                                        tally.lame += 1
                                    }
                                    Some(_) => tally.bogus += 1,
                                    None => tally.lame += 1,
                                }
                            }
                        } else {
                            session.note_answered(out.cost.retries);
                            if out.authenticated {
                                tally.secure += 1;
                            } else {
                                tally.insecure += 1;
                            }
                        }
                        probe_idx += 1;
                        if probe_idx >= probes.len() {
                            FlowStep::Done
                        } else {
                            FlowStep::Park {
                                at_micros: net.now_micros(),
                            }
                        }
                    }
                }
            },
        );
        tally.delegation_hits += resolver.delegation_hits();
        tally.delegation_misses += resolver.delegation_misses();
        tally.delegation_evictions += resolver.delegation_evictions();
    }
    (tallies, session.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_LAB_SEED;

    const NOW: u32 = 1_710_000_000;

    fn faulted_study() -> ChainStudy {
        // 24 TLDs, fault every 3rd signed one: all four fault scenarios
        // appear alongside intact signed and unsigned delegations.
        ChainStudy::new(HierarchyModel::intact(24, 2, 7).with_faults(3))
    }

    #[test]
    fn scenarios_classify_into_distinct_buckets() {
        let report = run_chain_study(&faulted_study(), NOW);
        let intact = report.scenario(ChainScenario::Intact);
        assert!(intact.secure > 0, "signed intact TLDs authenticate");
        assert!(
            intact.insecure > 0,
            "unsigned TLDs resolve insecurely under intact"
        );
        assert_eq!(intact.bogus + intact.bogus_anchor + intact.lame, 0);

        let mis = report.scenario(ChainScenario::MisAnchoredTld);
        assert!(
            mis.queries > 0 && mis.bogus_anchor == mis.queries,
            "{mis:?}"
        );

        let broken = report.scenario(ChainScenario::BrokenDs);
        assert!(
            broken.queries > 0 && broken.bogus == broken.queries,
            "{broken:?}"
        );

        let insecure = report.scenario(ChainScenario::InsecureDelegation);
        assert!(
            insecure.queries > 0 && insecure.insecure == insecure.queries,
            "{insecure:?}"
        );

        let lame = report.scenario(ChainScenario::LameDelegation);
        assert!(lame.queries > 0 && lame.lame == lame.queries, "{lame:?}");

        // Accounting invariant per bucket.
        for (key, t) in &report.per_scenario {
            assert_eq!(
                t.queries,
                t.secure
                    + t.insecure
                    + t.bogus
                    + t.bogus_anchor
                    + t.lame
                    + t.lost
                    + t.budget_exceeded,
                "{key}: accounting invariant"
            );
        }
    }

    #[test]
    fn delegation_cache_warms_within_a_tld() {
        let report = run_chain_study(&faulted_study(), NOW);
        let total = report.total();
        // First walk per TLD misses, later leaf walks hit the cached cut.
        assert!(total.delegation_hits > 0, "{total:?}");
        assert!(total.delegation_misses > 0, "{total:?}");
    }

    #[test]
    fn chain_study_is_thread_invariant() {
        let study = faulted_study();
        let sequential =
            run_chain_study_cfg(&study, &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED));
        for threads in [2usize, 4] {
            let sharded =
                run_chain_study_cfg(&study, &DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED));
            assert_eq!(
                format!("{:?}", sharded.per_scenario),
                format!("{:?}", sequential.per_scenario),
                "threads = {threads}"
            );
            assert_eq!(sharded.probe_stats, sequential.probe_stats);
        }
    }

    #[test]
    fn full_hierarchy_stands_up_and_resolves() {
        // One lab with every TLD: a single resolver with the delegation
        // cache on walks leaves under different TLDs; warm repeats under
        // the same TLD restart at the cached cut.
        let model = HierarchyModel::intact(6, 2, 7);
        let h = build_hierarchy(&model, NOW, DEFAULT_LAB_SEED);
        let mut lab = h.lab;
        let raddr = lab.alloc.v4();
        let mut rcfg =
            ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        rcfg.now = lab.now;
        rcfg.delegation_cache = true;
        let resolver = Resolver::new(rcfg);
        let mut answered = 0;
        for tld in &h.tlds {
            for leaf in &tld.leaves {
                let q = Name::parse(&format!("www.{}", leaf.name)).unwrap();
                let out = resolver.resolve(&lab.net, &q, RrType::A);
                assert_ne!(out.rcode, Rcode::ServFail, "{q}: {:?}", out.ede);
                answered += 1;
            }
        }
        assert_eq!(answered, 12);
        assert!(resolver.delegation_hits() > 0);
    }
}
