//! End-to-end experiment drivers: the §4.1 domain census, the §4.2
//! resolver study, and the CVE-2023-50868 cost sweep — each runs the full
//! pipeline (generate → instantiate zones/resolvers → scan over the
//! simulated network → aggregate).
//!
//! # Parallelism and determinism
//!
//! Each driver comes in two flavors: the plain entry point (a
//! [`DriverConfig::from_env`]: thread count from `HEROES_THREADS`, lab
//! seed [`DEFAULT_LAB_SEED`], profile from `HEROES_FAULTS`) and a `_cfg`
//! variant taking an explicit [`DriverConfig`]. Work is split into contiguous
//! index-range shards via [`sim_par`]; every shard builds its **own** lab
//! (the `Rc`-based simulation is deliberately not `Send`) from a
//! per-shard seed, and results merge strictly in spec-index order. Three
//! invariants make `threads = 1` and `threads = N` byte-identical:
//!
//! 1. per-spec observations never depend on which other specs share a
//!    batch or lab (each domain/TLD/resolver is probed in isolation);
//! 2. fault-free lab networks never consume their RNG, so differing
//!    per-shard lab seeds cannot influence observations;
//! 3. anything address-valued in the output (resolver classifications)
//!    is pinned by replaying the allocation offsets a shard's
//!    predecessors would have consumed (see [`run_resolver_study_cfg`]).
//!
//! # Faults and loss accounting
//!
//! Every [`DriverConfig`] carries a [`ScanProfile`]: a
//! [`FaultSchedule`] layered onto each lab network, a [`RetryPolicy`]
//! for every probe, and a circuit-breaker config. Probe traffic is
//! accounted in a [`ProbeStats`] (merged shard-wise; plain sums, so
//! order-independent) satisfying
//! `sent = answered + timed_out + circuit_skipped`. The plain entry
//! points consult `HEROES_FAULTS` (see [`fault_profile_from_env`]);
//! [`DriverConfig::clean`] stays explicitly clean so golden outputs
//! never move.
//! Fault *episodes* key their decisions off the schedule seed and
//! per-flow counters — never the lab RNG — so flow-keyed episodes
//! (always-on [`EpisodeKind::Flap`], [`EpisodeKind::LatencySpike`],
//! always-on [`EpisodeKind::Outage`]) replay identically across thread
//! counts; time-windowed and rate-limit episodes additionally need
//! `batch_size = 1` (census drivers) to be shard-invariant, because the
//! virtual clock within a lab depends on batch composition.

use std::collections::{BTreeMap, BTreeSet};

use analysis::domains::{DomainRecord, DomainStats, DomainTally};
use analysis::resolvers::Panel;
use dns_resolver::lab::{LabBuilder, ZoneSpec};
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_resolver::Rfc9276Policy;
use dns_scanner::atlas::classification_flow_via_probe;
use dns_scanner::census::{exclusive_operator, Census, CensusProbe, DomainObservation};
use dns_scanner::prober::{ProbeFlow, Prober, ResolverClassification};
use dns_scanner::retry::{BreakerConfig, ProbeStats, ScanSession};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::RrType;
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::Denial;
use dns_zone::Zone;
use netsim::event::{drive, DriveStats, FlowStep};
use netsim::{Episode, EpisodeKind, FaultSchedule, RetryPolicy, Scope};
use popgen::domains::{DnssecKind, DomainGenerator, DomainSpec};
use popgen::resolvers::{Access, Family, ResolverSpec};
use popgen::Scale;

use crate::fleet::deploy_fleet;
use crate::testbed::build_testbed_seeded;

/// Default lab-network seed for every experiment driver — the value the
/// sequential drivers have always used.
pub const DEFAULT_LAB_SEED: u64 = 42;

/// Default in-flight window for the event-driven drivers: how many probe
/// flows one shard keeps live at once on a fault-free network. Large
/// enough that admission never starves the event queue, small enough
/// that a shard's live state stays a few megabytes.
pub const DEFAULT_WINDOW: usize = 32_768;

/// How a scan run deals with an imperfect network: the faults to inject,
/// the retry policy every probe uses, and the per-target circuit
/// breaker. [`ScanProfile::clean`] reproduces the historical drivers
/// byte for byte.
#[derive(Clone, Debug)]
pub struct ScanProfile {
    /// Fault schedule installed on every lab network the driver builds.
    pub schedule: FaultSchedule,
    /// Retry policy for every probe (resolver upstream queries included).
    pub retry: RetryPolicy,
    /// Circuit-breaker configuration for direct prober traffic.
    pub breaker: BreakerConfig,
}

impl ScanProfile {
    /// No faults, the historical fixed two-attempt retry, breaker off —
    /// behaviorally identical to the pre-profile drivers.
    pub fn clean() -> Self {
        ScanProfile {
            schedule: FaultSchedule::default(),
            retry: RetryPolicy::fixed(2),
            breaker: BreakerConfig::disabled(),
        }
    }

    /// A reproducible lossy Internet: 5 % flow-keyed loss plus a small
    /// jittered latency spike everywhere, adaptive backoff, breaker on.
    /// Episodes are flow-keyed (no time windows, no rate limits), so the
    /// resolver study replays identically across thread counts; census
    /// drivers additionally need `batch_size = 1` for that.
    pub fn lossy(seed: u64) -> Self {
        ScanProfile {
            schedule: FaultSchedule {
                base: Default::default(),
                seed,
                episodes: vec![
                    Episode::always(EpisodeKind::Flap {
                        scope: Scope::All,
                        drop_chance: 0.05,
                    }),
                    Episode::always(EpisodeKind::LatencySpike {
                        scope: Scope::All,
                        extra_micros: 2_000,
                        jitter_micros: 1_000,
                    }),
                ],
            },
            retry: RetryPolicy::adaptive(seed ^ 0x9276),
            breaker: BreakerConfig::default(),
        }
    }
}

/// The profile the plain (non-`_cfg`) drivers run under:
/// `HEROES_FAULTS=lossy` selects [`ScanProfile::lossy`] (seeded from
/// [`DEFAULT_LAB_SEED`]), anything else — including unset — the clean
/// profile.
pub fn fault_profile_from_env() -> ScanProfile {
    match std::env::var("HEROES_FAULTS") {
        Ok(v) if v.trim() == "lossy" => ScanProfile::lossy(DEFAULT_LAB_SEED),
        _ => ScanProfile::clean(),
    }
}

/// Every knob the experiment drivers share. One `_cfg` entry point per
/// experiment takes this instead of the historical `now, threads,
/// lab_seed[, profile]` positional sprawl (`_with`/`_profiled`, now
/// deprecated thin wrappers).
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Validation epoch the labs are built at.
    pub now: u32,
    /// Worker count for the sharded pipelines; output is identical for
    /// every value.
    pub threads: usize,
    /// Seed every lab network derives from.
    pub lab_seed: u64,
    /// Fault schedule + retry policy + breaker for every probe.
    pub profile: ScanProfile,
    /// Requested in-flight window per shard for the event-driven
    /// pipelines. The *effective* window is this value on fault-free
    /// networks and 1 under any fault schedule (see
    /// [`DriverConfig::effective_window`]); output is identical for
    /// every value.
    pub window: usize,
}

impl DriverConfig {
    /// Explicit parallelism on a clean network — what the `_with`
    /// drivers hard-coded.
    pub fn clean(now: u32, threads: usize, lab_seed: u64) -> Self {
        DriverConfig {
            now,
            threads,
            lab_seed,
            profile: ScanProfile::clean(),
            window: DEFAULT_WINDOW,
        }
    }

    /// Environment-driven configuration, matching the plain drivers:
    /// `HEROES_THREADS` picks the worker count, `HEROES_FAULTS` the
    /// profile, `HEROES_WINDOW` the in-flight window (default
    /// [`DEFAULT_WINDOW`]), and the lab seed is [`DEFAULT_LAB_SEED`].
    pub fn from_env(now: u32) -> Self {
        let window = std::env::var("HEROES_WINDOW")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|w| w.max(1))
            .unwrap_or(DEFAULT_WINDOW);
        DriverConfig {
            now,
            threads: sim_par::default_threads(),
            lab_seed: DEFAULT_LAB_SEED,
            profile: fault_profile_from_env(),
            window,
        }
    }

    /// The same configuration under `profile`.
    pub fn with_profile(mut self, profile: ScanProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The same configuration with an explicit in-flight window.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// The in-flight window the event core actually runs: the full
    /// requested window when the fault schedule is inert, and 1 — the
    /// exact sequential schedule — under faults. Fault decisions key off
    /// per-flow counters *and* the virtual clock, and the clock's
    /// trajectory depends on interleaving; a window of 1 replays every
    /// [`RetryPolicy`] and [`FaultSchedule`] decision precisely as the
    /// blocking pipeline made them. Fault-free networks never consume
    /// fault randomness and produce no clock-dependent output, so the
    /// wide window is output-invariant there.
    pub fn effective_window(&self) -> usize {
        if self.profile.schedule.is_inert() {
            self.window.max(1)
        } else {
            1
        }
    }
}

/// Turn a population spec into lab zone contents.
pub(crate) fn zone_spec_for_domain(spec: &DomainSpec) -> Option<ZoneSpec> {
    let apex = Name::parse(&spec.name).ok()?;
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(
        apex.clone(),
        300,
        RData::A("192.0.2.10".parse().unwrap()),
    ))
    .ok()?;
    let www = Name::parse("www").ok()?.concat(&apex).ok()?;
    zone.add(Record::new(
        www,
        300,
        RData::A("192.0.2.11".parse().unwrap()),
    ))
    .ok()?;
    // Operator attribution travels in the apex NS RRset (child side), as
    // the census reads it. Parent-side delegation NS records are wired by
    // the lab independently (mismatched parent/child NS is routine in the
    // wild).
    if let Some(op) = spec.operator {
        for ns in ["ns1", "ns2"] {
            let target = Name::parse(ns).ok()?.concat(&Name::parse(op).ok()?).ok()?;
            zone.add(Record::new(apex.clone(), 3600, RData::Ns(target)))
                .ok()?;
        }
    }
    let zs = match &spec.dnssec {
        DnssecKind::None => ZoneSpec::unsigned(zone),
        DnssecKind::Nsec => ZoneSpec::new(zone, Denial::Nsec),
        DnssecKind::Nsec3 {
            iterations,
            salt_len,
            opt_out,
        } => ZoneSpec::new(
            zone,
            Denial::Nsec3 {
                params: Nsec3Params::new(*iterations, vec![0xA5; *salt_len as usize]),
                opt_out: *opt_out,
            },
        ),
    };
    Some(zs)
}

/// Run the full §4.1 census over `specs`, instantiating real zones in
/// batches of `batch_size` and scanning them through a validating
/// resolver on the simulated network. Returns one [`DomainRecord`] per
/// domain, as measured (not as declared).
///
/// Thread count from `HEROES_THREADS` (default 1); output is identical
/// for every thread count.
pub fn run_domain_census(specs: &[DomainSpec], now: u32, batch_size: usize) -> Vec<DomainRecord> {
    run_domain_census_cfg(specs, batch_size, &DriverConfig::from_env(now)).0
}

/// [`run_domain_census`] under an explicit [`DriverConfig`], with probe
/// traffic loss-accounted: returns the records plus the merged
/// [`ProbeStats`] of every shard. Specs are split into contiguous
/// shards, one worker per shard; each worker runs the batched census on
/// its own labs and results merge in spec order.
pub fn run_domain_census_cfg(
    specs: &[DomainSpec],
    batch_size: usize,
    cfg: &DriverConfig,
) -> (Vec<DomainRecord>, ProbeStats) {
    let window = cfg.effective_window();
    let partials = sim_par::run_sharded(specs, cfg.threads, cfg.lab_seed, |shard, slice| {
        vec![census_shard(
            slice,
            cfg.now,
            batch_size,
            shard.seed,
            &cfg.profile,
            window,
        )]
    });
    let mut records = Vec::with_capacity(specs.len());
    let mut stats = ProbeStats::default();
    for (shard_records, shard_stats) in partials {
        records.extend(shard_records);
        stats.merge(&shard_stats);
    }
    (records, stats)
}

/// The analysis record one census observation yields for `spec`.
fn record_from_observation(spec: &DomainSpec, obs: DomainObservation) -> DomainRecord {
    DomainRecord {
        name: spec.name.clone(),
        dnssec: obs.dnssec_enabled,
        nsec3: obs
            .class
            .nsec3_enabled()
            .map(|p| (p.iterations, p.salt.len() as u8)),
        opt_out: obs.opt_out,
        operator: exclusive_operator(&obs.ns_targets).map(|n| n.to_string()),
        probe_loss: obs.probe_loss,
    }
}

/// Run one census batch through the event core: instantiate the batch's
/// zones in a private lab, admit one [`CensusProbe`] flow per domain
/// with at most `window` in flight, and hand each finished record to
/// `sink` **in batch order** (completion order never leaks out — records
/// land in per-index slots and drain sequentially).
///
/// With `window = 1` the event queue degenerates to the exact sequential
/// schedule of the historical blocking loop: admit one probe, step it to
/// completion, admit the next.
fn census_batch(
    batch: &[DomainSpec],
    now: u32,
    lab_seed: u64,
    profile: &ScanProfile,
    window: usize,
    session: &ScanSession,
    sink: &mut dyn FnMut(DomainRecord),
) -> DriveStats {
    // TLD zones needed by this batch.
    let tlds: BTreeSet<Name> = batch
        .iter()
        .filter_map(|s| Name::parse(&s.name).ok()?.parent())
        .filter(|p| !p.is_root())
        .collect();
    let mut builder = LabBuilder::new(now).seed(lab_seed);
    for tld in &tlds {
        builder = builder.simple_zone(tld, Denial::nsec3_rfc9276());
    }
    // Set, not Vec: the per-spec membership probe below would
    // otherwise make the batch loop quadratic.
    let mut skipped: BTreeSet<String> = BTreeSet::new();
    for spec in batch {
        match zone_spec_for_domain(spec) {
            Some(zs) => builder = builder.zone(zs),
            None => {
                skipped.insert(spec.name.clone());
            }
        }
    }
    let mut lab = builder.build();
    lab.net.set_schedule(profile.schedule.clone());
    let raddr = lab.alloc.v4();
    let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.policy = Rfc9276Policy::unlimited();
    cfg.retry = profile.retry;
    let resolver = Resolver::new(cfg);
    let census = Census::new(&lab.net, &resolver, "census").with_session(session);

    // Completed records parked by batch index until the drain below —
    // bounded by the batch size, never the population.
    let mut slots: Vec<Option<DomainRecord>> = Vec::new();
    slots.resize_with(batch.len(), || None);
    let mut next = 0usize;
    let net = &lab.net;
    let stats = drive(
        window,
        || {
            while next < batch.len() {
                let i = next;
                next += 1;
                if skipped.contains(&batch[i].name) {
                    continue;
                }
                match Name::parse(&batch[i].name) {
                    Ok(domain) => return Some((i, Some(CensusProbe::new(domain)))),
                    Err(_) => continue,
                }
            }
            None
        },
        |(i, probe): &mut (usize, Option<CensusProbe>), due| {
            let vnow = net.now_micros();
            if due > vnow {
                net.advance(due - vnow);
            }
            let p = probe.as_mut().expect("live census probe");
            if p.step(&census) {
                let obs = probe
                    .take()
                    .expect("finished census probe")
                    .into_observation();
                slots[*i] = Some(record_from_observation(&batch[*i], obs));
                FlowStep::Done
            } else {
                FlowStep::Park {
                    at_micros: net.now_micros(),
                }
            }
        },
    );
    for slot in &mut slots {
        if let Some(record) = slot.take() {
            sink(record);
        }
    }
    stats
}

/// One shard of the domain census: the batched event-driven pipeline
/// over `specs`, with every lab seeded from `lab_seed` and carrying
/// `profile`'s fault schedule.
fn census_shard(
    specs: &[DomainSpec],
    now: u32,
    batch_size: usize,
    lab_seed: u64,
    profile: &ScanProfile,
    window: usize,
) -> (Vec<DomainRecord>, ProbeStats) {
    let session = ScanSession::new(profile.breaker);
    let mut records = Vec::with_capacity(specs.len());
    for batch in specs.chunks(batch_size.max(1)) {
        census_batch(
            batch,
            now,
            lab_seed,
            profile,
            window,
            &session,
            &mut |rec| {
                records.push(rec);
            },
        );
    }
    let stats = session.stats();
    (records, stats)
}

/// Fast path: convert declared specs directly into analysis records
/// (paper-scale aggregate analysis without network instantiation; the
/// batched census above validates that measured == declared on samples).
pub fn records_from_specs(specs: &[DomainSpec]) -> Vec<DomainRecord> {
    specs
        .iter()
        .map(|s| DomainRecord {
            name: s.name.clone(),
            dnssec: s.dnssec != DnssecKind::None,
            nsec3: s.nsec3().map(|(it, salt, _)| (it, salt)),
            opt_out: s.nsec3().map(|(_, _, o)| o).unwrap_or(false),
            operator: s.operator.map(String::from),
            probe_loss: false,
        })
        .collect()
}

/// Aggregate outcome of a [`run_domain_census_stream`] run. The full
/// record list is never materialized — only these order-insensitive
/// aggregates leave the pipeline.
#[derive(Clone, Debug)]
pub struct StreamCensusReport {
    /// §5.1 statistics over every record the census produced.
    pub stats: DomainStats,
    /// Loss-accounted probe traffic, merged across shards.
    pub probe_stats: ProbeStats,
    /// Maximum probe flows simultaneously in flight in any one shard —
    /// the event core's high-water mark.
    pub in_flight_high_water: usize,
}

/// The §4.1 census over the whole population at `scale`, fully
/// streaming: each shard walks its index range through a
/// [`DomainGenerator`] (O(1) random access), materializes one
/// `batch_size` batch of specs and its lab at a time, pumps the batch
/// through the event core, and folds every record straight into a
/// [`DomainTally`]. Peak memory is O(batch + window), independent of the
/// population size, so a million-domain census runs with the same
/// footprint as a ten-thousand-domain one.
///
/// Shards and batches are cut exactly as [`run_domain_census_cfg`] cuts
/// a materialized spec list of the same length, every record is tallied
/// in batch order within its shard, and the tally merge is
/// order-insensitive — so the report equals feeding the batch driver's
/// records through [`DomainStats::compute`], at any thread count.
pub fn run_domain_census_stream(
    scale: Scale,
    population_seed: u64,
    batch_size: usize,
    cfg: &DriverConfig,
) -> StreamCensusReport {
    let total = popgen::domain_count(scale);
    let window = cfg.effective_window();
    let partials = sim_par::run_sharded_range(total, cfg.threads, cfg.lab_seed, |shard| {
        let generator = DomainGenerator::new(scale, population_seed);
        let session = ScanSession::new(cfg.profile.breaker);
        let mut tally = DomainTally::new();
        let mut high_water = 0usize;
        let batch_size = batch_size.max(1) as u64;
        let mut start = shard.start;
        while start < shard.end {
            let end = (start + batch_size).min(shard.end);
            let batch: Vec<DomainSpec> = (start..end).map(|i| generator.get(i)).collect();
            let drive_stats = census_batch(
                &batch,
                cfg.now,
                shard.seed,
                &cfg.profile,
                window,
                &session,
                &mut |rec| tally.add(&rec),
            );
            high_water = high_water.max(drive_stats.in_flight_high_water);
            start = end;
        }
        (tally, session.stats(), high_water)
    });
    let mut tally = DomainTally::new();
    let mut probe_stats = ProbeStats::default();
    let mut in_flight_high_water = 0usize;
    for (shard_tally, shard_stats, shard_high) in partials {
        tally.merge(shard_tally);
        probe_stats.merge(&shard_stats);
        in_flight_high_water = in_flight_high_water.max(shard_high);
    }
    StreamCensusReport {
        stats: tally.finish(),
        probe_stats,
        in_flight_high_water,
    }
}

/// What the end-to-end TLD census measured for one TLD.
#[derive(Clone, Debug)]
pub struct TldObservation {
    /// The TLD.
    pub name: String,
    /// DNSKEY present.
    pub dnssec: bool,
    /// Measured NSEC3 parameters `(iterations, salt_len)`.
    pub nsec3: Option<(u16, u8)>,
    /// Opt-out flag observed on NSEC3 records.
    pub opt_out: bool,
    /// Zone transfer succeeded (the CZDS/AXFR sharing signal).
    pub axfr_ok: bool,
    /// Delegations counted from the transferred zone (scaled), if shared.
    pub delegations: Option<u64>,
}

/// Run the TLD census end to end: instantiate every TLD as a real signed
/// zone under the root (with `domains_scale`-scaled delegations inside),
/// scan each one, and attempt the paper's zone-file collection via AXFR
/// for the TLDs that share zone data.
///
/// Thread count from `HEROES_THREADS` (default 1); output is identical
/// for every thread count.
pub fn run_tld_census(
    tlds: &[popgen::tlds::TldSpec],
    now: u32,
    domains_scale: f64,
) -> Vec<TldObservation> {
    run_tld_census_cfg(tlds, domains_scale, &DriverConfig::from_env(now)).0
}

/// [`run_tld_census`] under an explicit [`DriverConfig`], returning the
/// merged per-shard [`ProbeStats`] alongside the observations. Each
/// shard instantiates only its own TLDs (plus the root) in a private
/// lab; a TLD's observation never depends on which siblings share the
/// root, so the merged output equals the sequential one.
pub fn run_tld_census_cfg(
    tlds: &[popgen::tlds::TldSpec],
    domains_scale: f64,
    cfg: &DriverConfig,
) -> (Vec<TldObservation>, ProbeStats) {
    let window = cfg.effective_window();
    let partials = sim_par::run_sharded(tlds, cfg.threads, cfg.lab_seed, |shard, slice| {
        vec![tld_shard(
            slice,
            cfg.now,
            domains_scale,
            shard.seed,
            &cfg.profile,
            window,
        )]
    });
    let mut out = Vec::with_capacity(tlds.len());
    let mut stats = ProbeStats::default();
    for (shard_out, shard_stats) in partials {
        out.extend(shard_out);
        stats.merge(&shard_stats);
    }
    (out, stats)
}

/// One shard of the TLD census: the event-driven pipeline over `tlds`.
fn tld_shard(
    tlds: &[popgen::tlds::TldSpec],
    now: u32,
    domains_scale: f64,
    lab_seed: u64,
    profile: &ScanProfile,
    window: usize,
) -> (Vec<TldObservation>, ProbeStats) {
    let mut builder = LabBuilder::new(now).seed(lab_seed);
    for tld in tlds {
        let apex = match Name::parse(&tld.name) {
            Ok(n) => n,
            Err(_) => continue,
        };
        let mut zone = Zone::new(apex.clone());
        zone.add(Record::new(
            apex.clone(),
            300,
            RData::A("192.0.2.77".parse().unwrap()),
        ))
        .unwrap();
        // Scaled registry contents: insecure delegations, the bulk of a
        // real TLD zone (and what opt-out exists for).
        let delegations = ((tld.est_domains as f64 * domains_scale).round() as u64).min(200);
        for i in 0..delegations {
            let child = Name::parse(&format!("reg{i}"))
                .unwrap()
                .concat(&apex)
                .unwrap();
            let ns = Name::parse("ns").unwrap().concat(&child).unwrap();
            zone.add(Record::new(child, 3600, RData::Ns(ns))).unwrap();
        }
        let spec = match &tld.dnssec {
            DnssecKind::None => ZoneSpec::unsigned(zone),
            DnssecKind::Nsec => ZoneSpec::new(zone, Denial::Nsec),
            DnssecKind::Nsec3 {
                iterations,
                salt_len,
                opt_out,
            } => ZoneSpec::new(
                zone,
                Denial::Nsec3 {
                    params: Nsec3Params::new(*iterations, vec![0xA5; *salt_len as usize]),
                    opt_out: *opt_out,
                },
            ),
        };
        builder = builder.zone(spec);
    }
    let mut lab = builder.build();
    // Enable AXFR on the sharing TLDs' servers.
    for tld in tlds {
        if tld.shares_zone {
            if let Ok(apex) = Name::parse(&tld.name) {
                if let Some(auth) = lab.auths.get(&apex) {
                    auth.allow_axfr(&apex);
                }
            }
        }
    }
    lab.net.set_schedule(profile.schedule.clone());
    let session = ScanSession::new(profile.breaker);
    let raddr = lab.alloc.v4();
    let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
    cfg.now = lab.now;
    cfg.policy = Rfc9276Policy::unlimited();
    cfg.retry = profile.retry;
    let resolver = Resolver::new(cfg);
    let census = Census::new(&lab.net, &resolver, "tlds").with_session(&session);
    let xfer_src = lab.alloc.v4();
    // Completed observations parked by shard index, drained in order.
    let mut slots: Vec<Option<TldObservation>> = Vec::new();
    slots.resize_with(tlds.len(), || None);
    let mut next = 0usize;
    let net = &lab.net;
    // One flow per TLD: the census probe phases, then — preserving the
    // blocking pipeline's per-TLD order — the AXFR attempt as the final
    // step before completion.
    drive(
        window,
        || {
            while next < tlds.len() {
                let i = next;
                next += 1;
                match Name::parse(&tlds[i].name) {
                    Ok(apex) => {
                        let probe = CensusProbe::new(apex.clone());
                        return Some((i, apex, Some(probe)));
                    }
                    Err(_) => continue,
                }
            }
            None
        },
        |(i, apex, probe): &mut (usize, Name, Option<CensusProbe>), due| {
            let vnow = net.now_micros();
            if due > vnow {
                net.advance(due - vnow);
            }
            let p = probe.as_mut().expect("live tld probe");
            if !p.step(&census) {
                return FlowStep::Park {
                    at_micros: net.now_micros(),
                };
            }
            let obs = probe.take().expect("finished tld probe").into_observation();
            let (v4, _) = lab.servers[apex];
            let transferred = dns_scanner::walk::axfr(net, xfer_src, v4, apex);
            let delegations = transferred.as_ref().map(|records| {
                let mut cuts: std::collections::BTreeSet<Name> = Default::default();
                for rec in records {
                    if rec.rrtype() == RrType::NS && rec.name != *apex {
                        cuts.insert(rec.name.clone());
                    }
                }
                cuts.len() as u64
            });
            slots[*i] = Some(TldObservation {
                name: tlds[*i].name.clone(),
                dnssec: obs.dnssec_enabled,
                nsec3: obs
                    .class
                    .nsec3_enabled()
                    .map(|p| (p.iterations, p.salt.len() as u8)),
                opt_out: obs.opt_out,
                axfr_ok: transferred.is_some(),
                delegations,
            });
            FlowStep::Done
        },
    );
    let out = slots.into_iter().flatten().collect();
    let stats = session.stats();
    (out, stats)
}

/// Results of the §4.2 resolver study, grouped into Figure 3 panels.
pub struct ResolverStudy {
    /// Classifications per panel. Unreachable and partially-probed
    /// resolvers are included — they stay in the study denominator.
    pub per_panel: BTreeMap<Panel, Vec<ResolverClassification>>,
    /// Loss-accounted probe traffic, merged across shards.
    pub stats: ProbeStats,
}

impl ResolverStudy {
    /// All classifications across panels.
    pub fn all(&self) -> Vec<ResolverClassification> {
        self.per_panel.values().flatten().cloned().collect()
    }
}

/// Lab addresses `deploy_fleet` consumes for `specs`, per family: one
/// per open resolver, two per closed resolver (resolver + Atlas probe).
/// A shard pre-skips the amounts its predecessors would consume so every
/// resolver receives the same address regardless of sharding.
fn fleet_addr_consumption(specs: &[ResolverSpec]) -> (u32, u128) {
    let mut v4 = 0u32;
    let mut v6 = 0u128;
    for s in specs {
        let n = match s.access {
            Access::Open => 1u32,
            Access::Closed => 2,
        };
        match s.family {
            Family::V4 => v4 += n,
            Family::V6 => v6 += u128::from(n),
        }
    }
    (v4, v6)
}

/// Build a fresh `rfc9276-in-the-wild.com` testbed at `now`, deploy
/// `specs` against it, and classify every resolver: open ones from the
/// scanner's vantage, closed ones through their Atlas probes.
///
/// Thread count from `HEROES_THREADS` (default 1); output is identical
/// for every thread count.
pub fn run_resolver_study(now: u32, specs: &[ResolverSpec]) -> ResolverStudy {
    run_resolver_study_cfg(specs, &DriverConfig::from_env(now))
}

/// [`run_resolver_study`] under an explicit [`DriverConfig`]. Each
/// shard builds its own testbed (identical zone hierarchy and address
/// allocation), allocates the scanner vantage addresses, pre-skips the
/// fleet addresses consumed by the specs before its range
/// ([`fleet_addr_consumption`]), and deploys only its own slice — so a
/// resolver's address, and therefore its cache-busting probe labels and
/// classification, are independent of the thread count. Every
/// classification is kept — resolvers whose probes were all lost come
/// back `unreachable`, partially-covered ones `partial` — and the merged
/// [`ProbeStats`] ride along in [`ResolverStudy::stats`].
pub fn run_resolver_study_cfg(specs: &[ResolverSpec], cfg: &DriverConfig) -> ResolverStudy {
    let window = cfg.effective_window();
    let partials = sim_par::run_sharded(specs, cfg.threads, cfg.lab_seed, |shard, slice| {
        vec![resolver_shard(
            cfg.now,
            shard.seed,
            specs,
            shard.start,
            slice,
            &cfg.profile,
            window,
        )]
    });
    let mut per_panel: BTreeMap<Panel, Vec<ResolverClassification>> = BTreeMap::new();
    let mut stats = ProbeStats::default();
    for (shard_pairs, shard_stats) in partials {
        for (panel, classification) in shard_pairs {
            per_panel.entry(panel).or_default().push(classification);
        }
        stats.merge(&shard_stats);
    }
    ResolverStudy { per_panel, stats }
}

/// One shard of the resolver study: classify `slice`
/// (= `specs[start..start + slice.len()]`) on a private testbed, every
/// classification a [`ProbeFlow`] stepped through the event core at
/// wire-attempt granularity.
fn resolver_shard(
    now: u32,
    lab_seed: u64,
    specs: &[ResolverSpec],
    start: usize,
    slice: &[ResolverSpec],
    profile: &ScanProfile,
    window: usize,
) -> (Vec<(Panel, ResolverClassification)>, ProbeStats) {
    let mut tb = build_testbed_seeded(now, lab_seed);
    tb.lab.net.set_schedule(profile.schedule.clone());
    let session = ScanSession::new(profile.breaker);
    // Scanner vantages first (before the fleet, at a fixed offset), then
    // pre-skip the predecessors' fleet allocations: both keep every
    // address shard-invariant. Scanner source addresses never appear in
    // the output, only resolver addresses do.
    let scanner_v4 = tb.lab.alloc.v4();
    let scanner_v6 = tb.lab.alloc.v6();
    let (consumed_v4, consumed_v6) = fleet_addr_consumption(&specs[..start]);
    tb.lab.alloc.skip_v4(consumed_v4);
    tb.lab.alloc.skip_v6(consumed_v6);
    let deployed = deploy_fleet(&mut tb.lab, slice);
    let mut slots: Vec<Option<(Panel, ResolverClassification)>> = Vec::new();
    slots.resize_with(deployed.len(), || None);
    let mut next = 0usize;
    let net = &tb.lab.net;
    drive(
        window,
        || {
            if next >= deployed.len() {
                return None;
            }
            let i = next;
            next += 1;
            let d = &deployed[i];
            let panel = match (d.spec.access, d.spec.family) {
                (Access::Open, Family::V4) => Panel::OpenV4,
                (Access::Open, Family::V6) => Panel::OpenV6,
                (Access::Closed, Family::V4) => Panel::ClosedV4,
                (Access::Closed, Family::V6) => Panel::ClosedV6,
            };
            let flow = match &d.probe {
                Some(probe) => {
                    classification_flow_via_probe(net, probe, &tb.plan, profile.retry, &session)
                }
                None => {
                    let src = match d.spec.family {
                        Family::V4 => scanner_v4,
                        Family::V6 => scanner_v6,
                    };
                    Prober::new(net, src, &tb.plan)
                        .with_session(&session, profile.retry)
                        .classification_flow(d.addr)
                }
            };
            Some((i, panel, Some(flow)))
        },
        |(i, panel, flow): &mut (usize, Panel, Option<ProbeFlow<'_>>), due| {
            let vnow = net.now_micros();
            if due > vnow {
                net.advance(due - vnow);
            }
            match flow.as_mut().expect("live classification flow").step() {
                FlowStep::Park { at_micros } => FlowStep::Park { at_micros },
                FlowStep::Done => {
                    let classification = flow
                        .take()
                        .expect("finished classification flow")
                        .into_classification();
                    slots[*i] = Some((*panel, classification));
                    FlowStep::Done
                }
            }
        },
    );
    let pairs = slots.into_iter().flatten().collect();
    let stats = session.stats();
    (pairs, stats)
}

/// Result of the unreachability experiment (§5.2 / abstract: "as 418
/// resolvers do not accept any additional iteration count higher than 0,
/// they potentially render 13.6 M domains unavailable to end users").
#[derive(Clone, Copy, Debug)]
pub struct Unreachability {
    /// NSEC3-enabled domains probed.
    pub probed: u64,
    /// Domains whose negative lookups SERVFAIL through the strict resolver.
    pub unreachable: u64,
    /// Domains that keep working (zero additional iterations).
    pub reachable: u64,
    /// Domains whose probes were lost to network faults: neither
    /// reachable nor unreachable, just unmeasured.
    /// `reachable + unreachable + lost == probed` always holds.
    pub lost: u64,
}

impl Unreachability {
    /// Share of NSEC3-enabled domains rendered unreachable (paper: 87.8 %).
    pub fn unreachable_pct(&self) -> f64 {
        if self.probed == 0 {
            0.0
        } else {
            self.unreachable as f64 / self.probed as f64 * 100.0
        }
    }
}

/// Measure the abstract's unreachability claim end to end: instantiate a
/// sample of NSEC3-enabled domains as real zones, resolve a nonexistent
/// name under each through a SERVFAIL-from-it-1 resolver (the 418
/// query-copier class), and count the failures.
///
/// Thread count from `HEROES_THREADS` (default 1); counts are identical
/// for every thread count.
pub fn run_unreachability(specs: &[DomainSpec], now: u32, batch_size: usize) -> Unreachability {
    run_unreachability_cfg(specs, batch_size, &DriverConfig::from_env(now)).0
}

/// [`run_unreachability`] under an explicit [`DriverConfig`]: lost
/// probes land in [`Unreachability::lost`] instead of inflating the
/// unreachable count, and the merged [`ProbeStats`] ride along. Shards
/// return partial counts which sum to the sequential totals (addition
/// is order-independent, so this driver needs no merge-order argument).
pub fn run_unreachability_cfg(
    specs: &[DomainSpec],
    batch_size: usize,
    cfg: &DriverConfig,
) -> (Unreachability, ProbeStats) {
    let nsec3_sample: Vec<DomainSpec> = specs
        .iter()
        .filter(|s| s.nsec3().is_some())
        .cloned()
        .collect();
    let window = cfg.effective_window();
    let partials =
        sim_par::run_sharded(&nsec3_sample, cfg.threads, cfg.lab_seed, |shard, slice| {
            vec![unreachability_shard(
                slice,
                cfg.now,
                batch_size,
                shard.seed,
                &cfg.profile,
                window,
            )]
        });
    let mut result = Unreachability {
        probed: 0,
        unreachable: 0,
        reachable: 0,
        lost: 0,
    };
    let mut stats = ProbeStats::default();
    for (p, shard_stats) in partials {
        result.probed += p.probed;
        result.unreachable += p.unreachable;
        result.reachable += p.reachable;
        result.lost += p.lost;
        stats.merge(&shard_stats);
    }
    (result, stats)
}

/// One shard of the unreachability probe: the event-driven batched
/// pipeline over `sample` (already filtered to NSEC3-enabled specs).
fn unreachability_shard(
    sample: &[DomainSpec],
    now: u32,
    batch_size: usize,
    lab_seed: u64,
    profile: &ScanProfile,
    window: usize,
) -> (Unreachability, ProbeStats) {
    let session = ScanSession::new(profile.breaker);
    let mut result = Unreachability {
        probed: 0,
        unreachable: 0,
        reachable: 0,
        lost: 0,
    };
    for batch in sample.chunks(batch_size.max(1)) {
        let tlds: BTreeSet<Name> = batch
            .iter()
            .filter_map(|s| Name::parse(&s.name).ok()?.parent())
            .filter(|p| !p.is_root())
            .collect();
        let mut builder = LabBuilder::new(now).seed(lab_seed);
        for tld in &tlds {
            builder = builder.simple_zone(tld, Denial::nsec3_rfc9276());
        }
        for spec in batch {
            if let Some(zs) = zone_spec_for_domain(spec) {
                builder = builder.zone(zs);
            }
        }
        let mut lab = builder.build();
        lab.net.set_schedule(profile.schedule.clone());
        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        // The strict class: SERVFAIL for any NSEC3 iteration count > 0.
        cfg.policy = Rfc9276Policy::servfail_above(0);
        cfg.retry = profile.retry;
        let resolver = Resolver::new(cfg);
        // One single-step flow per domain: the whole strict-resolver
        // lookup runs inside its first step, so any window yields the
        // sequential order (all flows are due at admission time and the
        // queue is FIFO at equal times) — the counts are plain sums
        // regardless.
        let mut next = 0usize;
        let net = &lab.net;
        drive(
            window,
            || {
                while next < batch.len() {
                    let i = next;
                    next += 1;
                    match Name::parse(&batch[i].name) {
                        Ok(domain) => return Some(domain),
                        Err(_) => continue,
                    }
                }
                None
            },
            |domain: &mut Name, due| {
                let vnow = net.now_micros();
                if due > vnow {
                    net.advance(due - vnow);
                }
                let probe = Name::parse("does-not-exist")
                    .unwrap()
                    .concat(domain)
                    .unwrap();
                let out = resolver.resolve(net, &probe, RrType::A);
                result.probed += 1;
                // A SERVFAIL that spent upstream timeouts is probe loss,
                // not a policy verdict (clean networks never spend
                // timeouts).
                let lost = out.rcode == dns_wire::rrtype::Rcode::ServFail && out.cost.timeouts > 0;
                if lost {
                    session.note_timed_out(out.cost.retries);
                    result.lost += 1;
                } else {
                    session.note_answered(out.cost.retries);
                    match out.rcode {
                        dns_wire::rrtype::Rcode::ServFail => result.unreachable += 1,
                        _ => result.reachable += 1,
                    }
                }
                FlowStep::Done
            },
        );
    }
    let stats = session.stats();
    (result, stats)
}

/// One point of the CVE-2023-50868 cost sweep.
#[derive(Clone, Copy, Debug)]
pub struct CvePoint {
    /// Additional iterations of the target zone.
    pub iterations: u16,
    /// Salt length of the target zone.
    pub salt_len: u8,
    /// SHA-1 compressions the resolver spent validating one NXDOMAIN.
    pub compressions: u64,
    /// NSEC3 hash chains computed.
    pub hashes: u64,
    /// Virtual time spent, microseconds.
    pub virtual_micros: u64,
}

/// Sweep validation cost across iteration counts and salt lengths,
/// querying one unique nonexistent (deep) name per configuration through
/// an unlimited validating resolver.
pub fn cve_cost_sweep(points: &[(u16, u8)], now: u32) -> Vec<CvePoint> {
    let mut out = Vec::with_capacity(points.len());
    for &(iterations, salt_len) in points {
        let apex = Name::parse("victim.example.").unwrap();
        let lab_builder = LabBuilder::new(now)
            .simple_zone(&Name::parse("example.").unwrap(), Denial::nsec3_rfc9276())
            .zone(ZoneSpec::new(
                {
                    let mut z = Zone::new(apex.clone());
                    z.add(Record::new(
                        apex.clone(),
                        300,
                        RData::A("192.0.2.10".parse().unwrap()),
                    ))
                    .unwrap();
                    z
                },
                Denial::Nsec3 {
                    params: Nsec3Params::new(iterations, vec![0x5a; salt_len as usize]),
                    opt_out: false,
                },
            ));
        let mut lab = lab_builder.build();
        let raddr = lab.alloc.v4();
        let mut cfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        cfg.now = lab.now;
        cfg.policy = Rfc9276Policy::unlimited();
        let resolver = Resolver::new(cfg);
        let qname = Name::parse("a.b.c.d.attack.victim.example.").unwrap();
        let t0 = lab.net.now_micros();
        let outcome = resolver.resolve(&lab.net, &qname, RrType::A);
        assert_eq!(outcome.rcode, dns_wire::rrtype::Rcode::NxDomain);
        out.push(CvePoint {
            iterations,
            salt_len,
            compressions: outcome.cost.sha1_compressions,
            hashes: outcome.cost.nsec3_hashes,
            virtual_micros: lab.net.now_micros() - t0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use popgen::Scale;

    const NOW: u32 = 1_710_000_000;

    #[test]
    fn census_measures_what_popgen_declares() {
        let specs = popgen::generate_domains(Scale(1.0 / 2_000_000.0), 3);
        let sample: Vec<DomainSpec> = specs.into_iter().take(60).collect();
        let measured = run_domain_census(&sample, NOW, 40);
        assert_eq!(measured.len(), sample.len());
        let declared = records_from_specs(&sample);
        for (m, d) in measured.iter().zip(declared.iter()) {
            assert_eq!(m.name, d.name);
            assert_eq!(m.dnssec, d.dnssec, "{}", m.name);
            assert_eq!(m.nsec3, d.nsec3, "{}: measured {:?}", m.name, m.nsec3);
            assert_eq!(m.opt_out, d.opt_out, "{}", m.name);
            if d.operator.is_some() {
                assert_eq!(m.operator, d.operator, "{}", m.name);
            }
        }
    }

    #[test]
    fn unreachability_matches_non_compliance_share() {
        // The strict resolver breaks negative lookups for exactly the
        // non-zero-iteration domains: the unreachable share must equal the
        // non-compliance share of the sample.
        let specs = popgen::generate_domains(Scale(1.0 / 1_000_000.0), 9);
        let nsec3: Vec<_> = specs.iter().filter(|s| s.nsec3().is_some()).collect();
        assert!(nsec3.len() >= 10, "sample large enough: {}", nsec3.len());
        let expected_unreachable = nsec3.iter().filter(|s| s.nsec3().unwrap().0 > 0).count() as u64;
        let result = run_unreachability(&specs, NOW, 100);
        assert_eq!(result.probed, nsec3.len() as u64);
        assert_eq!(result.unreachable, expected_unreachable);
        assert_eq!(result.lost, 0, "clean network loses nothing");
        assert_eq!(
            result.reachable + result.unreachable + result.lost,
            result.probed
        );
    }

    #[test]
    fn wide_window_matches_sequential_schedule_and_accounts_probes() {
        // The event core's whole correctness claim in one test: a wide
        // in-flight window (interleaved probe flows) must reproduce the
        // window-of-one sequential schedule byte for byte on a clean
        // network.
        let specs = popgen::generate_domains(Scale(1.0 / 2_000_000.0), 3);
        let sample: Vec<DomainSpec> = specs.into_iter().take(20).collect();
        let base = DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED);
        let sequential = run_domain_census_cfg(&sample, 10, &base.clone().with_window(1)).0;
        let (wide, stats) = run_domain_census_cfg(&sample, 10, &base.with_window(DEFAULT_WINDOW));
        assert_eq!(wide.len(), sequential.len());
        for (a, b) in wide.iter().zip(sequential.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.nsec3, b.nsec3);
            assert_eq!(a.operator, b.operator);
            assert!(!a.probe_loss, "clean network never loses probes");
        }
        assert!(stats.is_consistent(), "{stats:?}");
        assert!(stats.sent > 0, "census probes are accounted");
        assert_eq!(stats.timed_out, 0, "clean network times nothing out");
        assert_eq!(stats.circuit_skipped, 0);
    }

    #[test]
    fn streaming_census_matches_batched_records() {
        // The streaming pipeline must aggregate exactly what the batch
        // pipeline records, at every thread count, for the same shard
        // and batch cuts.
        let scale = Scale(1.0 / 2_000_000.0);
        let specs = popgen::generate_domains(scale, DEFAULT_LAB_SEED);
        for threads in [1usize, 3] {
            let cfg = DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED);
            let (records, probe_stats) = run_domain_census_cfg(&specs, 40, &cfg);
            let expected = DomainStats::compute(&records);
            let report = run_domain_census_stream(scale, DEFAULT_LAB_SEED, 40, &cfg);
            assert_eq!(report.stats.total, expected.total, "threads = {threads}");
            assert_eq!(report.stats.lost, expected.lost);
            assert_eq!(report.stats.dnssec, expected.dnssec);
            assert_eq!(report.stats.nsec3, expected.nsec3);
            assert_eq!(report.stats.zero_iterations, expected.zero_iterations);
            assert_eq!(report.stats.no_salt, expected.no_salt);
            assert_eq!(report.stats.opt_out, expected.opt_out);
            assert_eq!(
                report.stats.iterations_cdf.points(),
                expected.iterations_cdf.points()
            );
            assert_eq!(report.stats.salt_cdf.points(), expected.salt_cdf.points());
            assert_eq!(report.probe_stats, probe_stats, "threads = {threads}");
            assert!(report.in_flight_high_water >= 1);
        }
    }

    #[test]
    fn tld_census_measures_declared_parameters() {
        // A slice of the real TLD population, scanned end to end.
        let tlds: Vec<_> = popgen::generate_tlds().into_iter().step_by(37).collect();
        let observed = run_tld_census(&tlds, NOW, 1.0 / 100_000.0);
        assert_eq!(observed.len(), tlds.len());
        for (obs, spec) in observed.iter().zip(tlds.iter()) {
            assert_eq!(obs.name, spec.name);
            match &spec.dnssec {
                popgen::domains::DnssecKind::None => assert!(!obs.dnssec, "{}", obs.name),
                popgen::domains::DnssecKind::Nsec => {
                    assert!(obs.dnssec);
                    assert_eq!(obs.nsec3, None, "{}", obs.name);
                }
                popgen::domains::DnssecKind::Nsec3 {
                    iterations,
                    salt_len,
                    opt_out,
                } => {
                    assert_eq!(obs.nsec3, Some((*iterations, *salt_len)), "{}", obs.name);
                    // Opt-out observable only when an NSEC3 record was
                    // returned with the flag (needs the probe to hit an
                    // NXDOMAIN with records) — flag equality holds when
                    // observed.
                    if obs.opt_out {
                        assert!(*opt_out, "{}", obs.name);
                    }
                }
            }
            assert_eq!(obs.axfr_ok, spec.shares_zone, "{}", obs.name);
            if spec.shares_zone {
                assert!(obs.delegations.is_some());
            }
        }
    }

    #[test]
    fn sharded_census_matches_sequential() {
        let specs = popgen::generate_domains(Scale(1.0 / 2_000_000.0), 3);
        let sample: Vec<DomainSpec> = specs.into_iter().take(24).collect();
        let sequential =
            run_domain_census_cfg(&sample, 10, &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED)).0;
        for threads in [2, 3] {
            let sharded = run_domain_census_cfg(
                &sample,
                10,
                &DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED),
            )
            .0;
            assert_eq!(sharded.len(), sequential.len(), "threads = {threads}");
            for (a, b) in sharded.iter().zip(sequential.iter()) {
                assert_eq!(a.name, b.name, "threads = {threads}");
                assert_eq!(a.dnssec, b.dnssec, "{}", a.name);
                assert_eq!(a.nsec3, b.nsec3, "{}", a.name);
                assert_eq!(a.opt_out, b.opt_out, "{}", a.name);
                assert_eq!(a.operator, b.operator, "{}", a.name);
            }
        }
    }

    #[test]
    fn cve_sweep_shows_linear_blowup() {
        let points = cve_cost_sweep(&[(0, 0), (150, 8), (500, 8)], NOW);
        assert_eq!(points.len(), 3);
        let base = points[0].compressions;
        let mid = points[1].compressions;
        let high = points[2].compressions;
        assert!(mid > base * 50, "150 iterations: {mid} vs {base}");
        assert!(high > mid * 2, "500 iterations: {high} vs {mid}");
    }
}
