//! The production serving driver: Zipf client traffic through the
//! resolver fleet, with the RFC 8198 negative-cache fast path.
//!
//! Where the census and study drivers *probe* (one query per target, no
//! cache reuse by design), this driver *serves*: a client population
//! ([`popgen::traffic`]) issues millions of Zipf-distributed queries
//! against a fixed domain population, and a fleet of caching validating
//! resolvers answers them. The interesting numbers are the ones the
//! paper's parameters move — how much upstream NXDOMAIN traffic
//! aggressive NSEC3 caching collapses, and what the per-query hash bill
//! of that synthesis is at each iteration count.
//!
//! # Fleet sharding and determinism
//!
//! The unit of work is one **fleet member**, not one thread: clients
//! partition contiguously across `fleet` resolver instances, each
//! instance owns a private lab (every zone of the population) and serves
//! its clients' queries in stream order on the event core. A tally
//! depends only on its resolver's own query slice, so merging per-
//! resolver tallies is order-free and the report is byte-identical for
//! every `HEROES_THREADS` and every in-flight window (each query is a
//! single-step flow; see the unreachability driver for the argument).
//!
//! # Accounting
//!
//! Every query lands in exactly one of four buckets:
//! `served_cache` (answer-cache hit, zero virtual latency),
//! `synthesized` (RFC 8198 NXDOMAIN from cached NSEC3 ranges — CPU but
//! no network), `forwarded` (full recursion upstream), or `lost`
//! (network faults ate it: SERVFAIL that spent timeouts). The invariant
//! `queries == served_cache + synthesized + forwarded + lost` always
//! holds, and virtual latency percentiles come from an exact
//! microsecond histogram that merges across shards by summation.

use std::collections::{BTreeMap, BTreeSet};

use dns_resolver::lab::LabBuilder;
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_resolver::Rfc9276Policy;
use dns_scanner::retry::{ProbeStats, ScanSession};
use dns_wire::name::Name;
use dns_wire::rrtype::{Rcode, RrType};
use dns_zone::signer::Denial;
use netsim::event::{drive, FlowStep};
use popgen::domains::DomainSpec;
use popgen::traffic::{TrafficGenerator, TrafficModel};
use sim_rng::SplitMix64;

use crate::experiments::{zone_spec_for_domain, DriverConfig, ScanProfile};

/// One serving run: the domain population, who queries it, and how the
/// fleet caches.
#[derive(Clone, Debug)]
pub struct ServingScenario {
    /// The zone population every fleet member is authoritative-adjacent
    /// to (each spec becomes a signed lab zone).
    pub domains: Vec<DomainSpec>,
    /// The client population and its query mix.
    pub traffic: TrafficModel,
    /// Resolver instances in the fleet; clients partition contiguously
    /// across them. Tallies are per-instance, so the count changes the
    /// numbers (cache locality) but never the determinism.
    pub fleet: usize,
    /// RFC 8198 aggressive NSEC3 synthesis on the fleet.
    pub aggressive: bool,
    /// Answer-cache capacity per resolver (0 disables caching — the
    /// cold path).
    pub cache_size: usize,
    /// Delegation (referral) caching on the fleet: warm queries restart
    /// recursion at the deepest cached cut instead of the root. Off by
    /// default so the pinned serving scenarios keep their historical
    /// upstream timing; the chain-of-trust drivers run it on.
    pub delegation_cache: bool,
}

impl ServingScenario {
    /// A warm-fleet scenario: 4 resolvers, aggressive NSEC3 on, the
    /// resolver's default cache geometry.
    pub fn new(domains: Vec<DomainSpec>, traffic: TrafficModel) -> Self {
        ServingScenario {
            domains,
            traffic,
            fleet: 4,
            aggressive: true,
            cache_size: 4096,
            delegation_cache: false,
        }
    }

    /// The same scenario with an explicit fleet size.
    pub fn with_fleet(mut self, fleet: usize) -> Self {
        self.fleet = fleet.max(1);
        self
    }

    /// The same traffic through cacheless resolvers — every query pays
    /// full recursion. The baseline the warm percentiles compare to.
    pub fn cold(mut self) -> Self {
        self.aggressive = false;
        self.cache_size = 0;
        self.delegation_cache = false;
        self
    }

    /// The same scenario with aggressive synthesis toggled — the
    /// upstream-collapse comparison arm.
    pub fn with_aggressive(mut self, aggressive: bool) -> Self {
        self.aggressive = aggressive;
        self
    }

    /// The same scenario with delegation caching toggled — warm walks
    /// restart at the deepest cached referral cut, and the fleet's
    /// hit/miss/eviction counters surface in the tally.
    pub fn with_delegation_cache(mut self, delegation_cache: bool) -> Self {
        self.delegation_cache = delegation_cache;
        self
    }
}

/// Serving counters. Plain sums plus a summable latency histogram, so
/// shard merges are order-independent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServingTally {
    /// Client queries served.
    pub queries: u64,
    /// Answered from the answer cache (positive or negative).
    pub served_cache: u64,
    /// NXDOMAIN synthesized from cached NSEC3 ranges (RFC 8198).
    pub synthesized: u64,
    /// Full recursion upstream.
    pub forwarded: u64,
    /// Lost to network faults (SERVFAIL that spent timeouts).
    pub lost: u64,
    /// NoError answers.
    pub noerror: u64,
    /// NXDOMAIN answers (cached, synthesized, or recursed).
    pub nxdomain: u64,
    /// SERVFAIL answers.
    pub servfail: u64,
    /// Messages the fleet sent upstream (the authoritative-side bill).
    pub upstream_messages: u64,
    /// Forwarded queries that came back NXDOMAIN — the traffic RFC 8198
    /// exists to collapse.
    pub upstream_nxdomain: u64,
    /// SHA-1 compressions spent (synthesis + validation).
    pub sha1_compressions: u64,
    /// NSEC3 hash chains computed.
    pub nsec3_hashes: u64,
    /// Answer-cache hits across the fleet.
    pub answer_hits: u64,
    /// Answer-cache misses across the fleet.
    pub answer_misses: u64,
    /// Validated-key-cache hits across the fleet.
    pub key_hits: u64,
    /// Validated-key-cache misses across the fleet.
    pub key_misses: u64,
    /// Delegation-cache hits across the fleet (warm referral restarts).
    pub delegation_hits: u64,
    /// Delegation-cache misses across the fleet (root-hint walks).
    pub delegation_misses: u64,
    /// Delegation-cache evictions across the fleet.
    pub delegation_evictions: u64,
    /// Virtual latency histogram: exact microseconds → query count.
    pub latency_hist: BTreeMap<u64, u64>,
}

impl ServingTally {
    fn merge(&mut self, other: &ServingTally) {
        self.queries += other.queries;
        self.served_cache += other.served_cache;
        self.synthesized += other.synthesized;
        self.forwarded += other.forwarded;
        self.lost += other.lost;
        self.noerror += other.noerror;
        self.nxdomain += other.nxdomain;
        self.servfail += other.servfail;
        self.upstream_messages += other.upstream_messages;
        self.upstream_nxdomain += other.upstream_nxdomain;
        self.sha1_compressions += other.sha1_compressions;
        self.nsec3_hashes += other.nsec3_hashes;
        self.answer_hits += other.answer_hits;
        self.answer_misses += other.answer_misses;
        self.key_hits += other.key_hits;
        self.key_misses += other.key_misses;
        self.delegation_hits += other.delegation_hits;
        self.delegation_misses += other.delegation_misses;
        self.delegation_evictions += other.delegation_evictions;
        for (&micros, &count) in &other.latency_hist {
            *self.latency_hist.entry(micros).or_default() += count;
        }
    }

    /// The `pct`-th percentile of virtual latency, in microseconds
    /// (nearest-rank over the exact histogram).
    pub fn latency_percentile(&self, pct: f64) -> u64 {
        let total: u64 = self.latency_hist.values().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&micros, &count) in &self.latency_hist {
            seen += count;
            if seen >= rank {
                return micros;
            }
        }
        *self.latency_hist.keys().next_back().expect("nonempty hist")
    }

    /// Median virtual latency (µs).
    pub fn p50_micros(&self) -> u64 {
        self.latency_percentile(50.0)
    }

    /// 99th-percentile virtual latency (µs).
    pub fn p99_micros(&self) -> u64 {
        self.latency_percentile(99.0)
    }

    /// Answer-cache hit ratio across the fleet.
    pub fn answer_hit_ratio(&self) -> f64 {
        ratio(self.answer_hits, self.answer_hits + self.answer_misses)
    }

    /// Key-cache hit ratio across the fleet.
    pub fn key_hit_ratio(&self) -> f64 {
        ratio(self.key_hits, self.key_hits + self.key_misses)
    }

    /// Share of queries answered without touching the network (cache
    /// hits plus RFC 8198 synthesis).
    pub fn local_answer_share(&self) -> f64 {
        ratio(self.served_cache + self.synthesized, self.queries)
    }

    /// Upstream messages per client query — the load the fleet exports.
    pub fn upstream_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.upstream_messages as f64 / self.queries as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Result of a serving run: the merged tally, loss-accounted probe
/// traffic, and the event core's high-water mark.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Merged counters across the fleet.
    pub tally: ServingTally,
    /// Loss-accounted query traffic (merged shard-wise).
    pub probe_stats: ProbeStats,
    /// Deepest in-flight backlog any fleet member saw (window-dependent;
    /// excluded from determinism pins).
    pub in_flight_high_water: usize,
}

impl ServingReport {
    /// The rendered form the determinism pins compare: everything except
    /// the window-dependent high-water mark.
    pub fn rendered(&self) -> String {
        format!("{:?}\n{:?}", self.tally, self.probe_stats)
    }
}

/// Run `scenario` with environment-driven parallelism
/// (`HEROES_THREADS`/`HEROES_FAULTS`/`HEROES_WINDOW`; see
/// [`DriverConfig::from_env`]).
pub fn run_serving(scenario: &ServingScenario, now: u32) -> ServingReport {
    run_serving_cfg(scenario, &DriverConfig::from_env(now))
}

/// [`run_serving`] under an explicit [`DriverConfig`]. Fleet members
/// shard across threads; each member's lab seed derives from
/// `(lab_seed, member index)` — never the shard — so every thread count
/// produces identical tallies.
pub fn run_serving_cfg(scenario: &ServingScenario, cfg: &DriverConfig) -> ServingReport {
    assert!(!scenario.domains.is_empty(), "serving needs zones");
    let fleet = scenario.fleet.max(1) as u64;
    let window = cfg.effective_window();
    let partials = sim_par::run_sharded_range(fleet, cfg.threads, cfg.lab_seed, |shard| {
        let session = ScanSession::new(cfg.profile.breaker);
        let mut tally = ServingTally::default();
        let mut high_water = 0usize;
        for member in shard.start..shard.end {
            high_water = high_water.max(serving_unit(
                scenario,
                member,
                fleet,
                cfg.now,
                cfg.lab_seed,
                &cfg.profile,
                window,
                &session,
                &mut tally,
            ));
        }
        (tally, session.stats(), high_water)
    });
    let mut tally = ServingTally::default();
    let mut probe_stats = ProbeStats::default();
    let mut in_flight_high_water = 0usize;
    for (shard_tally, shard_stats, shard_hw) in partials {
        tally.merge(&shard_tally);
        probe_stats.merge(&shard_stats);
        in_flight_high_water = in_flight_high_water.max(shard_hw);
    }
    ServingReport {
        tally,
        probe_stats,
        in_flight_high_water,
    }
}

/// The contiguous client block fleet member `member` serves, balanced
/// like [`sim_par::range_shards`]: the first `clients % fleet` members
/// take one extra client.
fn client_block(clients: u64, fleet: u64, member: u64) -> (u64, u64) {
    let base = clients / fleet;
    let extra = clients % fleet;
    let start = member * base + member.min(extra);
    let end = start + base + u64::from(member < extra);
    (start, end)
}

/// One fleet member: a private lab with the whole zone population, one
/// caching resolver, and its client block's query slice in stream order
/// as single-step flows on the event core. Returns the drive's
/// high-water mark.
#[allow(clippy::too_many_arguments)]
fn serving_unit(
    scenario: &ServingScenario,
    member: u64,
    fleet: u64,
    now: u32,
    lab_seed: u64,
    profile: &ScanProfile,
    window: usize,
    session: &ScanSession,
    tally: &mut ServingTally,
) -> usize {
    let (c_lo, c_hi) = client_block(scenario.traffic.clients, fleet, member);
    let qpc = scenario.traffic.queries_per_client;
    let (q_lo, q_hi) = (c_lo * qpc, c_hi * qpc);
    if q_lo >= q_hi {
        return 0;
    }
    // Per-member lab seed: a function of (lab_seed, member), never of
    // the shard plan — thread counts must not move a member's stream.
    let member_seed =
        SplitMix64::new(lab_seed ^ member.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
    let tlds: BTreeSet<Name> = scenario
        .domains
        .iter()
        .filter_map(|s| Name::parse(&s.name).ok()?.parent())
        .filter(|p| !p.is_root())
        .collect();
    let mut builder = LabBuilder::new(now).seed(member_seed);
    for tld in &tlds {
        builder = builder.simple_zone(tld, Denial::nsec3_rfc9276());
    }
    for spec in &scenario.domains {
        if let Some(zs) = zone_spec_for_domain(spec) {
            builder = builder.zone(zs);
        }
    }
    let mut lab = builder.build();
    lab.net.set_schedule(profile.schedule.clone());
    let raddr = lab.alloc.v4();
    let mut rcfg = ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
    rcfg.now = lab.now;
    rcfg.policy = Rfc9276Policy::unlimited();
    rcfg.retry = profile.retry;
    rcfg.cache_size = scenario.cache_size;
    rcfg.aggressive_nsec3 = scenario.aggressive;
    rcfg.delegation_cache = scenario.delegation_cache;
    let resolver = Resolver::new(rcfg);
    let generator = TrafficGenerator::new(scenario.traffic.clone(), scenario.domains.len() as u64);
    let mut next = q_lo;
    let net = &lab.net;
    let stats = drive(
        window,
        || {
            while next < q_hi {
                let q = generator.get(next);
                next += 1;
                let qname = q.qname(&scenario.domains[q.domain as usize].name);
                if let Ok(parsed) = Name::parse(&qname) {
                    return Some(parsed);
                }
            }
            None
        },
        |qname: &mut Name, due| {
            let vnow = net.now_micros();
            if due > vnow {
                net.advance(due - vnow);
            }
            let hits_before = resolver.cache_hits();
            let synth_before = resolver.synthesized_nxdomains();
            let issued_at = net.now_micros();
            let out = resolver.resolve(net, qname, RrType::A);
            let latency = net.now_micros() - issued_at;
            tally.queries += 1;
            *tally.latency_hist.entry(latency).or_default() += 1;
            tally.upstream_messages += out.cost.messages_sent;
            tally.sha1_compressions += out.cost.sha1_compressions;
            tally.nsec3_hashes += out.cost.nsec3_hashes;
            match out.rcode {
                Rcode::NoError => tally.noerror += 1,
                Rcode::NxDomain => tally.nxdomain += 1,
                _ => tally.servfail += 1,
            }
            if resolver.cache_hits() > hits_before {
                tally.served_cache += 1;
                session.note_answered(out.cost.retries);
            } else if resolver.synthesized_nxdomains() > synth_before {
                tally.synthesized += 1;
                session.note_answered(out.cost.retries);
            } else if out.rcode == Rcode::ServFail && out.cost.timeouts > 0 {
                // Probe loss, same rule as every other driver.
                session.note_timed_out(out.cost.retries);
                tally.lost += 1;
            } else {
                tally.forwarded += 1;
                if out.rcode == Rcode::NxDomain {
                    tally.upstream_nxdomain += 1;
                }
                session.note_answered(out.cost.retries);
            }
            FlowStep::Done
        },
    );
    tally.answer_hits += resolver.cache_hits();
    tally.answer_misses += resolver.cache_misses();
    tally.key_hits += resolver.key_cache_hits();
    tally.key_misses += resolver.key_cache_misses();
    tally.delegation_hits += resolver.delegation_hits();
    tally.delegation_misses += resolver.delegation_misses();
    tally.delegation_evictions += resolver.delegation_evictions();
    stats.in_flight_high_water
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_LAB_SEED;
    use popgen::domains::DnssecKind;
    use popgen::traffic::QueryMix;
    use popgen::DomainGenerator;
    use popgen::Scale;

    const NOW: u32 = 1_710_000_000;

    /// A small NSEC3-heavy zone population from the calibrated
    /// generator.
    fn nsec3_domains(count: usize) -> Vec<DomainSpec> {
        let generator = DomainGenerator::new(Scale(1.0 / 3_020.0), 42);
        let mut out = Vec::with_capacity(count);
        let mut i = 0u64;
        while out.len() < count && i < generator.len() {
            let spec = generator.get(i);
            if matches!(spec.dnssec, DnssecKind::Nsec3 { opt_out: false, .. }) {
                out.push(spec);
            }
            i += 1;
        }
        assert_eq!(out.len(), count, "population too small for {count} zones");
        out
    }

    fn small_scenario() -> ServingScenario {
        ServingScenario::new(
            nsec3_domains(6),
            TrafficModel::new(8, 30, 42).with_mix(QueryMix::nxdomain_heavy()),
        )
        .with_fleet(2)
    }

    #[test]
    fn serving_accounting_invariants() {
        let report = run_serving_cfg(
            &small_scenario(),
            &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED),
        );
        let t = &report.tally;
        assert_eq!(t.queries, 240);
        assert_eq!(
            t.queries,
            t.served_cache + t.synthesized + t.forwarded + t.lost,
            "every query lands in exactly one bucket"
        );
        assert_eq!(t.queries, t.noerror + t.nxdomain + t.servfail);
        assert_eq!(t.latency_hist.values().sum::<u64>(), t.queries);
        assert_eq!(t.lost, 0, "clean network loses nothing");
        assert!(t.synthesized > 0, "aggressive fleet must synthesize");
        assert!(t.served_cache > 0, "Zipf head must produce cache hits");
        assert!(t.answer_hit_ratio() > 0.0);
    }

    #[test]
    fn aggressive_collapses_upstream_nxdomain() {
        let on = run_serving_cfg(
            &small_scenario(),
            &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED),
        );
        let off = run_serving_cfg(
            &small_scenario().with_aggressive(false),
            &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED),
        );
        assert!(
            off.tally.upstream_nxdomain >= 2 * on.tally.upstream_nxdomain.max(1),
            "aggressive caching must collapse upstream NXDOMAIN: off {} vs on {}",
            off.tally.upstream_nxdomain,
            on.tally.upstream_nxdomain
        );
        // Synthesis pays in hashes what it saves in messages.
        assert!(on.tally.upstream_messages < off.tally.upstream_messages);
    }

    #[test]
    fn warm_fleet_beats_cold_fleet_latency() {
        let warm = run_serving_cfg(
            &small_scenario(),
            &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED),
        );
        let cold = run_serving_cfg(
            &small_scenario().cold(),
            &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED),
        );
        assert_eq!(cold.tally.served_cache, 0);
        assert_eq!(cold.tally.synthesized, 0);
        assert!(cold.tally.p50_micros() > 0, "cold queries pay the network");
        assert!(
            warm.tally.p99_micros() < cold.tally.p50_micros(),
            "warm p99 {} must undercut cold p50 {}",
            warm.tally.p99_micros(),
            cold.tally.p50_micros()
        );
    }

    #[test]
    fn serving_driver_is_thread_and_window_invariant() {
        let scenario = small_scenario();
        let baseline = run_serving_cfg(&scenario, &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED));
        for threads in [2usize, 4] {
            let sharded = run_serving_cfg(
                &scenario,
                &DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED),
            );
            assert_eq!(
                sharded.rendered(),
                baseline.rendered(),
                "threads = {threads}"
            );
        }
        for window in [1usize, 7] {
            let windowed = run_serving_cfg(
                &scenario,
                &DriverConfig::clean(NOW, 2, DEFAULT_LAB_SEED).with_window(window),
            );
            assert_eq!(
                windowed.rendered(),
                baseline.rendered(),
                "window = {window}"
            );
        }
    }

    #[test]
    fn delegation_cache_saves_upstream_and_stays_invariant() {
        let cached = small_scenario().with_delegation_cache(true);
        let plain = small_scenario();
        let base = |threads| DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED);
        let with_cache = run_serving_cfg(&cached, &base(1));
        let without = run_serving_cfg(&plain, &base(1));
        assert!(
            with_cache.tally.delegation_hits > 0,
            "warm fleet walks must hit cached cuts"
        );
        assert_eq!(
            without.tally.delegation_hits + without.tally.delegation_misses,
            0,
            "disabled cache must not record counter noise"
        );
        assert!(
            with_cache.tally.upstream_messages < without.tally.upstream_messages,
            "delegation cache must cut the upstream bill: {} vs {}",
            with_cache.tally.upstream_messages,
            without.tally.upstream_messages
        );
        // Still byte-identical across thread counts with the cache on.
        let sharded = run_serving_cfg(&cached, &base(4));
        assert_eq!(sharded.rendered(), with_cache.rendered());
    }

    #[test]
    fn fleet_size_changes_locality_not_totals() {
        let one = run_serving_cfg(
            &small_scenario().with_fleet(1),
            &DriverConfig::clean(NOW, 2, DEFAULT_LAB_SEED),
        );
        let four = run_serving_cfg(
            &small_scenario().with_fleet(4),
            &DriverConfig::clean(NOW, 2, DEFAULT_LAB_SEED),
        );
        assert_eq!(one.tally.queries, four.tally.queries);
        // A monolithic cache sees every repeat; a split fleet re-pays
        // cold misses per member.
        assert!(one.tally.served_cache >= four.tally.served_cache);
    }

    #[test]
    fn client_blocks_partition_exactly() {
        for (clients, fleet) in [(10u64, 3u64), (8, 4), (1, 4), (0, 2), (7, 7)] {
            let mut expected = 0u64;
            for member in 0..fleet {
                let (lo, hi) = client_block(clients, fleet, member);
                assert_eq!(lo, expected, "clients={clients} fleet={fleet}");
                expected = hi;
            }
            assert_eq!(expected, clients);
        }
    }
}
