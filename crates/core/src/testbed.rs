//! The `rfc9276-in-the-wild.com` testbed (§4.2).
//!
//! 49 specially-signed child zones under the test domain, plus the
//! out-of-band `it-2501-expired` zone:
//!
//! * `valid` — RFC 9276-compliant (0 iterations, no salt), correct
//!   signatures; a validator answers its names NOERROR with AD.
//! * `expired` — same parameters but expired RRSIGs; a validator answers
//!   SERVFAIL.
//! * `it-1` … `it-25` — every iteration count the bulk of the wild uses
//!   (99.9 % of NSEC3-enabled domains are ≤ 25).
//! * `it-50`, `it-75`, …, `it-500` — steps of 25 up to the highest value
//!   observed in the wild.
//! * `it-51`, `it-101`, `it-151` — successors of the vendor limits
//!   (50/100/150), to pin down exact thresholds.
//! * `it-2501-expired` — beyond every RFC 5155 limit *and* with expired
//!   signatures over the NSEC3 records: distinguishes validators that
//!   honor item 7 (verify the NSEC3 RRSIG before downgrading) from the
//!   0.2 % that do not.
//!
//! Every zone carries a wildcard branch (`*.wc.<zone>`) and dual-stack
//! service; probe queries use per-resolver unique labels, exactly like the
//! paper's cache-busting methodology. The probes that populate Figure 3
//! ask for unique *nonexistent* names, so the authoritative answer is an
//! NXDOMAIN whose proof uses the zone's iteration count.

use dns_resolver::lab::{Lab, LabBuilder, ZoneSpec};
use dns_scanner::prober::ProbePlan;
use dns_wire::name::{name, Name};
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_zone::faults;
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::Denial;
use dns_zone::Zone;

/// The test domain, as in the paper.
pub const TEST_DOMAIN: &str = "rfc9276-in-the-wild.com.";

/// The deployed testbed: the lab plus the probe plan.
pub struct Testbed {
    /// The signed hierarchy on the simulated network.
    pub lab: Lab,
    /// The §4.2 probe plan over the testbed names.
    pub plan: ProbePlan,
    /// The iteration values deployed (ascending).
    pub iteration_values: Vec<u16>,
}

/// The 47 `it-N` values of the paper's methodology: 1–25, then steps of
/// 25 to 500, plus the limit successors 51, 101, 151.
pub fn iteration_values() -> Vec<u16> {
    let mut v: Vec<u16> = (1..=25).collect();
    v.extend((2..=20).map(|k| k * 25)); // 50, 75, …, 500
    v.extend([51, 101, 151]);
    v.sort_unstable();
    v.dedup();
    v
}

/// Contents of one testbed child zone: website A record, `www`, and a
/// wildcard branch.
fn testbed_zone(apex: &Name) -> Zone {
    let mut z = Zone::new(apex.clone());
    z.add(Record::new(
        apex.clone(),
        300,
        RData::A("192.0.2.80".parse().unwrap()),
    ))
    .unwrap();
    let www = name("www").concat(apex).unwrap();
    z.add(Record::new(
        www,
        300,
        RData::A("192.0.2.81".parse().unwrap()),
    ))
    .unwrap();
    // The wildcard branch: *.wc.<apex> answers any name beneath it.
    let wc = name("*.wc").concat(apex).unwrap();
    z.add(Record::new(
        wc,
        300,
        RData::A("192.0.2.82".parse().unwrap()),
    ))
    .unwrap();
    z
}

/// Build the full testbed at `now` with the default lab seed (42).
pub fn build_testbed(now: u32) -> Testbed {
    build_testbed_seeded(now, 42)
}

/// Build the full testbed at `now` with an explicit lab seed. The zone
/// hierarchy and address allocation sequence are seed-independent; the
/// seed only feeds the lab network's fault RNG, so parallel shards can
/// each build a private testbed without sharing state.
pub fn build_testbed_seeded(now: u32, seed: u64) -> Testbed {
    let parent = name(TEST_DOMAIN);
    let mut b = LabBuilder::new(now)
        .seed(seed)
        .simple_zone(&name("com."), Denial::nsec3_rfc9276())
        .zone(ZoneSpec::new(
            testbed_zone(&parent),
            Denial::nsec3_rfc9276(),
        ));

    // valid.
    let valid_apex = name("valid").concat(&parent).unwrap();
    b = b.zone(ZoneSpec::new(
        testbed_zone(&valid_apex),
        Denial::nsec3_rfc9276(),
    ));

    // expired.
    let expired_apex = name("expired").concat(&parent).unwrap();
    let mut expired_spec = ZoneSpec::new(testbed_zone(&expired_apex), Denial::nsec3_rfc9276());
    expired_spec.expired = true;
    b = b.zone(expired_spec);

    // it-N.
    let values = iteration_values();
    let mut it_zones = Vec::with_capacity(values.len());
    for &n in &values {
        let apex = name(&format!("it-{n}")).concat(&parent).unwrap();
        b = b.zone(ZoneSpec::new(
            testbed_zone(&apex),
            Denial::Nsec3 {
                params: Nsec3Params::new(n, Vec::new()),
                opt_out: false,
            },
        ));
        it_zones.push((n, apex));
    }

    // it-2501-expired: over every RFC 5155 limit, with expired NSEC3
    // RRSIGs (the other RRsets stay valid so only item 7 distinguishes).
    let it2501_apex = name("it-2501-expired").concat(&parent).unwrap();
    let mut it2501 = ZoneSpec::new(
        testbed_zone(&it2501_apex),
        Denial::Nsec3 {
            params: Nsec3Params::new(2501, Vec::new()),
            opt_out: false,
        },
    );
    it2501.post_sign = Some(Box::new(move |z| {
        faults::expire_rrsigs(z, Some(dns_wire::rrtype::RrType::NSEC3), now);
    }));
    b = b.zone(it2501);

    let lab = b.build();
    let plan = ProbePlan {
        valid: name("www").concat(&valid_apex).unwrap(),
        expired: name("www").concat(&expired_apex).unwrap(),
        it_zones,
        it_2501_expired: Some(it2501_apex),
    };
    Testbed {
        lab,
        plan,
        iteration_values: values,
    }
}

/// The number of subdomains the paper deploys (excluding
/// `it-2501-expired`, which §4.2 describes separately): 49.
pub fn paper_subdomain_count() -> usize {
    iteration_values().len() + 2 // + valid + expired
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_nine_subdomains_as_in_the_paper() {
        assert_eq!(paper_subdomain_count(), 49);
        let values = iteration_values();
        assert_eq!(values.len(), 47);
        assert!(values.contains(&1));
        assert!(values.contains(&25));
        assert!(values.contains(&50));
        assert!(values.contains(&51));
        assert!(values.contains(&101));
        assert!(values.contains(&151));
        assert!(values.contains(&500));
        assert!(!values.contains(&26));
        assert_eq!(*values.last().unwrap(), 500);
    }

    #[test]
    fn testbed_builds_and_serves() {
        let tb = build_testbed(1_710_000_000);
        // 1 root + 1 com + parent + valid + expired + 47 it-N + it-2501.
        assert_eq!(tb.lab.zones.len(), 52 + 1);
        // Every it zone advertises its iteration count.
        for (n, apex) in &tb.plan.it_zones {
            let z = &tb.lab.zones[apex];
            assert_eq!(z.nsec3_params().unwrap().iterations, *n, "{apex}");
            assert!(
                z.nsec3_params().unwrap().salt.is_empty(),
                "no salt per §4.2"
            );
        }
        // Dual stack.
        for (apex, (v4, v6)) in &tb.lab.servers {
            assert!(v4.is_ipv4(), "{apex}");
            assert!(v6.is_ipv6(), "{apex}");
        }
    }

    #[test]
    fn it2501_zone_has_expired_nsec3_sigs_only() {
        let now = 1_710_000_000;
        let tb = build_testbed(now);
        let apex = tb.plan.it_2501_expired.clone().unwrap();
        let z = &tb.lab.zones[&apex];
        assert_eq!(z.nsec3_params().unwrap().iterations, 2501);
        let mut saw_nsec3_sig = false;
        for rec in z.zone.iter() {
            if let RData::Rrsig {
                type_covered,
                expiration,
                ..
            } = &rec.rdata
            {
                if *type_covered == dns_wire::rrtype::RrType::NSEC3 {
                    assert!(*expiration < now, "NSEC3 sigs expired");
                    saw_nsec3_sig = true;
                } else {
                    assert!(*expiration > now, "other sigs valid");
                }
            }
        }
        assert!(saw_nsec3_sig);
    }
}
