//! `nsec3-core`: the public facade of the *Zeros Are Heroes* reproduction.
//!
//! This crate ties the substrates together into the paper's experiments:
//!
//! * [`testbed`] — the 49-subdomain `rfc9276-in-the-wild.com` testbed
//!   (plus `it-2501-expired`) on the simulated network.
//! * [`fleet`] — instantiating calibrated resolver populations as live
//!   resolver nodes with RFC 9276 policies.
//! * [`experiments`] — end-to-end drivers: the §4.1 domain census, the
//!   §4.2 resolver study, and the CVE-2023-50868 cost sweep.
//!
//! ```no_run
//! use nsec3_core::testbed::build_testbed;
//! use nsec3_core::experiments::run_resolver_study;
//! use popgen::{generate_fleet, Scale};
//!
//! let mut tb = build_testbed(1_710_000_000);
//! let fleet = generate_fleet(Scale(1.0 / 10_000.0), 42);
//! let study = run_resolver_study(&mut tb, &fleet);
//! let stats = analysis::ResolverStats::compute(&study.all());
//! println!("item 6: {:.1} % (paper: 59.9 %)", stats.item6_pct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fleet;
pub mod testbed;

pub use experiments::{
    cve_cost_sweep, records_from_specs, run_domain_census, run_resolver_study, run_tld_census,
    run_unreachability, CvePoint, ResolverStudy, TldObservation, Unreachability,
};
pub use fleet::{deploy_fleet, policy_for, DeployedResolver};
pub use testbed::{build_testbed, iteration_values, Testbed, TEST_DOMAIN};
