//! `nsec3-core`: the public facade of the *Zeros Are Heroes* reproduction.
//!
//! This crate ties the substrates together into the paper's experiments:
//!
//! * [`testbed`] — the 49-subdomain `rfc9276-in-the-wild.com` testbed
//!   (plus `it-2501-expired`) on the simulated network.
//! * [`fleet`] — instantiating calibrated resolver populations as live
//!   resolver nodes with RFC 9276 policies.
//! * [`experiments`] — end-to-end drivers: the §4.1 domain census, the
//!   §4.2 resolver study, and the CVE-2023-50868 cost sweep.
//! * [`adversarial`] — crafted denial-of-existence workloads against
//!   budgeted resolvers (per-query work budgets, SERVFAIL + EDE).
//! * [`serving`] — the production serving driver: Zipf client traffic
//!   through a caching resolver fleet with the RFC 8198 negative-cache
//!   fast path.
//! * [`hierarchy`] — the chain-of-trust study: iterative recursion over
//!   a signed root→TLD→leaf delegation graph with per-delegation fault
//!   scenarios (mis-anchored, broken DS, insecure, lame).
//!
//! Every driver also has a `_cfg` variant taking an explicit
//! [`DriverConfig`] (thread count, lab seed, fault profile); the plain
//! drivers read `HEROES_THREADS`/`HEROES_FAULTS` from the environment.
//! Output is byte-identical for every thread count.
//!
//! ```no_run
//! use nsec3_core::experiments::run_resolver_study;
//! use popgen::{generate_fleet, Scale};
//!
//! let fleet = generate_fleet(Scale(1.0 / 10_000.0), 42);
//! let study = run_resolver_study(1_710_000_000, &fleet);
//! let stats = analysis::ResolverStats::compute(&study.all());
//! println!("item 6: {:.1} % (paper: 59.9 %)", stats.item6_pct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod experiments;
pub mod fleet;
pub mod hierarchy;
pub mod serving;
pub mod testbed;

pub use adversarial::{
    run_adversarial, run_adversarial_cfg, AdversarialReport, AdversarialScenario, DefenseProfile,
    FamilyTally,
};
pub use experiments::{
    cve_cost_sweep, records_from_specs, run_domain_census, run_domain_census_cfg,
    run_domain_census_stream, run_resolver_study, run_resolver_study_cfg, run_tld_census,
    run_tld_census_cfg, run_unreachability, run_unreachability_cfg, CvePoint, DriverConfig,
    ResolverStudy, StreamCensusReport, TldObservation, Unreachability, DEFAULT_LAB_SEED,
    DEFAULT_WINDOW,
};
pub use fleet::{deploy_fleet, policy_for, DeployedResolver};
pub use hierarchy::{
    build_hierarchy, mis_anchor, run_chain_study, run_chain_study_cfg, ChainReport, ChainStudy,
    ChainTally, Hierarchy,
};
pub use serving::{run_serving, run_serving_cfg, ServingReport, ServingScenario, ServingTally};
pub use testbed::{build_testbed, build_testbed_seeded, iteration_values, Testbed, TEST_DOMAIN};
