//! Adversarial denial-of-existence workloads against budgeted resolvers.
//!
//! The paper's §7 mitigation discussion (and RFC 9276's rationale) is
//! really about resource exhaustion: an attacker who controls NSEC3
//! parameters — or a sheaf of colliding-keytag DNSKEYs — controls how
//! much CPU a validating resolver burns per NXDOMAIN. This driver pushes
//! resolvers through the [`popgen::adversarial`] attack families on the
//! event core and measures the cost per query, with and without the
//! work-budget defense ([`dns_resolver::WorkBudget`]).
//!
//! # Accounting
//!
//! Queries aborted by the budget (SERVFAIL + EDE, `budget_exceeded`)
//! are **graceful degradation**, not measurements: they land in
//! [`FamilyTally::budget_exceeded`] with their spend tallied in the
//! `exceeded_*` counters, and never skew the completed-query cost
//! averages the paper-number pipeline reads — mirroring how lost probes
//! stay out of census denominators. The invariant
//! `queries == completed + budget_exceeded + lost` always holds.

use std::collections::BTreeMap;

use dns_resolver::lab::{LabBuilder, ZoneSpec};
use dns_resolver::resolver::{Resolver, ResolverConfig};
use dns_resolver::{Rfc9276Policy, WorkBudget};
use dns_scanner::retry::{ProbeStats, ScanSession};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Rcode, RrType};
use dns_zone::nsec3hash::Nsec3Params;
use dns_zone::signer::{decoy_dnskeys, Denial};
use dns_zone::Zone;
use netsim::event::{drive, FlowStep};
use popgen::adversarial::{attack_qname, AdversarialZoneSpec, AttackFamily};

use crate::experiments::{DriverConfig, ScanProfile};

/// How the resolver under test defends itself.
#[derive(Clone, Debug, PartialEq)]
pub struct DefenseProfile {
    /// RFC 9276 iteration policy (clamps *declared* cost).
    pub policy: Rfc9276Policy,
    /// Per-query work budget (bounds *spent* cost).
    pub budget: WorkBudget,
}

impl DefenseProfile {
    /// No defenses: unlimited iterations, unlimited budget — the
    /// maximally vulnerable validator the cost sweep measures.
    pub fn undefended() -> Self {
        DefenseProfile {
            policy: Rfc9276Policy::unlimited(),
            budget: WorkBudget::unlimited(),
        }
    }

    /// Layered defenses: SERVFAIL above the RFC 5155 §10.3 cap of 150
    /// iterations (catching declared-cost attacks) plus the hardened
    /// work budget (catching attacks that keep declared parameters
    /// modest — deep encloser chains, keytag collisions).
    pub fn defended() -> Self {
        DefenseProfile {
            policy: Rfc9276Policy::servfail_above(150),
            budget: WorkBudget::hardened(),
        }
    }
}

/// One adversarial run: which zones, how many queries each, under which
/// defense.
#[derive(Clone, Debug)]
pub struct AdversarialScenario {
    /// The attack zones (see [`popgen::generate_attack_zones`]).
    pub zones: Vec<AdversarialZoneSpec>,
    /// Unique cache-busting NXDOMAIN queries per zone.
    pub queries_per_zone: u64,
    /// The resolver's defense configuration.
    pub defense: DefenseProfile,
}

/// Per-family accounting. All counters are plain sums, so shard merges
/// are order-independent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FamilyTally {
    /// Queries issued.
    pub queries: u64,
    /// Queries that ran to a verdict (NXDOMAIN, or a *policy* SERVFAIL
    /// such as the iteration clamp's — a verdict on the zone, not an
    /// abort).
    pub completed: u64,
    /// Queries aborted by the work budget (SERVFAIL + EDE): degraded
    /// service, tallied separately so they never skew cost averages.
    pub budget_exceeded: u64,
    /// Queries lost to network faults (SERVFAIL that spent timeouts).
    pub lost: u64,
    /// SHA-1 compressions spent on *completed* queries.
    pub compressions: u64,
    /// Signature verifications spent on *completed* queries.
    pub signatures: u64,
    /// SHA-1 compressions spent on budget-aborted queries.
    pub exceeded_compressions: u64,
    /// Signature verifications spent on budget-aborted queries.
    pub exceeded_signatures: u64,
}

/// Weight of one signature verification in work units, relative to one
/// SHA-1 compression — the same coarse exchange rate the hardened
/// budget's two axes imply (1,000 compressions : 16 signatures ≈ 60,
/// rounded down to a round number that undercounts signatures).
pub const SIGNATURE_WORK_UNITS: u64 = 20;

impl FamilyTally {
    fn merge(&mut self, other: &FamilyTally) {
        self.queries += other.queries;
        self.completed += other.completed;
        self.budget_exceeded += other.budget_exceeded;
        self.lost += other.lost;
        self.compressions += other.compressions;
        self.signatures += other.signatures;
        self.exceeded_compressions += other.exceeded_compressions;
        self.exceeded_signatures += other.exceeded_signatures;
    }

    /// SHA-1 compressions per completed query.
    pub fn compressions_per_query(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.compressions as f64 / self.completed as f64
        }
    }

    /// Signature verifications per completed query.
    pub fn signatures_per_query(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.signatures as f64 / self.completed as f64
        }
    }

    /// Work units (compressions + [`SIGNATURE_WORK_UNITS`] × signature
    /// verifications) per completed query.
    pub fn work_units_per_query(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            (self.compressions + SIGNATURE_WORK_UNITS * self.signatures) as f64
                / self.completed as f64
        }
    }

    /// SHA-1 compressions per issued query, budget-aborted spend
    /// included.
    pub fn total_compressions_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.compressions + self.exceeded_compressions) as f64 / self.queries as f64
        }
    }

    /// Total CPU actually spent per issued query, budget-aborted spend
    /// included — the defender's bill, which is what the defense bounds.
    pub fn total_work_units_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.compressions
                + self.exceeded_compressions
                + SIGNATURE_WORK_UNITS * (self.signatures + self.exceeded_signatures))
                as f64
                / self.queries as f64
        }
    }
}

/// Result of an adversarial run: per-family tallies plus loss-accounted
/// probe traffic.
#[derive(Clone, Debug)]
pub struct AdversarialReport {
    /// Tallies keyed by [`AttackFamily::label`].
    pub per_family: BTreeMap<String, FamilyTally>,
    /// Merged probe accounting across shards.
    pub probe_stats: ProbeStats,
}

impl AdversarialReport {
    /// The tally for `family` (zero tally if the scenario had no such
    /// zones).
    pub fn family(&self, family: AttackFamily) -> FamilyTally {
        self.per_family
            .get(family.label())
            .copied()
            .unwrap_or_default()
    }
}

/// Lab zone contents for one attack spec.
fn zone_spec_for_attack(spec: &AdversarialZoneSpec) -> Option<ZoneSpec> {
    let apex = Name::parse(&spec.name).ok()?;
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(
        apex.clone(),
        300,
        RData::A("192.0.2.66".parse().unwrap()),
    ))
    .ok()?;
    let mut zs = ZoneSpec::new(
        zone,
        Denial::Nsec3 {
            params: Nsec3Params::new(spec.iterations, vec![0x5a; spec.salt_len]),
            opt_out: false,
        },
    );
    if spec.decoy_keys > 0 {
        zs.extra_dnskeys = decoy_dnskeys(&apex, spec.decoy_keys);
    }
    Some(zs)
}

/// Run `scenario` with environment-driven parallelism
/// (`HEROES_THREADS`/`HEROES_FAULTS`; see [`DriverConfig::from_env`]).
pub fn run_adversarial(scenario: &AdversarialScenario, now: u32) -> AdversarialReport {
    run_adversarial_cfg(scenario, &DriverConfig::from_env(now))
}

/// [`run_adversarial`] under an explicit [`DriverConfig`]. Zones shard
/// like every other driver; each zone gets its **own** lab (root +
/// parent TLD + the attack zone), so no observation depends on which
/// zones share a shard and every thread count produces identical
/// tallies. Within a zone, queries run as single-step flows on the
/// event core in issue order.
pub fn run_adversarial_cfg(
    scenario: &AdversarialScenario,
    cfg: &DriverConfig,
) -> AdversarialReport {
    let window = cfg.effective_window();
    let partials = sim_par::run_sharded(
        &scenario.zones,
        cfg.threads,
        cfg.lab_seed,
        |shard, slice| {
            vec![adversarial_shard(
                slice,
                scenario,
                cfg.now,
                shard.seed,
                &cfg.profile,
                window,
            )]
        },
    );
    let mut per_family: BTreeMap<String, FamilyTally> = BTreeMap::new();
    let mut probe_stats = ProbeStats::default();
    for (shard_tallies, shard_stats) in partials {
        for (label, tally) in shard_tallies {
            per_family.entry(label).or_default().merge(&tally);
        }
        probe_stats.merge(&shard_stats);
    }
    AdversarialReport {
        per_family,
        probe_stats,
    }
}

/// One shard: every zone in `slice`, each in a private lab.
fn adversarial_shard(
    slice: &[AdversarialZoneSpec],
    scenario: &AdversarialScenario,
    now: u32,
    lab_seed: u64,
    profile: &ScanProfile,
    window: usize,
) -> (BTreeMap<String, FamilyTally>, ProbeStats) {
    let session = ScanSession::new(profile.breaker);
    let mut tallies: BTreeMap<String, FamilyTally> = BTreeMap::new();
    for spec in slice {
        let Some(zs) = zone_spec_for_attack(spec) else {
            continue;
        };
        let Some(parent) = Name::parse(&spec.name).ok().and_then(|n| n.parent()) else {
            continue;
        };
        let mut builder = LabBuilder::new(now).seed(lab_seed);
        if !parent.is_root() {
            builder = builder.simple_zone(&parent, Denial::nsec3_rfc9276());
        }
        let mut lab = builder.zone(zs).build();
        lab.net.set_schedule(profile.schedule.clone());
        let raddr = lab.alloc.v4();
        let mut rcfg =
            ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        rcfg.now = lab.now;
        rcfg.policy = scenario.defense.policy.clone();
        rcfg.budget = scenario.defense.budget;
        rcfg.retry = profile.retry;
        let resolver = Resolver::new(rcfg);
        let tally = tallies.entry(spec.family.label().to_string()).or_default();
        // One single-step flow per query: the whole resolution runs
        // inside its first step (see the unreachability driver for the
        // window-invariance argument).
        let mut next = 0u64;
        let net = &lab.net;
        drive(
            window,
            || {
                if next >= scenario.queries_per_zone {
                    return None;
                }
                let q = next;
                next += 1;
                Name::parse(&attack_qname(&spec.name, spec.label_depth, q)).ok()
            },
            |qname: &mut Name, due| {
                let vnow = net.now_micros();
                if due > vnow {
                    net.advance(due - vnow);
                }
                let out = resolver.resolve(net, qname, RrType::A);
                tally.queries += 1;
                if out.budget_exceeded {
                    // Degraded, not lost: the resolver answered (with
                    // SERVFAIL + EDE), it just refused to keep paying.
                    session.note_answered(out.cost.retries);
                    tally.budget_exceeded += 1;
                    tally.exceeded_compressions += out.cost.sha1_compressions;
                    tally.exceeded_signatures += out.cost.signatures_verified;
                } else if out.rcode == Rcode::ServFail && out.cost.timeouts > 0 {
                    // Probe loss, same rule as every other driver.
                    session.note_timed_out(out.cost.retries);
                    tally.lost += 1;
                } else {
                    session.note_answered(out.cost.retries);
                    tally.completed += 1;
                    tally.compressions += out.cost.sha1_compressions;
                    tally.signatures += out.cost.signatures_verified;
                }
                FlowStep::Done
            },
        );
    }
    let stats = session.stats();
    (tallies, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_LAB_SEED;
    use dns_wire::edns::EdeCode;
    use dns_wire::message::Message;
    use dns_wire::view::MessageView;
    use popgen::generate_attack_zones;
    use std::rc::Rc;

    const NOW: u32 = 1_710_000_000;

    fn scenario(defense: DefenseProfile) -> AdversarialScenario {
        AdversarialScenario {
            zones: generate_attack_zones("example.", 1),
            queries_per_zone: 3,
            defense,
        }
    }

    #[test]
    fn undefended_attacks_dwarf_baseline() {
        let report = run_adversarial(&scenario(DefenseProfile::undefended()), NOW);
        let base = report.family(AttackFamily::Baseline);
        assert_eq!(base.completed, base.queries, "baseline all complete");
        assert_eq!(base.budget_exceeded, 0);
        let maxit = report.family(AttackFamily::MaxIterations);
        assert_eq!(maxit.completed, maxit.queries, "undefended never aborts");
        assert!(
            maxit.compressions_per_query() >= 10.0 * base.compressions_per_query().max(1.0),
            "max-iterations {} vs baseline {}",
            maxit.compressions_per_query(),
            base.compressions_per_query()
        );
        let deep = report.family(AttackFamily::DeepChain);
        assert!(
            deep.compressions_per_query() >= 10.0 * base.compressions_per_query().max(1.0),
            "deep-chain {} vs baseline {}",
            deep.compressions_per_query(),
            base.compressions_per_query()
        );
        let keytag = report.family(AttackFamily::KeytagCollision);
        assert!(
            keytag.signatures_per_query() >= 3.0 * base.signatures_per_query().max(1.0),
            "keytag {} vs baseline {}",
            keytag.signatures_per_query(),
            base.signatures_per_query()
        );
    }

    #[test]
    fn defense_bounds_every_family_and_accounts_aborts() {
        let report = run_adversarial(&scenario(DefenseProfile::defended()), NOW);
        for (label, tally) in &report.per_family {
            assert_eq!(
                tally.queries,
                tally.completed + tally.budget_exceeded + tally.lost,
                "{label}: accounting invariant"
            );
            assert_eq!(tally.lost, 0, "{label}: clean network loses nothing");
        }
        // Baseline sails under both defenses.
        let base = report.family(AttackFamily::Baseline);
        assert_eq!(base.budget_exceeded, 0, "compliant zone never trips budget");
        assert_eq!(base.completed, base.queries);
        // MaxIterations dies on the declared-cost clamp — a completed
        // policy verdict, cheap because no hashing happens.
        let maxit = report.family(AttackFamily::MaxIterations);
        assert_eq!(maxit.budget_exceeded, 0, "clamp fires before any hashing");
        assert_eq!(maxit.completed, maxit.queries);
        // DeepChain evades the clamp (150 ≤ 150) but trips the
        // compression budget; KeytagCollision trips the signature budget.
        let deep = report.family(AttackFamily::DeepChain);
        assert_eq!(
            deep.budget_exceeded, deep.queries,
            "budget aborts deep chains"
        );
        let keytag = report.family(AttackFamily::KeytagCollision);
        assert_eq!(
            keytag.budget_exceeded, keytag.queries,
            "budget aborts keytrap"
        );
        // The defender's total bill stays bounded: budget + one-chain
        // overshoot per query, in work units.
        let bound = (1_000 + 151 + SIGNATURE_WORK_UNITS * (16 + 13)) as f64;
        for family in [AttackFamily::DeepChain, AttackFamily::KeytagCollision] {
            let t = report.family(family);
            assert!(
                t.total_work_units_per_query() <= bound,
                "{}: {} > {bound}",
                family.label(),
                t.total_work_units_per_query()
            );
        }
    }

    #[test]
    fn budget_servfail_carries_ede_on_the_wire() {
        // End to end: a stub client queries a defended resolver *over the
        // simulated network* about a deep-chain attack zone, and the
        // SERVFAIL arrives with the budget EDE in the OPT record —
        // identically through the owned decoder and the zero-copy view.
        let zones = generate_attack_zones("example.", 1);
        let spec = zones
            .iter()
            .find(|z| z.family == AttackFamily::DeepChain)
            .unwrap();
        let mut lab = LabBuilder::new(NOW)
            .seed(DEFAULT_LAB_SEED)
            .simple_zone(&Name::parse("example.").unwrap(), Denial::nsec3_rfc9276())
            .zone(zone_spec_for_attack(spec).unwrap())
            .build();
        let raddr = lab.alloc.v4();
        let mut rcfg =
            ResolverConfig::validating(raddr, lab.root_hints.clone(), lab.anchor.clone());
        rcfg.now = lab.now;
        let defense = DefenseProfile::defended();
        rcfg.policy = defense.policy;
        rcfg.budget = defense.budget;
        let resolver = Rc::new(Resolver::new(rcfg));
        lab.net.register(raddr, resolver);
        let client = lab.alloc.v4();
        let qname = Name::parse(&attack_qname(&spec.name, spec.label_depth, 0)).unwrap();
        let query = Message::query(0x4242, qname, RrType::A);
        let outcome = lab.net.send_query(client, raddr, &query.encode());
        let netsim::Outcome::Response { payload, .. } = outcome else {
            panic!("stub query answered: {outcome:?}");
        };
        let msg = Message::decode(&payload).expect("owned decode");
        assert_eq!(msg.rcode, Rcode::ServFail);
        let owned_ede = msg
            .edns
            .as_ref()
            .and_then(|e| e.ede())
            .map(|(c, t)| (*c, t.to_string()));
        let view = MessageView::parse(&payload).expect("view parse");
        let view_ede = view
            .edns()
            .expect("view edns")
            .as_ref()
            .and_then(|e| e.ede())
            .map(|(c, t)| (*c, t.to_string()));
        assert_eq!(owned_ede, view_ede, "owned and view EDE agree");
        let (code, text) = owned_ede.expect("budget SERVFAIL carries EDE");
        assert_eq!(code, EdeCode::OTHER);
        assert_eq!(text, "work budget exceeded");
    }

    #[test]
    fn adversarial_driver_is_thread_invariant() {
        let sc = scenario(DefenseProfile::defended());
        let sequential = run_adversarial_cfg(&sc, &DriverConfig::clean(NOW, 1, DEFAULT_LAB_SEED));
        for threads in [2usize, 4] {
            let sharded =
                run_adversarial_cfg(&sc, &DriverConfig::clean(NOW, threads, DEFAULT_LAB_SEED));
            assert_eq!(
                format!("{:?}", sharded.per_family),
                format!("{:?}", sequential.per_family),
                "threads = {threads}"
            );
            assert_eq!(sharded.probe_stats, sequential.probe_stats);
        }
    }
}
