//! Property-based tests for the classification logic: `derive_limits`
//! must behave lawfully on *any* response pattern, not just the tidy ones.

use sim_check::{gens, props, Gen};

use dns_resolver::broken::ObservedResponse;
use dns_scanner::prober::{derive_limits, ResolverClassification};
use dns_wire::rrtype::Rcode;

fn classification(responses: Vec<(u16, Rcode, bool)>) -> ResolverClassification {
    let mut c = ResolverClassification::empty("10.0.0.1".parse().unwrap());
    c.is_validator = true;
    c.responses = responses
        .into_iter()
        .map(|(n, rcode, ad)| {
            (
                n,
                ObservedResponse {
                    rcode,
                    ad,
                    ra: true,
                    ede: None,
                    ede_has_text: false,
                },
            )
        })
        .collect();
    derive_limits(&mut c);
    c
}

fn rcode_gen() -> impl Gen<(Rcode, bool)> {
    gens::one_of(vec![
        gens::boxed(gens::just((Rcode::NxDomain, true))),
        gens::boxed(gens::just((Rcode::NxDomain, false))),
        gens::boxed(gens::just((Rcode::ServFail, false))),
        gens::boxed(gens::just((Rcode::NoError, false))),
    ])
}

props! {
    /// derive_limits never panics and produces internally consistent
    /// fields for arbitrary response patterns.
    fn derive_limits_total_and_consistent(
        pattern in gens::vec_of((gens::u16s(1..600), rcode_gen()), 0..30),
    ) {
        let mut responses: Vec<(u16, Rcode, bool)> = pattern
            .into_iter()
            .map(|(n, (rcode, ad))| (n, rcode, ad))
            .collect();
        responses.sort_by_key(|(n, _, _)| *n);
        responses.dedup_by_key(|(n, _, _)| *n);
        let c = classification(responses.clone());
        // servfail_start, when set, is an N that actually answered SERVFAIL.
        if let Some(s) = c.servfail_start {
            assert!(responses.iter().any(|(n, r, _)| *n == s && *r == Rcode::ServFail));
        }
        // insecure_limit, when set with AD seen, is an N that had AD, or 0.
        if let Some(l) = c.insecure_limit {
            assert!(
                l == 0 || responses.iter().any(|(n, r, ad)| *n == l && *ad && *r == Rcode::NxDomain)
            );
        }
        // item6/item8 imply their prerequisites.
        if c.implements_item6() {
            assert!(c.has_insecure_band);
            assert!(!c.flaky);
        }
        if c.implements_item8() {
            assert!(c.servfail_start.is_some());
            assert!(!c.flaky);
        }
        // item12 gap requires both bands.
        if c.item12_gap {
            assert!(c.servfail_start.is_some());
            assert!(c.has_insecure_band);
        }
    }

    /// Clean monotone threshold patterns are never marked flaky, and the
    /// derived limits equal the construction parameters.
    fn monotone_patterns_classify_exactly(
        ad_until_idx in gens::usizes(0..5),
        servfail_from_idx in gens::usizes(0..7),
        ns in gens::set_of(gens::u16s(1..600), 6),
    ) {
        let ns: Vec<u16> = ns.into_iter().collect();
        let servfail_from_idx = servfail_from_idx.max(ad_until_idx + 1);
        let responses: Vec<(u16, Rcode, bool)> = ns
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                if i <= ad_until_idx {
                    (n, Rcode::NxDomain, true)
                } else if i < servfail_from_idx {
                    (n, Rcode::NxDomain, false)
                } else {
                    (n, Rcode::ServFail, false)
                }
            })
            .collect();
        let c = classification(responses);
        assert!(!c.flaky);
        assert_eq!(c.insecure_limit, Some(ns[ad_until_idx]));
        if servfail_from_idx < ns.len() {
            assert_eq!(c.servfail_start, Some(ns[servfail_from_idx]));
            // A plain-NXDOMAIN band between the two = the item 12 gap.
            assert_eq!(c.item12_gap, servfail_from_idx > ad_until_idx + 1);
        } else {
            assert_eq!(c.servfail_start, None);
        }
    }

    /// Losing responses never invents limits: when `probed_ns` records
    /// the intended coverage, a proper subset derives *no* thresholds at
    /// all (partial), and the complete set derives exactly what the
    /// unrecorded classification does. Probe loss can only widen the
    /// "unknown" bucket, never flip a resolver's class.
    fn subsets_never_invent_limits(
        ad_until_idx in gens::usizes(0..5),
        servfail_from_idx in gens::usizes(0..7),
        ns in gens::set_of(gens::u16s(1..600), 6),
        drop_idx in gens::usizes(0..7),
    ) {
        let ns: Vec<u16> = ns.into_iter().collect();
        let servfail_from_idx = servfail_from_idx.max(ad_until_idx + 1);
        let full: Vec<(u16, Rcode, bool)> = ns
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                if i <= ad_until_idx {
                    (n, Rcode::NxDomain, true)
                } else if i < servfail_from_idx {
                    (n, Rcode::NxDomain, false)
                } else {
                    (n, Rcode::ServFail, false)
                }
            })
            .collect();
        let classify_covered = |resps: Vec<(u16, Rcode, bool)>| {
            let mut c = ResolverClassification::empty("10.0.0.1".parse().unwrap());
            c.is_validator = true;
            c.probed_ns = ns.clone();
            c.responses = resps
                .into_iter()
                .map(|(n, rcode, ad)| {
                    (
                        n,
                        ObservedResponse {
                            rcode,
                            ad,
                            ra: true,
                            ede: None,
                            ede_has_text: false,
                        },
                    )
                })
                .collect();
            derive_limits(&mut c);
            c
        };
        if drop_idx < full.len() {
            let mut subset = full.clone();
            subset.remove(drop_idx);
            let partial = classify_covered(subset);
            assert!(partial.partial, "missing response must mark partial");
            assert_eq!(partial.insecure_limit, None);
            assert_eq!(partial.servfail_start, None);
            assert!(!partial.item12_gap);
            assert!(!partial.implements_item6());
            assert!(!partial.implements_item8());
            assert!(!partial.flaky, "a monotone subset is not flakiness");
        } else {
            let complete = classify_covered(full.clone());
            let unrecorded = classification(full);
            assert!(!complete.partial);
            assert_eq!(complete.insecure_limit, unrecorded.insecure_limit);
            assert_eq!(complete.servfail_start, unrecorded.servfail_start);
            assert_eq!(complete.item12_gap, unrecorded.item12_gap);
        }
    }

    /// Shuffled (non-monotone) mixes of AD and SERVFAIL are flagged flaky.
    fn sandwich_patterns_are_flaky(
        ns in gens::set_of(gens::u16s(1..600), 3),
    ) {
        let ns: Vec<u16> = ns.into_iter().collect();
        // SERVFAIL then AD again: impossible for a clean threshold resolver.
        let responses = vec![
            (ns[0], Rcode::NxDomain, true),
            (ns[1], Rcode::ServFail, false),
            (ns[2], Rcode::NxDomain, true),
        ];
        let c = classification(responses);
        assert!(c.flaky);
        assert!(!c.implements_item6());
        assert!(!c.implements_item8());
    }
}
