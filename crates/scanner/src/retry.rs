//! Adaptive retry and loss accounting for the scan pipeline.
//!
//! Real measurement campaigns (§5.2 of the paper) face unresponsive
//! resolvers, rate-limited authoritatives, and transient outages. This
//! module gives every scanner the same three tools:
//!
//! * a deterministic [`RetryPolicy`] (re-exported from `netsim`) driving
//!   exponential backoff per query,
//! * a per-target **circuit breaker** ([`ScanSession`]) so a dead
//!   resolver stops consuming probe budget after a few failures, and
//! * [`ProbeStats`] — explicit loss accounting carried through every
//!   experiment driver, so coverage is reported instead of denominators
//!   silently shrinking.
//!
//! The accounting identity every driver upholds (pinned by
//! `tests/determinism.rs`):
//!
//! ```text
//! sent = answered + timed_out + circuit_skipped
//! ```
//!
//! where `sent` counts **logical queries** (a probe the scan wanted an
//! answer to), `retried` counts extra wire attempts beyond each first
//! try, and `gave_up` counts breaker-open transitions. All fields are
//! plain sums, so shard-wise merging is order-independent and the totals
//! are byte-identical at every thread count.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::IpAddr;

use netsim::{ExchangeMachine, ExchangeStep, Network, Outcome, RetryPolicy};

/// Loss-accounted probe counters for one scan (or one shard of one).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Logical queries the scan wanted answered.
    pub sent: u64,
    /// Logical queries that got a usable response.
    pub answered: u64,
    /// Extra wire attempts beyond the first, summed over queries.
    pub retried: u64,
    /// Logical queries that exhausted their retry budget in silence.
    pub timed_out: u64,
    /// Logical queries never put on the wire because the target's
    /// circuit breaker was open (or the scan had already given up on
    /// the target).
    pub circuit_skipped: u64,
    /// Breaker-open transitions: how many times a target was declared
    /// dead and further probes short-circuited.
    pub gave_up: u64,
}

impl ProbeStats {
    /// Fold `other` into `self` (field-wise sums — order-independent,
    /// which is what makes shard-wise merging deterministic).
    pub fn merge(&mut self, other: &ProbeStats) {
        self.sent += other.sent;
        self.answered += other.answered;
        self.retried += other.retried;
        self.timed_out += other.timed_out;
        self.circuit_skipped += other.circuit_skipped;
        self.gave_up += other.gave_up;
    }

    /// The accounting identity: every logical query is answered, timed
    /// out, or skipped — nothing vanishes.
    pub fn is_consistent(&self) -> bool {
        self.sent == self.answered + self.timed_out + self.circuit_skipped
    }

    /// Fraction of logical queries that got an answer (1.0 for an empty
    /// scan: nothing was lost).
    pub fn answered_share(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.answered as f64 / self.sent as f64
        }
    }
}

/// Circuit-breaker tuning for a [`ScanSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker. 0 disables the
    /// breaker entirely (every probe goes on the wire).
    pub failure_threshold: u32,
    /// Virtual µs the breaker stays open before one half-open trial
    /// probe is allowed through.
    pub cooldown_micros: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_micros: 30_000_000, // 30 s of virtual time
        }
    }
}

impl BreakerConfig {
    /// No breaker: every probe is sent regardless of target health.
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_threshold: 0,
            cooldown_micros: 0,
        }
    }
}

/// Per-target health as seen by the breaker.
#[derive(Clone, Copy, Debug, Default)]
struct TargetHealth {
    consecutive_failures: u32,
    /// When `Some`, the breaker is open until this virtual timestamp;
    /// afterwards the next probe runs as a half-open trial.
    open_until_micros: Option<u64>,
}

/// One scan's retry/breaker state and loss accounting.
///
/// The session is deliberately `&self`-only (interior mutability), so a
/// prober or census can thread one session through many probes without
/// borrow gymnastics. Health is keyed by target address; the map is only
/// ever point-queried, never iterated, so its ordering cannot leak into
/// results.
#[derive(Debug, Default)]
pub struct ScanSession {
    breaker: BreakerConfig,
    health: RefCell<HashMap<IpAddr, TargetHealth>>,
    stats: RefCell<ProbeStats>,
}

impl ScanSession {
    /// A session with the given breaker tuning.
    pub fn new(breaker: BreakerConfig) -> Self {
        ScanSession {
            breaker,
            health: RefCell::new(HashMap::new()),
            stats: RefCell::new(ProbeStats::default()),
        }
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> ProbeStats {
        *self.stats.borrow()
    }

    /// Is the breaker currently open for `target` (probe would be
    /// skipped)?
    pub fn is_open(&self, net: &Network, target: IpAddr) -> bool {
        self.breaker.failure_threshold > 0
            && self
                .health
                .borrow()
                .get(&target)
                .and_then(|h| h.open_until_micros)
                .is_some_and(|until| net.now_micros() < until)
    }

    /// One logical query through the session: consult the breaker, send
    /// with `policy`, account the outcome. An open breaker returns
    /// [`Outcome::Timeout`] without touching the wire.
    ///
    /// This is the blocking driver of [`ScanSession::begin_exchange`]:
    /// it advances the virtual clock across every backoff itself, where
    /// an event-driven flow would park on the timer wheel instead. Both
    /// replay the same breaker and retry transitions.
    pub fn exchange(
        &self,
        net: &Network,
        src: IpAddr,
        dst: IpAddr,
        payload: &[u8],
        policy: &RetryPolicy,
    ) -> Outcome {
        let mut ex = self.begin_exchange(net, src, dst, policy);
        while let SessionStep::Park { resume_at_micros } = ex.step(net, payload) {
            let now = net.now_micros();
            if resume_at_micros > now {
                net.advance(resume_at_micros - now);
            }
        }
        ex.finish(self, net)
    }

    /// Open one logical query as a parkable state machine: the breaker
    /// verdict is taken here (an open breaker accounts the skip
    /// immediately and yields an already-finished exchange), then each
    /// [`SessionExchange::step`] sends one wire attempt.
    pub fn begin_exchange(
        &self,
        net: &Network,
        src: IpAddr,
        dst: IpAddr,
        policy: &RetryPolicy,
    ) -> SessionExchange {
        if self.is_open(net, dst) {
            self.note_skipped();
            SessionExchange { machine: None, dst }
        } else {
            SessionExchange {
                machine: Some(ExchangeMachine::new(src, dst, *policy)),
                dst,
            }
        }
    }

    /// Account one logical query that got a usable answer without going
    /// through [`ScanSession::exchange`] (e.g. a phase resolved through
    /// an in-process recursive resolver), with `retries` extra wire
    /// attempts observed underneath it.
    pub fn note_answered(&self, retries: u64) {
        let mut stats = self.stats.borrow_mut();
        stats.sent += 1;
        stats.answered += 1;
        stats.retried += retries;
    }

    /// Account one logical query lost to timeouts.
    pub fn note_timed_out(&self, retries: u64) {
        let mut stats = self.stats.borrow_mut();
        stats.sent += 1;
        stats.timed_out += 1;
        stats.retried += retries;
    }

    /// Account one logical query never attempted (breaker open, or the
    /// scan already gave up on the target).
    pub fn note_skipped(&self) {
        let mut stats = self.stats.borrow_mut();
        stats.sent += 1;
        stats.circuit_skipped += 1;
    }

    fn clear_health(&self, dst: IpAddr) {
        self.health.borrow_mut().remove(&dst);
    }

    fn record_failure(&self, net: &Network, dst: IpAddr) {
        if self.breaker.failure_threshold == 0 {
            return;
        }
        let mut health = self.health.borrow_mut();
        let entry = health.entry(dst).or_default();
        // A failed half-open trial reopens immediately.
        let reopened_trial = entry
            .open_until_micros
            .is_some_and(|until| net.now_micros() >= until);
        entry.consecutive_failures += 1;
        if reopened_trial || entry.consecutive_failures >= self.breaker.failure_threshold {
            entry.open_until_micros = Some(net.now_micros() + self.breaker.cooldown_micros);
            entry.consecutive_failures = 0;
            self.stats.borrow_mut().gave_up += 1;
        }
    }
}

/// What one [`SessionExchange::step`] decided: park until the backoff is
/// due, or collect the outcome with [`SessionExchange::finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionStep {
    /// The attempt failed; send the next one once the virtual clock
    /// reaches `resume_at_micros` (an event flow parks on the wheel, the
    /// blocking driver advances the clock).
    Park {
        /// Virtual due time of the next attempt, in µs.
        resume_at_micros: u64,
    },
    /// The exchange is over.
    Finished,
}

/// One in-flight logical query opened by [`ScanSession::begin_exchange`]:
/// a [`netsim::ExchangeMachine`] plus the session's breaker bookkeeping.
/// The caller owns the encoded payload across parks and hands it to each
/// [`SessionExchange::step`].
#[derive(Debug)]
pub struct SessionExchange {
    /// `None` when the breaker was open at begin time: the skip is
    /// already accounted and the exchange is born finished.
    machine: Option<ExchangeMachine>,
    dst: IpAddr,
}

impl SessionExchange {
    /// Was this query skipped by an open breaker (no wire traffic)?
    pub fn skipped(&self) -> bool {
        self.machine.is_none()
    }

    /// Send one wire attempt (no-op returning
    /// [`SessionStep::Finished`] for a breaker-skipped exchange).
    pub fn step(&mut self, net: &Network, payload: &[u8]) -> SessionStep {
        match &mut self.machine {
            None => SessionStep::Finished,
            Some(machine) => match machine.step(net, payload) {
                ExchangeStep::Finished => SessionStep::Finished,
                ExchangeStep::Backoff { resume_at_micros } => {
                    SessionStep::Park { resume_at_micros }
                }
            },
        }
    }

    /// Account the finished exchange in `session` (answered/timed-out
    /// counters, breaker health) and return its [`Outcome`] — exactly
    /// the bookkeeping the blocking [`ScanSession::exchange`] performs.
    pub fn finish(self, session: &ScanSession, net: &Network) -> Outcome {
        let machine = match self.machine {
            None => return Outcome::Timeout,
            Some(m) => m,
        };
        let report = machine.into_report();
        let retries = u64::from(report.attempts.saturating_sub(1));
        match report.outcome {
            Outcome::Response { .. } => {
                session.note_answered(retries);
                session.clear_health(self.dst);
            }
            Outcome::Timeout | Outcome::NoRoute => {
                session.note_timed_out(retries);
                session.record_failure(net, self.dst);
            }
        }
        report.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    use netsim::{Episode, EpisodeKind, FaultSchedule, Node, Scope};

    struct Echo;
    impl Node for Echo {
        fn handle(
            &self,
            _net: &Network,
            _src: IpAddr,
            payload: &[u8],
            reply: &mut Vec<u8>,
        ) -> Option<()> {
            reply.extend_from_slice(payload);
            Some(())
        }
    }

    struct Silent;
    impl Node for Silent {
        fn handle(
            &self,
            _net: &Network,
            _src: IpAddr,
            _payload: &[u8],
            _reply: &mut Vec<u8>,
        ) -> Option<()> {
            None
        }
    }

    fn addr(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn stats_identity_holds_for_mixed_outcomes() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.register(addr(3), Rc::new(Silent));
        let session = ScanSession::new(BreakerConfig::default());
        let policy = RetryPolicy::fixed(2);
        for _ in 0..5 {
            let _ = session.exchange(&net, addr(1), addr(2), b"q", &policy);
        }
        for _ in 0..6 {
            let _ = session.exchange(&net, addr(1), addr(3), b"q", &policy);
        }
        let stats = session.stats();
        assert!(stats.is_consistent(), "{stats:?}");
        assert_eq!(stats.sent, 11);
        assert_eq!(stats.answered, 5);
        assert!(stats.circuit_skipped > 0, "breaker kicked in: {stats:?}");
        assert!(stats.retried > 0, "silent target was retried");
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_after_cooldown() {
        let net = Network::new(1);
        net.register(addr(3), Rc::new(Silent));
        let session = ScanSession::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_micros: 1_000_000,
        });
        let policy = RetryPolicy::fixed(1);
        let _ = session.exchange(&net, addr(1), addr(3), b"q", &policy);
        assert!(!session.is_open(&net, addr(3)), "one failure, still closed");
        let _ = session.exchange(&net, addr(1), addr(3), b"q", &policy);
        assert!(session.is_open(&net, addr(3)), "threshold reached");
        assert_eq!(session.stats().gave_up, 1);
        // Skipped while open.
        let _ = session.exchange(&net, addr(1), addr(3), b"q", &policy);
        assert_eq!(session.stats().circuit_skipped, 1);
        // After the cooldown the half-open trial goes on the wire again
        // and, failing, re-opens the breaker immediately.
        net.advance(2_000_000);
        assert!(!session.is_open(&net, addr(3)));
        let _ = session.exchange(&net, addr(1), addr(3), b"q", &policy);
        assert!(session.is_open(&net, addr(3)), "failed trial reopens");
        assert_eq!(session.stats().gave_up, 2);
        // A recovered target closes the breaker for good.
        net.advance(2_000_000);
        net.unregister(addr(3));
        net.register(addr(3), Rc::new(Echo));
        let _ = session.exchange(&net, addr(1), addr(3), b"q", &policy);
        assert!(!session.is_open(&net, addr(3)));
        let stats = session.stats();
        assert!(stats.is_consistent(), "{stats:?}");
    }

    #[test]
    fn disabled_breaker_never_skips() {
        let net = Network::new(1);
        net.register(addr(3), Rc::new(Silent));
        let session = ScanSession::new(BreakerConfig::disabled());
        for _ in 0..10 {
            let _ = session.exchange(&net, addr(1), addr(3), b"q", &RetryPolicy::fixed(1));
        }
        let stats = session.stats();
        assert_eq!(stats.circuit_skipped, 0);
        assert_eq!(stats.timed_out, 10);
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn breaker_rides_out_an_outage_episode() {
        let net = Network::new(1);
        net.register(addr(2), Rc::new(Echo));
        net.set_schedule(FaultSchedule {
            episodes: vec![Episode::window(
                0,
                10_000_000,
                EpisodeKind::Outage {
                    scope: Scope::Addr(addr(2)),
                },
            )],
            ..Default::default()
        });
        let session = ScanSession::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_micros: 4_000_000,
        });
        let policy = RetryPolicy::fixed(1);
        let mut answered = 0;
        for _ in 0..12 {
            if matches!(
                session.exchange(&net, addr(1), addr(2), b"q", &policy),
                Outcome::Response { .. }
            ) {
                answered += 1;
            }
            // The scan works through other targets in between; skipped
            // probes themselves cost no virtual time.
            net.advance(1_500_000);
        }
        let stats = session.stats();
        assert!(stats.is_consistent(), "{stats:?}");
        assert!(answered > 0, "recovered after the outage: {stats:?}");
        assert!(stats.circuit_skipped > 0, "breaker saved budget: {stats:?}");
        assert_eq!(stats.answered, answered);
    }

    #[test]
    fn merge_is_field_wise_sum() {
        let mut a = ProbeStats {
            sent: 5,
            answered: 3,
            retried: 2,
            timed_out: 1,
            circuit_skipped: 1,
            gave_up: 1,
        };
        let b = ProbeStats {
            sent: 2,
            answered: 2,
            retried: 0,
            timed_out: 0,
            circuit_skipped: 0,
            gave_up: 0,
        };
        a.merge(&b);
        assert_eq!(a.sent, 7);
        assert_eq!(a.answered, 5);
        assert!(a.is_consistent());
        assert_eq!(ProbeStats::default().answered_share(), 1.0);
    }
}
