//! RIPE-Atlas-style measurement of *closed* resolvers (§4.2).
//!
//! Closed resolvers only answer clients inside their own network. The
//! paper reached them through RIPE Atlas probes configured with those
//! resolvers as their local DNS; the probe API does not expose EDE data,
//! which is why the paper's EDE analysis covers open resolvers only.
//! Both constraints are modeled here.

use std::cell::RefCell;
use std::collections::HashSet;
use std::net::IpAddr;
use std::rc::Rc;

use netsim::{Network, Node, RetryPolicy};

use crate::prober::{ProbeFlow, ProbePlan, Prober, ResolverClassification};
use crate::retry::ScanSession;

/// A wrapper that makes any resolver node *closed*: datagrams from
/// addresses outside the allowlist are silently dropped.
pub struct ClosedResolver {
    inner: Rc<dyn Node>,
    allowed: RefCell<HashSet<IpAddr>>,
}

impl ClosedResolver {
    /// Close `inner` to everyone except `allowed`.
    pub fn new(inner: Rc<dyn Node>, allowed: impl IntoIterator<Item = IpAddr>) -> Self {
        ClosedResolver {
            inner,
            allowed: RefCell::new(allowed.into_iter().collect()),
        }
    }

    /// Admit another client (a new Atlas probe in the network).
    pub fn allow(&self, addr: IpAddr) {
        self.allowed.borrow_mut().insert(addr);
    }
}

impl Node for ClosedResolver {
    fn handle(
        &self,
        net: &Network,
        src: IpAddr,
        payload: &[u8],
        reply: &mut Vec<u8>,
    ) -> Option<()> {
        if !self.allowed.borrow().contains(&src) {
            return None; // closed: drop silently
        }
        self.inner.handle(net, src, payload, reply)
    }
}

/// A RIPE-Atlas-like probe: a vantage point inside some network, bound to
/// its local (closed) resolver.
#[derive(Clone, Debug)]
pub struct AtlasProbe {
    /// The probe's own address (must be allow-listed on the resolver).
    pub addr: IpAddr,
    /// The probe's local resolver.
    pub local_resolver: IpAddr,
}

/// Run the §4.2 classification from an Atlas probe. EDE data is not
/// captured (the Atlas API does not supply it). A resolver that never
/// answers comes back with `unreachable = true` — it stays in the study
/// denominator.
pub fn classify_via_probe(
    net: &Network,
    probe: &AtlasProbe,
    plan: &ProbePlan,
) -> ResolverClassification {
    let mut prober = Prober::new(net, probe.addr, plan);
    prober.capture_ede = false;
    prober.classify(probe.local_resolver)
}

/// [`classify_via_probe`] threaded through a retry/breaker session so
/// the probe's traffic is loss-accounted alongside the open-resolver
/// scan.
pub fn classify_via_probe_with(
    net: &Network,
    probe: &AtlasProbe,
    plan: &ProbePlan,
    policy: RetryPolicy,
    session: &ScanSession,
) -> ResolverClassification {
    let mut prober = Prober::new(net, probe.addr, plan).with_session(session, policy);
    prober.capture_ede = false;
    prober.classify(probe.local_resolver)
}

/// The classification [`classify_via_probe_with`] performs, as a
/// steppable [`ProbeFlow`] an event driver can hold in flight alongside
/// thousands of others. Driving the flow to completion yields exactly
/// the blocking function's result.
pub fn classification_flow_via_probe<'a>(
    net: &'a Network,
    probe: &AtlasProbe,
    plan: &'a ProbePlan,
    policy: RetryPolicy,
    session: &'a ScanSession,
) -> ProbeFlow<'a> {
    let mut prober = Prober::new(net, probe.addr, plan).with_session(session, policy);
    prober.capture_ede = false;
    prober.classification_flow(probe.local_resolver)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Node for Echo {
        fn handle(
            &self,
            _net: &Network,
            _src: IpAddr,
            payload: &[u8],
            reply: &mut Vec<u8>,
        ) -> Option<()> {
            reply.extend_from_slice(payload);
            Some(())
        }
    }

    #[test]
    fn closed_resolver_drops_outsiders() {
        let net = Network::new(1);
        let inside: IpAddr = "10.1.0.2".parse().unwrap();
        let outside: IpAddr = "10.2.0.2".parse().unwrap();
        let raddr: IpAddr = "10.1.0.53".parse().unwrap();
        let closed = ClosedResolver::new(Rc::new(Echo), [inside]);
        net.register(raddr, Rc::new(closed));
        assert!(net.send_query(inside, raddr, b"q").payload().is_some());
        assert!(net.send_query(outside, raddr, b"q").payload().is_none());
    }

    #[test]
    fn allow_admits_new_probe() {
        let net = Network::new(1);
        let probe: IpAddr = "10.1.0.9".parse().unwrap();
        let raddr: IpAddr = "10.1.0.53".parse().unwrap();
        let closed = Rc::new(ClosedResolver::new(Rc::new(Echo), []));
        net.register(raddr, closed.clone());
        assert!(net.send_query(probe, raddr, b"q").payload().is_none());
        closed.allow(probe);
        assert!(net.send_query(probe, raddr, b"q").payload().is_some());
    }
}
