//! Query pacing, modeled on the paper's ethics section: the zdns scan ran
//! at 14.7 K requests/second on average, far below Cloudflare's capacity.
//!
//! In the simulation the limiter converts a target rate into virtual-clock
//! advancement, so experiment timelines reflect the configured pace.

use std::cell::Cell;

use netsim::Network;

/// A token-style pacer: each [`RateLimiter::pace`] call advances the
/// virtual clock enough to hold the configured average rate.
#[derive(Debug)]
pub struct RateLimiter {
    interval_micros: u64,
    sent: Cell<u64>,
}

impl RateLimiter {
    /// Limit to `per_second` queries per (virtual) second.
    pub fn new(per_second: u64) -> Self {
        let per_second = per_second.max(1);
        RateLimiter {
            interval_micros: 1_000_000 / per_second,
            sent: Cell::new(0),
        }
    }

    /// Account for one query about to be sent, advancing virtual time.
    pub fn pace(&self, net: &Network) {
        self.sent.set(self.sent.get() + 1);
        if self.interval_micros > 0 {
            net.advance(self.interval_micros);
        }
    }

    /// Queries paced so far.
    pub fn sent(&self) -> u64 {
        self.sent.get()
    }

    /// Average rate achieved over the elapsed virtual time.
    pub fn achieved_rate(&self, net: &Network) -> f64 {
        let secs = net.now_micros() as f64 / 1e6;
        if secs == 0.0 {
            0.0
        } else {
            self.sent.get() as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_advances_virtual_time() {
        let net = Network::new(1);
        let rl = RateLimiter::new(1000); // 1 ms per query
        let t0 = net.now_micros();
        for _ in 0..10 {
            rl.pace(&net);
        }
        assert_eq!(net.now_micros() - t0, 10_000);
        assert_eq!(rl.sent(), 10);
    }

    #[test]
    fn achieved_rate_at_most_configured() {
        let net = Network::new(1);
        let rl = RateLimiter::new(14_700);
        for _ in 0..1000 {
            rl.pace(&net);
        }
        let rate = rl.achieved_rate(&net);
        assert!(rate <= 14_800.0, "rate {rate}");
        assert!(rate > 10_000.0, "rate {rate}");
    }

    #[test]
    fn zero_rate_clamped() {
        let rl = RateLimiter::new(0);
        assert_eq!(rl.interval_micros, 1_000_000);
    }
}
