//! Zone enumeration over the network: AXFR transfers, NSEC chain walking,
//! NSEC3 hash collection, and offline dictionary attacks — the §6
//! discussion made executable ("It was shown that hashing does not
//! prevent deliberate attackers from obtaining the contents of zone
//! files").

use std::collections::BTreeSet;
use std::net::IpAddr;

use dns_wire::message::{unframe_tcp, Message};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::record::Record;
use dns_wire::rrtype::{Rcode, RrType};
use dns_zone::nsec3hash::{nsec3_hash_cached_batch, Nsec3Params};
use netsim::{Network, Outcome};

fn query(
    net: &Network,
    src: IpAddr,
    server: IpAddr,
    qname: &Name,
    qtype: RrType,
) -> Option<Message> {
    let msg = Message::query(0x4a1d, qname.clone(), qtype);
    dns_wire::with_pooled(|buf| {
        msg.encode_into(buf);
        match net.send_query_with_retries(src, server, buf.as_slice(), 2) {
            Outcome::Response { payload, .. } => Message::decode(&payload).ok(),
            _ => None,
        }
    })
}

/// Request a full zone transfer. AXFR is a stream-transport operation
/// (RFC 5936 §4.2), so the query goes out TCP-framed. Returns the records
/// (without the trailing SOA duplicate) or `None` if refused/unanswered.
pub fn axfr(net: &Network, src: IpAddr, server: IpAddr, apex: &Name) -> Option<Vec<Record>> {
    let mut q = Vec::new();
    Message::query(0xaf42, apex.clone(), RrType::AXFR).encode_framed_append(&mut q);
    let resp = match net.send_query_with_retries(src, server, &q, 2) {
        Outcome::Response { payload, .. } => Message::decode(unframe_tcp(&payload)?).ok()?,
        _ => return None,
    };
    if resp.rcode != Rcode::NoError || resp.answers.is_empty() {
        return None;
    }
    let mut records = resp.answers;
    // Strip the RFC 5936 trailing SOA.
    if records.len() >= 2 && records.last().map(|r| r.rrtype()) == Some(RrType::SOA) {
        records.pop();
    }
    Some(records)
}

/// Walk an NSEC chain by querying each successive owner for its NSEC
/// record, enumerating every name in the zone. Returns the names in chain
/// order, or `None` if the zone does not expose NSEC records.
pub fn nsec_walk(
    net: &Network,
    src: IpAddr,
    server: IpAddr,
    apex: &Name,
    max_steps: usize,
) -> Option<Vec<Name>> {
    let mut names = Vec::new();
    let mut cur = apex.clone();
    for _ in 0..max_steps {
        let resp = query(net, src, server, &cur, RrType::NSEC)?;
        let nsec = resp
            .answers
            .iter()
            .find(|r| r.rrtype() == RrType::NSEC && r.name == cur)?;
        let next = match &nsec.rdata {
            RData::Nsec { next, .. } => next.clone(),
            _ => return None,
        };
        names.push(cur);
        if &next == apex {
            return Some(names);
        }
        cur = next;
    }
    Some(names) // chain longer than max_steps: partial enumeration
}

/// The hashes harvested from NSEC3 denial responses.
#[derive(Clone, Debug)]
pub struct Nsec3Harvest {
    /// The zone's NSEC3 parameters as observed.
    pub params: Nsec3Params,
    /// Distinct owner hashes seen (each is one existing name).
    pub hashes: BTreeSet<Vec<u8>>,
}

/// Collect NSEC3 owner hashes by firing `probes` random nonexistent
/// queries at the zone: each NXDOMAIN leaks up to three chain links
/// (RFC 5155's enumeration weakness in practice).
pub fn nsec3_collect(
    net: &Network,
    src: IpAddr,
    server: IpAddr,
    apex: &Name,
    probes: usize,
) -> Option<Nsec3Harvest> {
    let mut params: Option<Nsec3Params> = None;
    let mut hashes = BTreeSet::new();
    for i in 0..probes {
        let probe = Name::parse(&format!("walk-probe-{i:04x}"))
            .ok()?
            .concat(apex)
            .ok()?;
        let resp = query(net, src, server, &probe, RrType::A)?;
        for rec in resp.authorities.iter().chain(resp.answers.iter()) {
            if let RData::Nsec3 { next_hashed, .. } = &rec.rdata {
                if params.is_none() {
                    params = Nsec3Params::from_rdata(&rec.rdata);
                }
                // Owner hash from the first label…
                if let Some(label) = rec.name.labels().next() {
                    if let Some(h) = dns_wire::base32::decode(&String::from_utf8_lossy(label)) {
                        hashes.insert(h);
                    }
                }
                // …and the next-hashed field leaks one more.
                hashes.insert(next_hashed.clone());
            }
        }
    }
    params.map(|params| Nsec3Harvest { params, hashes })
}

/// Offline dictionary attack on harvested hashes: hash each candidate
/// label under the zone's parameters and report the matches — exactly the
/// GPU attack of Wander et al. scaled to a word list.
pub fn dictionary_attack(
    harvest: &Nsec3Harvest,
    apex: &Name,
    dictionary: &[&str],
) -> Vec<(Name, u64)> {
    let mut cracked = Vec::new();
    let mut work = 0u64;
    let mut candidates: Vec<Name> = vec![apex.clone()];
    for word in dictionary {
        if let Ok(rel) = Name::parse(word) {
            if let Ok(full) = rel.concat(apex) {
                candidates.push(full);
            }
        }
    }
    // Hash the whole candidate list through the batched thread-cache entry
    // point: repeat attacks against the same zone (or shared dictionary
    // words) replay memoized chains, and fresh candidates run the iterated
    // SHA-1 up to eight lanes at a time. `work` still accounts the full
    // attacker cost in candidate order — a cache hit replays the stored
    // compressions, and batching never changes a per-name count.
    let hashes = nsec3_hash_cached_batch(&candidates, &harvest.params);
    for (candidate, h) in candidates.into_iter().zip(hashes) {
        work += h.compressions;
        if harvest.hashes.contains(h.digest.as_slice()) {
            cracked.push((candidate, work));
        }
    }
    cracked
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_auth::AuthServer;
    use dns_wire::name::name;
    use dns_zone::signer::{sign_zone, Denial, SignerConfig};
    use dns_zone::Zone;
    use std::rc::Rc;

    const NOW: u32 = 1_710_000_000;

    fn victim_zone(denial: Denial) -> dns_zone::SignedZone {
        let apex = name("victim.test.");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            RData::Soa {
                mname: name("ns1.victim.test."),
                rname: name("host.victim.test."),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        ))
        .unwrap();
        for label in ["www", "api", "mail", "hidden-xk42"] {
            z.add(Record::new(
                name(&format!("{label}.victim.test.")),
                300,
                RData::A("192.0.2.1".parse().unwrap()),
            ))
            .unwrap();
        }
        sign_zone(
            &z,
            &SignerConfig {
                denial,
                ..SignerConfig::standard(&apex, NOW)
            },
        )
        .unwrap()
    }

    fn setup(denial: Denial, allow_axfr: bool) -> (Network, IpAddr, IpAddr) {
        let net = Network::new(5);
        let server_addr: IpAddr = "10.0.0.53".parse().unwrap();
        let src: IpAddr = "10.0.0.99".parse().unwrap();
        let server = AuthServer::new();
        server.add_zone(victim_zone(denial));
        if allow_axfr {
            server.allow_axfr(&name("victim.test."));
        }
        net.register(server_addr, Rc::new(server));
        (net, src, server_addr)
    }

    #[test]
    fn axfr_dumps_or_refuses() {
        let (net, src, server) = setup(Denial::nsec3_rfc9276(), true);
        let records = axfr(&net, src, server, &name("victim.test.")).unwrap();
        assert!(records.len() > 10);
        assert_eq!(records[0].rrtype(), RrType::SOA);
        let (net2, src2, server2) = setup(Denial::nsec3_rfc9276(), false);
        assert!(axfr(&net2, src2, server2, &name("victim.test.")).is_none());
    }

    #[test]
    fn nsec_walk_enumerates_everything() {
        let (net, src, server) = setup(Denial::Nsec, false);
        let names = nsec_walk(&net, src, server, &name("victim.test."), 100).unwrap();
        assert_eq!(names.len(), 5); // apex + 4 hosts
        assert!(names.contains(&name("hidden-xk42.victim.test.")));
    }

    #[test]
    fn nsec3_collect_and_crack() {
        let (net, src, server) = setup(
            Denial::Nsec3 {
                params: Nsec3Params::new(2, vec![0xab, 0xcd]),
                opt_out: false,
            },
            false,
        );
        let harvest = nsec3_collect(&net, src, server, &name("victim.test."), 40).unwrap();
        assert_eq!(harvest.params.iterations, 2);
        // 5 existing names → at most 5 distinct hashes; probes should find
        // most of the small chain.
        assert!(harvest.hashes.len() >= 3, "{}", harvest.hashes.len());
        let cracked = dictionary_attack(
            &harvest,
            &name("victim.test."),
            &["www", "api", "ftp", "mail", "smtp"],
        );
        let cracked_names: Vec<String> = cracked.iter().map(|(n, _)| n.to_string()).collect();
        assert!(cracked_names.contains(&"www.victim.test.".to_string()));
        assert!(!cracked_names.iter().any(|n| n.contains("hidden")));
        // Work accounting is monotone.
        for w in cracked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn nsec3_zone_does_not_answer_nsec_walk() {
        let (net, src, server) = setup(Denial::nsec3_rfc9276(), false);
        assert!(nsec_walk(&net, src, server, &name("victim.test."), 100).is_none());
    }
}
