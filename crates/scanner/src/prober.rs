//! The §4.2 resolver-classification methodology: probe each resolver with
//! the `rfc9276-in-the-wild.com` testbed names and classify its RFC 9276
//! behaviour from the observed RCODEs, AD bits, and EDEs.

use std::net::IpAddr;

use dns_resolver::broken::ObservedResponse;
use dns_wire::message::Message;
use dns_wire::name::Name;
use dns_wire::rrtype::{Rcode, RrType};
use netsim::event::FlowStep;
use netsim::{ExchangeMachine, ExchangeStep, Network, Outcome, RetryPolicy};

use crate::retry::{ScanSession, SessionExchange, SessionStep};

/// The probe plan derived from the testbed: which names to query.
#[derive(Clone, Debug)]
pub struct ProbePlan {
    /// An existing, correctly-signed name (expect NOERROR + AD from a
    /// validator).
    pub valid: Name,
    /// An existing name under the expired-signature zone (expect SERVFAIL
    /// from a validator).
    pub expired: Name,
    /// `(additional iterations, zone apex)` pairs, ascending by N.
    pub it_zones: Vec<(u16, Name)>,
    /// The `it-2501-expired` zone apex (iterations beyond every RFC 5155
    /// limit *and* expired NSEC3 RRSIGs), if deployed.
    pub it_2501_expired: Option<Name>,
}

/// One resolver's full classification.
#[derive(Clone, Debug)]
pub struct ResolverClassification {
    /// The probed resolver.
    pub resolver: IpAddr,
    /// Passed the validator test (AD on valid, SERVFAIL on expired).
    pub is_validator: bool,
    /// Per-N observation (N, response), ascending by N.
    pub responses: Vec<(u16, ObservedResponse)>,
    /// The delimiting value: AD set up to here, clear above (clean
    /// threshold behaviour). Present for item 6 *and* clean item 8
    /// resolvers; combine with [`ResolverClassification::has_insecure_band`]
    /// to tell them apart.
    pub insecure_limit: Option<u16>,
    /// Some responses were plain NXDOMAIN without AD — the item 6
    /// "insecure" band exists.
    pub has_insecure_band: bool,
    /// Item 8: first N answered with SERVFAIL (monotonically above).
    pub servfail_start: Option<u16>,
    /// Attached EDE 27 when limiting.
    pub ede27_on_limit: bool,
    /// Any EDE code observed on limited responses.
    pub limit_ede_codes: Vec<u16>,
    /// Item 7 violation: returned NXDOMAIN for `it-2501-expired` despite
    /// implementing the insecure downgrade. `None` = not tested.
    pub item7_violation: Option<bool>,
    /// Item 12: a gap of insecure responses between the AD limit and the
    /// SERVFAIL start.
    pub item12_gap: bool,
    /// Responses were non-monotone in N (the paper's "flaky" resolvers).
    pub flaky: bool,
    /// RA bit was clear on responses (query-copier fingerprint).
    pub ra_missing: bool,
    /// Every N the plan intended to probe (ascending). Compared against
    /// `responses` to detect coverage gaps.
    pub probed_ns: Vec<u16>,
    /// The bootstrap probes (`valid` / `expired`) never got an answer:
    /// the resolver could not be classified at all. It still counts in
    /// the study denominator — unreachable, not absent.
    pub unreachable: bool,
    /// Some per-N probes went unanswered: the observation is incomplete
    /// and derived limits are suppressed rather than guessed from a
    /// subset (graceful degradation).
    pub partial: bool,
}

impl ResolverClassification {
    /// A blank classification for `resolver`: nothing observed yet.
    pub fn empty(resolver: IpAddr) -> Self {
        ResolverClassification {
            resolver,
            is_validator: false,
            responses: Vec::new(),
            insecure_limit: None,
            has_insecure_band: false,
            servfail_start: None,
            ede27_on_limit: false,
            limit_ede_codes: Vec::new(),
            item7_violation: None,
            item12_gap: false,
            flaky: false,
            ra_missing: false,
            probed_ns: Vec::new(),
            unreachable: false,
            partial: false,
        }
    }

    /// Does this resolver limit iterations at all (item 6 or item 8)?
    pub fn limits_iterations(&self) -> bool {
        self.insecure_limit.is_some() || self.servfail_start.is_some()
    }

    /// RFC 9276 item 6: a delimiting value above which responses are
    /// insecure NXDOMAINs.
    pub fn implements_item6(&self) -> bool {
        self.has_insecure_band && self.insecure_limit.is_some() && !self.flaky
    }

    /// RFC 9276 item 8: SERVFAIL above a threshold.
    pub fn implements_item8(&self) -> bool {
        self.servfail_start.is_some() && !self.flaky
    }
}

/// The prober: one vantage address plus the plan.
#[derive(Clone, Copy)]
pub struct Prober<'a> {
    /// The network.
    pub net: &'a Network,
    /// Source address for probe queries.
    pub src: IpAddr,
    /// The testbed name plan.
    pub plan: &'a ProbePlan,
    /// Capture EDE data (false when probing through RIPE-Atlas-style
    /// vantage points, which do not expose EDE).
    pub capture_ede: bool,
    /// Per-query retry schedule. [`RetryPolicy::fixed`] reproduces the
    /// legacy flat retry loop exactly.
    pub policy: RetryPolicy,
    /// Shared retry/breaker session: when set, every probe is accounted
    /// in its [`crate::retry::ProbeStats`] and dead resolvers are
    /// short-circuited by its breaker.
    pub session: Option<&'a ScanSession>,
}

impl<'a> Prober<'a> {
    /// Build a prober.
    pub fn new(net: &'a Network, src: IpAddr, plan: &'a ProbePlan) -> Self {
        Prober {
            net,
            src,
            plan,
            capture_ede: true,
            policy: RetryPolicy::fixed(2),
            session: None,
        }
    }

    /// The same prober, threaded through a [`ScanSession`] with `policy`.
    pub fn with_session(mut self, session: &'a ScanSession, policy: RetryPolicy) -> Self {
        self.session = Some(session);
        self.policy = policy;
        self
    }

    /// The probe query bytes for `qname`, owned — an event flow holds
    /// them across parks, where the blocking path borrows a pooled
    /// buffer for the exchange's duration. Same bytes either way.
    fn encode_query(&self, qname: &Name) -> Vec<u8> {
        let id = (qname.wire_len() as u16) ^ 0x5aa5;
        let msg = Message::query(id, qname.clone(), RrType::A);
        dns_wire::with_pooled(|buf| {
            msg.encode_into(buf);
            buf.as_slice().to_vec()
        })
    }

    /// Decode an exchange outcome into the observation the classifier
    /// consumes (EDE stripped for Atlas-style vantage points).
    fn interpret(&self, outcome: Outcome) -> Option<ObservedResponse> {
        match outcome {
            Outcome::Response { payload, .. } => {
                let mut obs = ObservedResponse::from_wire(&payload)?;
                if !self.capture_ede {
                    obs.ede = None;
                    obs.ede_has_text = false;
                }
                Some(obs)
            }
            _ => None,
        }
    }

    /// A unique probe name under `apex` for this resolver (cache busting,
    /// and the way the paper tied log lines to resolvers).
    fn probe_name(&self, apex: &Name, resolver: IpAddr, tag: &str) -> Name {
        let id = match resolver {
            IpAddr::V4(a) => u32::from(a) as u64,
            IpAddr::V6(a) => u128::from(a) as u64,
        };
        Name::parse(&format!("p{tag}-{id:x}"))
            .and_then(|p| p.concat(apex))
            .unwrap_or_else(|_| apex.clone())
    }

    /// Run the full §4.2 classification against one resolver. Always
    /// returns a classification: a resolver whose bootstrap probes stay
    /// silent comes back with `unreachable = true` (it stays in the
    /// study denominator), and one with per-N coverage gaps comes back
    /// `partial` with derived limits suppressed.
    ///
    /// Implemented by driving a [`ProbeFlow`] inline — the event-driven
    /// study steps the identical machine, parking between attempts.
    pub fn classify(&self, resolver: IpAddr) -> ResolverClassification {
        self.drive_flow(self.classification_flow(resolver))
    }

    /// The full classification as a steppable [`ProbeFlow`] — what
    /// [`Prober::classify`] drives inline, handed out so an event driver
    /// can keep many classifications in flight at once.
    pub fn classification_flow(&self, resolver: IpAddr) -> ProbeFlow<'a> {
        ProbeFlow::new(*self, resolver, "a", true)
    }

    /// Drive `flow` to completion on the calling thread, advancing the
    /// virtual clock across each park (what the timer wheel does for
    /// event-driven flows).
    fn drive_flow(&self, mut flow: ProbeFlow<'a>) -> ResolverClassification {
        loop {
            match flow.step() {
                FlowStep::Park { at_micros } => {
                    let now = self.net.now_micros();
                    if at_micros > now {
                        self.net.advance(at_micros - now);
                    }
                }
                FlowStep::Done => return flow.into_classification(),
            }
        }
    }
}

impl<'a> Prober<'a> {
    /// The paper's re-query check: classify `passes` times with distinct
    /// probe names and compare. Resolvers whose limits differ between
    /// passes are marked flaky — §5.2 found that the apparent item 12
    /// violators were mostly these ("querying these resolvers again often
    /// results in different response patterns").
    pub fn classify_with_requery(&self, resolver: IpAddr, passes: u32) -> ResolverClassification {
        let mut first = self.classify(resolver);
        if first.unreachable {
            return first;
        }
        for pass in 1..passes.max(1) {
            let again = self.classify_tagged(resolver, &format!("r{pass}"));
            if again.unreachable || again.partial {
                // A lossy pass is a coverage gap, not evidence of
                // flakiness: degrade to partial instead.
                first.partial = true;
                continue;
            }
            if again.insecure_limit != first.insecure_limit
                || again.servfail_start != first.servfail_start
                || again.flaky
            {
                first.flaky = true;
            }
        }
        first
    }

    /// Like [`Prober::classify`] but with an extra tag in the probe names
    /// so repeated passes stay cache-busted (no item 7 follow-up).
    fn classify_tagged(&self, resolver: IpAddr, tag: &str) -> ResolverClassification {
        self.drive_flow(ProbeFlow::new(*self, resolver, tag, false))
    }
}

/// Where a [`ProbeFlow`] is in the §4.2 probe sequence.
#[derive(Clone, Debug)]
enum ProbePhase {
    /// Bootstrap 1: the correctly-signed name.
    Valid,
    /// Bootstrap 2: the expired-signature name, with the valid-name
    /// observation (if any) in hand.
    Expired(Option<ObservedResponse>),
    /// Per-N iteration probe at `it_zones[index]`.
    ItZone(usize),
    /// The item 7 follow-up against `it-2501-expired`.
    Item7,
    /// Classification final.
    Done,
}

/// One wire exchange in flight inside a [`ProbeFlow`]: the owned query
/// bytes plus the retry machine working through them.
enum PendingExchange {
    /// Session-accounted (breaker consulted at open time).
    Session(SessionExchange),
    /// Bare policy retries, no session.
    Raw(ExchangeMachine),
}

/// The full §4.2 classification of one resolver as a per-flow state
/// machine: each [`ProbeFlow::step`] sends at most one wire attempt,
/// parking across retry backoffs, so an event driver can keep thousands
/// of classifications in flight. [`Prober::classify`] drives the same
/// machine inline (window of one) — there is no second implementation
/// of the probe sequence.
pub struct ProbeFlow<'a> {
    prober: Prober<'a>,
    resolver: IpAddr,
    tag: String,
    with_item7: bool,
    phase: ProbePhase,
    /// The in-flight exchange: query bytes + retry machine. `None`
    /// between queries.
    pending: Option<(Vec<u8>, PendingExchange)>,
    out: ResolverClassification,
}

impl<'a> ProbeFlow<'a> {
    /// A fresh classification flow for `resolver`. `tag` cache-busts the
    /// per-N probe names; `with_item7` enables the `it-2501-expired`
    /// follow-up (what [`Prober::classify`] does, re-query passes skip
    /// it).
    pub fn new(
        prober: Prober<'a>,
        resolver: IpAddr,
        tag: impl Into<String>,
        with_item7: bool,
    ) -> Self {
        ProbeFlow {
            prober,
            resolver,
            tag: tag.into(),
            with_item7,
            phase: ProbePhase::Valid,
            pending: None,
            out: ResolverClassification::empty(resolver),
        }
    }

    /// Classification finished?
    pub fn done(&self) -> bool {
        matches!(self.phase, ProbePhase::Done)
    }

    /// The finished classification.
    pub fn into_classification(self) -> ResolverClassification {
        self.out
    }

    /// The qname the current phase probes, or `None` when the phase
    /// sends nothing (terminal).
    fn phase_qname(&self) -> Option<Name> {
        match &self.phase {
            ProbePhase::Valid => Some(self.prober.plan.valid.clone()),
            ProbePhase::Expired(_) => Some(self.prober.plan.expired.clone()),
            ProbePhase::ItZone(i) => {
                let (_, apex) = &self.prober.plan.it_zones[*i];
                Some(self.prober.probe_name(apex, self.resolver, &self.tag))
            }
            ProbePhase::Item7 => self
                .prober
                .plan
                .it_2501_expired
                .as_ref()
                .map(|apex| self.prober.probe_name(apex, self.resolver, "b")),
            ProbePhase::Done => None,
        }
    }

    /// Consume the current phase's query result and pick the next phase
    /// — the classification logic, one transition at a time.
    fn advance_phase(&mut self, obs: Option<ObservedResponse>) {
        match std::mem::replace(&mut self.phase, ProbePhase::Done) {
            ProbePhase::Valid => {
                // The per-N bookkeeping happens at probe-send time; the
                // bootstrap pair only records after both ran.
                self.phase = ProbePhase::Expired(obs);
            }
            ProbePhase::Expired(valid) => match (valid, obs) {
                (Some(valid), Some(expired)) => {
                    self.out.is_validator = valid.ad
                        && valid.rcode == Rcode::NoError
                        && expired.rcode == Rcode::ServFail;
                    self.out.ra_missing = !valid.ra;
                    if self.out.is_validator {
                        self.enter_it_zone(0);
                    }
                    // A non-validator is final: nothing further to probe.
                }
                _ => {
                    // Bootstrap probes lost: no basis for any
                    // classification.
                    self.out.unreachable = true;
                }
            },
            ProbePhase::ItZone(i) => {
                let (n, _) = self.prober.plan.it_zones[i];
                if let Some(obs) = obs {
                    self.out.responses.push((n, obs));
                }
                self.enter_it_zone(i + 1);
            }
            ProbePhase::Item7 => {
                if let Some(obs) = obs {
                    self.out.item7_violation = Some(obs.rcode == Rcode::NxDomain);
                }
            }
            ProbePhase::Done => {}
        }
    }

    /// Move to per-N probe `index`, or wrap up (derive limits, maybe the
    /// item 7 follow-up) when the plan is exhausted.
    fn enter_it_zone(&mut self, index: usize) {
        if index < self.prober.plan.it_zones.len() {
            self.phase = ProbePhase::ItZone(index);
        } else {
            derive_limits(&mut self.out);
            // Item 7 test only makes sense for insecure-downgrade
            // resolvers.
            if self.with_item7
                && self.out.insecure_limit.is_some()
                && self.prober.plan.it_2501_expired.is_some()
            {
                self.phase = ProbePhase::Item7;
            }
        }
    }

    /// Advance by at most one wire attempt. Returns
    /// [`FlowStep::Park`] with the next due time (a retry backoff, or
    /// *now* between queries) until the classification is final.
    pub fn step(&mut self) -> FlowStep {
        if self.done() {
            return FlowStep::Done;
        }
        let net = self.prober.net;
        if self.pending.is_none() {
            let qname = match self.phase_qname() {
                Some(q) => q,
                None => {
                    // Phase with nothing to send (item 7 without the
                    // zone deployed — can't happen, enter_it_zone guards
                    // it, but stay total).
                    self.advance_phase(None);
                    return self.park_or_done();
                }
            };
            if let ProbePhase::ItZone(i) = self.phase {
                // The plan's intent is recorded when the probe is sent,
                // exactly as the blocking loop does — coverage gaps are
                // detected against it.
                let (n, _) = self.prober.plan.it_zones[i];
                self.out.probed_ns.push(n);
            }
            let payload = self.prober.encode_query(&qname);
            let exchange = match self.prober.session {
                Some(session) => PendingExchange::Session(session.begin_exchange(
                    net,
                    self.prober.src,
                    self.resolver,
                    &self.prober.policy,
                )),
                None => PendingExchange::Raw(ExchangeMachine::new(
                    self.prober.src,
                    self.resolver,
                    self.prober.policy,
                )),
            };
            self.pending = Some((payload, exchange));
        }
        let (payload, mut exchange) = self.pending.take().expect("pending exchange");
        let next = match &mut exchange {
            PendingExchange::Session(ex) => match ex.step(net, &payload) {
                SessionStep::Park { resume_at_micros } => Some(resume_at_micros),
                SessionStep::Finished => None,
            },
            PendingExchange::Raw(machine) => match machine.step(net, &payload) {
                ExchangeStep::Backoff { resume_at_micros } => Some(resume_at_micros),
                ExchangeStep::Finished => None,
            },
        };
        match next {
            Some(resume_at_micros) => {
                self.pending = Some((payload, exchange));
                FlowStep::Park {
                    at_micros: resume_at_micros,
                }
            }
            None => {
                let outcome = match exchange {
                    PendingExchange::Session(ex) => {
                        ex.finish(self.prober.session.expect("session exchange"), net)
                    }
                    PendingExchange::Raw(machine) => machine.into_report().outcome,
                };
                let obs = self.prober.interpret(outcome);
                self.advance_phase(obs);
                self.park_or_done()
            }
        }
    }

    fn park_or_done(&self) -> FlowStep {
        if self.done() {
            FlowStep::Done
        } else {
            FlowStep::Park {
                at_micros: self.prober.net.now_micros(),
            }
        }
    }
}

/// Derive the limit values and compliance bits from raw per-N responses.
///
/// Graceful degradation: when `probed_ns` records the plan's intent and
/// some of those probes went unanswered, the classification is marked
/// `partial` and the derived limits (`insecure_limit`, `servfail_start`,
/// and everything downstream of them) are **suppressed** — a subset of
/// responses must never invent a limit the missing responses could
/// contradict. Flakiness detection still runs on whatever was observed:
/// an out-of-order pattern is flaky no matter how incomplete.
pub fn derive_limits(c: &mut ResolverClassification) {
    c.partial = !c.probed_ns.is_empty() && c.responses.len() < c.probed_ns.len();
    #[derive(PartialEq, Clone, Copy, Debug)]
    enum Kind {
        AdNx,
        Nx,
        ServFail,
        Other,
    }
    let kinds: Vec<(u16, Kind)> = c
        .responses
        .iter()
        .map(|(n, o)| {
            let k = match (o.rcode, o.ad) {
                (Rcode::NxDomain, true) => Kind::AdNx,
                (Rcode::NxDomain, false) => Kind::Nx,
                (Rcode::ServFail, _) => Kind::ServFail,
                _ => Kind::Other,
            };
            (*n, k)
        })
        .collect();
    if kinds.is_empty() {
        return;
    }
    // Monotonicity check: AD+NXDOMAIN* then NXDOMAIN* then SERVFAIL*.
    let rank = |k: Kind| match k {
        Kind::AdNx => 0,
        Kind::Nx => 1,
        Kind::ServFail => 2,
        Kind::Other => 3,
    };
    let mut last_rank = 0;
    for (_, k) in &kinds {
        let r = rank(*k);
        if r == 3 {
            continue;
        }
        if r < last_rank {
            c.flaky = true;
        }
        last_rank = last_rank.max(r);
    }
    // Delimiting AD value.
    let last_ad = kinds
        .iter()
        .filter(|(_, k)| *k == Kind::AdNx)
        .map(|(n, _)| *n)
        .max();
    let first_nonad = kinds
        .iter()
        .filter(|(_, k)| matches!(k, Kind::Nx | Kind::ServFail))
        .map(|(n, _)| *n)
        .min();
    c.has_insecure_band = kinds.iter().any(|(_, k)| *k == Kind::Nx);
    if let (Some(hi), Some(lo)) = (last_ad, first_nonad) {
        if hi < lo {
            c.insecure_limit = Some(hi);
        }
    } else if last_ad.is_none() && kinds.first().map(|(_, k)| *k == Kind::Nx).unwrap_or(false) {
        // Never AD on any it-N yet NXDOMAINs throughout (but a validator
        // on `valid`): the delimiting value is effectively 0.
        c.insecure_limit = Some(0);
    }
    // SERVFAIL start.
    c.servfail_start = kinds
        .iter()
        .filter(|(_, k)| *k == Kind::ServFail)
        .map(|(n, _)| *n)
        .min();
    if let Some(start) = c.servfail_start {
        // Confirm it holds above (otherwise flaky).
        if kinds
            .iter()
            .any(|(n, k)| *n > start && *k != Kind::ServFail)
        {
            c.flaky = true;
        }
    }
    // Item 12 gap: plain-NXDOMAIN band strictly between the AD limit and
    // the SERVFAIL band.
    if let Some(start) = c.servfail_start {
        let gap_exists = kinds.iter().any(|(n, k)| *k == Kind::Nx && *n < start);
        if gap_exists {
            c.item12_gap = true;
        }
    }
    // EDE on the first limited response.
    let limited = c
        .responses
        .iter()
        .find(|(n, o)| {
            let past_insecure = c.insecure_limit.map(|l| *n > l).unwrap_or(false);
            let past_servfail = c.servfail_start.map(|s| *n >= s).unwrap_or(false);
            (past_insecure || past_servfail) && o.ede.is_some()
        })
        .and_then(|(_, o)| o.ede);
    if let Some(code) = limited {
        c.limit_ede_codes.push(code);
        if code == 27 {
            c.ede27_on_limit = true;
        }
    }
    if c.partial {
        c.insecure_limit = None;
        c.servfail_start = None;
        c.item12_gap = false;
        c.ede27_on_limit = false;
        c.limit_ede_codes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(rcode: Rcode, ad: bool, ede: Option<u16>) -> ObservedResponse {
        ObservedResponse {
            rcode,
            ad,
            ra: true,
            ede,
            ede_has_text: false,
        }
    }

    fn classification(responses: Vec<(u16, ObservedResponse)>) -> ResolverClassification {
        let mut c = ResolverClassification::empty("10.0.0.1".parse().unwrap());
        c.is_validator = true;
        c.responses = responses;
        derive_limits(&mut c);
        c
    }

    #[test]
    fn clean_item6_at_150() {
        let mut rs = Vec::new();
        for n in [1u16, 50, 100, 150] {
            rs.push((n, obs(Rcode::NxDomain, true, None)));
        }
        for n in [151u16, 200, 500] {
            rs.push((n, obs(Rcode::NxDomain, false, Some(27))));
        }
        let c = classification(rs);
        assert_eq!(c.insecure_limit, Some(150));
        assert_eq!(c.servfail_start, None);
        assert!(c.ede27_on_limit);
        assert!(c.implements_item6());
        assert!(!c.implements_item8());
        assert!(!c.item12_gap);
        assert!(!c.flaky);
        assert!(c.limits_iterations());
    }

    #[test]
    fn clean_item8_at_151() {
        let mut rs = Vec::new();
        for n in [1u16, 100, 150] {
            rs.push((n, obs(Rcode::NxDomain, true, None)));
        }
        for n in [151u16, 200, 500] {
            rs.push((n, obs(Rcode::ServFail, false, None)));
        }
        let c = classification(rs);
        assert_eq!(c.servfail_start, Some(151));
        assert_eq!(c.insecure_limit, Some(150));
        assert!(!c.has_insecure_band);
        assert!(c.implements_item8());
        assert!(!c.implements_item6());
        assert!(!c.item12_gap);
    }

    #[test]
    fn servfail_from_it1() {
        let mut rs = Vec::new();
        for n in [1u16, 2, 50, 500] {
            rs.push((n, obs(Rcode::ServFail, false, None)));
        }
        let c = classification(rs);
        assert_eq!(c.servfail_start, Some(1));
        assert_eq!(c.insecure_limit, None);
        assert!(c.implements_item8());
        assert!(!c.implements_item6());
    }

    #[test]
    fn item12_gap_detected() {
        let rs = vec![
            (50u16, obs(Rcode::NxDomain, true, None)),
            (100, obs(Rcode::NxDomain, false, None)),
            (150, obs(Rcode::NxDomain, false, None)),
            (151, obs(Rcode::ServFail, false, None)),
            (200, obs(Rcode::ServFail, false, None)),
        ];
        let c = classification(rs);
        assert_eq!(c.insecure_limit, Some(50));
        assert_eq!(c.servfail_start, Some(151));
        assert!(c.item12_gap);
    }

    #[test]
    fn flaky_non_monotone() {
        let rs = vec![
            (50u16, obs(Rcode::NxDomain, true, None)),
            (100, obs(Rcode::ServFail, false, None)),
            (150, obs(Rcode::NxDomain, true, None)),
        ];
        let c = classification(rs);
        assert!(c.flaky);
    }

    #[test]
    fn no_limit_resolver() {
        let mut rs = Vec::new();
        for n in [1u16, 150, 500] {
            rs.push((n, obs(Rcode::NxDomain, true, None)));
        }
        let c = classification(rs);
        assert_eq!(c.insecure_limit, None);
        assert_eq!(c.servfail_start, None);
        assert!(!c.limits_iterations());
    }

    #[test]
    fn partial_coverage_suppresses_derived_limits() {
        let mut c = ResolverClassification::empty("10.0.0.1".parse().unwrap());
        c.is_validator = true;
        c.probed_ns = vec![1, 50, 100, 150, 151, 200, 500];
        // Looks exactly like a clean item-6 resolver at 50 — but three
        // probes never came back, so 50 must not be presented as the
        // limit (the missing 100/150 answers could contradict it).
        c.responses = vec![
            (1, obs(Rcode::NxDomain, true, None)),
            (50, obs(Rcode::NxDomain, true, None)),
            (151, obs(Rcode::NxDomain, false, Some(27))),
            (200, obs(Rcode::NxDomain, false, None)),
        ];
        derive_limits(&mut c);
        assert!(c.partial);
        assert_eq!(c.insecure_limit, None);
        assert_eq!(c.servfail_start, None);
        assert!(!c.ede27_on_limit);
        assert!(c.limit_ede_codes.is_empty());
        assert!(!c.implements_item6());
        assert!(!c.implements_item8());
    }

    #[test]
    fn full_coverage_with_probed_ns_classifies_normally() {
        let mut c = ResolverClassification::empty("10.0.0.1".parse().unwrap());
        c.is_validator = true;
        c.probed_ns = vec![1, 150, 151];
        c.responses = vec![
            (1, obs(Rcode::NxDomain, true, None)),
            (150, obs(Rcode::NxDomain, true, None)),
            (151, obs(Rcode::NxDomain, false, None)),
        ];
        derive_limits(&mut c);
        assert!(!c.partial);
        assert_eq!(c.insecure_limit, Some(150));
    }

    #[test]
    fn partial_observation_still_detects_flakiness() {
        let mut c = ResolverClassification::empty("10.0.0.1".parse().unwrap());
        c.is_validator = true;
        c.probed_ns = vec![1, 50, 100, 150];
        c.responses = vec![
            (50, obs(Rcode::ServFail, false, None)),
            (150, obs(Rcode::NxDomain, true, None)),
        ];
        derive_limits(&mut c);
        assert!(c.partial);
        assert!(c.flaky, "out-of-order even on the observed subset");
    }

    #[test]
    fn ad_never_set_means_limit_zero() {
        let mut rs = Vec::new();
        for n in [1u16, 25, 500] {
            rs.push((n, obs(Rcode::NxDomain, false, None)));
        }
        let c = classification(rs);
        assert_eq!(c.insecure_limit, Some(0));
    }
}
